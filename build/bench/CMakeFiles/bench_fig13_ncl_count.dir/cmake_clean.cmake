file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ncl_count.dir/bench_fig13_ncl_count.cpp.o"
  "CMakeFiles/bench_fig13_ncl_count.dir/bench_fig13_ncl_count.cpp.o.d"
  "bench_fig13_ncl_count"
  "bench_fig13_ncl_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ncl_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

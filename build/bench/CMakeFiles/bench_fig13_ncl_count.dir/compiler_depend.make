# Empty compiler generated dependencies file for bench_fig13_ncl_count.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lifetime.dir/bench_fig10_lifetime.cpp.o"
  "CMakeFiles/bench_fig10_lifetime.dir/bench_fig10_lifetime.cpp.o.d"
  "bench_fig10_lifetime"
  "bench_fig10_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_routing.dir/bench_routing.cpp.o"
  "CMakeFiles/bench_routing.dir/bench_routing.cpp.o.d"
  "bench_routing"
  "bench_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

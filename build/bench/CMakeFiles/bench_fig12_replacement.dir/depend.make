# Empty dependencies file for bench_fig12_replacement.
# This may be replaced when dependencies are built.

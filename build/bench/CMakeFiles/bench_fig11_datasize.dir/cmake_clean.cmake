file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_datasize.dir/bench_fig11_datasize.cpp.o"
  "CMakeFiles/bench_fig11_datasize.dir/bench_fig11_datasize.cpp.o.d"
  "bench_fig11_datasize"
  "bench_fig11_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig11_datasize.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig9_setup.
# This may be replaced when dependencies are built.

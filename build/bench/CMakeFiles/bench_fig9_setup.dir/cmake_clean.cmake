file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_setup.dir/bench_fig9_setup.cpp.o"
  "CMakeFiles/bench_fig9_setup.dir/bench_fig9_setup.cpp.o.d"
  "bench_fig9_setup"
  "bench_fig9_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

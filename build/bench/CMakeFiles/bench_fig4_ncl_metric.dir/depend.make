# Empty dependencies file for bench_fig4_ncl_metric.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ncl_metric.dir/bench_fig4_ncl_metric.cpp.o"
  "CMakeFiles/bench_fig4_ncl_metric.dir/bench_fig4_ncl_metric.cpp.o.d"
  "bench_fig4_ncl_metric"
  "bench_fig4_ncl_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ncl_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_response.
# This may be replaced when dependencies are built.

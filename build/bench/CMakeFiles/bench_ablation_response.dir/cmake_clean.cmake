file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_response.dir/bench_ablation_response.cpp.o"
  "CMakeFiles/bench_ablation_response.dir/bench_ablation_response.cpp.o.d"
  "bench_ablation_response"
  "bench_ablation_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_traces.dir/bench_table1_traces.cpp.o"
  "CMakeFiles/bench_table1_traces.dir/bench_table1_traces.cpp.o.d"
  "bench_table1_traces"
  "bench_table1_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_horizon.
# This may be replaced when dependencies are built.

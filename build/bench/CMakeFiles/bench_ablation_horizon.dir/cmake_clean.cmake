file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_horizon.dir/bench_ablation_horizon.cpp.o"
  "CMakeFiles/bench_ablation_horizon.dir/bench_ablation_horizon.cpp.o.d"
  "bench_ablation_horizon"
  "bench_ablation_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sigmoid.dir/bench_fig7_sigmoid.cpp.o"
  "CMakeFiles/bench_fig7_sigmoid.dir/bench_fig7_sigmoid.cpp.o.d"
  "bench_fig7_sigmoid"
  "bench_fig7_sigmoid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sigmoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_failures.dir/bench_ablation_failures.cpp.o"
  "CMakeFiles/bench_ablation_failures.dir/bench_ablation_failures.cpp.o.d"
  "bench_ablation_failures"
  "bench_ablation_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ncl_test.dir/ncl_test.cpp.o"
  "CMakeFiles/ncl_test.dir/ncl_test.cpp.o.d"
  "ncl_test"
  "ncl_test.pdb"
  "ncl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ncl_test.
# This may be replaced when dependencies are built.

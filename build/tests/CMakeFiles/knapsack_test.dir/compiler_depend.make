# Empty compiler generated dependencies file for knapsack_test.
# This may be replaced when dependencies are built.

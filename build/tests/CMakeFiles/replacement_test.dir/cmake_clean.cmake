file(REMOVE_RECURSE
  "CMakeFiles/replacement_test.dir/replacement_test.cpp.o"
  "CMakeFiles/replacement_test.dir/replacement_test.cpp.o.d"
  "replacement_test"
  "replacement_test.pdb"
  "replacement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replacement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for replacement_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ncl_scheme_test.dir/ncl_scheme_test.cpp.o"
  "CMakeFiles/ncl_scheme_test.dir/ncl_scheme_test.cpp.o.d"
  "ncl_scheme_test"
  "ncl_scheme_test.pdb"
  "ncl_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncl_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ncl_scheme_test.
# This may be replaced when dependencies are built.

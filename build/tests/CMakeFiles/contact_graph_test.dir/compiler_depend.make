# Empty compiler generated dependencies file for contact_graph_test.
# This may be replaced when dependencies are built.

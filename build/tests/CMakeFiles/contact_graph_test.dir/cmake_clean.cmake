file(REMOVE_RECURSE
  "CMakeFiles/contact_graph_test.dir/contact_graph_test.cpp.o"
  "CMakeFiles/contact_graph_test.dir/contact_graph_test.cpp.o.d"
  "contact_graph_test"
  "contact_graph_test.pdb"
  "contact_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

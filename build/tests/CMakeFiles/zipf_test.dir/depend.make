# Empty dependencies file for zipf_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/zipf_test.dir/zipf_test.cpp.o"
  "CMakeFiles/zipf_test.dir/zipf_test.cpp.o.d"
  "zipf_test"
  "zipf_test.pdb"
  "zipf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for horizon_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/horizon_test.dir/horizon_test.cpp.o"
  "CMakeFiles/horizon_test.dir/horizon_test.cpp.o.d"
  "horizon_test"
  "horizon_test.pdb"
  "horizon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

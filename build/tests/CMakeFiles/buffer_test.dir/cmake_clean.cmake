file(REMOVE_RECURSE
  "CMakeFiles/buffer_test.dir/buffer_test.cpp.o"
  "CMakeFiles/buffer_test.dir/buffer_test.cpp.o.d"
  "buffer_test"
  "buffer_test.pdb"
  "buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for buffer_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/routing_test.cpp" "tests/CMakeFiles/routing_test.dir/routing_test.cpp.o" "gcc" "tests/CMakeFiles/routing_test.dir/routing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/dtn_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dtn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dtn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dtn_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dtn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

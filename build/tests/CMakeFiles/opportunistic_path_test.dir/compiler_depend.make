# Empty compiler generated dependencies file for opportunistic_path_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/opportunistic_path_test.dir/opportunistic_path_test.cpp.o"
  "CMakeFiles/opportunistic_path_test.dir/opportunistic_path_test.cpp.o.d"
  "opportunistic_path_test"
  "opportunistic_path_test.pdb"
  "opportunistic_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opportunistic_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hypoexp_test.dir/hypoexp_test.cpp.o"
  "CMakeFiles/hypoexp_test.dir/hypoexp_test.cpp.o.d"
  "hypoexp_test"
  "hypoexp_test.pdb"
  "hypoexp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypoexp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

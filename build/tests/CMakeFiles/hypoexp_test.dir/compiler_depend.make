# Empty compiler generated dependencies file for hypoexp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/message_test.dir/message_test.cpp.o"
  "CMakeFiles/message_test.dir/message_test.cpp.o.d"
  "message_test"
  "message_test.pdb"
  "message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for response_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/response_test.dir/response_test.cpp.o"
  "CMakeFiles/response_test.dir/response_test.cpp.o.d"
  "response_test"
  "response_test.pdb"
  "response_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/response_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/popularity_test.dir/popularity_test.cpp.o"
  "CMakeFiles/popularity_test.dir/popularity_test.cpp.o.d"
  "popularity_test"
  "popularity_test.pdb"
  "popularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

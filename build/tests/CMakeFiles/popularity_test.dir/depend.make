# Empty dependencies file for popularity_test.
# This may be replaced when dependencies are built.

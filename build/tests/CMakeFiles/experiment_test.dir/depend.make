# Empty dependencies file for experiment_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/experiment_test.dir/experiment_test.cpp.o"
  "CMakeFiles/experiment_test.dir/experiment_test.cpp.o.d"
  "experiment_test"
  "experiment_test.pdb"
  "experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/content_sharing.dir/content_sharing.cpp.o"
  "CMakeFiles/content_sharing.dir/content_sharing.cpp.o.d"
  "content_sharing"
  "content_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for content_sharing.
# This may be replaced when dependencies are built.

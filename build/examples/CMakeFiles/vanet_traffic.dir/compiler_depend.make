# Empty compiler generated dependencies file for vanet_traffic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vanet_traffic.dir/vanet_traffic.cpp.o"
  "CMakeFiles/vanet_traffic.dir/vanet_traffic.cpp.o.d"
  "vanet_traffic"
  "vanet_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vanet_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dtn_sim.dir/engine.cpp.o"
  "CMakeFiles/dtn_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dtn_sim.dir/metrics.cpp.o"
  "CMakeFiles/dtn_sim.dir/metrics.cpp.o.d"
  "libdtn_sim.a"
  "libdtn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

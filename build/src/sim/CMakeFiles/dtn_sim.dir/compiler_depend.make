# Empty compiler generated dependencies file for dtn_sim.
# This may be replaced when dependencies are built.

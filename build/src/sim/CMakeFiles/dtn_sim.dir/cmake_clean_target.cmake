file(REMOVE_RECURSE
  "libdtn_sim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/dtn_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/dtn_workload.dir/workload.cpp.o.d"
  "/root/repo/src/workload/zipf.cpp" "src/workload/CMakeFiles/dtn_workload.dir/zipf.cpp.o" "gcc" "src/workload/CMakeFiles/dtn_workload.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdtn_workload.a"
)

# Empty compiler generated dependencies file for dtn_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dtn_workload.dir/workload.cpp.o"
  "CMakeFiles/dtn_workload.dir/workload.cpp.o.d"
  "CMakeFiles/dtn_workload.dir/zipf.cpp.o"
  "CMakeFiles/dtn_workload.dir/zipf.cpp.o.d"
  "libdtn_workload.a"
  "libdtn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdtn_graph.a"
)

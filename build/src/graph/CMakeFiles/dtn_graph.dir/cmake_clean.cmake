file(REMOVE_RECURSE
  "CMakeFiles/dtn_graph.dir/all_pairs.cpp.o"
  "CMakeFiles/dtn_graph.dir/all_pairs.cpp.o.d"
  "CMakeFiles/dtn_graph.dir/analysis.cpp.o"
  "CMakeFiles/dtn_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/dtn_graph.dir/contact_graph.cpp.o"
  "CMakeFiles/dtn_graph.dir/contact_graph.cpp.o.d"
  "CMakeFiles/dtn_graph.dir/hypoexp.cpp.o"
  "CMakeFiles/dtn_graph.dir/hypoexp.cpp.o.d"
  "CMakeFiles/dtn_graph.dir/ncl.cpp.o"
  "CMakeFiles/dtn_graph.dir/ncl.cpp.o.d"
  "CMakeFiles/dtn_graph.dir/opportunistic_path.cpp.o"
  "CMakeFiles/dtn_graph.dir/opportunistic_path.cpp.o.d"
  "libdtn_graph.a"
  "libdtn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dtn_graph.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/all_pairs.cpp" "src/graph/CMakeFiles/dtn_graph.dir/all_pairs.cpp.o" "gcc" "src/graph/CMakeFiles/dtn_graph.dir/all_pairs.cpp.o.d"
  "/root/repo/src/graph/analysis.cpp" "src/graph/CMakeFiles/dtn_graph.dir/analysis.cpp.o" "gcc" "src/graph/CMakeFiles/dtn_graph.dir/analysis.cpp.o.d"
  "/root/repo/src/graph/contact_graph.cpp" "src/graph/CMakeFiles/dtn_graph.dir/contact_graph.cpp.o" "gcc" "src/graph/CMakeFiles/dtn_graph.dir/contact_graph.cpp.o.d"
  "/root/repo/src/graph/hypoexp.cpp" "src/graph/CMakeFiles/dtn_graph.dir/hypoexp.cpp.o" "gcc" "src/graph/CMakeFiles/dtn_graph.dir/hypoexp.cpp.o.d"
  "/root/repo/src/graph/ncl.cpp" "src/graph/CMakeFiles/dtn_graph.dir/ncl.cpp.o" "gcc" "src/graph/CMakeFiles/dtn_graph.dir/ncl.cpp.o.d"
  "/root/repo/src/graph/opportunistic_path.cpp" "src/graph/CMakeFiles/dtn_graph.dir/opportunistic_path.cpp.o" "gcc" "src/graph/CMakeFiles/dtn_graph.dir/opportunistic_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtn_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

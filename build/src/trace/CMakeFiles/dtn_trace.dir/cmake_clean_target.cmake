file(REMOVE_RECURSE
  "libdtn_trace.a"
)

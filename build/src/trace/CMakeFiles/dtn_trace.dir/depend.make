# Empty dependencies file for dtn_trace.
# This may be replaced when dependencies are built.

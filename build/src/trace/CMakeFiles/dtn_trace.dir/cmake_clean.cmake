file(REMOVE_RECURSE
  "CMakeFiles/dtn_trace.dir/mobility.cpp.o"
  "CMakeFiles/dtn_trace.dir/mobility.cpp.o.d"
  "CMakeFiles/dtn_trace.dir/synthetic.cpp.o"
  "CMakeFiles/dtn_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/dtn_trace.dir/trace.cpp.o"
  "CMakeFiles/dtn_trace.dir/trace.cpp.o.d"
  "CMakeFiles/dtn_trace.dir/trace_io.cpp.o"
  "CMakeFiles/dtn_trace.dir/trace_io.cpp.o.d"
  "libdtn_trace.a"
  "libdtn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

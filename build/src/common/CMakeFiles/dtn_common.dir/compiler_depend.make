# Empty compiler generated dependencies file for dtn_common.
# This may be replaced when dependencies are built.

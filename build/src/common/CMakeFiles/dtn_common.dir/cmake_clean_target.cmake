file(REMOVE_RECURSE
  "libdtn_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dtn_common.dir/logging.cpp.o"
  "CMakeFiles/dtn_common.dir/logging.cpp.o.d"
  "CMakeFiles/dtn_common.dir/rng.cpp.o"
  "CMakeFiles/dtn_common.dir/rng.cpp.o.d"
  "CMakeFiles/dtn_common.dir/stats.cpp.o"
  "CMakeFiles/dtn_common.dir/stats.cpp.o.d"
  "CMakeFiles/dtn_common.dir/table.cpp.o"
  "CMakeFiles/dtn_common.dir/table.cpp.o.d"
  "libdtn_common.a"
  "libdtn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

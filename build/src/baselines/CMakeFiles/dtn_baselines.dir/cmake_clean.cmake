file(REMOVE_RECURSE
  "CMakeFiles/dtn_baselines.dir/bundle_cache.cpp.o"
  "CMakeFiles/dtn_baselines.dir/bundle_cache.cpp.o.d"
  "CMakeFiles/dtn_baselines.dir/cache_data.cpp.o"
  "CMakeFiles/dtn_baselines.dir/cache_data.cpp.o.d"
  "CMakeFiles/dtn_baselines.dir/flooding_base.cpp.o"
  "CMakeFiles/dtn_baselines.dir/flooding_base.cpp.o.d"
  "libdtn_baselines.a"
  "libdtn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

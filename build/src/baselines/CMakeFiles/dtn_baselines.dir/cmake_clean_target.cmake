file(REMOVE_RECURSE
  "libdtn_baselines.a"
)

# Empty dependencies file for dtn_baselines.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dtn_routing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dtn_routing.dir/engine.cpp.o"
  "CMakeFiles/dtn_routing.dir/engine.cpp.o.d"
  "CMakeFiles/dtn_routing.dir/protocols.cpp.o"
  "CMakeFiles/dtn_routing.dir/protocols.cpp.o.d"
  "CMakeFiles/dtn_routing.dir/router.cpp.o"
  "CMakeFiles/dtn_routing.dir/router.cpp.o.d"
  "libdtn_routing.a"
  "libdtn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdtn_routing.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dtn_net.dir/buffer.cpp.o"
  "CMakeFiles/dtn_net.dir/buffer.cpp.o.d"
  "CMakeFiles/dtn_net.dir/message.cpp.o"
  "CMakeFiles/dtn_net.dir/message.cpp.o.d"
  "libdtn_net.a"
  "libdtn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dtn_net.
# This may be replaced when dependencies are built.

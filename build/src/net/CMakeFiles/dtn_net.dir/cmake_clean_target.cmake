file(REMOVE_RECURSE
  "libdtn_net.a"
)

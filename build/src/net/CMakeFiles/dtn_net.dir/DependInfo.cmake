
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/buffer.cpp" "src/net/CMakeFiles/dtn_net.dir/buffer.cpp.o" "gcc" "src/net/CMakeFiles/dtn_net.dir/buffer.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/dtn_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/dtn_net.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dtn_cache.dir/knapsack.cpp.o"
  "CMakeFiles/dtn_cache.dir/knapsack.cpp.o.d"
  "CMakeFiles/dtn_cache.dir/ncl_scheme.cpp.o"
  "CMakeFiles/dtn_cache.dir/ncl_scheme.cpp.o.d"
  "CMakeFiles/dtn_cache.dir/popularity.cpp.o"
  "CMakeFiles/dtn_cache.dir/popularity.cpp.o.d"
  "CMakeFiles/dtn_cache.dir/replacement.cpp.o"
  "CMakeFiles/dtn_cache.dir/replacement.cpp.o.d"
  "CMakeFiles/dtn_cache.dir/response.cpp.o"
  "CMakeFiles/dtn_cache.dir/response.cpp.o.d"
  "libdtn_cache.a"
  "libdtn_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

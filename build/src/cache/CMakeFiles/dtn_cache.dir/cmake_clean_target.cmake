file(REMOVE_RECURSE
  "libdtn_cache.a"
)

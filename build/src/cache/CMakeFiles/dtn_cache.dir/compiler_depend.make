# Empty compiler generated dependencies file for dtn_cache.
# This may be replaced when dependencies are built.

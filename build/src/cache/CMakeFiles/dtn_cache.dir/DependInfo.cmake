
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/knapsack.cpp" "src/cache/CMakeFiles/dtn_cache.dir/knapsack.cpp.o" "gcc" "src/cache/CMakeFiles/dtn_cache.dir/knapsack.cpp.o.d"
  "/root/repo/src/cache/ncl_scheme.cpp" "src/cache/CMakeFiles/dtn_cache.dir/ncl_scheme.cpp.o" "gcc" "src/cache/CMakeFiles/dtn_cache.dir/ncl_scheme.cpp.o.d"
  "/root/repo/src/cache/popularity.cpp" "src/cache/CMakeFiles/dtn_cache.dir/popularity.cpp.o" "gcc" "src/cache/CMakeFiles/dtn_cache.dir/popularity.cpp.o.d"
  "/root/repo/src/cache/replacement.cpp" "src/cache/CMakeFiles/dtn_cache.dir/replacement.cpp.o" "gcc" "src/cache/CMakeFiles/dtn_cache.dir/replacement.cpp.o.d"
  "/root/repo/src/cache/response.cpp" "src/cache/CMakeFiles/dtn_cache.dir/response.cpp.o" "gcc" "src/cache/CMakeFiles/dtn_cache.dir/response.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dtn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtn_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

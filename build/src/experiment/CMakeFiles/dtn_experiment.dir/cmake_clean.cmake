file(REMOVE_RECURSE
  "CMakeFiles/dtn_experiment.dir/experiment.cpp.o"
  "CMakeFiles/dtn_experiment.dir/experiment.cpp.o.d"
  "CMakeFiles/dtn_experiment.dir/sweep.cpp.o"
  "CMakeFiles/dtn_experiment.dir/sweep.cpp.o.d"
  "libdtn_experiment.a"
  "libdtn_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdtn_experiment.a"
)

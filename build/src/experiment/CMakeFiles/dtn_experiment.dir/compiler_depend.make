# Empty compiler generated dependencies file for dtn_experiment.
# This may be replaced when dependencies are built.

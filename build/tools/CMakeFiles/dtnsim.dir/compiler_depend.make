# Empty compiler generated dependencies file for dtnsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dtnsim.dir/dtnsim.cpp.o"
  "CMakeFiles/dtnsim.dir/dtnsim.cpp.o.d"
  "dtnsim"
  "dtnsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

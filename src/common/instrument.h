// Lightweight observability: monotonic domain counters and scoped wall-clock
// timers, aggregated into a per-run StageStats report.
//
// The paper's evaluation (Figs. 9-13) is a perf-trajectory story — setup
// cost, caching overhead, NCL-count scaling — so the reproduction measures
// the same hot stages: hypoexponential CDF evaluations by algorithm
// (Eqs. 1-2), opportunistic-Dijkstra relaxations, knapsack DP cells
// (Eq. 7 / Algorithm 1), contacts processed, buffer evictions. Benches
// snapshot the registry around each timed stage and emit the deltas as
// machine-readable JSON (bench/bench_json.h); `tools/bench_compare.py`
// gates regressions on time *per counter unit*, so the counters here are
// the denominator of every perf gate.
//
// Design rules (see DESIGN.md §7):
//  * Observation never feeds back: nothing in the simulator reads a counter
//    or a timer, so instrumentation cannot perturb determinism — ctest
//    output is byte-identical with DTN_INSTRUMENT=ON and OFF.
//  * Thread-safe by construction: counters are relaxed atomics, safe to
//    bump from inside parallel_for workers; totals are exact because
//    increments are atomic, only their interleaving is unordered.
//  * Zero overhead when off: building with -DDTN_INSTRUMENT=OFF (which
//    defines DTN_INSTRUMENT_OFF) compiles the DTN_COUNT / DTN_SCOPED_TIMER
//    macros to nothing. The registry API below stays available so tools
//    and tests link in both modes; it just never moves.
//
// The clock reads live only inside ScopedTimer (allowlisted in
// tools/lint_allowlist.txt): timing is the one designated consumer of
// nondeterministic time, and its output never reaches simulation state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dtn::instrument {

/// Monotonic domain counters. Names (counter_name) are the stable JSON
/// identifiers — append new enumerators before kCount, never reorder.
enum class Counter : int {
  kHypoexpSingleEvals,          ///< 1-hop exponential CDF evaluations
  kHypoexpErlangEvals,          ///< all-rates-equal Erlang closed form
  kHypoexpClosedFormEvals,      ///< distinct-rates partial fractions
  kHypoexpUniformizationEvals,  ///< near-equal-rates uniformization
  kDijkstraRelaxations,         ///< edges examined by max-probability Dijkstra
  kDijkstraSettled,             ///< nodes settled (popped final)
  kPathTablesBuilt,             ///< compute_opportunistic_paths completions
  kKnapsackSolves,              ///< solve_knapsack calls
  kKnapsackDpCells,             ///< DP inner-loop cell updates
  kReplacementPlans,            ///< plan_replacement calls (Alg. 1 exchanges)
  kReplacementItemsPooled,      ///< items pooled across all exchanges
  kBufferEvictions,             ///< cache entries evicted or dropped
  kContactsProcessed,           ///< contact events handed to a scheme
  kMaintenanceTicks,            ///< periodic maintenance invocations
  kExperimentRepetitions,       ///< experiment repetitions completed
  kSweepCells,                  ///< sweep grid cells completed
  kTraceContactsDecoded,        ///< contacts decoded by trace readers
  kTraceBytesRead,              ///< bytes consumed by trace ingestion
  kTraceCacheHits,              ///< fresh .dtntrace sidecar loads
  kTraceCacheMisses,            ///< text parses with caching enabled
  kPathScratchReuses,           ///< relaxations served from workspace scratch
  kPathBytesNotAllocated,       ///< bytes the legacy per-relaxation copy used
  kParentChainWalks,            ///< rate chains materialized via next_hop walk
  kContactWorkspaceReuses,      ///< contact workspaces reused without realloc
  kBundlePoolHits,              ///< bundle slots recycled from the free list
  kSimBytesNotAllocated,        ///< bytes the legacy per-contact path allocated
  kShardEpochs,                 ///< bound-weave epochs (parallel flushes)
  kShardCrossContacts,          ///< scheme-visible contacts spanning shards
  kShardIntraContacts,          ///< scheme-visible contacts within one shard
  kDaemonContactsIngested,      ///< contacts fed into the daemon estimator
  kDaemonEdgeUpdates,           ///< drifted edge rates applied to the graph
  kDaemonRootsRepaired,         ///< path tables rebuilt by incremental repair
  kDaemonSnapshotsPublished,    ///< read-snapshot swaps (epoch increments)
  kDaemonAuditRebuilds,         ///< audit-mode full kReference rebuilds
  kDaemonQueries,               ///< daemon queries answered from a snapshot
  kDijkstraPruned,              ///< frontier candidates dropped below the floor
  kSparseLandmarkTables,        ///< landmark single-source builds (kSparse)
  kPeakRssBytes,                ///< peak resident set sampled by benches
  kCount
};

/// Wall-time stages. timer_name gives the stable JSON identifiers.
enum class Timer : int {
  kSimulation,        ///< run_simulation, end to end
  kMaintenance,       ///< per maintenance tick (AllPairs rebuild + scheme)
  kContacts,          ///< per contact event handed to the scheme
  kAllPairs,          ///< AllPairsPaths construction
  kDijkstra,          ///< one compute_opportunistic_paths call
  kNclMetrics,        ///< ncl_metrics (Eq. 3) over all roots
  kCalibrateHorizon,  ///< adaptive horizon bisection
  kKnapsack,          ///< solve_knapsack (Eq. 7 DP)
  kReplacementPlan,   ///< plan_replacement (Algorithm 1)
  kExperiment,        ///< run_experiment, end to end
  kSweep,             ///< run_sweep over the whole grid
  kTraceLoad,         ///< load_trace_any, end to end (parse or cache load)
  kDaemonRepair,      ///< one daemon repair batch (drift scan -> publish)
  kSparseMetrics,     ///< sparse_ncl_metrics (landmark + pruned builds)
  kCount
};

const char* counter_name(Counter c);
const char* timer_name(Timer t);

/// Adds n to a counter. Relaxed atomic: safe from any thread.
void add(Counter c, std::uint64_t n);

/// Records one timed interval of `nanos` against a stage timer.
void add_time(Timer t, std::uint64_t nanos);

/// True when the library itself was compiled with instrumentation on —
/// i.e. whether the macros in src/ bump this registry at all.
bool enabled();

/// Point-in-time copy of the registry, plus delta/reporting helpers.
/// Counters and timers appear in enum order, zero entries included, so
/// two snapshots subtract index-by-index.
struct StageStats {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct TimerRow {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
  };

  std::vector<CounterRow> counters;
  std::vector<TimerRow> timers;

  /// Value of a counter by JSON name; 0 when absent.
  std::uint64_t counter(const std::string& name) const;

  /// This snapshot minus an earlier one (per-stage deltas for benches).
  StageStats delta_since(const StageStats& earlier) const;

  /// Human-readable report (dtnsim --stats): non-zero counters, then
  /// timers with call counts and total milliseconds.
  std::string to_string() const;
};

/// Copies the current registry.
StageStats snapshot();

/// Zeroes every counter and timer (test/bench isolation).
void reset();

/// RAII wall-clock timer. Construct-to-destruct time is charged to the
/// stage; use via DTN_SCOPED_TIMER so DTN_INSTRUMENT=OFF erases the clock
/// reads along with everything else.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer t)
      : timer_(t), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto nanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    add_time(timer_, nanos > 0 ? static_cast<std::uint64_t>(nanos) : 0u);
  }

 private:
  Timer timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dtn::instrument

#if defined(DTN_INSTRUMENT_OFF)

#define DTN_COUNT(counter) ((void)0)
#define DTN_COUNT_N(counter, n) ((void)0)
#define DTN_SCOPED_TIMER(timer) ((void)0)

#else  // instrumentation enabled (the default)

#define DTN_COUNT(counter) \
  ::dtn::instrument::add(::dtn::instrument::Counter::counter, 1)

#define DTN_COUNT_N(counter, n)                            \
  ::dtn::instrument::add(::dtn::instrument::Counter::counter, \
                         static_cast<std::uint64_t>(n))

#define DTN_INSTRUMENT_CONCAT_(a, b) a##b
#define DTN_INSTRUMENT_CONCAT(a, b) DTN_INSTRUMENT_CONCAT_(a, b)

#define DTN_SCOPED_TIMER(timer)                               \
  const ::dtn::instrument::ScopedTimer DTN_INSTRUMENT_CONCAT( \
      dtn_scoped_timer_, __LINE__)(::dtn::instrument::Timer::timer)

#endif  // DTN_INSTRUMENT_OFF

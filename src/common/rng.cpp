#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dtn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t x = base + (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);  // avoid log(0); uniform() < 1 so 1-u > 0 as well
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point round-off fallback
}

Rng Rng::split() {
  // A fresh engine seeded from this one's output stream is statistically
  // independent for simulation purposes.
  return Rng((*this)());
}

}  // namespace dtn

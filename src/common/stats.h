// Streaming and batch statistics used by the experiment harness and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dtn {

/// Numerically stable streaming mean/variance (Welford's algorithm) plus
/// min/max tracking. O(1) space; suitable for millions of samples.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel/Chan combination).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;          ///< 0 when empty.
  double variance() const;      ///< population variance; 0 when n < 2.
  double sample_variance() const;  ///< unbiased; 0 when n < 2.
  double stddev() const;
  double min() const;           ///< +inf when empty.
  double max() const;           ///< -inf when empty.
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// Batch percentile over a copy of the samples (nearest-rank with linear
/// interpolation, the common "type 7" definition). q in [0, 1].
double percentile(std::vector<double> samples, double q);

/// Gini coefficient of a non-negative sample set — used to quantify the
/// skewness of NCL selection metric distributions (Fig. 4 validation).
/// Returns 0 for empty input or all-zero input.
double gini(std::vector<double> samples);

/// Simple fixed-width histogram for distribution reporting.
class Histogram {
 public:
  /// Buckets span [lo, hi) split into `buckets` equal cells; out-of-range
  /// samples are clamped into the first/last cell.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t bucket) const;
  double bucket_high(std::size_t bucket) const;

  /// Multi-line ASCII rendering, one row per bucket.
  std::string to_string(std::size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dtn

// Fundamental identifier and quantity types shared by every dtncache module.
//
// All simulation time is expressed in seconds as `Time` (double); all data
// sizes in bytes as `Bytes` (signed 64-bit, per ES.102/ES.106 we use signed
// arithmetic even for quantities that are logically non-negative).
#pragma once

#include <cstdint>
#include <limits>

namespace dtn {

/// Index of a mobile node in the network, dense in [0, N).
using NodeId = std::int32_t;

/// Globally unique identifier of a data item.
using DataId = std::int64_t;

/// Globally unique identifier of a query.
using QueryId = std::int64_t;

/// Simulation time in seconds since the start of the trace.
using Time = double;

/// Data size / buffer capacity in bytes.
using Bytes = std::int64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = -1;

/// Sentinel for "no data".
inline constexpr DataId kNoData = -1;

/// Sentinel time meaning "never" / "not yet".
inline constexpr Time kNever = std::numeric_limits<Time>::infinity();

// Convenient literal-style helpers for readable parameter definitions.
inline constexpr Time seconds(double s) { return s; }
inline constexpr Time minutes(double m) { return m * 60.0; }
inline constexpr Time hours(double h) { return h * 3600.0; }
inline constexpr Time days(double d) { return d * 86400.0; }
inline constexpr Time weeks(double w) { return w * 7.0 * 86400.0; }

inline constexpr Bytes kilobytes(double k) { return static_cast<Bytes>(k * 1024.0); }
inline constexpr Bytes megabytes(double m) { return static_cast<Bytes>(m * 1024.0 * 1024.0); }

/// Megabits (the paper quotes sizes like "100 Mb" and link speed 2.1 Mb/s).
inline constexpr Bytes megabits(double m) { return static_cast<Bytes>(m * 1000.0 * 1000.0 / 8.0); }

}  // namespace dtn

#include "common/arena.h"

namespace dtn {

namespace {

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  DTN_CHECK(chunk_bytes_ > 0, "arena chunk size must be positive");
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  DTN_CHECK(is_power_of_two(align), "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;

  // Try the active chunk, then any later retained chunk (left over from a
  // previous high-water mark); only allocate a fresh chunk when none fits.
  for (std::size_t i = active_; i < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    const std::size_t start = align_up(c.cursor, align);
    if (start + bytes <= c.size) {
      active_ = i;
      used_ += (start - c.cursor) + bytes;  // alignment padding + payload
      c.cursor = start + bytes;
      return c.data.get() + start;
    }
  }

  const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size);
  c.size = size;
  c.cursor = bytes;
  capacity_ += size;
  used_ += bytes;
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
  return chunks_.back().data.get();
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.cursor = 0;
  active_ = 0;
  used_ = 0;
}

}  // namespace dtn

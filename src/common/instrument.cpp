#include "common/instrument.h"

#include <array>

#include "common/table.h"

namespace dtn::instrument {
namespace {

constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);
constexpr std::size_t kTimerCount = static_cast<std::size_t>(Timer::kCount);

// Keep in enum order; these are the stable JSON identifiers consumed by
// bench_json and tools/bench_compare.py — renaming one is a schema change.
constexpr std::array<const char*, kCounterCount> kCounterNames = {
    "hypoexp_single_evals",
    "hypoexp_erlang_evals",
    "hypoexp_closed_form_evals",
    "hypoexp_uniformization_evals",
    "dijkstra_relaxations",
    "dijkstra_settled",
    "path_tables_built",
    "knapsack_solves",
    "knapsack_dp_cells",
    "replacement_plans",
    "replacement_items_pooled",
    "buffer_evictions",
    "contacts_processed",
    "maintenance_ticks",
    "experiment_repetitions",
    "sweep_cells",
    "trace_contacts_decoded",
    "trace_bytes_read",
    "trace_cache_hits",
    "trace_cache_misses",
    "path_scratch_reuses",
    "path_bytes_not_allocated",
    "parent_chain_walks",
    "contact_workspace_reuses",
    "bundle_pool_hits",
    "sim_bytes_not_allocated",
    "shard_epochs",
    "shard_cross_contacts",
    "shard_intra_contacts",
    "daemon_contacts_ingested",
    "daemon_edge_updates",
    "daemon_roots_repaired",
    "daemon_snapshots_published",
    "daemon_audit_rebuilds",
    "daemon_queries",
    "dijkstra_pruned",
    "sparse_landmark_tables",
    "peak_rss_bytes",
};

constexpr std::array<const char*, kTimerCount> kTimerNames = {
    "simulation",
    "maintenance",
    "contacts",
    "all_pairs",
    "dijkstra",
    "ncl_metrics",
    "calibrate_horizon",
    "knapsack",
    "replacement_plan",
    "experiment",
    "sweep",
    "trace_load",
    "daemon_repair",
    "sparse_metrics",
};

struct Registry {
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
  std::array<std::atomic<std::uint64_t>, kTimerCount> timer_nanos{};
  std::array<std::atomic<std::uint64_t>, kTimerCount> timer_calls{};
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

const char* counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

const char* timer_name(Timer t) {
  return kTimerNames[static_cast<std::size_t>(t)];
}

void add(Counter c, std::uint64_t n) {
  registry().counters[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void add_time(Timer t, std::uint64_t nanos) {
  auto& r = registry();
  r.timer_nanos[static_cast<std::size_t>(t)].fetch_add(
      nanos, std::memory_order_relaxed);
  r.timer_calls[static_cast<std::size_t>(t)].fetch_add(
      1, std::memory_order_relaxed);
}

bool enabled() {
#if defined(DTN_INSTRUMENT_OFF)
  return false;
#else
  return true;
#endif
}

std::uint64_t StageStats::counter(const std::string& name) const {
  for (const CounterRow& row : counters) {
    if (row.name == name) return row.value;
  }
  return 0;
}

StageStats StageStats::delta_since(const StageStats& earlier) const {
  StageStats delta = *this;
  for (std::size_t i = 0; i < delta.counters.size(); ++i) {
    if (i < earlier.counters.size()) {
      delta.counters[i].value -= earlier.counters[i].value;
    }
  }
  for (std::size_t i = 0; i < delta.timers.size(); ++i) {
    if (i < earlier.timers.size()) {
      delta.timers[i].calls -= earlier.timers[i].calls;
      delta.timers[i].nanos -= earlier.timers[i].nanos;
    }
  }
  return delta;
}

std::string StageStats::to_string() const {
  std::string out;
  {
    TextTable table({"counter", "value"});
    for (const CounterRow& row : counters) {
      if (row.value == 0) continue;
      table.begin_row();
      table.add_cell(row.name);
      table.add_integer(static_cast<long long>(row.value));
    }
    if (table.row_count() > 0) out += table.to_string();
  }
  {
    TextTable table({"stage", "calls", "total_ms", "ms/call"});
    for (const TimerRow& row : timers) {
      if (row.calls == 0) continue;
      table.begin_row();
      table.add_cell(row.name);
      table.add_integer(static_cast<long long>(row.calls));
      const double total_ms = static_cast<double>(row.nanos) / 1e6;
      table.add_number(total_ms, 3);
      table.add_number(total_ms / static_cast<double>(row.calls), 4);
    }
    if (table.row_count() > 0) {
      if (!out.empty()) out += "\n";
      out += table.to_string();
    }
  }
  if (out.empty()) out = "(no instrumentation samples recorded)\n";
  return out;
}

StageStats snapshot() {
  const Registry& r = registry();
  StageStats stats;
  stats.counters.reserve(kCounterCount);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    stats.counters.push_back(
        {kCounterNames[i], r.counters[i].load(std::memory_order_relaxed)});
  }
  stats.timers.reserve(kTimerCount);
  for (std::size_t i = 0; i < kTimerCount; ++i) {
    stats.timers.push_back(
        {kTimerNames[i], r.timer_calls[i].load(std::memory_order_relaxed),
         r.timer_nanos[i].load(std::memory_order_relaxed)});
  }
  return stats;
}

void reset() {
  Registry& r = registry();
  for (auto& c : r.counters) c.store(0, std::memory_order_relaxed);
  for (auto& t : r.timer_nanos) t.store(0, std::memory_order_relaxed);
  for (auto& t : r.timer_calls) t.store(0, std::memory_order_relaxed);
}

}  // namespace dtn::instrument

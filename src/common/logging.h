// Minimal leveled logging. Simulation hot paths must not pay for disabled
// logging, so the macros check the global level before evaluating arguments.
#pragma once

#include <sstream>
#include <string>

namespace dtn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Writes a single formatted line to stderr. Prefer the macros below.
void log_line(LogLevel level, const std::string& message);

}  // namespace dtn

#define DTN_LOG(level, expr)                                    \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::dtn::log_level())) {                 \
      std::ostringstream dtn_log_stream_;                       \
      dtn_log_stream_ << expr;                                  \
      ::dtn::log_line(level, dtn_log_stream_.str());            \
    }                                                           \
  } while (false)

#define DTN_DEBUG(expr) DTN_LOG(::dtn::LogLevel::kDebug, expr)
#define DTN_INFO(expr) DTN_LOG(::dtn::LogLevel::kInfo, expr)
#define DTN_WARN(expr) DTN_LOG(::dtn::LogLevel::kWarn, expr)
#define DTN_ERROR(expr) DTN_LOG(::dtn::LogLevel::kError, expr)

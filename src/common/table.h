// Aligned text tables for bench output — benches print the same rows/series
// the paper's tables and figures report, in a form that is both human
// readable and trivially machine parseable (CSV export).
#pragma once

#include <string>
#include <vector>

namespace dtn {

/// A simple right-aligned text table. Cells are strings; numeric helpers
/// format with a fixed precision. No invariant beyond "rows ragged-free at
/// print time", so data members stay private to keep rows consistent.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row. Subsequent add_cell/add_number calls fill it.
  void begin_row();

  void add_cell(std::string value);
  void add_number(double value, int precision = 3);
  void add_integer(long long value);

  /// Convenience: append a complete row at once.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

  /// Pretty-printed, pipe-separated, aligned rendering.
  std::string to_string() const;

  /// RFC-4180-ish CSV (no quoting of embedded commas; our cells never
  /// contain them).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string format_double(double value, int precision = 3);

/// Formats a time quantity (seconds) using an adaptive human unit,
/// e.g. "36.0h" or "2.5d". Used in bench output next to raw seconds.
std::string format_duration(double seconds);

}  // namespace dtn

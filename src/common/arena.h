// Arena and pool memory for the simulator hot loop.
//
// The per-contact simulation path (session setup, buffer scans, the
// Eq. 7/Alg. 1 exchange) used to allocate per event: three "kept" vectors
// per transfer direction, half a dozen scratch containers per replacement
// plan, and one heap node per in-flight bundle. This header provides the
// two building blocks that remove that traffic:
//
//  * Arena — a chunked bump allocator. Chunks are retained across reset(),
//    so a steady-state consumer that resets between events touches the
//    heap only while it is still growing towards its high-water mark.
//  * SlabPool<T> — typed slab storage with a free list, used for in-flight
//    bundles (push tokens, query copies, response bundles). Slots live in
//    fixed-capacity slabs (stable addresses, contiguous within a slab) and
//    are recycled through a LIFO free list; the `next` link doubles as the
//    intrusive per-node chain link while a slot is live. Double release is
//    a DTN_CHECK abort, not silent corruption (tests/check_test.cpp).
//
// Both classes are deliberately not thread-safe: one simulation run is one
// thread (parallelism lives at the sweep/repetition/all-pairs layer), and
// the pools are owned per scheme instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn {

/// Chunked bump allocator. allocate() never invalidates earlier blocks;
/// reset() recycles every chunk without returning memory to the system.
class Arena {
 public:
  /// `chunk_bytes` is the granularity of growth; requests larger than a
  /// chunk get a dedicated chunk of exactly the requested size.
  explicit Arena(std::size_t chunk_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Recycles every chunk: subsequent allocations reuse the retained
  /// memory. Previously returned pointers become invalid.
  void reset();

  /// Total bytes owned (the high-water footprint).
  std::size_t capacity() const { return capacity_; }

  /// Bytes handed out since the last reset (including alignment padding).
  std::size_t used() const { return used_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t cursor = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t active_ = 0;  ///< index of the chunk currently bumping
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

/// Typed slab pool with handle-based access and an intrusive link per slot.
///
/// Handles are stable 32-bit indices (slab = h / slab_capacity, slot =
/// h % slab_capacity); slabs never move once created, so references
/// obtained from get() stay valid across acquire() of *other* slots. The
/// per-slot `next` link serves the free list while a slot is dead and the
/// owner's bundle chain while it is live — in-flight bundles need exactly
/// one forward link, so the pool stores it once instead of per container.
template <typename T>
class SlabPool {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xFFFFFFFFu;

  explicit SlabPool(std::size_t slab_capacity = 256)
      : slab_capacity_(slab_capacity) {
    DTN_CHECK(slab_capacity_ > 0, "slab capacity must be positive");
  }

  /// Returns a live slot holding a default-constructed T. Recycles the
  /// most recently released slot when one exists (LIFO keeps the working
  /// set hot); only grows a slab when the free list is empty.
  Handle acquire() {
    Handle h;
    if (free_head_ != kNull) {
      h = free_head_;
      free_head_ = next_[h];
      slot(h) = T{};
      ++pool_hits_;
      DTN_COUNT(kBundlePoolHits);
    } else {
      if (size_ == slabs_.size() * slab_capacity_) {
        slabs_.emplace_back(std::make_unique<T[]>(slab_capacity_));
      }
      h = static_cast<Handle>(size_++);
      next_.push_back(kNull);
      live_.push_back(0);
    }
    DTN_CHECK(!live_[h], "acquired bundle-pool slot must be dead");
    live_[h] = 1;
    next_[h] = kNull;
    ++live_count_;
    return h;
  }

  /// Returns a slot to the free list. Releasing a dead (or never acquired)
  /// handle is a contract violation: the slot would enter the free list
  /// twice and two bundles would later alias one slot.
  void release(Handle h) {
    DTN_CHECK(h < size_, "bundle-pool release of an out-of-range handle");
    DTN_CHECK(live_[h], "bundle-pool double release");
    live_[h] = 0;
    next_[h] = free_head_;
    free_head_ = h;
    --live_count_;
  }

  T& get(Handle h) {
    DTN_CHECK(h < size_ && live_[h], "bundle-pool access to a dead slot");
    return slot(h);
  }
  const T& get(Handle h) const {
    DTN_CHECK(h < size_ && live_[h], "bundle-pool access to a dead slot");
    return slot(h);
  }

  /// Intrusive chain link of a live slot (kNull-terminated).
  Handle next(Handle h) const { return next_[h]; }
  void set_next(Handle h, Handle n) { next_[h] = n; }

  std::size_t live() const { return live_count_; }
  std::size_t capacity() const { return slabs_.size() * slab_capacity_; }

  /// Slots served from the free list instead of fresh slab storage.
  std::uint64_t pool_hits() const { return pool_hits_; }

 private:
  T& slot(Handle h) { return slabs_[h / slab_capacity_][h % slab_capacity_]; }
  const T& slot(Handle h) const {
    return slabs_[h / slab_capacity_][h % slab_capacity_];
  }

  std::size_t slab_capacity_;
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<Handle> next_;        ///< chain link (live) / free link (dead)
  std::vector<std::uint8_t> live_;  ///< double-release / stale-handle guard
  Handle free_head_ = kNull;
  std::size_t size_ = 0;
  std::size_t live_count_ = 0;
  std::uint64_t pool_hits_ = 0;
};

/// FIFO chain of pooled slots: the SoA replacement for a per-node
/// std::vector of in-flight bundles. Keeps insertion order (append at the
/// tail, iterate head to tail), which the exchange logic depends on for
/// bit-identical replay of the legacy vector path.
template <typename T>
struct BundleChain {
  using Handle = typename SlabPool<T>::Handle;
  Handle head = SlabPool<T>::kNull;
  Handle tail = SlabPool<T>::kNull;
  std::size_t size = 0;

  bool empty() const { return size == 0; }

  /// Appends an already acquired slot (relinks it at the tail).
  void append(SlabPool<T>& pool, Handle h) {
    pool.set_next(h, SlabPool<T>::kNull);
    if (tail == SlabPool<T>::kNull) {
      head = h;
    } else {
      pool.set_next(tail, h);
    }
    tail = h;
    ++size;
  }

  /// Acquires a slot, copies `value` into it and appends it.
  Handle push_back(SlabPool<T>& pool, const T& value) {
    const Handle h = pool.acquire();
    pool.get(h) = value;
    append(pool, h);
    return h;
  }

  /// Releases every slot back to the pool and empties the chain.
  void clear(SlabPool<T>& pool) {
    Handle h = head;
    while (h != SlabPool<T>::kNull) {
      const Handle next = pool.next(h);
      pool.release(h);
      h = next;
    }
    head = tail = SlabPool<T>::kNull;
    size = 0;
  }
};

}  // namespace dtn

// Deterministic pseudo-random number generation for reproducible simulations.
//
// We use xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, rather
// than std::mt19937, because it is faster, has a tiny state, and — unlike the
// standard distributions — the sampling helpers below are guaranteed to be
// bit-reproducible across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dtn {

/// Deterministically derives an independent seed for stream `stream` from a
/// base seed: one SplitMix64 step over `base + (stream + 1) * golden-ratio`.
/// Used to give every sweep cell / repetition its own RNG stream as a pure
/// function of its grid index, so results never depend on the draw order of
/// a shared stream (and therefore not on thread scheduling either).
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

/// xoshiro256++ engine with SplitMix64 seeding.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions when exact reproducibility across platforms is not
/// required.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed sample with the given rate (mean 1/rate).
  /// Requires rate > 0.
  double exponential(double rate);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Pareto-distributed sample with scale x_m > 0 and shape alpha > 0.
  /// Used to draw heterogeneous node popularity weights.
  double pareto(double x_m, double alpha);

  /// Standard normal via Box-Muller (two uniforms per pair, cached).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with non-negative weights summing > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful to give each node or
  /// each repetition its own stream without correlation.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dtn

#include "common/table.h"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace dtn {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void TextTable::begin_row() { rows_.emplace_back(); }

void TextTable::add_cell(std::string value) {
  assert(!rows_.empty());
  assert(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(value));
}

void TextTable::add_number(double value, int precision) {
  add_cell(format_double(value, precision));
}

void TextTable::add_integer(long long value) {
  add_cell(std::to_string(value));
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "| " : " ");
      out << std::setw(static_cast<int>(widths[c])) << std::right << cell << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ",";
      out << cells[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string format_duration(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  if (seconds < 60.0) {
    out << seconds << "s";
  } else if (seconds < 3600.0) {
    out << seconds / 60.0 << "m";
  } else if (seconds < 86400.0) {
    out << seconds / 3600.0 << "h";
  } else {
    out << seconds / 86400.0 << "d";
  }
  return out.str();
}

}  // namespace dtn

// Deterministic parallel execution for embarrassingly parallel loops.
//
// The simulator's hot layers — per-root opportunistic-path tables, NCL
// metrics, experiment repetitions, sweep cells — are grids of independent
// computations. This module provides a fixed-size thread pool and a
// `parallel_for(threads, n, fn)` primitive that runs `fn(0..n-1)` on the
// pool, plus index-ordered map/reduce helpers so results are collected in
// index order regardless of completion order. Determinism contract: every
// item computes from its index alone (no shared mutable state, no
// shared-stream RNG draws), and reductions fold in index order, so output
// is bit-identical for any thread count, 1 included.
//
// Nested use is safe: a parallel_for issued from inside a pool task runs
// inline on the calling worker (no new threads, no deadlock), which keeps
// e.g. a parallel sweep whose cells themselves call parallel NCL selection
// from oversubscribing the machine.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <condition_variable>

namespace dtn {

/// Resolves a thread-count knob: 0 = hardware_concurrency (min 1),
/// n > 0 = exactly n, negative = error.
int resolve_threads(int threads);

/// Fixed-size pool of worker threads executing indexed loop batches.
///
/// One batch runs at a time; concurrent external submitters serialize.
/// The submitting thread participates in the batch, so a pool constructed
/// for `threads` total concurrency spawns `threads - 1` workers.
class ThreadPool {
 public:
  /// `threads` = total desired concurrency (0 = hardware_concurrency).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers + the participating caller.
  int thread_count() const;

  /// Runs fn(i) for every i in [0, n), blocking until all items complete.
  /// At most `thread_count()` items execute concurrently. If any item
  /// throws, the remaining items still run and the exception thrown by the
  /// lowest index is rethrown here (deterministic regardless of schedule).
  /// Called from inside a pool task, runs inline on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Same, with concurrency additionally capped at `max_threads`; grows the
  /// pool (up to an internal bound) when it has fewer workers than needed.
  void parallel_for_capped(std::size_t n,
                           const std::function<void(std::size_t)>& fn,
                           int max_threads);

  /// True on threads currently executing a pool item (workers, and callers
  /// while they participate in their own batch).
  static bool in_worker();

 private:
  void worker_loop(std::uint64_t start_generation);
  void run_items(const std::function<void(std::size_t)>& fn, std::size_t n);
  void grow_to_locked(int threads);

  // Serializes external submitters and pool growth.
  std::mutex submit_mutex_;

  // Guards everything below.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t batch_size_ = 0;
  std::size_t worker_cap_ = 0;  ///< workers allowed into the current batch
  std::size_t active_ = 0;      ///< workers not yet done with the batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;

  // Batch progress, shared lock-free by participants.
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> entered_{0};
};

/// Process-wide shared pool (grows on demand). All library-level
/// parallel_for calls go through it so nested layers share one set of
/// threads instead of multiplying them.
ThreadPool& global_pool();

/// Runs fn(i) for i in [0, n) with the given concurrency knob
/// (resolve_threads semantics; 1 = plain serial loop, bit-for-bit the
/// legacy path). Nested calls from pool workers run inline.
void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Deterministic map: out[i] = fn(i), computed in parallel, returned in
/// index order regardless of completion order. The element type needs no
/// default constructor.
template <typename Fn>
auto parallel_map(int threads, std::size_t n, Fn&& fn) {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<std::optional<R>> slots(n);
  parallel_for(threads, n,
               [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Deterministic reduction: maps in parallel, folds serially in index
/// order — the result is independent of thread count even for
/// non-associative folds (floating-point accumulation included).
template <typename T, typename Fn, typename Fold>
T parallel_reduce(int threads, std::size_t n, T init, Fn&& map, Fold&& fold) {
  auto mapped = parallel_map(threads, n, std::forward<Fn>(map));
  T acc = std::move(init);
  for (auto& value : mapped) acc = fold(std::move(acc), std::move(value));
  return acc;
}

}  // namespace dtn

#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace dtn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double gini(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double total = std::accumulate(samples.begin(), samples.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const double n = static_cast<double>(samples.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    weighted += static_cast<double>(i + 1) * samples[i];
  }
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_high(std::size_t bucket) const {
  return bucket_low(bucket + 1);
}

std::string Histogram::to_string(std::size_t max_bar_width) const {
  std::ostringstream out;
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out.setf(std::ios::fixed);
    out.precision(4);
    out << "[" << bucket_low(b) << ", " << bucket_high(b) << ") ";
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * max_bar_width / peak;
    for (std::size_t i = 0; i < bar; ++i) out << '#';
    out << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace dtn

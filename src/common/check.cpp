#include "common/check.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dtn::internal {
namespace {

[[noreturn]] void fail(const char* file, int line, const char* invariant,
                       const char* details_fmt, double v1, double v2,
                       int value_count) {
  std::fflush(stdout);
  std::fprintf(stderr, "DTN_CHECK failed at %s:%d: %s", file, line, invariant);
  if (value_count == 1) {
    std::fprintf(stderr, details_fmt, v1);
  } else if (value_count == 2) {
    std::fprintf(stderr, details_fmt, v1, v2);
  } else if (details_fmt != nullptr) {
    std::fprintf(stderr, ": %s", details_fmt);
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void check_failed(const char* file, int line, const char* invariant,
                  const char* details) {
  fail(file, line, invariant, details, 0.0, 0.0, 0);
}

void check_failed_value(const char* file, int line, const char* invariant,
                        double value) {
  fail(file, line, invariant, ": value = %.17g", value, 0.0, 1);
}

void check_failed_cmp(const char* file, int line, const char* invariant,
                      double lhs, double rhs) {
  fail(file, line, invariant, ": %.17g vs %.17g", lhs, rhs, 2);
}

bool is_probability(double x) {
  return std::isfinite(x) && x >= 0.0 && x <= 1.0;
}

bool is_finite(double x) { return std::isfinite(x); }

}  // namespace dtn::internal

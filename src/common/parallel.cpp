#include "common/parallel.h"

#include <algorithm>

namespace dtn {
namespace {

// True while the current thread is executing pool items (worker threads
// permanently; submitting threads during their own batch). parallel_for
// consults it to run nested loops inline instead of deadlocking on the
// one-batch-at-a-time pool.
thread_local bool tls_in_worker = false;

// Hard bound on pool growth: determinism never depends on thread count, so
// the cap only limits resource usage for absurd knob values.
constexpr std::size_t kMaxWorkers = 256;

class InWorkerScope {
 public:
  InWorkerScope() { tls_in_worker = true; }
  ~InWorkerScope() { tls_in_worker = false; }
};

}  // namespace

int resolve_threads(int threads) {
  if (threads < 0) throw std::invalid_argument("threads must be >= 0");
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  std::lock_guard<std::mutex> submit(submit_mutex_);
  grow_to_locked(resolve_threads(threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size()) + 1;
}

bool ThreadPool::in_worker() { return tls_in_worker; }

void ThreadPool::grow_to_locked(int threads) {
  // Caller holds submit_mutex_, which also serializes pool growth.
  const std::size_t want = std::min<std::size_t>(
      kMaxWorkers, static_cast<std::size_t>(std::max(0, threads - 1)));
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < want) {
    // A worker spawned mid-stream must not mistake the previous, already
    // finished batch for new work, so it starts at the current generation.
    workers_.emplace_back(
        [this, gen = generation_] { worker_loop(gen); });
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_capped(n, fn, thread_count());
}

void ThreadPool::parallel_for_capped(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    int max_threads) {
  if (n == 0) return;
  if (tls_in_worker || n == 1 || max_threads <= 1) {
    // Serial path: ascending order, first exception propagates directly
    // (which is also the lowest-index one).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  grow_to_locked(max_threads);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (workers_.empty()) {
      // Growth capped out at zero workers (threads == 1 pool): run inline.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    task_ = &fn;
    batch_size_ = n;
    worker_cap_ = std::min<std::size_t>(
        workers_.size(), static_cast<std::size_t>(max_threads - 1));
    next_.store(0, std::memory_order_relaxed);
    entered_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    error_index_ = n;
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  {
    // The submitter works the batch too, flagged as a worker so nested
    // parallel_for calls from fn run inline.
    InWorkerScope scope;
    run_items(fn, n);
  }

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    task_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::uint64_t start_generation) {
  tls_in_worker = true;
  std::uint64_t seen = start_generation;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* fn = task_;
    const std::size_t n = batch_size_;
    const std::size_t cap = worker_cap_;
    lock.unlock();
    // The cap admits only the first `cap` workers so a smaller requested
    // thread count is honored on a larger shared pool.
    if (entered_.fetch_add(1, std::memory_order_relaxed) < cap) {
      run_items(*fn, n);
    }
    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_items(const std::function<void(std::size_t)>& fn,
                           std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_ || i < error_index_) {
        error_ = std::current_exception();
        error_index_ = i;
      }
    }
  }
}

ThreadPool& global_pool() {
  // Starts with zero workers and grows to each request's cap, so programs
  // that never ask for parallelism never spawn a thread.
  static ThreadPool pool(1);
  return pool;
}

void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  const int t = resolve_threads(threads);
  if (t <= 1 || n <= 1 || ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  global_pool().parallel_for_capped(n, fn, t);
}

}  // namespace dtn

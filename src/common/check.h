// Invariant contracts for the paper's numerically delicate quantities.
//
// The reproduction's core claims (Eqs. 1-7 of Gao et al.) live in code where
// a silent NaN, a probability outside [0,1] or a buffer-capacity overrun
// corrupts results without failing any test. These macros compile the
// paper's invariants into the default build (including RelWithDebInfo, where
// plain assert() is stripped); a violation aborts immediately with a message
// naming the invariant and its source location. Define DTN_NDEBUG_CHECKS
// (CMake option of the same name) to strip them from bench builds.
//
//   DTN_CHECK(cond)              — generic invariant
//   DTN_CHECK(cond, "message")   — generic invariant with a description
//   DTN_CHECK_PROB(x)            — x is a probability: finite and in [0, 1]
//   DTN_CHECK_FINITE(x)          — x is finite (no NaN / infinity)
//   DTN_CHECK_LE(a, b)           — a <= b, both values printed on failure
//   DTN_CHECK_GE(a, b)           — a >= b, both values printed on failure
//
// All macros are statements (not expressions) and evaluate each argument
// exactly once when enabled, zero times when stripped.
#pragma once

#include <cstdint>

namespace dtn::internal {

/// Prints "DTN_CHECK failed at <file>:<line>: <invariant>[: <details>]" to
/// stderr and aborts. Never returns; never throws (a broken invariant means
/// the simulation state is already untrustworthy, so unwinding past it would
/// only let corrupted results escape).
[[noreturn]] void check_failed(const char* file, int line,
                               const char* invariant, const char* details);

/// check_failed with "value = <v>" detail formatting.
[[noreturn]] void check_failed_value(const char* file, int line,
                                     const char* invariant, double value);

/// check_failed with "<a> vs <b>" detail formatting for binary comparisons.
[[noreturn]] void check_failed_cmp(const char* file, int line,
                                   const char* invariant, double lhs,
                                   double rhs);

/// True when x is finite and 0 <= x <= 1; false for NaN.
bool is_probability(double x);

/// True when x is finite (std::isfinite without pulling <cmath> into every
/// instrumented header).
bool is_finite(double x);

}  // namespace dtn::internal

#if defined(DTN_NDEBUG_CHECKS)

#define DTN_CHECK_1(cond) ((void)0)
#define DTN_CHECK_2(cond, msg) ((void)0)
#define DTN_CHECK_PROB(x) ((void)0)
#define DTN_CHECK_FINITE(x) ((void)0)
#define DTN_CHECK_LE(a, b) ((void)0)
#define DTN_CHECK_GE(a, b) ((void)0)

#else  // checks enabled (the default, in every build type)

#define DTN_CHECK_1(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dtn::internal::check_failed(__FILE__, __LINE__, #cond, nullptr);    \
    }                                                                       \
  } while (false)

#define DTN_CHECK_2(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dtn::internal::check_failed(__FILE__, __LINE__, #cond, (msg));      \
    }                                                                       \
  } while (false)

#define DTN_CHECK_PROB(x)                                                   \
  do {                                                                      \
    const double dtn_check_v_ = static_cast<double>(x);                     \
    if (!::dtn::internal::is_probability(dtn_check_v_)) {                   \
      ::dtn::internal::check_failed_value(                                  \
          __FILE__, __LINE__, #x " is a probability in [0, 1]",             \
          dtn_check_v_);                                                    \
    }                                                                       \
  } while (false)

#define DTN_CHECK_FINITE(x)                                                 \
  do {                                                                      \
    const double dtn_check_v_ = static_cast<double>(x);                     \
    if (!::dtn::internal::is_finite(dtn_check_v_)) {                        \
      ::dtn::internal::check_failed_value(__FILE__, __LINE__,               \
                                          #x " is finite", dtn_check_v_);   \
    }                                                                       \
  } while (false)

#define DTN_CHECK_LE(a, b)                                                  \
  do {                                                                      \
    const auto dtn_check_a_ = (a);                                          \
    const auto dtn_check_b_ = (b);                                          \
    if (!(dtn_check_a_ <= dtn_check_b_)) {                                  \
      ::dtn::internal::check_failed_cmp(                                    \
          __FILE__, __LINE__, #a " <= " #b,                                 \
          static_cast<double>(dtn_check_a_),                                \
          static_cast<double>(dtn_check_b_));                               \
    }                                                                       \
  } while (false)

#define DTN_CHECK_GE(a, b)                                                  \
  do {                                                                      \
    const auto dtn_check_a_ = (a);                                          \
    const auto dtn_check_b_ = (b);                                          \
    if (!(dtn_check_a_ >= dtn_check_b_)) {                                  \
      ::dtn::internal::check_failed_cmp(                                    \
          __FILE__, __LINE__, #a " >= " #b,                                 \
          static_cast<double>(dtn_check_a_),                                \
          static_cast<double>(dtn_check_b_));                               \
    }                                                                       \
  } while (false)

#endif  // DTN_NDEBUG_CHECKS

// DTN_CHECK(cond) / DTN_CHECK(cond, msg) dispatch.
#define DTN_CHECK_GET_3RD(a, b, c, ...) c
#define DTN_CHECK(...) \
  DTN_CHECK_GET_3RD(__VA_ARGS__, DTN_CHECK_2, DTN_CHECK_1)(__VA_ARGS__)

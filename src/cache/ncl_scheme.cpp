// SimEngine::kFast implementation. Every protocol decision, and the order
// of every RNG draw, mirrors cache/ncl_scheme_reference.cpp line for line —
// only where state lives changed (SoA NodeStore, pooled bundle chains,
// reusable workspaces). When editing, keep the two files in lockstep or
// tests/engine_golden_test.cpp will fail on the first diverging draw.
#include "cache/ncl_scheme.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn {

void NclCachingScheme::ContactWorkspace::begin_contact() {
  DTN_CHECK(!active_,
            "contact workspace reuse across contacts: begin_contact before "
            "the previous contact's end_contact");
  active_ = true;
  if (used_) DTN_COUNT(kContactWorkspaceReuses);
  used_ = true;
}

void NclCachingScheme::ContactWorkspace::end_contact() {
  DTN_CHECK(active_, "end_contact without a matching begin_contact");
  active_ = false;
}

void NclCachingScheme::NodeStore::resize(std::size_t n) {
  buffer.resize(n);
  entries.resize(n);
  gds_l.assign(n, 0.0);
  history.resize(n);
  push_tokens.resize(n);
  query_copies.resize(n);
  responses.resize(n);
  seen_queries.resize(n);
  responded.resize(n);
  seen_order.resize(n);
  next_expiry.assign(n, kNever);
  central_counts.resize(n);
}

NclCachingScheme::NclCachingScheme(NclSchemeConfig config)
    : config_(std::move(config)) {
  if (config_.central_nodes.empty()) {
    throw std::invalid_argument("NCL scheme needs at least one central node");
  }
  if (config_.buffer_capacity.empty()) {
    throw std::invalid_argument("per-node buffer capacities required");
  }
  store_.resize(config_.buffer_capacity.size());
  for (std::size_t i = 0; i < store_.size(); ++i) {
    if (config_.buffer_capacity[i] < 0) {
      throw std::invalid_argument("negative buffer capacity");
    }
    store_.buffer[i] = CacheBuffer(config_.buffer_capacity[i]);
  }
  for (NodeId c : config_.central_nodes) {
    if (c < 0 || static_cast<std::size_t>(c) >= store_.size()) {
      throw std::invalid_argument("central node id out of range");
    }
  }
  is_central_.assign(store_.size(), 0);
  for (NodeId c : config_.central_nodes) {
    is_central_[static_cast<std::size_t>(c)] = 1;
  }
}

void NclCachingScheme::on_start(SimServices& services) { (void)services; }

std::size_t NclCachingScheme::index(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  if (node < 0 || i >= store_.size()) {
    throw std::out_of_range("node id out of range");
  }
  return i;
}

bool NclCachingScheme::is_central(NodeId node) const {
  const auto i = static_cast<std::size_t>(node);
  return node >= 0 && i < is_central_.size() && is_central_[i] != 0;
}

void NclCachingScheme::note_expiry(std::size_t node, Time expires) {
  if (expires < store_.next_expiry[node]) store_.next_expiry[node] = expires;
}

void NclCachingScheme::central_count_add(std::size_t node, NodeId central,
                                         int delta) {
  auto& counts = store_.central_counts[node];
  for (auto& [c, n] : counts) {
    if (c == central) {
      n += delta;
      DTN_CHECK_GE(n, 0);
      return;
    }
  }
  DTN_CHECK_GE(delta, 0);
  counts.emplace_back(central, delta);
}

std::int32_t NclCachingScheme::central_count(std::size_t node,
                                             NodeId central) const {
  for (const auto& [c, n] : store_.central_counts[node]) {
    if (c == central) return n;
  }
  return 0;
}

void NclCachingScheme::put_entry(SimServices& services, std::size_t node,
                                 DataId id, const CacheEntry& entry) {
  const bool inserted = store_.entries[node].emplace(id, entry).second;
  DTN_CHECK(inserted, "cache entry insert must be fresh");
  central_count_add(node, entry.central, +1);
  note_expiry(node, services.data(id).expires);
}

bool NclCachingScheme::drop_entry(std::size_t node, DataId id) {
  auto& entries = store_.entries[node];
  const auto it = entries.find(id);
  if (it == entries.end()) return false;
  store_.buffer[node].erase(id);
  central_count_add(node, it->second.central, -1);
  entries.erase(it);
  return true;
}

double NclCachingScheme::popularity_of(SimServices& services, NodeId node,
                                       DataId data) const {
  const auto& history = store_.history[static_cast<std::size_t>(node)];
  const auto it = history.find(data);
  if (it == history.end()) return 0.0;
  return it->second.popularity(services.now(), services.data(data).expires);
}

bool NclCachingScheme::holds_data(NodeId node, DataId data, Time now) const {
  const auto ni = static_cast<std::size_t>(node);
  const auto& entries = store_.entries[ni];
  const auto it = entries.find(data);
  return it != entries.end() && store_.buffer[ni].contains(data) &&
         it->second.size > 0 && now >= 0.0;  // entry presence implies liveness
}

bool NclCachingScheme::node_caches(NodeId node, DataId data) const {
  return store_.entries[index(node)].contains(data);
}

bool NclCachingScheme::check_invariants(const DataRegistry& registry) const {
  for (std::size_t node = 0; node < store_.size(); ++node) {
    const auto& entries = store_.entries[node];
    const CacheBuffer& buffer = store_.buffer[node];
    if (buffer.used() > buffer.capacity()) return false;
    Bytes entry_bytes = 0;
    for (const auto& [id, entry] : entries) {
      if (!buffer.contains(id)) return false;
      if (buffer.size_of(id) != entry.size) return false;
      if (registry.get(id).size != entry.size) return false;
      entry_bytes += entry.size;
      // The earliest-expiry bound must never exceed the expiry of anything
      // the node holds, or prune scans would be skipped past real work.
      if (store_.next_expiry[node] > registry.get(id).expires) return false;
    }
    if (entry_bytes != buffer.used()) return false;
    // The per-(node, central) counts drive NCL-membership tests; they must
    // agree exactly with the entry map.
    for (const auto& [central, count] : store_.central_counts[node]) {
      std::int32_t actual = 0;
      for (const auto& [id, entry] : entries) {
        if (entry.central == central) ++actual;
      }
      if (actual != count) return false;
    }
    for (const auto& [central, count] : store_.central_counts[node]) {
      if (count < 0) return false;
    }
    for (const auto& [id, estimator] : store_.history[node]) {
      if (store_.next_expiry[node] > registry.get(id).expires) return false;
    }
    for (auto h = store_.push_tokens[node].head;
         h != SlabPool<PushToken>::kNull; h = token_pool_.next(h)) {
      if (store_.next_expiry[node] > registry.get(token_pool_.get(h).data).expires) {
        return false;
      }
    }
    for (auto h = store_.query_copies[node].head;
         h != SlabPool<QueryCopy>::kNull; h = query_pool_.next(h)) {
      if (store_.next_expiry[node] > query_pool_.get(h).query.expires) {
        return false;
      }
    }
    for (auto h = store_.responses[node].head;
         h != SlabPool<ResponseBundle>::kNull; h = response_pool_.next(h)) {
      if (store_.next_expiry[node] > response_pool_.get(h).query.expires) {
        return false;
      }
    }
    // Note: a push token's holder *usually* caches the item, but cache
    // replacement may migrate the entry to a peer while the token stays —
    // the token then re-establishes a copy at its next forwarding step, so
    // token/entry co-location is intentionally NOT an invariant.
  }
  return true;
}

std::size_t NclCachingScheme::push_tokens_in_flight() const {
  std::size_t count = 0;
  for (const auto& chain : store_.push_tokens) count += chain.size;
  return count;
}

void NclCachingScheme::on_data_generated(SimServices& services,
                                         const DataItem& item) {
  const std::size_t si = index(item.source);
  // The source holds its item natively for the item's lifetime; push tokens
  // carry copies towards every central node. If the source *is* a central
  // node, its copy settles immediately.
  for (NodeId c : config_.central_nodes) {
    if (c == item.source) {
      if (store_.buffer[si].insert(item.id, item.size)) {
        put_entry(services, si, item.id,
                  make_entry(services, item.source, item.size, c, false));
      }
      continue;
    }
    store_.push_tokens[si].push_back(token_pool_, PushToken{item.id, c});
    note_expiry(si, item.expires);
  }
}

void NclCachingScheme::note_query_seen(SimServices& services, NodeId node,
                                       const Query& query) {
  const std::size_t ni = index(node);
  if (store_.seen_queries[ni].contains(query.id)) return;
  store_.seen_queries[ni].insert(query.id);
  store_.seen_order[ni].push_back(query.id);
  while (store_.seen_order[ni].size() > config_.max_tracked_queries) {
    const QueryId evicted = store_.seen_order[ni].front();
    store_.seen_order[ni].pop_front();
    store_.seen_queries[ni].erase(evicted);
    store_.responded[ni].erase(evicted);
  }
  store_.history[ni][query.data].record_request(query.issued);
  // History entries expire with their data item, so the node's expiry
  // bound must cover the item's lifetime, not the query's.
  note_expiry(ni, services.data(query.data).expires);
}

void NclCachingScheme::maybe_respond(SimServices& services, NodeId node,
                                     const Query& query) {
  const Time now = services.now();
  if (!query.alive(now)) return;
  const std::size_t ni = index(node);
  if (store_.responded[ni].contains(query.id)) return;

  const DataItem& item = services.data(query.data);
  if (!item.alive(now)) return;
  const bool cached = holds_data(node, query.data, now);
  const bool native = item.source == node;
  if (!cached && !native) return;  // no copy to return; no decision yet

  store_.responded[ni].insert(query.id);

  // Refresh recency / GDS value for the traditional replacement policies.
  if (auto it = store_.entries[ni].find(query.data);
      it != store_.entries[ni].end()) {
    it->second.last_access = now;
    it->second.h_value =
        store_.gds_l[ni] + popularity_of(services, node, query.data) /
                               (static_cast<double>(it->second.size) / (1 << 20));
  }

  double probability = 1.0;
  switch (config_.response_mode) {
    case ResponseMode::kAlways:
      probability = 1.0;
      break;
    case ResponseMode::kSigmoid:
      probability = config_.sigmoid.probability(query.remaining(now),
                                                query.time_constraint());
      break;
    case ResponseMode::kPathWeight:
      probability = services.paths().empty()
                        ? 0.0
                        : services.paths().weight_at(node, query.requester,
                                                     query.remaining(now));
      break;
  }
  // The reply probability feeding the Bernoulli draw must be a genuine
  // probability whichever response mode produced it (Eq. 4 / path weight).
  DTN_CHECK_PROB(probability);
  if (!services.rng().bernoulli(probability)) return;

  store_.responses[ni].push_back(response_pool_, ResponseBundle{query, item.size});
  note_expiry(ni, query.expires);
  ++responses_sent_;
}

void NclCachingScheme::on_query(SimServices& services, const Query& query) {
  NodeId requester = query.requester;
  note_query_seen(services, requester, query);

  // Local hit: the requester happens to cache the data already.
  if (holds_data(requester, query.data, services.now())) {
    services.deliver(query);
    satisfied_.insert(query.id);
    return;
  }

  // Multicast one routed copy per central node (Sec. V-B).
  const std::size_t ri = index(requester);
  for (NodeId c : config_.central_nodes) {
    QueryCopy copy{query, c, /*broadcast=*/false};
    if (c == requester) {
      copy.broadcast = true;  // the requester is a central node itself
      maybe_respond(services, requester, query);
    }
    store_.query_copies[ri].push_back(query_pool_, copy);
  }
  note_expiry(ri, query.expires);
}

void NclCachingScheme::transfer_direction(SimServices& services, NodeId from,
                                          NodeId to, LinkBudget& budget) {
  const Time now = services.now();
  const std::size_t fi = index(from);
  const std::size_t ti = index(to);

  // ---- 1. Responses: cached data returning to requesters. ----
  {
    BundleChain<ResponseBundle> kept;
    auto h = store_.responses[fi].head;
    store_.responses[fi] = BundleChain<ResponseBundle>{};
    while (h != SlabPool<ResponseBundle>::kNull) {
      const auto next = response_pool_.next(h);
      ResponseBundle& response = response_pool_.get(h);
      const Query& q = response.query;
      if (!q.alive(now) || !services.data(q.data).alive(now)) {
        response_pool_.release(h);  // drop
      } else if (to == q.requester) {
        if (budget.consume(response.size)) {
          services.count_bytes(response.size);
          services.deliver(q);
          satisfied_.insert(q.id);
          ++counters_.responses_delivered;
          response_pool_.release(h);  // delivered: bundle consumed
        } else {
          kept.append(response_pool_, h);
        }
      } else {
        const double w_to = services.path_weight(to, q.requester);
        const double w_from = services.path_weight(from, q.requester);
        if (w_to > w_from && budget.consume(response.size)) {
          services.count_bytes(response.size);
          note_expiry(ti, q.expires);
          store_.responses[ti].append(response_pool_, h);  // moved
        } else {
          kept.append(response_pool_, h);
        }
      }
      h = next;
    }
    store_.responses[fi] = kept;
  }

  // ---- 2. Query copies: routed towards centrals / broadcast in NCLs. ----
  {
    BundleChain<QueryCopy> kept;
    auto h = store_.query_copies[fi].head;
    store_.query_copies[fi] = BundleChain<QueryCopy>{};
    while (h != SlabPool<QueryCopy>::kNull) {
      const auto next = query_pool_.next(h);
      QueryCopy& copy = query_pool_.get(h);
      const Query& q = copy.query;
      if (!q.alive(now)) {
        query_pool_.release(h);  // expired: drop
        h = next;
        continue;
      }

      if (!copy.broadcast) {
        // Routed phase: ride the gradient towards the central node.
        bool forwarded = false;
        if (to == copy.central) {
          if (budget.consume(kQueryBytes)) {
            services.count_bytes(kQueryBytes);
            note_query_seen(services, to, q);
            maybe_respond(services, to, q);
            copy.broadcast = true;  // central starts the NCL broadcast
            ++counters_.queries_reached_central;
            note_expiry(ti, q.expires);
            store_.query_copies[ti].append(query_pool_, h);
            forwarded = true;
          }
        } else if (services.path_weight(to, copy.central) >
                       services.path_weight(from, copy.central) &&
                   budget.consume(kQueryBytes)) {
          services.count_bytes(kQueryBytes);
          note_query_seen(services, to, q);
          maybe_respond(services, to, q);
          note_expiry(ti, q.expires);
          store_.query_copies[ti].append(query_pool_, h);
          forwarded = true;
        }
        if (!forwarded) kept.append(query_pool_, h);
        h = next;
        continue;
      }

      // Broadcast phase: replicate to caching members of this NCL. The
      // per-(node, central) entry counts answer membership in O(K)
      // instead of the legacy any_of scan over the whole entry map.
      const bool member =
          to == copy.central || central_count(ti, copy.central) > 0;
      if (member && !store_.seen_queries[ti].contains(q.id) &&
          budget.consume(kQueryBytes)) {
        services.count_bytes(kQueryBytes);
        note_query_seen(services, to, q);
        maybe_respond(services, to, q);
        note_expiry(ti, q.expires);
        store_.query_copies[ti].push_back(query_pool_, copy);  // replicate
      }
      kept.append(query_pool_, h);  // keep local copy
      h = next;
    }
    store_.query_copies[fi] = kept;
  }

  // ---- 3. Push tokens: data copies towards central nodes. ----
  {
    BundleChain<PushToken> kept;
    auto h = store_.push_tokens[fi].head;
    store_.push_tokens[fi] = BundleChain<PushToken>{};
    while (h != SlabPool<PushToken>::kNull) {
      const auto next = token_pool_.next(h);
      const PushToken token = token_pool_.get(h);
      const DataItem& item = services.data(token.data);
      if (!item.alive(now)) {
        // Expired in flight: drop token and any in-transit cached copy.
        ++counters_.tokens_expired;
        token_pool_.release(h);
        h = next;
        continue;
      }
      const double w_to = services.path_weight(to, token.central);
      const double w_from = services.path_weight(from, token.central);
      if (!(w_to > w_from)) {
        kept.append(token_pool_, h);
        h = next;
        continue;
      }

      auto release_source_copy = [&]() {
        // The relay deletes its own copy after forwarding (Sec. V-A) —
        // unless another token (already kept or still pending in this
        // loop) needs it, or it has settled here. The kept chain and the
        // unprocessed remainder of the source chain are exactly the
        // legacy `kept` vector and pending suffix.
        const auto it = store_.entries[fi].find(token.data);
        if (it == store_.entries[fi].end() || !it->second.in_transit) return;
        bool needed = false;
        for (auto kh = kept.head; kh != SlabPool<PushToken>::kNull;
             kh = token_pool_.next(kh)) {
          if (token_pool_.get(kh).data == token.data) {
            needed = true;
            break;
          }
        }
        for (auto ph = next; !needed && ph != SlabPool<PushToken>::kNull;
             ph = token_pool_.next(ph)) {
          if (token_pool_.get(ph).data == token.data) needed = true;
        }
        if (needed) return;
        store_.buffer[fi].erase(token.data);
        central_count_add(fi, it->second.central, -1);
        store_.entries[fi].erase(it);
      };

      if (store_.entries[ti].contains(token.data)) {
        // The destination already caches this item. The central case means
        // this NCL is served: the copy settles and the token completes.
        // Otherwise the token WAITS at its current holder rather than
        // piling up: each of the K copies must occupy a distinct node, or
        // the correlated gradients towards the (all well-connected)
        // central nodes would herd every token onto the same hub and
        // collapse the K per-NCL copies into one cache entry.
        if (to == token.central) {
          store_.entries[ti].find(token.data)->second.in_transit = false;
          ++counters_.tokens_settled;
          ++counters_.token_hops;
          release_source_copy();
          token_pool_.release(h);
        } else {
          kept.append(token_pool_, h);
        }
        h = next;
        continue;
      }

      // Traditional replacement strategies (Fig. 12) evict at insertion
      // time to admit the pushed copy; the utility strategy never evicts
      // here — a full buffer stops the push instead.
      if (!store_.buffer[ti].fits(item.size) &&
          config_.strategy != CacheStrategy::kUtilityExchange) {
        evict_for(services, to, item);
      }

      if (store_.buffer[ti].fits(item.size)) {
        if (!budget.consume(item.size)) {
          kept.append(token_pool_, h);  // try again at a later contact
          h = next;
          continue;
        }
        services.count_bytes(item.size);
        const bool inserted = store_.buffer[ti].insert(token.data, item.size);
        DTN_CHECK(inserted, "push insert must succeed after fits() check");
        put_entry(services, ti, token.data,
                  make_entry(services, to, item.size, token.central,
                             to != token.central));
        ++counters_.token_hops;
        if (to != token.central) {
          note_expiry(ti, item.expires);
          store_.push_tokens[ti].append(token_pool_, h);
        } else {
          ++counters_.tokens_settled;
        }
        release_source_copy();
        if (to == token.central) token_pool_.release(h);
        h = next;
        continue;
      }

      // The next relay's buffer is full: forwarding stops here for now and
      // the data stays cached at the current relay (Fig. 5). The current
      // holder keeps serving as the temporal caching location — typically
      // in the ring around a saturated central node, which is precisely
      // how "multiple nodes at a NCL may be involved in caching". The
      // token survives, so the copy resumes migrating when a closer relay
      // with space appears (cache replacement also keeps consolidating
      // popular data inward in the meantime).
      ++counters_.tokens_stopped_full;
      if (!store_.entries[fi].contains(token.data)) {
        // The source holds only its native copy; park a cache copy here if
        // possible so the item is queryable at this NCL.
        if (store_.buffer[fi].insert(token.data, item.size)) {
          put_entry(services, fi, token.data,
                    make_entry(services, from, item.size, token.central, true));
        }
      }
      kept.append(token_pool_, h);
      h = next;
    }
    store_.push_tokens[fi] = kept;
  }
}

void NclCachingScheme::run_replacement(SimServices& services, NodeId a,
                                       NodeId b, LinkBudget& budget) {
  const std::size_t ai = index(a);
  const std::size_t bi = index(b);
  auto& ea = store_.entries[ai];
  auto& eb = store_.entries[bi];
  if (ea.empty() && eb.empty()) return;

  // One exchange per NCL: each NCL holds its own copy of a data item
  // ("one copy of data is cached at each NCL", Sec. V), so copies assigned
  // to different central nodes never merge — pooling them together would
  // collapse the K per-NCL copies into one and destroy data accessibility.
  // The per-(node, central) counts already know the distinct centrals, so
  // no entry-map walk is needed; sorting makes the set order-independent,
  // exactly like the legacy collect-then-sort.
  ws_.centrals.clear();
  auto add_centrals_from = [&](std::size_t ni) {
    for (const auto& [central, count] : store_.central_counts[ni]) {
      if (count <= 0) continue;
      if (std::find(ws_.centrals.begin(), ws_.centrals.end(), central) ==
          ws_.centrals.end()) {
        ws_.centrals.push_back(central);
      }
    }
  };
  add_centrals_from(ai);
  add_centrals_from(bi);
  std::sort(ws_.centrals.begin(), ws_.centrals.end());  // deterministic order

  bool any_pool = false;
  for (NodeId central : ws_.centrals) {
    std::size_t duplicates = 0;
    const double weight_a = services.path_weight(a, central);
    const double weight_b = services.path_weight(b, central);

    // Same NCL, same item cached at both nodes: genuinely redundant —
    // collapse to the copy at the node nearer this central.
    {
      ws_.shared.clear();
      for (auto it = ea.begin(); it != ea.end(); ++it) {
        if (it->second.central != central) continue;
        const auto jt = eb.find(it->first);
        if (jt != eb.end() && jt->second.central == central) {
          ws_.shared.push_back(it->first);
        }
      }
      for (DataId id : ws_.shared) {
        drop_entry(weight_a >= weight_b ? bi : ai, id);
        ++duplicates;
      }
    }

    // Pool the two nodes' copies belonging to this NCL; merge request
    // histories (tiny control data) so both sides agree on popularity.
    // ws_.original holds each pooled entry's metadata, parallel to
    // ws_.pool — the legacy original_entries/by_id maps collapsed into
    // index-aligned vectors (pools are small; lookups scan linearly).
    ws_.pool.clear();
    ws_.original.clear();
    auto collect = [&](std::size_t ni, bool at_a) {
      auto& na_history = store_.history[ai];
      auto& nb_history = store_.history[bi];
      auto& ns_entries = store_.entries[ni];
      for (auto it = ns_entries.begin(); it != ns_entries.end();) {
        const DataId id = it->first;
        if (it->second.central != central) {
          ++it;
          continue;
        }
        auto ha = na_history.find(id);
        auto hb = nb_history.find(id);
        if (ha != na_history.end() && hb != nb_history.end()) {
          ha->second.merge(hb->second);
          hb->second = ha->second;
        } else if (ha != na_history.end()) {
          nb_history[id] = ha->second;
          note_expiry(bi, services.data(id).expires);
        } else if (hb != nb_history.end()) {
          na_history[id] = hb->second;
          note_expiry(ai, services.data(id).expires);
        }
        ReplacementItem ri;
        ri.id = id;
        ri.size = it->second.size;
        ri.at_a = at_a;
        ri.popularity = popularity_of(services, at_a ? a : b, id);
        ws_.pool.push_back(ri);
        ws_.original.push_back(it->second);
        ++it;
      }
    };
    collect(ai, true);
    collect(bi, false);
    if (ws_.pool.empty()) continue;
    any_pool = true;
    // What the legacy path allocated per exchange for this pool (the
    // ReplacementItem vector plus the original_entries/by_id map nodes);
    // an estimate for the perf story, not an exact malloc ledger.
    DTN_COUNT_N(kSimBytesNotAllocated,
                ws_.pool.size() * (sizeof(ReplacementItem) +
                                   2 * sizeof(CacheEntry)));

    // Capacity available to this pool: free space plus the bytes the
    // pooled entries currently occupy at that node.
    auto pool_bytes_at = [&](bool at_a) {
      Bytes total = 0;
      for (const auto& item : ws_.pool) {
        if (item.at_a == at_a) total += item.size;
      }
      return total;
    };
    const Bytes capacity_a = store_.buffer[ai].free() + pool_bytes_at(true);
    const Bytes capacity_b = store_.buffer[bi].free() + pool_bytes_at(false);

    plan_replacement(ws_.pool, capacity_a, capacity_b, weight_a, weight_b,
                     config_.replacement, services.rng(), ws_.replan,
                     ws_.plan);

    // Apply: lift all pooled entries, then re-insert the keeps. In-place
    // keeps are free; moves cost link budget.
    for (const auto& item : ws_.pool) {
      drop_entry(item.at_a ? ai : bi, item.id);
    }

    std::size_t moved = 0;
    std::size_t dropped = ws_.plan.dropped.size() + duplicates;
    auto pool_index_of = [&](DataId id) {
      for (std::size_t i = 0; i < ws_.pool.size(); ++i) {
        if (ws_.pool[i].id == id) return i;
      }
      DTN_CHECK(false, "replacement plan references an item outside the pool");
      return std::size_t{0};
    };
    auto restore_at_origin = [&](std::size_t pi) {
      const ReplacementItem& item = ws_.pool[pi];
      const std::size_t origin = item.at_a ? ai : bi;
      if (store_.buffer[origin].insert(item.id, item.size)) {
        // Restore verbatim: an item that stays where it was keeps its
        // metadata — in particular a push-in-transit copy stays in
        // transit, so the relay still deletes it after forwarding.
        put_entry(services, origin, item.id, ws_.original[pi]);
        return true;
      }
      return false;
    };
    auto reinsert = [&](const std::vector<DataId>& keeps, bool to_a) {
      const std::size_t target = to_a ? ai : bi;
      const NodeId target_id = to_a ? a : b;
      for (DataId id : keeps) {
        const std::size_t pi = pool_index_of(id);
        const ReplacementItem& item = ws_.pool[pi];
        const bool moving = item.at_a != to_a;
        if (moving && !budget.consume(item.size)) {
          // No link budget to realize the move: keep it where it was.
          if (!restore_at_origin(pi)) ++dropped;
          continue;
        }
        if (moving) services.count_bytes(item.size);
        if (!store_.buffer[target].insert(id, item.size)) {
          // Should not happen (plan respects capacities); degrade gracefully.
          if (!restore_at_origin(pi)) ++dropped;
          continue;
        }
        if (moving) {
          put_entry(services, target, id,
                    make_entry(services, target_id, item.size, central, false));
          ++moved;
        } else {
          put_entry(services, target, id, ws_.original[pi]);
        }
      }
    };
    reinsert(ws_.plan.keep_at_a, true);
    reinsert(ws_.plan.keep_at_b, false);

    if (moved + dropped > 0) services.count_replacement(moved + dropped);
    DTN_COUNT_N(kBufferEvictions, dropped);
  }
  if (any_pool) ++replacement_exchanges_;
}

void NclCachingScheme::on_contact(SimServices& services, NodeId a, NodeId b,
                                  LinkBudget& budget) {
  ws_.begin_contact();
  // Bytes the legacy path's per-direction `kept` vector rebuilds would
  // have allocated for the bundles now relinked in place (estimate).
  DTN_COUNT_N(
      kSimBytesNotAllocated,
      (store_.responses[index(a)].size + store_.responses[index(b)].size) *
              sizeof(ResponseBundle) +
          (store_.query_copies[index(a)].size +
           store_.query_copies[index(b)].size) *
              sizeof(QueryCopy) +
          (store_.push_tokens[index(a)].size +
           store_.push_tokens[index(b)].size) *
              sizeof(PushToken));
  prune_node_with_registry(services, a);
  prune_node_with_registry(services, b);
  transfer_direction(services, a, b, budget);
  transfer_direction(services, b, a, budget);
  if (config_.enable_replacement &&
      config_.strategy == CacheStrategy::kUtilityExchange) {
    run_replacement(services, a, b, budget);
  }
  // Buffer occupancy <= capacity after every contact event: pushes, reply
  // forwarding and the knapsack exchange all charge the same byte budget.
  DTN_CHECK_LE(store_.buffer[index(a)].used(), store_.buffer[index(a)].capacity());
  DTN_CHECK_LE(store_.buffer[index(b)].used(), store_.buffer[index(b)].capacity());
  ws_.end_contact();
}

NclCachingScheme::CacheEntry NclCachingScheme::make_entry(
    SimServices& services, NodeId holder, Bytes size, NodeId central,
    bool in_transit) const {
  CacheEntry entry;
  entry.size = size;
  entry.central = central;
  entry.in_transit = in_transit;
  entry.inserted_at = services.now();
  entry.last_access = services.now();
  entry.h_value = store_.gds_l[static_cast<std::size_t>(holder)] +
                  0.0;  // popularity 0 at insertion (footnote 3)
  return entry;
}

bool NclCachingScheme::evict_for(SimServices& services, NodeId node,
                                 const DataItem& item) {
  const std::size_t ni = index(node);
  if (item.size > store_.buffer[ni].capacity()) return false;

  // Rank current entries by the active policy, cheapest victim first.
  ws_.ranked.clear();
  for (const auto& [id, entry] : store_.entries[ni]) {
    double key = 0.0;
    switch (config_.strategy) {
      case CacheStrategy::kFifo:
        key = entry.inserted_at;
        break;
      case CacheStrategy::kLru:
        key = entry.last_access;
        break;
      case CacheStrategy::kGds:
        key = entry.h_value;
        break;
      case CacheStrategy::kUtilityExchange:
        return store_.buffer[ni].fits(item.size);  // no insertion-time eviction
    }
    ws_.ranked.emplace_back(key, id);
  }
  std::sort(ws_.ranked.begin(), ws_.ranked.end());

  std::size_t evicted = 0;
  for (const auto& [key, victim] : ws_.ranked) {
    if (store_.buffer[ni].fits(item.size)) break;
    if (config_.strategy == CacheStrategy::kGds) store_.gds_l[ni] = key;  // aging
    drop_entry(ni, victim);
    ++evicted;
  }
  if (evicted > 0) {
    services.count_replacement(evicted);
    DTN_COUNT_N(kBufferEvictions, evicted);
  }
  return store_.buffer[ni].fits(item.size);
}

void NclCachingScheme::prune_node_with_registry(SimServices& services,
                                                NodeId node) {
  const Time now = services.now();
  const std::size_t ni = index(node);
  // Everything this node holds provably expires after `now`: the scan
  // below would erase nothing and mutate nothing — skip it. The bound is
  // lowered at every insert site and restored exactly by each full scan.
  if (now < store_.next_expiry[ni]) return;

  Time earliest = kNever;
  auto& entries = store_.entries[ni];
  for (auto it = entries.begin(); it != entries.end();) {
    const DataItem& item = services.data(it->first);
    if (!item.alive(now)) {
      store_.buffer[ni].erase(it->first);
      central_count_add(ni, it->second.central, -1);
      it = entries.erase(it);
    } else {
      if (item.expires < earliest) earliest = item.expires;
      ++it;
    }
  }
  {
    BundleChain<PushToken> kept;
    auto h = store_.push_tokens[ni].head;
    while (h != SlabPool<PushToken>::kNull) {
      const auto next = token_pool_.next(h);
      const DataItem& item = services.data(token_pool_.get(h).data);
      if (!item.alive(now)) {
        token_pool_.release(h);
      } else {
        if (item.expires < earliest) earliest = item.expires;
        kept.append(token_pool_, h);
      }
      h = next;
    }
    store_.push_tokens[ni] = kept;
  }
  {
    BundleChain<QueryCopy> kept;
    auto h = store_.query_copies[ni].head;
    while (h != SlabPool<QueryCopy>::kNull) {
      const auto next = query_pool_.next(h);
      const Query& q = query_pool_.get(h).query;
      if (!q.alive(now)) {
        query_pool_.release(h);
      } else {
        if (q.expires < earliest) earliest = q.expires;
        kept.append(query_pool_, h);
      }
      h = next;
    }
    store_.query_copies[ni] = kept;
  }
  {
    BundleChain<ResponseBundle> kept;
    auto h = store_.responses[ni].head;
    while (h != SlabPool<ResponseBundle>::kNull) {
      const auto next = response_pool_.next(h);
      const Query& q = response_pool_.get(h).query;
      if (!q.alive(now)) {
        response_pool_.release(h);
      } else {
        if (q.expires < earliest) earliest = q.expires;
        kept.append(response_pool_, h);
      }
      h = next;
    }
    store_.responses[ni] = kept;
  }
  auto& history = store_.history[ni];
  for (auto it = history.begin(); it != history.end();) {
    const DataItem& item = services.data(it->first);
    if (!item.alive(now)) {
      it = history.erase(it);
    } else {
      if (item.expires < earliest) earliest = item.expires;
      ++it;
    }
  }
  store_.next_expiry[ni] = earliest;
}

void NclCachingScheme::on_maintenance(SimServices& services) {
  for (NodeId node = 0; node < static_cast<NodeId>(store_.size()); ++node) {
    prune_node_with_registry(services, node);
  }
  if (config_.dynamic_ncl) reselect_centrals(services);
}

void NclCachingScheme::reselect_centrals(SimServices& services) {
  const AllPairsPaths& paths = services.paths();
  if (paths.empty()) return;
  const NodeId n = std::min<NodeId>(paths.node_count(),
                                    static_cast<NodeId>(store_.size()));
  if (n < 2) return;

  // The NCL metric of Eq. 3, computed from the already-available path
  // tables: the mean weight with which the other nodes reach each node.
  // Maintenance-tick cadence, not the contact hot path — the local
  // containers here are fine.
  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += paths.weight(j, i);
    }
    ranked.emplace_back(-sum / static_cast<double>(n - 1), i);
  }
  std::sort(ranked.begin(), ranked.end());

  const std::size_t k = config_.central_nodes.size();
  std::vector<NodeId> fresh;
  fresh.reserve(k);
  for (std::size_t i = 0; i < k && i < ranked.size(); ++i) {
    fresh.push_back(ranked[i].second);
  }
  if (fresh.empty() || fresh == config_.central_nodes) return;
  config_.central_nodes = std::move(fresh);
  is_central_.assign(store_.size(), 0);
  for (NodeId c : config_.central_nodes) {
    is_central_[static_cast<std::size_t>(c)] = 1;
  }

  // Re-home cached copies whose NCL no longer exists: assign each to the
  // current central its holder reaches best, so query broadcasts and
  // replacement keep finding them instead of serving a ghost NCL.
  for (NodeId holder = 0; holder < static_cast<NodeId>(store_.size());
       ++holder) {
    const std::size_t hi = static_cast<std::size_t>(holder);
    if (store_.entries[hi].empty() && store_.push_tokens[hi].empty()) continue;
    NodeId best = config_.central_nodes.front();
    double best_weight = -1.0;
    for (NodeId c : config_.central_nodes) {
      const double w = services.path_weight(holder, c);
      if (w > best_weight) {
        best_weight = w;
        best = c;
      }
    }
    for (auto& [id, entry] : store_.entries[hi]) {
      if (!is_central(entry.central)) {
        central_count_add(hi, entry.central, -1);
        central_count_add(hi, best, +1);
        entry.central = best;
      }
    }
    // Push tokens towards a dead central redirect to the holder's best
    // current central (dedup: only one token per (data, central) pair).
    for (auto h = store_.push_tokens[hi].head;
         h != SlabPool<PushToken>::kNull; h = token_pool_.next(h)) {
      PushToken& token = token_pool_.get(h);
      if (!is_central(token.central)) token.central = best;
    }
  }
}

std::size_t NclCachingScheme::cached_copies(Time now) const {
  std::size_t count = 0;
  for (const auto& entries : store_.entries) count += entries.size();
  (void)now;  // maintenance pruning keeps entries fresh
  return count;
}

Bytes NclCachingScheme::cached_bytes(Time now) const {
  Bytes total = 0;
  for (const auto& buffer : store_.buffer) total += buffer.used();
  (void)now;
  return total;
}

}  // namespace dtn

#include "cache/popularity.h"

#include <algorithm>
#include <cmath>

namespace dtn {

void PopularityEstimator::record_request(Time when) {
  if (count_ == 0) {
    first_ = when;
    last_ = when;
  } else {
    first_ = std::min(first_, when);
    last_ = std::max(last_, when);
  }
  ++count_;
}

void PopularityEstimator::merge(const PopularityEstimator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  first_ = std::min(first_, other.first_);
  last_ = std::max(last_, other.last_);
  count_ = std::max(count_, other.count_);
}

double PopularityEstimator::request_rate() const {
  if (count_ < 2 || last_ <= first_) return 0.0;
  return static_cast<double>(count_) / (last_ - first_);
}

double PopularityEstimator::popularity(Time now, Time expires) const {
  const double rate = request_rate();
  if (rate <= 0.0) return 0.0;
  const Time remaining = expires - now;
  if (remaining <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate * remaining);
}

}  // namespace dtn

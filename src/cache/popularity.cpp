#include "cache/popularity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dtn {

void PopularityEstimator::record_request(Time when) {
  if (count_ == 0) {
    first_ = when;
    last_ = when;
  } else {
    first_ = std::min(first_, when);
    last_ = std::max(last_, when);
  }
  ++count_;
}

void PopularityEstimator::merge(const PopularityEstimator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  first_ = std::min(first_, other.first_);
  last_ = std::max(last_, other.last_);
  count_ = std::max(count_, other.count_);
}

double PopularityEstimator::request_rate() const {
  if (count_ < 2 || last_ <= first_) return 0.0;
  const double rate = static_cast<double>(count_) / (last_ - first_);
  // Eq. 6's Poisson intensity: a request count over a positive span.
  DTN_CHECK_FINITE(rate);
  DTN_CHECK_GE(rate, 0.0);
  return rate;
}

double PopularityEstimator::popularity(Time now, Time expires) const {
  const double rate = request_rate();
  if (rate <= 0.0) return 0.0;
  const Time remaining = expires - now;
  if (remaining <= 0.0) return 0.0;
  const double p = 1.0 - std::exp(-rate * remaining);
  // Eq. 6: P(another request before expiry) under the Poisson model.
  DTN_CHECK_PROB(p);
  return p;
}

}  // namespace dtn

// Reference implementation of the NCL caching scheme (Sec. V), preserved as
// the golden oracle for the SoA/arena rewrite in cache/ncl_scheme.h.
//
// This is the pre-rewrite NclCachingScheme, line for line: per-node
// NodeState objects holding std::vector bundle queues that are rebuilt
// ("kept") per contact, allocating scratch containers per replacement
// exchange. The fast scheme claims *bit-identical* behavior — the same
// protocol decisions, the same RNG consumption sequence, the same metrics —
// with the per-event allocations removed; tests/engine_golden_test.cpp and
// the property harness pin that claim by running both classes side by side
// (selected via SimEngine::kReference on SimConfig). Keep this file frozen:
// it only changes when the protocol itself changes, never for performance.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/ncl_scheme.h"
#include "cache/popularity.h"
#include "cache/replacement.h"
#include "cache/response.h"
#include "net/buffer.h"
#include "sim/scheme.h"

namespace dtn {

class NclCachingSchemeReference : public Scheme {
 public:
  explicit NclCachingSchemeReference(NclSchemeConfig config);

  std::string name() const override { return "NCL-Cache"; }
  void on_start(SimServices& services) override;
  void on_maintenance(SimServices& services) override;
  void on_data_generated(SimServices& services, const DataItem& item) override;
  void on_query(SimServices& services, const Query& query) override;
  void on_contact(SimServices& services, NodeId a, NodeId b,
                  LinkBudget& budget) override;

  std::size_t cached_copies(Time now) const override;
  Bytes cached_bytes(Time now) const override;

  /// Introspection for tests / examples.
  const std::vector<NodeId>& central_nodes() const { return config_.central_nodes; }
  bool node_caches(NodeId node, DataId data) const;
  std::size_t push_tokens_in_flight() const;
  std::uint64_t responses_sent() const { return responses_sent_; }
  std::uint64_t replacement_exchanges() const { return replacement_exchanges_; }

  /// Structural invariants, checked by tests after simulations:
  ///  * every cache entry is backed by buffer accounting with the same size
  ///    and matches the registry's size for that item;
  ///  * per-node entry bytes exactly equal the buffer's used bytes;
  ///  * no buffer exceeds its capacity.
  /// Returns false on the first violation.
  bool check_invariants(const DataRegistry& registry) const;

  using Counters = NclCachingScheme::Counters;
  const Counters& counters() const { return counters_; }

 private:
  struct CacheEntry {
    Bytes size = 0;
    NodeId central = kNoNode;  ///< the NCL this copy serves
    bool in_transit = false;   ///< still riding the gradient towards central
    Time inserted_at = 0.0;    ///< FIFO bookkeeping
    Time last_access = 0.0;    ///< LRU bookkeeping
    double h_value = 0.0;      ///< Greedy-Dual-Size H value
  };

  /// A copy of `data` travelling towards `central` during push.
  struct PushToken {
    DataId data = kNoData;
    NodeId central = kNoNode;
  };

  /// A routed copy of a query on its way to `central`, or — once it has
  /// arrived — a broadcast copy spreading through that NCL.
  struct QueryCopy {
    Query query;
    NodeId central = kNoNode;
    bool broadcast = false;
  };

  /// A cached data copy travelling back to the requester.
  struct ResponseBundle {
    Query query;
    Bytes size = 0;
  };

  struct NodeState {
    CacheBuffer buffer{0};
    std::unordered_map<DataId, CacheEntry> entries;
    double gds_l = 0.0;  ///< Greedy-Dual-Size aging level
    /// Request history per data id, fed by queries this node has seen.
    std::unordered_map<DataId, PopularityEstimator> history;
    std::vector<PushToken> push_tokens;
    std::vector<QueryCopy> query_copies;
    std::vector<ResponseBundle> responses;
    /// Queries this node has already accepted a broadcast/routed copy of.
    std::unordered_set<QueryId> seen_queries;
    /// Queries this node has already decided a response for.
    std::unordered_set<QueryId> responded;
    /// FIFO of seen query ids for bounded eviction.
    std::deque<QueryId> seen_order;
  };

  NodeState& state(NodeId node) { return nodes_.at(static_cast<std::size_t>(node)); }
  const NodeState& state(NodeId node) const {
    return nodes_.at(static_cast<std::size_t>(node));
  }

  bool is_central(NodeId node) const;
  double popularity_of(SimServices& services, NodeId node, DataId data) const;

  /// True if node holds a queryable copy (cache entry, or is the source).
  bool holds_data(NodeId node, DataId data, Time now) const;

  void note_query_seen(SimServices& services, NodeId node, const Query& query);
  void maybe_respond(SimServices& services, NodeId node, const Query& query);

  /// One direction of a contact: moves bundles from `from` to `to`.
  void transfer_direction(SimServices& services, NodeId from, NodeId to,
                          LinkBudget& budget);
  void run_replacement(SimServices& services, NodeId a, NodeId b,
                       LinkBudget& budget);
  /// Builds a fresh cache entry stamped with the current time.
  CacheEntry make_entry(SimServices& services, NodeId holder, Bytes size,
                        NodeId central, bool in_transit) const;
  /// Insertion-time eviction for the FIFO / LRU / GDS strategies; frees
  /// space for `item` at `node` when the policy allows. Returns true when
  /// the item now fits.
  bool evict_for(SimServices& services, NodeId node, const DataItem& item);
  /// Drops expired cached data, tokens, queries and responses at `node`.
  void prune_node_with_registry(SimServices& services, NodeId node);
  /// Dynamic-NCL extension: re-derive the top-K central nodes from the
  /// current path tables.
  void reselect_centrals(SimServices& services);

  NclSchemeConfig config_;
  std::vector<NodeState> nodes_;
  std::unordered_set<QueryId> satisfied_;  ///< requester got the data
  std::uint64_t responses_sent_ = 0;
  std::uint64_t replacement_exchanges_ = 0;
  Counters counters_;
};

}  // namespace dtn

// The paper's primary contribution: intentional cooperative caching at
// Network Central Locations (Sec. V).
//
// Protocol summary:
//  * PUSH — a data source keeps its own item natively and launches one push
//    token per central node; tokens ride the opportunistic-path-weight
//    gradient towards their central. The token's current holder caches the
//    item ("relays are temporal caching locations"); forwarding stops when
//    the next relay's buffer cannot take the item, which leaves the copy
//    cached at the current relay — so each NCL's caching nodes form a
//    connected subgraph around the central node (Fig. 5).
//  * PULL — a requester multicasts its query towards every central node
//    (one routed copy per central). A central node answers from its own
//    cache, and in addition broadcasts the query to the caching nodes of
//    its NCL until the query expires (Fig. 6); every caching node that sees
//    the query updates the data item's popularity history.
//  * PROBABILISTIC RESPONSE — a caching node holding the data replies with
//    a probability given by the configured variant (Sec. V-C): the
//    path-weight p_CR(T_q - t_0) or the sigmoid of Eq. 4.
//  * REPLACEMENT — whenever two nodes with cached data meet, the pooled
//    items are re-assigned by the probabilistic knapsack of Sec. V-D
//    (cache/replacement.h), migrating popular data towards the centrals.
//
// Memory model (this is the SimEngine::kFast implementation; the legacy
// per-object layout survives as cache/ncl_scheme_reference.h):
//  * Node state is structure-of-arrays — one vector per field across all
//    nodes (NodeStore) instead of a vector of fat NodeState objects.
//  * In-flight bundles (push tokens, query copies, responses) live in
//    SlabPool slabs and are threaded through per-node BundleChain intrusive
//    lists; a contact relinks bundles between nodes instead of rebuilding
//    "kept" vectors, so the steady-state exchange allocates nothing.
//  * Per-contact scratch (replacement pools, eviction ranking, plan
//    buffers) lives in a reusable ContactWorkspace.
//  * The id-keyed metadata maps (`entries`, `history`) deliberately REMAIN
//    std::unordered_map: the replacement exchange pools items in map
//    iteration order and draws one Bernoulli per pooled item in
//    utility-sorted order, so iteration order is observable through the RNG
//    stream. Keeping the container (and the exact operation sequence)
//    keeps the fast scheme bit-identical to the reference oracle.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/popularity.h"
#include "cache/replacement.h"
#include "cache/response.h"
#include "common/arena.h"
#include "net/buffer.h"
#include "sim/scheme.h"

namespace dtn {

/// Which cache-replacement strategy the scheme runs (Fig. 12 compares the
/// paper's utility-based exchange against FIFO, LRU and Greedy-Dual-Size).
/// The traditional policies replace at *insertion* time (evict to admit a
/// pushed copy); the utility strategy replaces at *contact* time via the
/// pooled knapsack exchange.
enum class CacheStrategy { kUtilityExchange, kFifo, kLru, kGds };

struct NclSchemeConfig {
  /// Central nodes representing the NCLs (from select_ncls), best first.
  std::vector<NodeId> central_nodes;

  /// Per-node cache capacity in bytes (size N).
  std::vector<Bytes> buffer_capacity;

  ResponseMode response_mode = ResponseMode::kPathWeight;
  SigmoidResponse sigmoid;

  CacheStrategy strategy = CacheStrategy::kUtilityExchange;
  ReplacementConfig replacement;
  /// Disables contact-time cache replacement entirely (ablation; only
  /// meaningful with kUtilityExchange).
  bool enable_replacement = true;

  /// Extension beyond the paper: re-select the central nodes at every
  /// maintenance tick from the current path tables (the paper fixes the
  /// NCLs once, arguing contact patterns are long-term stable — which
  /// breaks down when central nodes fail or deplete). Existing cache
  /// entries keep their NCL assignment; new pushes target the new
  /// centrals, so the caching population migrates gradually.
  bool dynamic_ncl = false;

  /// Maximum distinct queries a node tracks at once (state bound; oldest
  /// evicted first).
  std::size_t max_tracked_queries = 4096;
};

class NclCachingScheme : public Scheme {
 public:
  explicit NclCachingScheme(NclSchemeConfig config);

  std::string name() const override { return "NCL-Cache"; }
  void on_start(SimServices& services) override;
  void on_maintenance(SimServices& services) override;
  void on_data_generated(SimServices& services, const DataItem& item) override;
  void on_query(SimServices& services, const Query& query) override;
  void on_contact(SimServices& services, NodeId a, NodeId b,
                  LinkBudget& budget) override;

  std::size_t cached_copies(Time now) const override;
  Bytes cached_bytes(Time now) const override;

  /// Introspection for tests / examples.
  const std::vector<NodeId>& central_nodes() const { return config_.central_nodes; }
  bool node_caches(NodeId node, DataId data) const;
  std::size_t push_tokens_in_flight() const;
  std::uint64_t responses_sent() const { return responses_sent_; }
  std::uint64_t replacement_exchanges() const { return replacement_exchanges_; }

  /// Structural invariants, checked by tests after simulations:
  ///  * every cache entry is backed by buffer accounting with the same size
  ///    and matches the registry's size for that item;
  ///  * per-node entry bytes exactly equal the buffer's used bytes;
  ///  * no buffer exceeds its capacity;
  ///  * the per-(node, central) entry counts used for O(1) NCL-membership
  ///    tests agree with the entry maps;
  ///  * every per-node earliest-expiry bound is a true lower bound on the
  ///    expiry of everything the node holds (entries, histories, bundles).
  /// Returns false on the first violation.
  bool check_invariants(const DataRegistry& registry) const;

  /// Protocol event counters (diagnostics and tests).
  struct Counters {
    std::uint64_t tokens_settled = 0;       ///< reached their central node
    std::uint64_t tokens_stopped_full = 0;  ///< parked: next relay was full
    std::uint64_t tokens_expired = 0;       ///< data expired in flight
    std::uint64_t token_hops = 0;           ///< gradient forwarding steps
    std::uint64_t queries_reached_central = 0;
    std::uint64_t responses_delivered = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  struct CacheEntry {
    Bytes size = 0;
    NodeId central = kNoNode;  ///< the NCL this copy serves
    bool in_transit = false;   ///< still riding the gradient towards central
    Time inserted_at = 0.0;    ///< FIFO bookkeeping
    Time last_access = 0.0;    ///< LRU bookkeeping
    double h_value = 0.0;      ///< Greedy-Dual-Size H value
  };

  /// A copy of `data` travelling towards `central` during push.
  struct PushToken {
    DataId data = kNoData;
    NodeId central = kNoNode;
  };

  /// A routed copy of a query on its way to `central`, or — once it has
  /// arrived — a broadcast copy spreading through that NCL.
  struct QueryCopy {
    Query query;
    NodeId central = kNoNode;
    bool broadcast = false;
  };

  /// A cached data copy travelling back to the requester.
  struct ResponseBundle {
    Query query;
    Bytes size = 0;
  };

 public:
  /// Reusable per-contact scratch. One workspace serves every contact of a
  /// run in strict sequence: begin_contact() / end_contact() bracket each
  /// contact, and beginning a contact while another is active is a
  /// DTN_CHECK abort (tests/check_test.cpp) — overlapping use would let
  /// two contacts corrupt each other's replacement pools.
  class ContactWorkspace {
   public:
    void begin_contact();
    void end_contact();
    bool active() const { return active_; }

   private:
    friend class NclCachingScheme;

    bool active_ = false;
    bool used_ = false;  ///< true after the first contact (reuse counter)

    // Replacement-exchange scratch, cleared per central with capacity kept.
    std::vector<NodeId> centrals;
    std::vector<DataId> shared;
    std::vector<ReplacementItem> pool;
    std::vector<CacheEntry> original;  ///< parallel to `pool`
    ReplacementPlan plan;
    ReplacementWorkspace replan;
    // Insertion-time eviction ranking (FIFO/LRU/GDS strategies).
    std::vector<std::pair<double, DataId>> ranked;
  };

 private:
  /// Structure-of-arrays node state: index = NodeId. See the header comment
  /// for which fields are flat pools and which stay node-based maps (and
  /// why).
  struct NodeStore {
    std::vector<CacheBuffer> buffer;
    std::vector<std::unordered_map<DataId, CacheEntry>> entries;
    std::vector<double> gds_l;  ///< Greedy-Dual-Size aging level
    /// Request history per data id, fed by queries this node has seen.
    std::vector<std::unordered_map<DataId, PopularityEstimator>> history;
    std::vector<BundleChain<PushToken>> push_tokens;
    std::vector<BundleChain<QueryCopy>> query_copies;
    std::vector<BundleChain<ResponseBundle>> responses;
    /// Queries this node has already accepted a broadcast/routed copy of.
    std::vector<std::unordered_set<QueryId>> seen_queries;
    /// Queries this node has already decided a response for.
    std::vector<std::unordered_set<QueryId>> responded;
    /// FIFO of seen query ids for bounded eviction.
    std::vector<std::deque<QueryId>> seen_order;
    /// Conservative lower bound on the earliest expiry of anything the
    /// node holds; prune scans are skipped while now < next_expiry (the
    /// scan would provably erase nothing). Stale-low after erasures, reset
    /// exactly by every full scan.
    std::vector<Time> next_expiry;
    /// Cached entries per (node, central): O(1) NCL-membership tests in
    /// the query-broadcast phase and O(K) central collection in the
    /// replacement exchange, replacing per-contact entry-map walks.
    std::vector<std::vector<std::pair<NodeId, std::int32_t>>> central_counts;

    std::size_t size() const { return buffer.size(); }
    void resize(std::size_t n);
  };

  std::size_t index(NodeId node) const;

  bool is_central(NodeId node) const;
  double popularity_of(SimServices& services, NodeId node, DataId data) const;

  /// True if node holds a queryable copy (cache entry, or is the source).
  bool holds_data(NodeId node, DataId data, Time now) const;

  void note_query_seen(SimServices& services, NodeId node, const Query& query);
  void maybe_respond(SimServices& services, NodeId node, const Query& query);

  /// One direction of a contact: moves bundles from `from` to `to`.
  void transfer_direction(SimServices& services, NodeId from, NodeId to,
                          LinkBudget& budget);
  void run_replacement(SimServices& services, NodeId a, NodeId b,
                       LinkBudget& budget);
  /// Builds a fresh cache entry stamped with the current time.
  CacheEntry make_entry(SimServices& services, NodeId holder, Bytes size,
                        NodeId central, bool in_transit) const;
  /// Insertion-time eviction for the FIFO / LRU / GDS strategies; frees
  /// space for `item` at `node` when the policy allows. Returns true when
  /// the item now fits.
  bool evict_for(SimServices& services, NodeId node, const DataItem& item);
  /// Drops expired cached data, tokens, queries and responses at `node`.
  /// No-ops in O(1) while the node's next_expiry bound proves every held
  /// object is still alive.
  void prune_node_with_registry(SimServices& services, NodeId node);
  /// Dynamic-NCL extension: re-derive the top-K central nodes from the
  /// current path tables.
  void reselect_centrals(SimServices& services);

  /// Lowers the node's earliest-expiry bound (called at every site that
  /// hands the node an expirable object).
  void note_expiry(std::size_t node, Time expires);
  /// Adjusts the (node, central) entry count; delta is +1 / -1 per entry.
  void central_count_add(std::size_t node, NodeId central, int delta);
  std::int32_t central_count(std::size_t node, NodeId central) const;
  /// Inserts a fresh cache entry (map + central count + expiry bound).
  void put_entry(SimServices& services, std::size_t node, DataId id,
                 const CacheEntry& entry);
  /// Erases an entry from map + buffer + central count. Returns false when
  /// absent.
  bool drop_entry(std::size_t node, DataId id);

  NclSchemeConfig config_;
  NodeStore store_;
  SlabPool<PushToken> token_pool_;
  SlabPool<QueryCopy> query_pool_;
  SlabPool<ResponseBundle> response_pool_;
  ContactWorkspace ws_;
  std::vector<std::uint8_t> is_central_;  ///< O(1) bitmap over node ids
  std::unordered_set<QueryId> satisfied_;  ///< requester got the data
  std::uint64_t responses_sent_ = 0;
  std::uint64_t replacement_exchanges_ = 0;
  Counters counters_;
};

}  // namespace dtn

// Probabilistic response (paper Sec. V-C).
//
// Multiple caching nodes receive each query; replying from all of them
// wastes bandwidth, replying from too few risks missing the deadline. Each
// caching node therefore replies with a probability that reflects how
// likely its copy still arrives in time:
//  * path-weight variant — when nodes maintain opportunistic paths to all
//    others, reply with p_CR(T_q - t_0), the weight of the shortest path
//    from cache to requester under the remaining time budget;
//  * sigmoid variant (Eq. 4) — when only paths to central nodes are kept,
//    reply with a sigmoid of the remaining time fraction, anchored at
//    p_R(0) = p_min and p_R(T_q) = p_max.
#pragma once

#include "common/types.h"

namespace dtn {

/// Parameters of the sigmoid response probability (Eq. 4).
/// Validity requires 0 < p_max <= 1 and p_max/2 < p_min < p_max.
struct SigmoidResponse {
  double p_min = 0.45;
  double p_max = 0.8;

  /// p_R(t) for remaining time t within a query of total constraint T_q.
  /// t is clamped to [0, T_q]. Throws std::invalid_argument for invalid
  /// parameters or non-positive T_q.
  double probability(Time remaining, Time t_q) const;
};

/// Response probability used by the scheme; selects the variant.
enum class ResponseMode {
  kAlways,      ///< reply deterministically (ablation)
  kSigmoid,     ///< Eq. 4 on remaining time
  kPathWeight,  ///< p_CR(T_q - t_0) from opportunistic paths
};

}  // namespace dtn

// Utility-based cache replacement (paper Sec. V-D).
//
// When two caching nodes meet, their cached data is pooled and re-assigned:
// the node closer to the central nodes (higher opportunistic path weight)
// picks first by solving the knapsack of Eq. 7; Algorithm 1 makes the pick
// probabilistic — an item chosen by the DP is actually cached only with
// probability equal to its utility, which throttles the number of copies of
// very popular data at global scope and leaves unpopular data a chance.
// The planner below is pure (no node state, explicit RNG), so the exchange
// logic is unit- and property-testable in isolation; the scheme applies the
// resulting plan under the link budget.
#pragma once

#include <vector>

#include "cache/knapsack.h"
#include "common/rng.h"
#include "common/types.h"

namespace dtn {

/// One pooled data item during an exchange between nodes A and B.
struct ReplacementItem {
  DataId id = kNoData;
  Bytes size = 0;
  double popularity = 0.0;  ///< w_i in [0, 1] (Eq. 6)
  /// True when the copy currently resides at node A (false: node B).
  bool at_a = true;
};

struct ReplacementConfig {
  /// Knapsack capacity quantization (bytes).
  Bytes knapsack_unit = 1 << 20;
  /// Maximum probabilistic selection rounds per node (Algorithm 1 iterates
  /// "multiple times ... to ensure that the caching buffer is fully
  /// utilized"); afterwards a deterministic fill pass runs so items are
  /// never dropped while space remains.
  int max_rounds = 4;
  /// False disables the Bernoulli step (pure knapsack; ablation of
  /// Sec. V-D.3).
  bool probabilistic = true;
};

/// Where each pooled item ends up.
struct ReplacementPlan {
  std::vector<DataId> keep_at_a;
  std::vector<DataId> keep_at_b;
  std::vector<DataId> dropped;

  /// Items that changed holder (subset of keeps), with their sizes — the
  /// bytes the link must carry to realize the plan.
  std::vector<DataId> moved;
  Bytes moved_bytes = 0;
};

/// Computes the exchange between nodes A and B.
///  * capacity_a/b: total cache capacity available for pooled items.
///  * weight_a/b: the nodes' opportunistic path weights to their best
///    central node (p_A, p_B). The higher-weight node selects first, and
///    utilities are u_i = popularity_i * weight (Sec. V-D).
/// Duplicate data ids in the pool are not allowed.
///
/// This overload is the legacy allocating implementation, kept verbatim as
/// the oracle for the workspace form below (tests/property_test.cpp runs
/// both under identical RNG seeds and asserts identical plans).
ReplacementPlan plan_replacement(const std::vector<ReplacementItem>& pool,
                                 Bytes capacity_a, Bytes capacity_b,
                                 double weight_a, double weight_b,
                                 const ReplacementConfig& config, Rng& rng);

/// Reusable scratch for the allocation-free plan_replacement overload: all
/// per-call containers live here and retain capacity across exchanges.
struct ReplacementWorkspace {
  std::vector<std::size_t> available;
  std::vector<std::size_t> order;
  std::vector<std::size_t> rescued;
  std::vector<std::size_t> taken_a;
  std::vector<std::size_t> taken_b;
  std::vector<std::size_t> picks;
  std::vector<double> utilities;  ///< per pool index, for the active node
  std::vector<DataId> ids;        ///< duplicate-id validation scratch
  std::vector<KnapsackItem> knap_items;
  KnapsackWorkspace knapsack;
  KnapsackResult knap_result;
};

/// Allocation-free form: identical protocol decisions and — critically —
/// an identical RNG consumption sequence to the oracle overload above (the
/// per-round utility ordering is the same stable-descending permutation,
/// produced by an in-place insertion sort over precomputed utilities
/// instead of std::stable_sort's buffer-allocating merge). `out` is
/// cleared and refilled; its vectors retain capacity across calls.
void plan_replacement(const std::vector<ReplacementItem>& pool,
                      Bytes capacity_a, Bytes capacity_b, double weight_a,
                      double weight_b, const ReplacementConfig& config,
                      Rng& rng, ReplacementWorkspace& ws,
                      ReplacementPlan& out);

}  // namespace dtn

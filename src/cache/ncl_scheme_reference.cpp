#include "cache/ncl_scheme_reference.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn {

NclCachingSchemeReference::NclCachingSchemeReference(NclSchemeConfig config)
    : config_(std::move(config)) {
  if (config_.central_nodes.empty()) {
    throw std::invalid_argument("NCL scheme needs at least one central node");
  }
  if (config_.buffer_capacity.empty()) {
    throw std::invalid_argument("per-node buffer capacities required");
  }
  nodes_.resize(config_.buffer_capacity.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (config_.buffer_capacity[i] < 0) {
      throw std::invalid_argument("negative buffer capacity");
    }
    nodes_[i].buffer = CacheBuffer(config_.buffer_capacity[i]);
  }
  for (NodeId c : config_.central_nodes) {
    if (c < 0 || static_cast<std::size_t>(c) >= nodes_.size()) {
      throw std::invalid_argument("central node id out of range");
    }
  }
}

void NclCachingSchemeReference::on_start(SimServices& services) { (void)services; }

bool NclCachingSchemeReference::is_central(NodeId node) const {
  return std::find(config_.central_nodes.begin(), config_.central_nodes.end(),
                   node) != config_.central_nodes.end();
}

double NclCachingSchemeReference::popularity_of(SimServices& services, NodeId node,
                                       DataId data) const {
  const auto& history = state(node).history;
  const auto it = history.find(data);
  if (it == history.end()) return 0.0;
  return it->second.popularity(services.now(), services.data(data).expires);
}

bool NclCachingSchemeReference::holds_data(NodeId node, DataId data, Time now) const {
  const NodeState& ns = state(node);
  const auto it = ns.entries.find(data);
  return it != ns.entries.end() && ns.buffer.contains(data) &&
         it->second.size > 0 && now >= 0.0;  // entry presence implies liveness
}

bool NclCachingSchemeReference::node_caches(NodeId node, DataId data) const {
  return state(node).entries.contains(data);
}

bool NclCachingSchemeReference::check_invariants(const DataRegistry& registry) const {
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    const NodeState& ns = nodes_[node];
    if (ns.buffer.used() > ns.buffer.capacity()) return false;
    Bytes entry_bytes = 0;
    for (const auto& [id, entry] : ns.entries) {
      if (!ns.buffer.contains(id)) return false;
      if (ns.buffer.size_of(id) != entry.size) return false;
      if (registry.get(id).size != entry.size) return false;
      entry_bytes += entry.size;
    }
    if (entry_bytes != ns.buffer.used()) return false;
    // Note: a push token's holder *usually* caches the item, but cache
    // replacement may migrate the entry to a peer while the token stays —
    // the token then re-establishes a copy at its next forwarding step, so
    // token/entry co-location is intentionally NOT an invariant.
  }
  return true;
}

std::size_t NclCachingSchemeReference::push_tokens_in_flight() const {
  std::size_t count = 0;
  for (const auto& ns : nodes_) count += ns.push_tokens.size();
  return count;
}

void NclCachingSchemeReference::on_data_generated(SimServices& services,
                                         const DataItem& item) {
  NodeState& source = state(item.source);
  // The source holds its item natively for the item's lifetime; push tokens
  // carry copies towards every central node. If the source *is* a central
  // node, its copy settles immediately.
  for (NodeId c : config_.central_nodes) {
    if (c == item.source) {
      if (source.buffer.insert(item.id, item.size)) {
        source.entries[item.id] =
            make_entry(services, item.source, item.size, c, false);
      }
      continue;
    }
    source.push_tokens.push_back(PushToken{item.id, c});
  }
}

void NclCachingSchemeReference::note_query_seen(SimServices& services, NodeId node,
                                       const Query& query) {
  NodeState& ns = state(node);
  if (ns.seen_queries.contains(query.id)) return;
  ns.seen_queries.insert(query.id);
  ns.seen_order.push_back(query.id);
  while (ns.seen_order.size() > config_.max_tracked_queries) {
    const QueryId evicted = ns.seen_order.front();
    ns.seen_order.pop_front();
    ns.seen_queries.erase(evicted);
    ns.responded.erase(evicted);
  }
  ns.history[query.data].record_request(query.issued);
  (void)services;
}

void NclCachingSchemeReference::maybe_respond(SimServices& services, NodeId node,
                                     const Query& query) {
  const Time now = services.now();
  if (!query.alive(now)) return;
  NodeState& ns = state(node);
  if (ns.responded.contains(query.id)) return;

  const DataItem& item = services.data(query.data);
  if (!item.alive(now)) return;
  const bool cached = holds_data(node, query.data, now);
  const bool native = item.source == node;
  if (!cached && !native) return;  // no copy to return; no decision yet

  ns.responded.insert(query.id);

  // Refresh recency / GDS value for the traditional replacement policies.
  if (auto it = ns.entries.find(query.data); it != ns.entries.end()) {
    it->second.last_access = now;
    it->second.h_value =
        ns.gds_l + popularity_of(services, node, query.data) /
                       (static_cast<double>(it->second.size) / (1 << 20));
  }

  double probability = 1.0;
  switch (config_.response_mode) {
    case ResponseMode::kAlways:
      probability = 1.0;
      break;
    case ResponseMode::kSigmoid:
      probability = config_.sigmoid.probability(query.remaining(now),
                                                query.time_constraint());
      break;
    case ResponseMode::kPathWeight:
      probability = services.paths().empty()
                        ? 0.0
                        : services.paths().weight_at(node, query.requester,
                                                     query.remaining(now));
      break;
  }
  // The reply probability feeding the Bernoulli draw must be a genuine
  // probability whichever response mode produced it (Eq. 4 / path weight).
  DTN_CHECK_PROB(probability);
  if (!services.rng().bernoulli(probability)) return;

  ns.responses.push_back(ResponseBundle{query, item.size});
  ++responses_sent_;
}

void NclCachingSchemeReference::on_query(SimServices& services, const Query& query) {
  NodeId requester = query.requester;
  note_query_seen(services, requester, query);

  // Local hit: the requester happens to cache the data already.
  if (holds_data(requester, query.data, services.now())) {
    services.deliver(query);
    satisfied_.insert(query.id);
    return;
  }

  // Multicast one routed copy per central node (Sec. V-B).
  NodeState& ns = state(requester);
  for (NodeId c : config_.central_nodes) {
    QueryCopy copy{query, c, /*broadcast=*/false};
    if (c == requester) {
      copy.broadcast = true;  // the requester is a central node itself
      maybe_respond(services, requester, query);
    }
    ns.query_copies.push_back(std::move(copy));
  }
}

void NclCachingSchemeReference::transfer_direction(SimServices& services, NodeId from,
                                          NodeId to, LinkBudget& budget) {
  const Time now = services.now();
  NodeState& src = state(from);
  NodeState& dst = state(to);

  // ---- 1. Responses: cached data returning to requesters. ----
  {
    std::vector<ResponseBundle> kept;
    kept.reserve(src.responses.size());
    for (auto& response : src.responses) {
      const Query& q = response.query;
      if (!q.alive(now) || !services.data(q.data).alive(now)) continue;  // drop
      if (to == q.requester) {
        if (budget.consume(response.size)) {
          services.count_bytes(response.size);
          services.deliver(q);
          satisfied_.insert(q.id);
          ++counters_.responses_delivered;
          continue;  // delivered: bundle consumed
        }
        kept.push_back(std::move(response));
        continue;
      }
      const double w_to = services.path_weight(to, q.requester);
      const double w_from = services.path_weight(from, q.requester);
      if (w_to > w_from && budget.consume(response.size)) {
        services.count_bytes(response.size);
        dst.responses.push_back(std::move(response));
        continue;  // moved
      }
      kept.push_back(std::move(response));
    }
    src.responses = std::move(kept);
  }

  // ---- 2. Query copies: routed towards centrals / broadcast in NCLs. ----
  {
    std::vector<QueryCopy> kept;
    kept.reserve(src.query_copies.size());
    for (auto& copy : src.query_copies) {
      const Query& q = copy.query;
      if (!q.alive(now)) continue;  // expired: drop

      if (!copy.broadcast) {
        // Routed phase: ride the gradient towards the central node.
        if (to == copy.central) {
          if (budget.consume(kQueryBytes)) {
            services.count_bytes(kQueryBytes);
            note_query_seen(services, to, q);
            maybe_respond(services, to, q);
            copy.broadcast = true;  // central starts the NCL broadcast
            ++counters_.queries_reached_central;
            dst.query_copies.push_back(std::move(copy));
            continue;
          }
        } else if (services.path_weight(to, copy.central) >
                       services.path_weight(from, copy.central) &&
                   budget.consume(kQueryBytes)) {
          services.count_bytes(kQueryBytes);
          note_query_seen(services, to, q);
          maybe_respond(services, to, q);
          dst.query_copies.push_back(std::move(copy));
          continue;
        }
        kept.push_back(std::move(copy));
        continue;
      }

      // Broadcast phase: replicate to caching members of this NCL.
      const bool member =
          to == copy.central ||
          std::any_of(dst.entries.begin(), dst.entries.end(),
                      [&](const auto& kv) {
                        return kv.second.central == copy.central;
                      });
      if (member && !dst.seen_queries.contains(q.id) &&
          budget.consume(kQueryBytes)) {
        services.count_bytes(kQueryBytes);
        note_query_seen(services, to, q);
        maybe_respond(services, to, q);
        dst.query_copies.push_back(copy);  // replicate, keep local copy
      }
      kept.push_back(std::move(copy));
    }
    src.query_copies = std::move(kept);
  }

  // ---- 3. Push tokens: data copies towards central nodes. ----
  {
    std::vector<PushToken> kept;
    kept.reserve(src.push_tokens.size());
    for (std::size_t ti = 0; ti < src.push_tokens.size(); ++ti) {
      const PushToken token = src.push_tokens[ti];
      const DataItem& item = services.data(token.data);
      if (!item.alive(now)) {
        // Expired in flight: drop token and any in-transit cached copy.
        ++counters_.tokens_expired;
        continue;
      }
      const double w_to = services.path_weight(to, token.central);
      const double w_from = services.path_weight(from, token.central);
      if (!(w_to > w_from)) {
        kept.push_back(token);
        continue;
      }

      auto release_source_copy = [&]() {
        // The relay deletes its own copy after forwarding (Sec. V-A) —
        // unless another token (already kept or still pending in this
        // loop) needs it, or it has settled here.
        const auto it = src.entries.find(token.data);
        if (it == src.entries.end() || !it->second.in_transit) return;
        const bool kept_needs = std::any_of(
            kept.begin(), kept.end(),
            [&](const PushToken& t) { return t.data == token.data; });
        const bool pending_needs = std::any_of(
            src.push_tokens.begin() + static_cast<std::ptrdiff_t>(ti) + 1,
            src.push_tokens.end(),
            [&](const PushToken& t) { return t.data == token.data; });
        if (kept_needs || pending_needs) return;
        src.buffer.erase(token.data);
        src.entries.erase(it);
      };

      if (dst.entries.contains(token.data)) {
        // The destination already caches this item. The central case means
        // this NCL is served: the copy settles and the token completes.
        // Otherwise the token WAITS at its current holder rather than
        // piling up: each of the K copies must occupy a distinct node, or
        // the correlated gradients towards the (all well-connected)
        // central nodes would herd every token onto the same hub and
        // collapse the K per-NCL copies into one cache entry.
        if (to == token.central) {
          dst.entries[token.data].in_transit = false;
          ++counters_.tokens_settled;
          ++counters_.token_hops;
          release_source_copy();
        } else {
          kept.push_back(token);
        }
        continue;
      }

      // Traditional replacement strategies (Fig. 12) evict at insertion
      // time to admit the pushed copy; the utility strategy never evicts
      // here — a full buffer stops the push instead.
      if (!dst.buffer.fits(item.size) &&
          config_.strategy != CacheStrategy::kUtilityExchange) {
        evict_for(services, to, item);
      }

      if (dst.buffer.fits(item.size)) {
        if (!budget.consume(item.size)) {
          kept.push_back(token);  // try again at a later contact
          continue;
        }
        services.count_bytes(item.size);
        const bool inserted = dst.buffer.insert(token.data, item.size);
        DTN_CHECK(inserted, "push insert must succeed after fits() check");
        dst.entries[token.data] = make_entry(services, to, item.size,
                                             token.central, to != token.central);
        ++counters_.token_hops;
        if (to != token.central) {
          dst.push_tokens.push_back(token);
        } else {
          ++counters_.tokens_settled;
        }
        release_source_copy();
        continue;
      }

      // The next relay's buffer is full: forwarding stops here for now and
      // the data stays cached at the current relay (Fig. 5). The current
      // holder keeps serving as the temporal caching location — typically
      // in the ring around a saturated central node, which is precisely
      // how "multiple nodes at a NCL may be involved in caching". The
      // token survives, so the copy resumes migrating when a closer relay
      // with space appears (cache replacement also keeps consolidating
      // popular data inward in the meantime).
      ++counters_.tokens_stopped_full;
      if (!src.entries.contains(token.data)) {
        // The source holds only its native copy; park a cache copy here if
        // possible so the item is queryable at this NCL.
        if (src.buffer.insert(token.data, item.size)) {
          src.entries[token.data] =
              make_entry(services, from, item.size, token.central, true);
        }
      }
      kept.push_back(token);
    }
    src.push_tokens = std::move(kept);
  }
}

void NclCachingSchemeReference::run_replacement(SimServices& services, NodeId a,
                                       NodeId b, LinkBudget& budget) {
  NodeState& na = state(a);
  NodeState& nb = state(b);
  if (na.entries.empty() && nb.entries.empty()) return;

  // One exchange per NCL: each NCL holds its own copy of a data item
  // ("one copy of data is cached at each NCL", Sec. V), so copies assigned
  // to different central nodes never merge — pooling them together would
  // collapse the K per-NCL copies into one and destroy data accessibility.
  std::vector<NodeId> centrals;
  auto add_central = [&](const NodeState& ns) {
    for (const auto& [id, entry] : ns.entries) {
      if (std::find(centrals.begin(), centrals.end(), entry.central) ==
          centrals.end()) {
        centrals.push_back(entry.central);
      }
    }
  };
  add_central(na);
  add_central(nb);
  std::sort(centrals.begin(), centrals.end());  // deterministic order

  bool any_pool = false;
  for (NodeId central : centrals) {
    std::size_t duplicates = 0;
    const double weight_a = services.path_weight(a, central);
    const double weight_b = services.path_weight(b, central);

    // Same NCL, same item cached at both nodes: genuinely redundant —
    // collapse to the copy at the node nearer this central.
    {
      std::vector<DataId> shared;
      for (const auto& [id, entry] : na.entries) {
        if (entry.central != central) continue;
        auto it = nb.entries.find(id);
        if (it != nb.entries.end() && it->second.central == central) {
          shared.push_back(id);
        }
      }
      for (DataId id : shared) {
        NodeState& loser = weight_a >= weight_b ? nb : na;
        loser.buffer.erase(id);
        loser.entries.erase(id);
        ++duplicates;
      }
    }

    // Pool the two nodes' copies belonging to this NCL; merge request
    // histories (tiny control data) so both sides agree on popularity.
    std::vector<ReplacementItem> pool;
    std::unordered_map<DataId, CacheEntry> original_entries;
    auto collect = [&](NodeState& ns, bool at_a) {
      for (auto it = ns.entries.begin(); it != ns.entries.end();) {
        const DataId id = it->first;
        if (it->second.central != central) {
          ++it;
          continue;
        }
        auto ha = na.history.find(id);
        auto hb = nb.history.find(id);
        if (ha != na.history.end() && hb != nb.history.end()) {
          ha->second.merge(hb->second);
          hb->second = ha->second;
        } else if (ha != na.history.end()) {
          nb.history[id] = ha->second;
        } else if (hb != nb.history.end()) {
          na.history[id] = hb->second;
        }
        ReplacementItem ri;
        ri.id = id;
        ri.size = it->second.size;
        ri.at_a = at_a;
        ri.popularity = popularity_of(services, at_a ? a : b, id);
        pool.push_back(ri);
        original_entries.emplace(id, it->second);
        ++it;
      }
    };
    collect(na, true);
    collect(nb, false);
    if (pool.empty()) continue;
    any_pool = true;

    // Capacity available to this pool: free space plus the bytes the
    // pooled entries currently occupy at that node.
    auto pool_bytes_at = [&](bool at_a) {
      Bytes total = 0;
      for (const auto& item : pool) {
        if (item.at_a == at_a) total += item.size;
      }
      return total;
    };
    const Bytes capacity_a = na.buffer.free() + pool_bytes_at(true);
    const Bytes capacity_b = nb.buffer.free() + pool_bytes_at(false);

    ReplacementPlan plan =
        plan_replacement(pool, capacity_a, capacity_b, weight_a, weight_b,
                         config_.replacement, services.rng());

    // Apply: lift all pooled entries, then re-insert the keeps. In-place
    // keeps are free; moves cost link budget.
    std::unordered_map<DataId, ReplacementItem> by_id;
    for (const auto& item : pool) by_id.emplace(item.id, item);
    for (const auto& item : pool) {
      NodeState& holder = item.at_a ? na : nb;
      holder.buffer.erase(item.id);
      holder.entries.erase(item.id);
    }

    std::size_t moved = 0;
    std::size_t dropped = plan.dropped.size() + duplicates;
    auto restore_at_origin = [&](const ReplacementItem& item) {
      NodeState& origin = item.at_a ? na : nb;
      if (origin.buffer.insert(item.id, item.size)) {
        // Restore verbatim: an item that stays where it was keeps its
        // metadata — in particular a push-in-transit copy stays in
        // transit, so the relay still deletes it after forwarding.
        origin.entries[item.id] = original_entries.at(item.id);
        return true;
      }
      return false;
    };
    auto reinsert = [&](const std::vector<DataId>& keeps, bool to_a) {
      NodeState& target = to_a ? na : nb;
      const NodeId target_id = to_a ? a : b;
      for (DataId id : keeps) {
        const ReplacementItem& item = by_id.at(id);
        const bool moving = item.at_a != to_a;
        if (moving && !budget.consume(item.size)) {
          // No link budget to realize the move: keep it where it was.
          if (!restore_at_origin(item)) ++dropped;
          continue;
        }
        if (moving) services.count_bytes(item.size);
        if (!target.buffer.insert(id, item.size)) {
          // Should not happen (plan respects capacities); degrade gracefully.
          if (!restore_at_origin(item)) ++dropped;
          continue;
        }
        if (moving) {
          target.entries[id] =
              make_entry(services, target_id, item.size, central, false);
          ++moved;
        } else {
          target.entries[id] = original_entries.at(id);
        }
      }
    };
    reinsert(plan.keep_at_a, true);
    reinsert(plan.keep_at_b, false);

    if (moved + dropped > 0) services.count_replacement(moved + dropped);
    DTN_COUNT_N(kBufferEvictions, dropped);
  }
  if (any_pool) ++replacement_exchanges_;
}

void NclCachingSchemeReference::on_contact(SimServices& services, NodeId a, NodeId b,
                                  LinkBudget& budget) {
  prune_node_with_registry(services, a);
  prune_node_with_registry(services, b);
  transfer_direction(services, a, b, budget);
  transfer_direction(services, b, a, budget);
  if (config_.enable_replacement &&
      config_.strategy == CacheStrategy::kUtilityExchange) {
    run_replacement(services, a, b, budget);
  }
  // Buffer occupancy <= capacity after every contact event: pushes, reply
  // forwarding and the knapsack exchange all charge the same byte budget.
  DTN_CHECK_LE(state(a).buffer.used(), state(a).buffer.capacity());
  DTN_CHECK_LE(state(b).buffer.used(), state(b).buffer.capacity());
}

NclCachingSchemeReference::CacheEntry NclCachingSchemeReference::make_entry(
    SimServices& services, NodeId holder, Bytes size, NodeId central,
    bool in_transit) const {
  CacheEntry entry;
  entry.size = size;
  entry.central = central;
  entry.in_transit = in_transit;
  entry.inserted_at = services.now();
  entry.last_access = services.now();
  const NodeState& ns = state(holder);
  entry.h_value = ns.gds_l + 0.0;  // popularity 0 at insertion (footnote 3)
  return entry;
}

bool NclCachingSchemeReference::evict_for(SimServices& services, NodeId node,
                                 const DataItem& item) {
  NodeState& ns = state(node);
  if (item.size > ns.buffer.capacity()) return false;

  // Rank current entries by the active policy, cheapest victim first.
  std::vector<std::pair<double, DataId>> ranked;
  ranked.reserve(ns.entries.size());
  for (const auto& [id, entry] : ns.entries) {
    double key = 0.0;
    switch (config_.strategy) {
      case CacheStrategy::kFifo:
        key = entry.inserted_at;
        break;
      case CacheStrategy::kLru:
        key = entry.last_access;
        break;
      case CacheStrategy::kGds:
        key = entry.h_value;
        break;
      case CacheStrategy::kUtilityExchange:
        return ns.buffer.fits(item.size);  // no insertion-time eviction
    }
    ranked.emplace_back(key, id);
  }
  std::sort(ranked.begin(), ranked.end());

  std::size_t evicted = 0;
  for (const auto& [key, victim] : ranked) {
    if (ns.buffer.fits(item.size)) break;
    if (config_.strategy == CacheStrategy::kGds) ns.gds_l = key;  // aging
    ns.buffer.erase(victim);
    ns.entries.erase(victim);
    ++evicted;
  }
  if (evicted > 0) {
    services.count_replacement(evicted);
    DTN_COUNT_N(kBufferEvictions, evicted);
  }
  return ns.buffer.fits(item.size);
}

void NclCachingSchemeReference::prune_node_with_registry(SimServices& services,
                                                NodeId node) {
  const Time now = services.now();
  NodeState& ns = state(node);
  for (auto it = ns.entries.begin(); it != ns.entries.end();) {
    if (!services.data(it->first).alive(now)) {
      ns.buffer.erase(it->first);
      it = ns.entries.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(ns.push_tokens, [&](const PushToken& t) {
    return !services.data(t.data).alive(now);
  });
  std::erase_if(ns.query_copies,
                [&](const QueryCopy& c) { return !c.query.alive(now); });
  std::erase_if(ns.responses,
                [&](const ResponseBundle& r) { return !r.query.alive(now); });
  for (auto it = ns.history.begin(); it != ns.history.end();) {
    if (!services.data(it->first).alive(now)) {
      it = ns.history.erase(it);
    } else {
      ++it;
    }
  }
}

void NclCachingSchemeReference::on_maintenance(SimServices& services) {
  for (NodeId node = 0; node < static_cast<NodeId>(nodes_.size()); ++node) {
    prune_node_with_registry(services, node);
  }
  if (config_.dynamic_ncl) reselect_centrals(services);
}

void NclCachingSchemeReference::reselect_centrals(SimServices& services) {
  const AllPairsPaths& paths = services.paths();
  if (paths.empty()) return;
  const NodeId n = std::min<NodeId>(paths.node_count(),
                                    static_cast<NodeId>(nodes_.size()));
  if (n < 2) return;

  // The NCL metric of Eq. 3, computed from the already-available path
  // tables: the mean weight with which the other nodes reach each node.
  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += paths.weight(j, i);
    }
    ranked.emplace_back(-sum / static_cast<double>(n - 1), i);
  }
  std::sort(ranked.begin(), ranked.end());

  const std::size_t k = config_.central_nodes.size();
  std::vector<NodeId> fresh;
  fresh.reserve(k);
  for (std::size_t i = 0; i < k && i < ranked.size(); ++i) {
    fresh.push_back(ranked[i].second);
  }
  if (fresh.empty() || fresh == config_.central_nodes) return;
  config_.central_nodes = std::move(fresh);

  // Re-home cached copies whose NCL no longer exists: assign each to the
  // current central its holder reaches best, so query broadcasts and
  // replacement keep finding them instead of serving a ghost NCL.
  for (NodeId holder = 0; holder < static_cast<NodeId>(nodes_.size());
       ++holder) {
    NodeState& ns = state(holder);
    if (ns.entries.empty() && ns.push_tokens.empty()) continue;
    NodeId best = config_.central_nodes.front();
    double best_weight = -1.0;
    for (NodeId c : config_.central_nodes) {
      const double w = services.path_weight(holder, c);
      if (w > best_weight) {
        best_weight = w;
        best = c;
      }
    }
    for (auto& [id, entry] : ns.entries) {
      if (!is_central(entry.central)) entry.central = best;
    }
    // Push tokens towards a dead central redirect to the holder's best
    // current central (dedup: only one token per (data, central) pair).
    for (auto& token : ns.push_tokens) {
      if (!is_central(token.central)) token.central = best;
    }
  }
}

std::size_t NclCachingSchemeReference::cached_copies(Time now) const {
  std::size_t count = 0;
  for (const auto& ns : nodes_) count += ns.entries.size();
  (void)now;  // maintenance pruning keeps entries fresh
  return count;
}

Bytes NclCachingSchemeReference::cached_bytes(Time now) const {
  Bytes total = 0;
  for (const auto& ns : nodes_) total += ns.buffer.used();
  (void)now;
  return total;
}

}  // namespace dtn

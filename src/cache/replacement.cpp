#include "cache/replacement.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "cache/knapsack.h"
#include "common/check.h"
#include "common/instrument.h"

namespace dtn {
namespace {

/// Selection state of one node during an exchange.
struct NodeSelection {
  std::vector<std::size_t> taken;  ///< indices into the pool
  Bytes free = 0;
  double weight = 0.0;  ///< p_X to the central (utility factor)
  bool is_a = false;
};

double utility_of(const ReplacementItem& item, const NodeSelection& node) {
  const double u = item.popularity * node.weight;
  // u_i = w_i * p_X(central): a product of two probabilities (Sec. V-D),
  // also the Bernoulli parameter of Algorithm 1's probabilistic caching.
  DTN_CHECK_PROB(u);
  return u;
}

/// Primary selection for one node following Algorithm 1: in each round,
/// walk the remaining items in decreasing utility order (the paper's
/// repeated argmax over S') and cache each with probability u_i; rounds
/// repeat so the buffer tends towards full utilization, yet a popular item
/// can lose its slot to the next-best item — the global copy-control
/// effect of Sec. V-D.3. With `probabilistic` disabled this is the pure
/// knapsack of Eq. 7 instead.
void primary_select(const std::vector<ReplacementItem>& pool,
                    std::vector<std::size_t>& available, NodeSelection& node,
                    const ReplacementConfig& config, Rng& rng) {
  auto smallest_fits = [&]() {
    for (std::size_t idx : available) {
      if (pool[idx].size <= node.free) return true;
    }
    return false;
  };
  auto take = [&](std::size_t idx) {
    node.taken.push_back(idx);
    node.free -= pool[idx].size;
    // Algorithm 1 only caches items that fit, so the running free-space
    // budget can never go negative.
    DTN_CHECK_GE(node.free, 0);
    available.erase(std::find(available.begin(), available.end(), idx));
  };

  if (config.probabilistic) {
    for (int round = 0; round < config.max_rounds; ++round) {
      if (available.empty() || !smallest_fits()) break;
      std::vector<std::size_t> order = available;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t x, std::size_t y) {
                         return utility_of(pool[x], node) >
                                utility_of(pool[y], node);
                       });
      for (std::size_t idx : order) {
        if (pool[idx].size > node.free) continue;
        if (rng.bernoulli(utility_of(pool[idx], node))) take(idx);
      }
    }
    return;
  }

  if (available.empty() || !smallest_fits()) return;
  std::vector<KnapsackItem> items;
  items.reserve(available.size());
  for (std::size_t idx : available) {
    items.push_back({utility_of(pool[idx], node), pool[idx].size});
  }
  const KnapsackResult dp =
      solve_knapsack(items, node.free, config.knapsack_unit);
  std::vector<std::size_t> picks;
  picks.reserve(dp.selected.size());
  for (std::size_t k : dp.selected) picks.push_back(available[k]);
  for (std::size_t idx : picks) {
    if (pool[idx].size <= node.free) take(idx);
  }
}

}  // namespace

ReplacementPlan plan_replacement(const std::vector<ReplacementItem>& pool,
                                 Bytes capacity_a, Bytes capacity_b,
                                 double weight_a, double weight_b,
                                 const ReplacementConfig& config, Rng& rng) {
  if (capacity_a < 0 || capacity_b < 0) {
    throw std::invalid_argument("negative capacity");
  }
  DTN_SCOPED_TIMER(kReplacementPlan);
  DTN_COUNT(kReplacementPlans);
  DTN_COUNT_N(kReplacementItemsPooled, pool.size());
  {
    std::unordered_set<DataId> ids;
    for (const auto& item : pool) {
      if (item.size <= 0) throw std::invalid_argument("item size must be > 0");
      if (!ids.insert(item.id).second) {
        throw std::invalid_argument("duplicate data id in replacement pool");
      }
    }
  }

  std::vector<std::size_t> available(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) available[i] = i;

  NodeSelection sel_a{{}, capacity_a, weight_a, true};
  NodeSelection sel_b{{}, capacity_b, weight_b, false};

  // The node nearer the central picks first (Sec. V-D.2).
  NodeSelection& first = weight_a >= weight_b ? sel_a : sel_b;
  NodeSelection& second = weight_a >= weight_b ? sel_b : sel_a;
  primary_select(pool, available, first, config, rng);
  primary_select(pool, available, second, config, rng);

  // Anti-drop pass, after BOTH primaries: an item nobody claimed returns
  // to its resident node when space remains there, or crosses to the peer
  // when only the peer has room; it is dropped only when neither fits.
  // (Running this inside the first selector's pass would let a full node
  // silently re-take everything and never cede buffer space to its
  // neighbourhood.) Higher-utility items are rescued first.
  if (!available.empty()) {
    std::vector<std::size_t> order = available;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      if (pool[x].popularity != pool[y].popularity) {
        return pool[x].popularity > pool[y].popularity;
      }
      return pool[x].size < pool[y].size;
    });
    std::vector<std::size_t> rescued;
    for (std::size_t idx : order) {
      NodeSelection& resident = pool[idx].at_a ? sel_a : sel_b;
      NodeSelection& other = pool[idx].at_a ? sel_b : sel_a;
      if (pool[idx].size <= resident.free) {
        resident.taken.push_back(idx);
        resident.free -= pool[idx].size;
        rescued.push_back(idx);
      } else if (pool[idx].size <= other.free) {
        other.taken.push_back(idx);
        other.free -= pool[idx].size;
        rescued.push_back(idx);
      }
    }
    for (std::size_t idx : rescued) {
      available.erase(std::find(available.begin(), available.end(), idx));
    }
  }

  ReplacementPlan plan;
  auto record = [&](const NodeSelection& node) {
    for (std::size_t idx : node.taken) {
      const ReplacementItem& item = pool[idx];
      (node.is_a ? plan.keep_at_a : plan.keep_at_b).push_back(item.id);
      if (item.at_a != node.is_a) {
        plan.moved.push_back(item.id);
        plan.moved_bytes += item.size;
      }
    }
  };
  record(sel_a);
  record(sel_b);
  for (std::size_t idx : available) plan.dropped.push_back(pool[idx].id);

  // Eq. 7 / Algorithm 1 contract: the plan is a partition of the pooled
  // items — every item is kept at A, kept at B, or explicitly dropped — and
  // neither node's selection exceeds its capacity.
  DTN_CHECK(plan.keep_at_a.size() + plan.keep_at_b.size() +
                    plan.dropped.size() ==
                pool.size(),
            "replacement plan preserves the union of pooled items");
  DTN_CHECK_GE(sel_a.free, 0);
  DTN_CHECK_GE(sel_b.free, 0);
  return plan;
}

namespace {

/// Stable insertion sort of ws-order indices, descending by precomputed
/// utility. Produces the unique stable-descending permutation — the same
/// one std::stable_sort yields in the oracle overload — without the merge
/// buffer stable_sort allocates per round.
void sort_by_utility_desc(std::vector<std::size_t>& order,
                          const std::vector<double>& utilities) {
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t key = order[i];
    std::size_t j = i;
    while (j > 0 && utilities[order[j - 1]] < utilities[key]) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = key;
  }
}

/// Workspace twin of primary_select: identical decisions, identical RNG
/// consumption sequence. `utilities` must already hold u_i for this node.
void primary_select_ws(const std::vector<ReplacementItem>& pool,
                       ReplacementWorkspace& ws,
                       std::vector<std::size_t>& taken, Bytes& free,
                       const ReplacementConfig& config, Rng& rng) {
  auto smallest_fits = [&]() {
    for (std::size_t idx : ws.available) {
      if (pool[idx].size <= free) return true;
    }
    return false;
  };
  auto take = [&](std::size_t idx) {
    taken.push_back(idx);
    free -= pool[idx].size;
    // Algorithm 1 only caches items that fit, so the running free-space
    // budget can never go negative.
    DTN_CHECK_GE(free, 0);
    ws.available.erase(
        std::find(ws.available.begin(), ws.available.end(), idx));
  };

  if (config.probabilistic) {
    for (int round = 0; round < config.max_rounds; ++round) {
      if (ws.available.empty() || !smallest_fits()) break;
      ws.order.assign(ws.available.begin(), ws.available.end());
      sort_by_utility_desc(ws.order, ws.utilities);
      for (std::size_t idx : ws.order) {
        if (pool[idx].size > free) continue;
        if (rng.bernoulli(ws.utilities[idx])) take(idx);
      }
    }
    return;
  }

  if (ws.available.empty() || !smallest_fits()) return;
  ws.knap_items.clear();
  for (std::size_t idx : ws.available) {
    ws.knap_items.push_back({ws.utilities[idx], pool[idx].size});
  }
  solve_knapsack(ws.knap_items, free, config.knapsack_unit, ws.knapsack,
                 ws.knap_result);
  ws.picks.clear();
  for (std::size_t k : ws.knap_result.selected) {
    ws.picks.push_back(ws.available[k]);
  }
  for (std::size_t idx : ws.picks) {
    if (pool[idx].size <= free) take(idx);
  }
}

}  // namespace

void plan_replacement(const std::vector<ReplacementItem>& pool,
                      Bytes capacity_a, Bytes capacity_b, double weight_a,
                      double weight_b, const ReplacementConfig& config,
                      Rng& rng, ReplacementWorkspace& ws,
                      ReplacementPlan& out) {
  if (capacity_a < 0 || capacity_b < 0) {
    throw std::invalid_argument("negative capacity");
  }
  DTN_SCOPED_TIMER(kReplacementPlan);
  DTN_COUNT(kReplacementPlans);
  DTN_COUNT_N(kReplacementItemsPooled, pool.size());
  ws.ids.clear();
  for (const auto& item : pool) {
    if (item.size <= 0) throw std::invalid_argument("item size must be > 0");
    ws.ids.push_back(item.id);
  }
  std::sort(ws.ids.begin(), ws.ids.end());
  if (std::adjacent_find(ws.ids.begin(), ws.ids.end()) != ws.ids.end()) {
    throw std::invalid_argument("duplicate data id in replacement pool");
  }

  ws.available.resize(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) ws.available[i] = i;
  ws.taken_a.clear();
  ws.taken_b.clear();
  Bytes free_a = capacity_a;
  Bytes free_b = capacity_b;

  // The node nearer the central picks first (Sec. V-D.2). Utilities are
  // precomputed per node: utility_of is pure in (item, weight), so the
  // values — and the DTN_CHECK_PROB contract on them — match the oracle's
  // per-comparison evaluations exactly.
  auto fill_utilities = [&](double weight) {
    ws.utilities.resize(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const double u = pool[i].popularity * weight;
      DTN_CHECK_PROB(u);
      ws.utilities[i] = u;
    }
  };
  const bool a_first = weight_a >= weight_b;
  fill_utilities(a_first ? weight_a : weight_b);
  primary_select_ws(pool, ws, a_first ? ws.taken_a : ws.taken_b,
                    a_first ? free_a : free_b, config, rng);
  fill_utilities(a_first ? weight_b : weight_a);
  primary_select_ws(pool, ws, a_first ? ws.taken_b : ws.taken_a,
                    a_first ? free_b : free_a, config, rng);

  // Anti-drop pass, after BOTH primaries (see the oracle overload for the
  // rationale). Higher-utility items are rescued first.
  if (!ws.available.empty()) {
    ws.order.assign(ws.available.begin(), ws.available.end());
    // Stable insertion sort: popularity descending, then size ascending —
    // the oracle's stable_sort comparator.
    for (std::size_t i = 1; i < ws.order.size(); ++i) {
      const std::size_t key = ws.order[i];
      std::size_t j = i;
      auto before = [&](std::size_t x, std::size_t y) {
        if (pool[x].popularity != pool[y].popularity) {
          return pool[x].popularity > pool[y].popularity;
        }
        return pool[x].size < pool[y].size;
      };
      while (j > 0 && before(key, ws.order[j - 1])) {
        ws.order[j] = ws.order[j - 1];
        --j;
      }
      ws.order[j] = key;
    }
    ws.rescued.clear();
    for (std::size_t idx : ws.order) {
      std::vector<std::size_t>& resident =
          pool[idx].at_a ? ws.taken_a : ws.taken_b;
      std::vector<std::size_t>& other =
          pool[idx].at_a ? ws.taken_b : ws.taken_a;
      Bytes& resident_free = pool[idx].at_a ? free_a : free_b;
      Bytes& other_free = pool[idx].at_a ? free_b : free_a;
      if (pool[idx].size <= resident_free) {
        resident.push_back(idx);
        resident_free -= pool[idx].size;
        ws.rescued.push_back(idx);
      } else if (pool[idx].size <= other_free) {
        other.push_back(idx);
        other_free -= pool[idx].size;
        ws.rescued.push_back(idx);
      }
    }
    for (std::size_t idx : ws.rescued) {
      ws.available.erase(
          std::find(ws.available.begin(), ws.available.end(), idx));
    }
  }

  out.keep_at_a.clear();
  out.keep_at_b.clear();
  out.dropped.clear();
  out.moved.clear();
  out.moved_bytes = 0;
  auto record = [&](const std::vector<std::size_t>& taken, bool is_a) {
    for (std::size_t idx : taken) {
      const ReplacementItem& item = pool[idx];
      (is_a ? out.keep_at_a : out.keep_at_b).push_back(item.id);
      if (item.at_a != is_a) {
        out.moved.push_back(item.id);
        out.moved_bytes += item.size;
      }
    }
  };
  record(ws.taken_a, true);
  record(ws.taken_b, false);
  for (std::size_t idx : ws.available) out.dropped.push_back(pool[idx].id);

  // Eq. 7 / Algorithm 1 contract: the plan is a partition of the pooled
  // items — every item is kept at A, kept at B, or explicitly dropped — and
  // neither node's selection exceeds its capacity.
  DTN_CHECK(out.keep_at_a.size() + out.keep_at_b.size() +
                    out.dropped.size() ==
                pool.size(),
            "replacement plan preserves the union of pooled items");
  DTN_CHECK_GE(free_a, 0);
  DTN_CHECK_GE(free_b, 0);
}

}  // namespace dtn

#include "cache/replacement.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "cache/knapsack.h"
#include "common/check.h"
#include "common/instrument.h"

namespace dtn {
namespace {

/// Selection state of one node during an exchange.
struct NodeSelection {
  std::vector<std::size_t> taken;  ///< indices into the pool
  Bytes free = 0;
  double weight = 0.0;  ///< p_X to the central (utility factor)
  bool is_a = false;
};

double utility_of(const ReplacementItem& item, const NodeSelection& node) {
  const double u = item.popularity * node.weight;
  // u_i = w_i * p_X(central): a product of two probabilities (Sec. V-D),
  // also the Bernoulli parameter of Algorithm 1's probabilistic caching.
  DTN_CHECK_PROB(u);
  return u;
}

/// Primary selection for one node following Algorithm 1: in each round,
/// walk the remaining items in decreasing utility order (the paper's
/// repeated argmax over S') and cache each with probability u_i; rounds
/// repeat so the buffer tends towards full utilization, yet a popular item
/// can lose its slot to the next-best item — the global copy-control
/// effect of Sec. V-D.3. With `probabilistic` disabled this is the pure
/// knapsack of Eq. 7 instead.
void primary_select(const std::vector<ReplacementItem>& pool,
                    std::vector<std::size_t>& available, NodeSelection& node,
                    const ReplacementConfig& config, Rng& rng) {
  auto smallest_fits = [&]() {
    for (std::size_t idx : available) {
      if (pool[idx].size <= node.free) return true;
    }
    return false;
  };
  auto take = [&](std::size_t idx) {
    node.taken.push_back(idx);
    node.free -= pool[idx].size;
    // Algorithm 1 only caches items that fit, so the running free-space
    // budget can never go negative.
    DTN_CHECK_GE(node.free, 0);
    available.erase(std::find(available.begin(), available.end(), idx));
  };

  if (config.probabilistic) {
    for (int round = 0; round < config.max_rounds; ++round) {
      if (available.empty() || !smallest_fits()) break;
      std::vector<std::size_t> order = available;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t x, std::size_t y) {
                         return utility_of(pool[x], node) >
                                utility_of(pool[y], node);
                       });
      for (std::size_t idx : order) {
        if (pool[idx].size > node.free) continue;
        if (rng.bernoulli(utility_of(pool[idx], node))) take(idx);
      }
    }
    return;
  }

  if (available.empty() || !smallest_fits()) return;
  std::vector<KnapsackItem> items;
  items.reserve(available.size());
  for (std::size_t idx : available) {
    items.push_back({utility_of(pool[idx], node), pool[idx].size});
  }
  const KnapsackResult dp =
      solve_knapsack(items, node.free, config.knapsack_unit);
  std::vector<std::size_t> picks;
  picks.reserve(dp.selected.size());
  for (std::size_t k : dp.selected) picks.push_back(available[k]);
  for (std::size_t idx : picks) {
    if (pool[idx].size <= node.free) take(idx);
  }
}

}  // namespace

ReplacementPlan plan_replacement(const std::vector<ReplacementItem>& pool,
                                 Bytes capacity_a, Bytes capacity_b,
                                 double weight_a, double weight_b,
                                 const ReplacementConfig& config, Rng& rng) {
  if (capacity_a < 0 || capacity_b < 0) {
    throw std::invalid_argument("negative capacity");
  }
  DTN_SCOPED_TIMER(kReplacementPlan);
  DTN_COUNT(kReplacementPlans);
  DTN_COUNT_N(kReplacementItemsPooled, pool.size());
  {
    std::unordered_set<DataId> ids;
    for (const auto& item : pool) {
      if (item.size <= 0) throw std::invalid_argument("item size must be > 0");
      if (!ids.insert(item.id).second) {
        throw std::invalid_argument("duplicate data id in replacement pool");
      }
    }
  }

  std::vector<std::size_t> available(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) available[i] = i;

  NodeSelection sel_a{{}, capacity_a, weight_a, true};
  NodeSelection sel_b{{}, capacity_b, weight_b, false};

  // The node nearer the central picks first (Sec. V-D.2).
  NodeSelection& first = weight_a >= weight_b ? sel_a : sel_b;
  NodeSelection& second = weight_a >= weight_b ? sel_b : sel_a;
  primary_select(pool, available, first, config, rng);
  primary_select(pool, available, second, config, rng);

  // Anti-drop pass, after BOTH primaries: an item nobody claimed returns
  // to its resident node when space remains there, or crosses to the peer
  // when only the peer has room; it is dropped only when neither fits.
  // (Running this inside the first selector's pass would let a full node
  // silently re-take everything and never cede buffer space to its
  // neighbourhood.) Higher-utility items are rescued first.
  if (!available.empty()) {
    std::vector<std::size_t> order = available;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      if (pool[x].popularity != pool[y].popularity) {
        return pool[x].popularity > pool[y].popularity;
      }
      return pool[x].size < pool[y].size;
    });
    std::vector<std::size_t> rescued;
    for (std::size_t idx : order) {
      NodeSelection& resident = pool[idx].at_a ? sel_a : sel_b;
      NodeSelection& other = pool[idx].at_a ? sel_b : sel_a;
      if (pool[idx].size <= resident.free) {
        resident.taken.push_back(idx);
        resident.free -= pool[idx].size;
        rescued.push_back(idx);
      } else if (pool[idx].size <= other.free) {
        other.taken.push_back(idx);
        other.free -= pool[idx].size;
        rescued.push_back(idx);
      }
    }
    for (std::size_t idx : rescued) {
      available.erase(std::find(available.begin(), available.end(), idx));
    }
  }

  ReplacementPlan plan;
  auto record = [&](const NodeSelection& node) {
    for (std::size_t idx : node.taken) {
      const ReplacementItem& item = pool[idx];
      (node.is_a ? plan.keep_at_a : plan.keep_at_b).push_back(item.id);
      if (item.at_a != node.is_a) {
        plan.moved.push_back(item.id);
        plan.moved_bytes += item.size;
      }
    }
  };
  record(sel_a);
  record(sel_b);
  for (std::size_t idx : available) plan.dropped.push_back(pool[idx].id);

  // Eq. 7 / Algorithm 1 contract: the plan is a partition of the pooled
  // items — every item is kept at A, kept at B, or explicitly dropped — and
  // neither node's selection exceeds its capacity.
  DTN_CHECK(plan.keep_at_a.size() + plan.keep_at_b.size() +
                    plan.dropped.size() ==
                pool.size(),
            "replacement plan preserves the union of pooled items");
  DTN_CHECK_GE(sel_a.free, 0);
  DTN_CHECK_GE(sel_b.free, 0);
  return plan;
}

}  // namespace dtn

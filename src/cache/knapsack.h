// 0/1 knapsack solver for cache replacement (paper Eq. 7).
//
// The paper solves cache replacement as a knapsack over the pooled cached
// data of two nodes in contact, "in pseudopolynomial time O(n * S_A) by
// dynamic programming". Capacities are bytes (hundreds of MB), so a naive
// byte-indexed DP is infeasible; we quantize capacity into fixed-size units
// (default 1 MiB) — item sizes are rounded *up* so the byte capacity is
// never exceeded, preserving the knapsack feasibility invariant.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dtn {

struct KnapsackItem {
  double value = 0.0;  ///< utility u_i (>= 0)
  Bytes size = 0;      ///< bytes (> 0)
};

struct KnapsackResult {
  std::vector<std::size_t> selected;  ///< indices into the input vector
  double total_value = 0.0;
  Bytes total_size = 0;  ///< exact byte total of selected items
};

/// Reusable DP scratch for the allocation-free solve_knapsack overload.
/// The keep table is a flat items x (cap_units + 1) byte matrix instead of
/// a vector of vector<bool>; identical DP recurrence and reconstruction.
struct KnapsackWorkspace {
  std::vector<std::size_t> unit_sizes;
  std::vector<double> dp;
  std::vector<std::uint8_t> keep;
};

/// Maximizes total value subject to total (quantized) size <= capacity.
/// Deterministic: ties resolve toward lower indices. `unit` is the
/// quantization granularity in bytes; must be > 0.
/// The DP is pure — no RNG, fully determined by its inputs — so the
/// convenience overload simply delegates to the workspace form with local
/// scratch; there is a single implementation, not an oracle pair.
KnapsackResult solve_knapsack(const std::vector<KnapsackItem>& items,
                              Bytes capacity, Bytes unit = 1 << 20);

/// Allocation-free form: scratch and the result's `selected` vector retain
/// capacity across calls. `out` is reset unconditionally.
void solve_knapsack(const std::vector<KnapsackItem>& items, Bytes capacity,
                    Bytes unit, KnapsackWorkspace& ws, KnapsackResult& out);

}  // namespace dtn

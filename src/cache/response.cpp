#include "cache/response.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace dtn {

double SigmoidResponse::probability(Time remaining, Time t_q) const {
  if (!(t_q > 0.0)) throw std::invalid_argument("T_q must be positive");
  if (!(p_max > 0.0) || p_max > 1.0 || !(p_min > p_max / 2.0) ||
      !(p_min < p_max)) {
    throw std::invalid_argument(
        "sigmoid response requires 0 < p_max <= 1 and p_max/2 < p_min < p_max");
  }
  const Time t = std::clamp(remaining, 0.0, t_q);
  // Eq. (4): p_R(t) = k1 / (1 + e^{-k2 t}), with k1 = 2 p_min and
  // k2 = ln(p_max / (2 p_min - p_max)) / T_q, so that p_R(0) = p_min and
  // p_R(T_q) = p_max.
  const double k1 = 2.0 * p_min;
  const double k2 = std::log(p_max / (2.0 * p_min - p_max)) / t_q;
  const double p = k1 / (1.0 + std::exp(-k2 * t));
  // Eq. 4: the sigmoid anchors p_R(0) = p_min and p_R(T_q) = p_max, so the
  // reply probability must stay inside [0, 1] for every valid parameter set.
  DTN_CHECK_PROB(p);
  return p;
}

}  // namespace dtn

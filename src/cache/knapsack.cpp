#include "cache/knapsack.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn {

KnapsackResult solve_knapsack(const std::vector<KnapsackItem>& items,
                              Bytes capacity, Bytes unit) {
  KnapsackWorkspace ws;
  KnapsackResult result;
  solve_knapsack(items, capacity, unit, ws, result);
  return result;
}

void solve_knapsack(const std::vector<KnapsackItem>& items, Bytes capacity,
                    Bytes unit, KnapsackWorkspace& ws, KnapsackResult& out) {
  if (unit <= 0) throw std::invalid_argument("knapsack unit must be > 0");
  out.selected.clear();
  out.total_value = 0.0;
  out.total_size = 0;
  if (items.empty() || capacity <= 0) return;
  DTN_SCOPED_TIMER(kKnapsack);
  DTN_COUNT(kKnapsackSolves);

  const std::size_t cap_units = static_cast<std::size_t>(capacity / unit);
  if (cap_units == 0) return;

  ws.unit_sizes.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].size <= 0) throw std::invalid_argument("item size must be > 0");
    if (items[i].value < 0.0) throw std::invalid_argument("item value must be >= 0");
    // Round up so quantized feasibility implies byte feasibility.
    ws.unit_sizes[i] = static_cast<std::size_t>((items[i].size + unit - 1) / unit);
  }

  // dp[c] = best value using capacity c; keep[i * (cap+1) + c] records the
  // choice for reconstruction (flat byte matrix, reused across calls).
  ws.dp.assign(cap_units + 1, 0.0);
  ws.keep.assign(items.size() * (cap_units + 1), 0);

  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t s = ws.unit_sizes[i];
    if (s > cap_units) continue;
    DTN_COUNT_N(kKnapsackDpCells, cap_units - s + 1);
    std::uint8_t* keep_row = ws.keep.data() + i * (cap_units + 1);
    for (std::size_t c = cap_units; c >= s; --c) {
      const double candidate = ws.dp[c - s] + items[i].value;
      if (candidate > ws.dp[c]) {
        ws.dp[c] = candidate;
        keep_row[c] = 1;
      }
    }
  }

  // Reconstruct from the full capacity downward.
  std::size_t c = cap_units;
  for (std::size_t i = items.size(); i-- > 0;) {
    if (c >= ws.unit_sizes[i] && ws.keep[i * (cap_units + 1) + c]) {
      out.selected.push_back(i);
      out.total_value += items[i].value;
      out.total_size += items[i].size;
      c -= ws.unit_sizes[i];
    }
  }
  std::reverse(out.selected.begin(), out.selected.end());
  // Eq. 7 feasibility: sizes were quantized *up*, so the exact byte total of
  // the selection can never exceed the byte capacity.
  DTN_CHECK_LE(out.total_size, capacity);
  DTN_CHECK_FINITE(out.total_value);
  DTN_CHECK_GE(out.total_value, 0.0);
  DTN_CHECK(std::is_sorted(out.selected.begin(), out.selected.end()),
            "knapsack selection is unique and in input order");
}

}  // namespace dtn

#include "cache/knapsack.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn {

KnapsackResult solve_knapsack(const std::vector<KnapsackItem>& items,
                              Bytes capacity, Bytes unit) {
  if (unit <= 0) throw std::invalid_argument("knapsack unit must be > 0");
  KnapsackResult result;
  if (items.empty() || capacity <= 0) return result;
  DTN_SCOPED_TIMER(kKnapsack);
  DTN_COUNT(kKnapsackSolves);

  const std::size_t cap_units = static_cast<std::size_t>(capacity / unit);
  if (cap_units == 0) return result;

  std::vector<std::size_t> unit_sizes(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].size <= 0) throw std::invalid_argument("item size must be > 0");
    if (items[i].value < 0.0) throw std::invalid_argument("item value must be >= 0");
    // Round up so quantized feasibility implies byte feasibility.
    unit_sizes[i] = static_cast<std::size_t>((items[i].size + unit - 1) / unit);
  }

  // dp[c] = best value using capacity c; keep[i][c] records the choice for
  // reconstruction. keep is items x (cap+1) bits.
  std::vector<double> dp(cap_units + 1, 0.0);
  std::vector<std::vector<bool>> keep(items.size(),
                                      std::vector<bool>(cap_units + 1, false));

  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t s = unit_sizes[i];
    if (s > cap_units) continue;
    DTN_COUNT_N(kKnapsackDpCells, cap_units - s + 1);
    for (std::size_t c = cap_units; c >= s; --c) {
      const double candidate = dp[c - s] + items[i].value;
      if (candidate > dp[c]) {
        dp[c] = candidate;
        keep[i][c] = true;
      }
    }
  }

  // Reconstruct from the full capacity downward.
  std::size_t c = cap_units;
  for (std::size_t i = items.size(); i-- > 0;) {
    if (c >= unit_sizes[i] && keep[i][c]) {
      result.selected.push_back(i);
      result.total_value += items[i].value;
      result.total_size += items[i].size;
      c -= unit_sizes[i];
    }
  }
  std::reverse(result.selected.begin(), result.selected.end());
  // Eq. 7 feasibility: sizes were quantized *up*, so the exact byte total of
  // the selection can never exceed the byte capacity.
  DTN_CHECK_LE(result.total_size, capacity);
  DTN_CHECK_FINITE(result.total_value);
  DTN_CHECK_GE(result.total_value, 0.0);
  DTN_CHECK(std::is_sorted(result.selected.begin(), result.selected.end()),
            "knapsack selection is unique and in input order");
  return result;
}

}  // namespace dtn

// Data popularity estimation (paper Sec. V-D.1, Eq. 6).
//
// Requests for a data item are modeled as a Poisson process whose rate is
// estimated from the observed request history; popularity is the
// probability that at least one more request arrives before the data
// expires. Only two time values and a counter are maintained, exactly as
// the paper prescribes ("negligible space overhead").
#pragma once

#include "common/types.h"

namespace dtn {

class PopularityEstimator {
 public:
  PopularityEstimator() = default;

  /// Records one request observed at `when`.
  void record_request(Time when);

  /// Merges another node's view of the same data item's request history.
  /// Conservative union: earliest first request, latest last request,
  /// larger count (counts cannot be added — the histories overlap).
  void merge(const PopularityEstimator& other);

  std::size_t request_count() const { return count_; }
  Time first_request() const { return first_; }
  Time last_request() const { return last_; }

  /// Estimated request rate lambda_d = k / (t_k - t_1). Zero until two
  /// requests spread in time have been seen.
  double request_rate() const;

  /// Popularity w = 1 - exp(-lambda_d * (t_e - now)): the probability of at
  /// least one more request before the expiry `expires`. Zero-rate items
  /// (new / never requested) have popularity 0 — footnote 3 of the paper:
  /// newly created data starts with low utility.
  double popularity(Time now, Time expires) const;

 private:
  std::size_t count_ = 0;
  Time first_ = 0.0;
  Time last_ = 0.0;
};

}  // namespace dtn

#include "net/buffer.h"

#include <stdexcept>

#include "common/check.h"

namespace dtn {

CacheBuffer::CacheBuffer(Bytes capacity) : capacity_(capacity) {
  if (capacity < 0) throw std::invalid_argument("negative buffer capacity");
}

bool CacheBuffer::insert(DataId id, Bytes size) {
  if (size <= 0) throw std::invalid_argument("entry size must be positive");
  if (sizes_.contains(id) || size > free()) return false;
  sizes_.emplace(id, size);
  used_ += size;
  // The class invariant ("used() <= capacity() at all times") is the
  // paper's basic prerequisite of a limited caching buffer.
  DTN_CHECK_LE(used_, capacity_);
  return true;
}

bool CacheBuffer::erase(DataId id) {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return false;
  used_ -= it->second;
  sizes_.erase(it);
  DTN_CHECK_GE(used_, 0);
  return true;
}

std::vector<DataId> CacheBuffer::items() const {
  std::vector<DataId> result;
  result.reserve(sizes_.size());
  for (const auto& [id, size] : sizes_) result.push_back(id);
  return result;
}

}  // namespace dtn

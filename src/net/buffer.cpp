#include "net/buffer.h"

#include <cstdint>
#include <stdexcept>

#include "common/check.h"

namespace dtn {

namespace {

// splitmix64 finalizer: std::hash<int64> is the identity in libstdc++, and
// sequential data ids would cluster badly under a power-of-two mask.
std::size_t mix_id(DataId id) {
  std::uint64_t x = static_cast<std::uint64_t>(id);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

}  // namespace

CacheBuffer::CacheBuffer(Bytes capacity) : capacity_(capacity) {
  if (capacity < 0) throw std::invalid_argument("negative buffer capacity");
}

std::size_t CacheBuffer::find_slot(DataId id) const {
  if (slot_states_.empty()) return kNotFound;
  const std::size_t mask = slot_states_.size() - 1;
  std::size_t i = mix_id(id) & mask;
  while (slot_states_[i] != kEmpty) {
    if (slot_states_[i] == kLive && slot_ids_[i] == id) return i;
    i = (i + 1) & mask;
  }
  return kNotFound;
}

void CacheBuffer::rehash(std::size_t slot_count) {
  std::vector<DataId> old_ids = std::move(slot_ids_);
  std::vector<Bytes> old_sizes = std::move(slot_sizes_);
  std::vector<std::uint8_t> old_states = std::move(slot_states_);

  slot_ids_.assign(slot_count, DataId{0});
  slot_sizes_.assign(slot_count, Bytes{0});
  slot_states_.assign(slot_count, kEmpty);
  occupied_ = count_;

  const std::size_t mask = slot_count - 1;
  for (std::size_t i = 0; i < old_states.size(); ++i) {
    if (old_states[i] != kLive) continue;
    std::size_t j = mix_id(old_ids[i]) & mask;
    while (slot_states_[j] != kEmpty) j = (j + 1) & mask;
    slot_ids_[j] = old_ids[i];
    slot_sizes_[j] = old_sizes[i];
    slot_states_[j] = kLive;
  }
}

Bytes CacheBuffer::size_of(DataId id) const {
  const std::size_t slot = find_slot(id);
  if (slot == kNotFound) throw std::out_of_range("data id not in buffer");
  return slot_sizes_[slot];
}

bool CacheBuffer::insert(DataId id, Bytes size) {
  if (size <= 0) throw std::invalid_argument("entry size must be positive");
  if (contains(id) || size > free()) return false;

  // Keep occupancy (live + tombstones) under 7/8 so probes terminate fast.
  // When live entries alone justify the current size, rehashing in place
  // just purges tombstones — the table doubles only with real growth.
  if (slot_states_.empty()) {
    rehash(8);
  } else if ((occupied_ + 1) * 8 > slot_states_.size() * 7) {
    const std::size_t needed =
        (count_ + 1) * 8 > slot_states_.size() * 7 ? slot_states_.size() * 2
                                                   : slot_states_.size();
    rehash(needed);
  }

  const std::size_t mask = slot_states_.size() - 1;
  std::size_t i = mix_id(id) & mask;
  while (slot_states_[i] == kLive) i = (i + 1) & mask;
  if (slot_states_[i] == kEmpty) ++occupied_;
  slot_ids_[i] = id;
  slot_sizes_[i] = size;
  slot_states_[i] = kLive;
  ++count_;
  used_ += size;
  // The class invariant ("used() <= capacity() at all times") is the
  // paper's basic prerequisite of a limited caching buffer.
  DTN_CHECK_LE(used_, capacity_);
  return true;
}

bool CacheBuffer::erase(DataId id) {
  const std::size_t slot = find_slot(id);
  if (slot == kNotFound) return false;
  used_ -= slot_sizes_[slot];
  slot_states_[slot] = kTombstone;
  --count_;
  DTN_CHECK_GE(used_, 0);
  return true;
}

std::vector<DataId> CacheBuffer::items() const {
  std::vector<DataId> result;
  result.reserve(count_);
  for (std::size_t i = 0; i < slot_states_.size(); ++i) {
    if (slot_states_[i] == kLive) result.push_back(slot_ids_[i]);
  }
  return result;
}

}  // namespace dtn

// Per-node caching buffer with byte accounting.
//
// Every node has a limited caching buffer (the paper's "basic prerequisite");
// this class enforces the byte budget and tracks which data ids are held.
// Higher-level metadata (popularity, NCL assignment) is kept by the schemes.
//
// Storage is structure-of-arrays: an open-addressing table of parallel
// id/size/state vectors instead of one heap node per entry. Lookups stay
// O(1) expected, but the steady-state hot path (insert/erase churn with a
// stable working set) touches no allocator — the table grows by doubling
// and then recycles tombstoned slots in place.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dtn {

/// Invariant: used() == sum of sizes of stored entries, and used() <=
/// capacity() at all times.
class CacheBuffer {
 public:
  explicit CacheBuffer(Bytes capacity = 0);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool contains(DataId id) const { return find_slot(id) != kNotFound; }
  /// Size of the stored entry; throws std::out_of_range when absent.
  Bytes size_of(DataId id) const;

  /// True if a new entry of `size` bytes would fit right now.
  bool fits(Bytes size) const { return size <= free(); }

  /// Inserts the entry; returns false (and changes nothing) when it does
  /// not fit or is already present. size must be > 0.
  bool insert(DataId id, Bytes size);

  /// Removes the entry; returns false when absent.
  bool erase(DataId id);

  /// All stored ids, in unspecified order.
  std::vector<DataId> items() const;

 private:
  enum : std::uint8_t { kEmpty = 0, kLive = 1, kTombstone = 2 };
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  std::size_t find_slot(DataId id) const;
  void rehash(std::size_t slot_count);

  Bytes capacity_;
  Bytes used_ = 0;
  std::size_t count_ = 0;
  std::size_t occupied_ = 0;  ///< live + tombstoned slots
  std::vector<DataId> slot_ids_;
  std::vector<Bytes> slot_sizes_;
  std::vector<std::uint8_t> slot_states_;
};

}  // namespace dtn

// Per-node caching buffer with byte accounting.
//
// Every node has a limited caching buffer (the paper's "basic prerequisite");
// this class enforces the byte budget and tracks which data ids are held.
// Higher-level metadata (popularity, NCL assignment) is kept by the schemes.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dtn {

/// Invariant: used() == sum of sizes of stored entries, and used() <=
/// capacity() at all times.
class CacheBuffer {
 public:
  explicit CacheBuffer(Bytes capacity = 0);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }
  std::size_t count() const { return sizes_.size(); }
  bool empty() const { return sizes_.empty(); }

  bool contains(DataId id) const { return sizes_.contains(id); }
  /// Size of the stored entry; throws std::out_of_range when absent.
  Bytes size_of(DataId id) const { return sizes_.at(id); }

  /// True if a new entry of `size` bytes would fit right now.
  bool fits(Bytes size) const { return size <= free(); }

  /// Inserts the entry; returns false (and changes nothing) when it does
  /// not fit or is already present. size must be > 0.
  bool insert(DataId id, Bytes size);

  /// Removes the entry; returns false when absent.
  bool erase(DataId id);

  /// All stored ids, in unspecified order.
  std::vector<DataId> items() const;

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  std::unordered_map<DataId, Bytes> sizes_;
};

}  // namespace dtn

#include "net/message.h"

namespace dtn {

DataId DataRegistry::add(DataItem item) {
  if (item.size <= 0) throw std::invalid_argument("data size must be positive");
  if (item.expires <= item.created) {
    throw std::invalid_argument("data must expire after creation");
  }
  const DataId id = static_cast<DataId>(items_.size());
  item.id = id;
  items_.push_back(item);
  return id;
}

std::size_t DataRegistry::alive_count(Time now) const {
  std::size_t count = 0;
  for (const auto& item : items_) {
    if (item.created <= now && item.alive(now)) ++count;
  }
  return count;
}

}  // namespace dtn

#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "graph/contact_graph.h"
#include "sim/engine_detail.h"

namespace dtn {
namespace detail {

void validate_sim_config(const SimConfig& config) {
  if (config.bandwidth_per_second <= 0) {
    throw std::invalid_argument("bandwidth must be positive");
  }
  if (!(config.path_horizon > 0.0)) {
    throw std::invalid_argument("path horizon must be positive");
  }
  if (config.max_hops < 1) throw std::invalid_argument("max_hops must be >= 1");
  if (!(config.maintenance_interval > 0.0)) {
    throw std::invalid_argument("maintenance interval must be positive");
  }
  if (config.contact_miss_prob < 0.0 || config.contact_miss_prob > 1.0) {
    throw std::invalid_argument("contact_miss_prob must be in [0,1]");
  }
  if (config.threads < 0) {
    throw std::invalid_argument("threads must be >= 0");
  }
  if (config.shards < 1) {
    throw std::invalid_argument("shards must be >= 1");
  }
  for (const auto& d : config.node_downtime) {
    if (d.node < 0 || d.to < d.from) {
      throw std::invalid_argument("invalid downtime interval");
    }
  }
}

}  // namespace detail

std::vector<SimConfig::Downtime> random_downtimes(NodeId node_count,
                                                  Time duration,
                                                  double failures_per_node,
                                                  Time mean_outage,
                                                  std::uint64_t seed) {
  if (failures_per_node < 0.0 || mean_outage < 0.0 || duration <= 0.0) {
    throw std::invalid_argument("invalid downtime parameters");
  }
  std::vector<SimConfig::Downtime> result;
  if (failures_per_node == 0.0 || mean_outage == 0.0) return result;
  Rng rng(seed);
  const double rate = failures_per_node / duration;
  for (NodeId node = 0; node < node_count; ++node) {
    Time t = rng.exponential(rate);
    while (t < duration) {
      SimConfig::Downtime d;
      d.node = node;
      d.from = t;
      d.to = t + rng.exponential(1.0 / mean_outage);
      result.push_back(d);
      t = d.to + rng.exponential(rate);
    }
  }
  return result;
}

RunResult run_simulation(const ContactTrace& trace, const Workload& workload,
                         Scheme& scheme, const SimConfig& config) {
  if (config.shards > 1) {
    return run_simulation_sharded(trace.events(), trace.node_count(),
                                  trace.end_time(), workload, scheme, config);
  }
  traceio::VectorContactCursor contacts(trace.events());
  return run_simulation(contacts, trace.node_count(), trace.end_time(),
                        workload, scheme, config);
}

RunResult run_simulation(traceio::ContactCursor& contacts, NodeId node_count,
                         Time trace_end_hint, const Workload& workload,
                         Scheme& scheme, const SimConfig& config) {
  if (config.shards > 1) {
    // The sharded planner needs the whole timeline up front; streaming
    // runs keep O(io-buffer) memory only at shards == 1.
    const std::vector<ContactEvent> events = traceio::drain(contacts);
    return run_simulation_sharded(events, node_count, trace_end_hint,
                                  workload, scheme, config);
  }
  detail::validate_sim_config(config);
  DTN_SCOPED_TIMER(kSimulation);

  RunResult result;
  Rng rng(config.seed);
  // Failure injection uses its own stream so enabling it does not perturb
  // the scheme's random decisions.
  Rng failure_rng(config.seed ^ 0xFA11FA11FA11FA11ULL);
  const detail::DowntimeIndex downtime(config.node_downtime, node_count);
  SimServices services(workload.registry(), rng, result.metrics);
  result.metrics.set_data_count(workload.data_count());

  RateEstimator estimator(std::max<NodeId>(node_count, 2),
                          config.rate_decay);

  const auto& work = workload.events();

  // One-event lookahead over the contact stream; O(1) contact memory.
  ContactEvent pending;
  bool has_pending = contacts.next(pending);
  Time latest_contact_end = has_pending ? pending.end() : 0.0;

  // The data-access phase starts at the first workload event; maintenance
  // ticks start there too (the administrator has already selected NCLs from
  // warm-up data before the scheme was constructed).
  const Time phase_start = work.empty() ? trace_end_hint : work.front().time;
  Time next_maintenance = phase_start;
  bool started = false;

  auto run_maintenance = [&](Time now) {
    DTN_SCOPED_TIMER(kMaintenance);
    DTN_COUNT(kMaintenanceTicks);
    services.set_now(now);
    services.set_paths(AllPairsPaths(
        estimator.snapshot(now, config.min_contacts_for_rate),
        config.path_horizon, config.max_hops, config.threads,
        config.path_engine));
    if (!started) {
      scheme.on_start(services);
      started = true;
    }
    scheme.on_maintenance(services);
    const std::size_t alive = workload.registry().alive_count(now);
    if (alive > 0) {
      result.metrics.sample_copy_count(
          static_cast<double>(scheme.cached_copies(now)) /
          static_cast<double>(alive));
    }
    ++result.maintenance_ticks;
  };

  std::size_t wi = 0;  // next workload event
  while (has_pending || wi < work.size()) {
    const Time t_contact = has_pending ? pending.start : kNever;
    const Time t_work = wi < work.size() ? work[wi].time : kNever;
    const Time t_next = std::min(t_contact, t_work);

    // Fire any maintenance ticks due before the next event.
    while (next_maintenance <= t_next && next_maintenance != kNever) {
      run_maintenance(next_maintenance);
      next_maintenance += config.maintenance_interval;
    }

    // Workload events take precedence at equal times so that data exists
    // before a same-instant contact can push it.
    if (t_work <= t_contact) {
      const WorkloadEvent& e = work[wi++];
      services.set_now(e.time);
      if (e.kind == WorkloadEvent::Kind::kDataGenerated) {
        scheme.on_data_generated(services, workload.registry().get(e.data));
      } else {
        result.metrics.on_query_issued(e.query);
        scheme.on_query(services, e.query);
      }
    } else {
      const ContactEvent e = pending;
      has_pending = contacts.next(pending);
      if (has_pending) {
        // Cursor contract: contacts arrive in start-time order (a trace is
        // sorted by construction; a corrupt stream must not be folded in).
        DTN_CHECK_GE(pending.start, e.start);
        latest_contact_end = std::max(latest_contact_end, pending.end());
      }
      // Failure injection: missed contacts and down nodes never happen, as
      // far as anyone (including the rate estimator) can tell.
      if (config.contact_miss_prob > 0.0 &&
          failure_rng.bernoulli(config.contact_miss_prob)) {
        continue;
      }
      if (downtime.down(e.a, e.start) || downtime.down(e.b, e.start)) {
        continue;
      }
      estimator.record_contact(e.a, e.b, e.start);
      if (e.start >= phase_start && started) {
        DTN_SCOPED_TIMER(kContacts);
        DTN_COUNT(kContactsProcessed);
        services.set_now(e.start);
        LinkBudget budget(static_cast<Bytes>(
            e.duration * static_cast<double>(config.bandwidth_per_second)));
        scheme.on_contact(services, e.a, e.b, budget);
        ++result.contacts_processed;
      }
    }
  }

  // Final maintenance/sampling at the end of the timeline.
  const Time end_time =
      std::max({trace_end_hint, latest_contact_end, phase_start});
  services.set_now(end_time);
  scheme.on_end(services);
  return result;
}

}  // namespace dtn

#include "sim/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "graph/all_pairs.h"

namespace dtn {

PathQualityProfile collect_path_quality(const AllPairsPaths& paths,
                                        Time budget) {
  PathQualityProfile profile;
  const NodeId n = paths.node_count();
  if (n < 2) return profile;

  std::vector<NodeId> from_list(static_cast<std::size_t>(n));
  std::iota(from_list.begin(), from_list.end(), NodeId{0});
  std::vector<double> weights;

  double sum = 0.0;
  std::size_t reachable = 0;
  for (NodeId to = 0; to < n; ++to) {
    paths.weights_at(from_list, to, budget, weights);
    for (NodeId from = 0; from < n; ++from) {
      if (from == to) continue;
      const double w = weights[static_cast<std::size_t>(from)];
      DTN_CHECK_PROB(w);
      sum += w;
      profile.min = std::min(profile.min, w);
      profile.max = std::max(profile.max, w);
      if (w > 0.0) ++reachable;
    }
  }
  profile.pairs = static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1);
  profile.mean = sum / static_cast<double>(profile.pairs);
  profile.reachable_fraction =
      static_cast<double>(reachable) / static_cast<double>(profile.pairs);
  DTN_CHECK_PROB(profile.mean);
  DTN_CHECK_PROB(profile.reachable_fraction);
  return profile;
}

void MetricsCollector::on_query_issued(const Query& query) {
  (void)query;
  ++queries_issued_;
}

void MetricsCollector::on_delivery(const Query& query, Time when) {
  if (when >= query.expires) return;  // too late: does not count
  if (!satisfied_.insert(query.id).second) {
    ++duplicate_deliveries_;
    return;
  }
  // Delivery before issuance would mean the simulator replayed events out
  // of order; the delay statistics would silently go negative.
  DTN_CHECK_GE(when, query.issued);
  delay_.add(when - query.issued);
  delays_.push_back(when - query.issued);
}

double MetricsCollector::delay_percentile(double q) const {
  return percentile(delays_, q);
}

void MetricsCollector::sample_copy_count(double copies_per_item) {
  DTN_CHECK_FINITE(copies_per_item);
  DTN_CHECK_GE(copies_per_item, 0.0);
  copies_.add(copies_per_item);
}

double MetricsCollector::success_ratio() const {
  if (queries_issued_ == 0) return 0.0;
  const double ratio = static_cast<double>(satisfied_.size()) /
                       static_cast<double>(queries_issued_);
  // Each satisfied id corresponds to exactly one issued query.
  DTN_CHECK_PROB(ratio);
  return ratio;
}

double MetricsCollector::replacement_overhead() const {
  if (data_count_ == 0) return 0.0;
  return static_cast<double>(replaced_items_) /
         static_cast<double>(data_count_);
}

void MetricEventLog::query_issued(std::uint64_t seq, const Query& query) {
  Entry e;
  e.seq = seq;
  e.kind = Entry::Kind::kQueryIssued;
  e.query = query;
  entries_.push_back(e);
}

void MetricEventLog::delivery(std::uint64_t seq, const Query& query,
                              Time when) {
  Entry e;
  e.seq = seq;
  e.kind = Entry::Kind::kDelivery;
  e.query = query;
  e.when = when;
  entries_.push_back(e);
}

void MetricEventLog::bytes_transferred(std::uint64_t seq, Bytes bytes) {
  Entry e;
  e.seq = seq;
  e.kind = Entry::Kind::kBytes;
  e.bytes = bytes;
  entries_.push_back(e);
}

void MetricEventLog::replacement(std::uint64_t seq, std::size_t items) {
  Entry e;
  e.seq = seq;
  e.kind = Entry::Kind::kReplacement;
  e.items = items;
  entries_.push_back(e);
}

void MetricEventLog::replay_into(std::vector<MetricEventLog>& logs,
                                 MetricsCollector& metrics) {
  std::vector<std::size_t> next(logs.size(), 0);
  for (;;) {
    std::size_t pick = logs.size();
    for (std::size_t i = 0; i < logs.size(); ++i) {
      if (next[i] == logs[i].entries_.size()) continue;
      if (pick == logs.size() ||
          logs[i].entries_[next[i]].seq < logs[pick].entries_[next[pick]].seq) {
        pick = i;
      }
    }
    if (pick == logs.size()) break;
    const Entry& e = logs[pick].entries_[next[pick]++];
    switch (e.kind) {
      case Entry::Kind::kQueryIssued:
        metrics.on_query_issued(e.query);
        break;
      case Entry::Kind::kDelivery:
        metrics.on_delivery(e.query, e.when);
        break;
      case Entry::Kind::kBytes:
        metrics.on_bytes_transferred(e.bytes);
        break;
      case Entry::Kind::kReplacement:
        metrics.on_replacement(e.items);
        break;
    }
  }
  for (MetricEventLog& log : logs) log.entries_.clear();
}

}  // namespace dtn

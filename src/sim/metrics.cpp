#include "sim/metrics.h"

namespace dtn {

void MetricsCollector::on_query_issued(const Query& query) {
  (void)query;
  ++queries_issued_;
}

void MetricsCollector::on_delivery(const Query& query, Time when) {
  if (when >= query.expires) return;  // too late: does not count
  if (!satisfied_.insert(query.id).second) {
    ++duplicate_deliveries_;
    return;
  }
  delay_.add(when - query.issued);
  delays_.push_back(when - query.issued);
}

double MetricsCollector::delay_percentile(double q) const {
  return percentile(delays_, q);
}

void MetricsCollector::sample_copy_count(double copies_per_item) {
  copies_.add(copies_per_item);
}

double MetricsCollector::success_ratio() const {
  if (queries_issued_ == 0) return 0.0;
  return static_cast<double>(satisfied_.size()) /
         static_cast<double>(queries_issued_);
}

double MetricsCollector::replacement_overhead() const {
  if (data_count_ == 0) return 0.0;
  return static_cast<double>(replaced_items_) /
         static_cast<double>(data_count_);
}

}  // namespace dtn

// The data-access scheme interface.
//
// Every scheme in the evaluation — the paper's NCL caching and the four
// baselines — implements these hooks; the engine (sim/engine.h) drives them
// from the merged contact + workload timeline, so comparisons are apples to
// apples: identical trace, identical workload, identical link budgets.
#pragma once

#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "graph/all_pairs.h"
#include "net/message.h"
#include "sim/link_budget.h"
#include "sim/metrics.h"

namespace dtn {

/// Engine-owned context passed to every hook. Provides the clock, the data
/// registry, the periodically refreshed opportunistic-path tables, a
/// deterministic RNG stream and the metrics sink.
class SimServices {
 public:
  SimServices(const DataRegistry& registry, Rng& rng, MetricsCollector& metrics)
      : registry_(&registry), rng_(&rng), metrics_(&metrics) {}

  Time now() const { return now_; }
  const DataRegistry& registry() const { return *registry_; }
  const DataItem& data(DataId id) const { return registry_->get(id); }
  Rng& rng() { return *rng_; }

  /// All-pairs shortest opportunistic paths, recomputed from the online
  /// rate estimates at every maintenance tick. Empty before the first tick
  /// (schemes should treat unknown weights as 0).
  const AllPairsPaths& paths() const { return paths_; }

  /// Weight helper tolerating the pre-maintenance empty state.
  double path_weight(NodeId from, NodeId to) const {
    if (paths_.empty()) return from == to ? 1.0 : 0.0;
    return paths_.weight(from, to);
  }

  /// A data copy for `query` reached the requester at the current time.
  void deliver(const Query& query) { metrics_->on_delivery(query, now_); }

  /// Bandwidth accounting (the engine does not see scheme transfers).
  void count_bytes(Bytes bytes) { metrics_->on_bytes_transferred(bytes); }

  /// Cache-replacement accounting: `items` data items moved or dropped.
  void count_replacement(std::size_t items) { metrics_->on_replacement(items); }

  MetricsCollector& metrics() { return *metrics_; }

  // Engine-side mutators.
  void set_now(Time now) { now_ = now; }
  void set_paths(AllPairsPaths paths) { paths_ = std::move(paths); }

 private:
  Time now_ = 0.0;
  const DataRegistry* registry_;
  Rng* rng_;
  MetricsCollector* metrics_;
  AllPairsPaths paths_;
};

/// Base class for all data-access schemes.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// Called once before the first event of the data-access phase.
  virtual void on_start(SimServices& services) { (void)services; }

  /// Called at every maintenance tick, after `services.paths()` has been
  /// refreshed. Schemes prune expired state here.
  virtual void on_maintenance(SimServices& services) { (void)services; }

  /// A node generated a new data item (the source holds it natively).
  virtual void on_data_generated(SimServices& services, const DataItem& item) = 0;

  /// A node issued a query. If the scheme can satisfy it locally it calls
  /// services.deliver(query) immediately.
  virtual void on_query(SimServices& services, const Query& query) = 0;

  /// Nodes a and b are in contact; `budget` limits the bytes this session
  /// can carry.
  virtual void on_contact(SimServices& services, NodeId a, NodeId b,
                          LinkBudget& budget) = 0;

  /// Called once after the last event.
  virtual void on_end(SimServices& services) { (void)services; }

  /// Total data copies currently cached in the network (excluding the
  /// sources' own originals), for the caching-overhead metric.
  virtual std::size_t cached_copies(Time now) const = 0;

  /// Total bytes currently cached (optional, for reporting).
  virtual Bytes cached_bytes(Time now) const {
    (void)now;
    return 0;
  }
};

}  // namespace dtn

// The data-access scheme interface.
//
// Every scheme in the evaluation — the paper's NCL caching and the four
// baselines — implements these hooks; the engine (sim/engine.h) drives them
// from the merged contact + workload timeline, so comparisons are apples to
// apples: identical trace, identical workload, identical link budgets.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "graph/all_pairs.h"
#include "net/message.h"
#include "sim/link_budget.h"
#include "sim/metrics.h"

namespace dtn {

/// Engine-owned context passed to every hook. Provides the clock, the data
/// registry, the periodically refreshed opportunistic-path tables, a
/// deterministic RNG stream and the metrics sink.
///
/// The sharded engine (sim/shard.h, DESIGN.md §12) constructs one
/// SimServices per shard for the parallel bound phase: those instances
/// share the maintenance-built path tables through a read-only view
/// (set_paths_view), have their RNG repointed to the owner node's derived
/// stream before every hook, and route the metric mutators into a per-shard
/// MetricEventLog (set_event_log) instead of the shared collector, tagged
/// with the event's global sequence number for seq-ordered replay at the
/// weave. The serial engine and the weave use the plain single-instance
/// configuration, where every mutator hits the collector directly.
class SimServices {
 public:
  SimServices(const DataRegistry& registry, Rng& rng, MetricsCollector& metrics)
      : registry_(&registry), rng_(&rng), metrics_(&metrics) {}

  Time now() const { return now_; }
  const DataRegistry& registry() const { return *registry_; }
  const DataItem& data(DataId id) const { return registry_->get(id); }
  Rng& rng() { return *rng_; }

  /// All-pairs shortest opportunistic paths, recomputed from the online
  /// rate estimates at every maintenance tick. Empty before the first tick
  /// (schemes should treat unknown weights as 0).
  const AllPairsPaths& paths() const {
    return paths_view_ != nullptr ? *paths_view_ : paths_;
  }

  /// Weight helper tolerating the pre-maintenance empty state.
  double path_weight(NodeId from, NodeId to) const {
    const AllPairsPaths& p = paths();
    if (p.empty()) return from == to ? 1.0 : 0.0;
    return p.weight(from, to);
  }

  /// A data copy for `query` reached the requester at the current time.
  void deliver(const Query& query) {
    if (event_log_ != nullptr) {
      event_log_->delivery(event_seq_, query, now_);
    } else {
      metrics_->on_delivery(query, now_);
    }
  }

  /// Bandwidth accounting (the engine does not see scheme transfers).
  void count_bytes(Bytes bytes) {
    if (event_log_ != nullptr) {
      event_log_->bytes_transferred(event_seq_, bytes);
    } else {
      metrics_->on_bytes_transferred(bytes);
    }
  }

  /// Cache-replacement accounting: `items` data items moved or dropped.
  void count_replacement(std::size_t items) {
    if (event_log_ != nullptr) {
      event_log_->replacement(event_seq_, items);
    } else {
      metrics_->on_replacement(items);
    }
  }

  /// Engine-internal direct sink access; bypasses the event log, so scheme
  /// code must use deliver/count_bytes/count_replacement instead.
  MetricsCollector& metrics() { return *metrics_; }

  // Engine-side mutators.
  void set_now(Time now) { now_ = now; }
  void set_paths(AllPairsPaths paths) { paths_ = std::move(paths); }
  void set_paths_view(const AllPairsPaths* view) { paths_view_ = view; }
  void set_rng(Rng* rng) { rng_ = rng; }
  void set_event_log(MetricEventLog* log) { event_log_ = log; }
  void set_event_seq(std::uint64_t seq) { event_seq_ = seq; }

 private:
  Time now_ = 0.0;
  const DataRegistry* registry_;
  Rng* rng_;
  MetricsCollector* metrics_;
  AllPairsPaths paths_;
  const AllPairsPaths* paths_view_ = nullptr;
  MetricEventLog* event_log_ = nullptr;
  std::uint64_t event_seq_ = 0;
};

/// How a scheme's hooks may be driven by the sharded bound-weave engine
/// (DESIGN.md §12).
enum class SchemeConcurrency {
  /// Hooks may read or write state spanning arbitrary nodes. The sharded
  /// engine serializes every scheme-visible event of such a scheme into
  /// the weave, where it runs on the same global RNG stream and in the
  /// same order as under the serial engine.
  kGlobal,
  /// on_contact touches only the two nodes in contact, on_query /
  /// on_data_generated only the issuing node, plus read-only shared
  /// context (paths, registry, clock). Such hooks may run concurrently in
  /// the bound phase on different shards. Contract: metric output goes
  /// through deliver/count_bytes/count_replacement only (never
  /// services.metrics()), and randomness comes from services.rng(), which
  /// the sharded engine points at the owner node's derived stream.
  kNodeLocal,
};

/// Base class for all data-access schemes.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// Concurrency declaration for the sharded engine. Conservative default:
  /// treat the scheme as global (fully serialized into the weave). Schemes
  /// whose per-event hooks are node-local override this to unlock the
  /// parallel bound phase; on_start/on_maintenance/on_end always run
  /// serially at barriers either way.
  virtual SchemeConcurrency concurrency() const {
    return SchemeConcurrency::kGlobal;
  }

  /// Called once before the first event of the data-access phase.
  virtual void on_start(SimServices& services) { (void)services; }

  /// Called at every maintenance tick, after `services.paths()` has been
  /// refreshed. Schemes prune expired state here.
  virtual void on_maintenance(SimServices& services) { (void)services; }

  /// A node generated a new data item (the source holds it natively).
  virtual void on_data_generated(SimServices& services, const DataItem& item) = 0;

  /// A node issued a query. If the scheme can satisfy it locally it calls
  /// services.deliver(query) immediately.
  virtual void on_query(SimServices& services, const Query& query) = 0;

  /// Nodes a and b are in contact; `budget` limits the bytes this session
  /// can carry.
  virtual void on_contact(SimServices& services, NodeId a, NodeId b,
                          LinkBudget& budget) = 0;

  /// Called once after the last event.
  virtual void on_end(SimServices& services) { (void)services; }

  /// Total data copies currently cached in the network (excluding the
  /// sources' own originals), for the caching-overhead metric.
  virtual std::size_t cached_copies(Time now) const = 0;

  /// Total bytes currently cached (optional, for reporting).
  virtual Bytes cached_bytes(Time now) const {
    (void)now;
    return 0;
  }
};

}  // namespace dtn

// Internals shared by the serial event loop (engine.cpp) and the sharded
// bound-weave engine (shard_engine.cpp). Not part of the public API.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/engine.h"

namespace dtn::detail {

/// Throws std::invalid_argument on any out-of-range SimConfig field. Both
/// engines validate up front so a bad config fails identically regardless
/// of shard count.
void validate_sim_config(const SimConfig& config);

/// Per-node sorted downtime intervals for O(log n) lookups.
class DowntimeIndex {
 public:
  DowntimeIndex(const std::vector<SimConfig::Downtime>& downtimes,
                NodeId node_count) {
    intervals_.resize(
        static_cast<std::size_t>(std::max<NodeId>(node_count, 1)));
    for (const auto& d : downtimes) {
      if (d.node < node_count) {
        intervals_[static_cast<std::size_t>(d.node)].push_back({d.from, d.to});
      }
    }
    for (auto& list : intervals_) std::sort(list.begin(), list.end());
  }

  bool down(NodeId node, Time when) const {
    const auto& list = intervals_[static_cast<std::size_t>(node)];
    // Last interval starting at or before `when`.
    auto it = std::upper_bound(list.begin(), list.end(),
                               std::make_pair(when, kNever));
    if (it == list.begin()) return false;
    --it;
    return when < it->second;
  }

 private:
  std::vector<std::vector<std::pair<Time, Time>>> intervals_;
};

}  // namespace dtn::detail

#include "sim/shard.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace dtn {
namespace {

/// Load-cap slack over the perfectly balanced share: a node is steered to
/// its highest-affinity shard unless that shard already carries this much
/// more than total/K, in which case the next-best feasible shard wins.
constexpr double kLoadSlack = 0.25;

struct Edge {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  double weight = 0.0;
};

}  // namespace

ShardPlan build_shard_plan(const std::vector<ContactEvent>& contacts,
                           NodeId node_count, int shards) {
  ShardPlan plan;
  plan.shard_count = std::max(shards, 1);
  const std::size_t n =
      static_cast<std::size_t>(std::max<NodeId>(node_count, 0));
  const std::size_t k = static_cast<std::size_t>(plan.shard_count);
  plan.node_shard.assign(n, 0);
  plan.shard_load.assign(k, 0.0);

  if (n > 0 && plan.shard_count > 1) {
    // 1. Aggregate contacts into weighted pair edges. For the typical
    // trace (at most ~1k nodes) a dense upper-triangle count matrix is one
    // cache-friendly pass; bigger node sets fall back to canonical packed
    // keys + sort + run-length. Both walk pairs in (lo, hi) lexicographic
    // order, so they emit the identical edge list and the plan does not
    // depend on which path ran.
    std::vector<Edge> edges;
    if (n <= 1024) {
      std::vector<std::uint32_t> pair_count(n * n, 0);
      for (const ContactEvent& e : contacts) {
        const NodeId lo = std::min(e.a, e.b);
        const NodeId hi = std::max(e.a, e.b);
        DTN_CHECK_GE(lo, 0);
        DTN_CHECK_LE(hi, node_count - 1);
        ++pair_count[static_cast<std::size_t>(lo) * n +
                     static_cast<std::size_t>(hi)];
      }
      for (std::size_t lo = 0; lo < n; ++lo) {
        for (std::size_t hi = lo + 1; hi < n; ++hi) {
          const std::uint32_t c = pair_count[lo * n + hi];
          if (c == 0) continue;
          Edge edge;
          edge.a = static_cast<NodeId>(lo);
          edge.b = static_cast<NodeId>(hi);
          edge.weight = static_cast<double>(c);
          edges.push_back(edge);
        }
      }
    } else {
      std::vector<std::uint64_t> keys;
      keys.reserve(contacts.size());
      for (const ContactEvent& e : contacts) {
        const NodeId lo = std::min(e.a, e.b);
        const NodeId hi = std::max(e.a, e.b);
        DTN_CHECK_GE(lo, 0);
        DTN_CHECK_LE(hi, node_count - 1);
        keys.push_back(
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo))
             << 32) |
            static_cast<std::uint32_t>(hi));
      }
      std::sort(keys.begin(), keys.end());

      edges.reserve(keys.size());
      for (std::size_t i = 0; i < keys.size();) {
        std::size_t j = i;
        while (j < keys.size() && keys[j] == keys[i]) ++j;
        Edge edge;
        edge.a = static_cast<NodeId>(keys[i] >> 32);
        edge.b = static_cast<NodeId>(keys[i] & 0xFFFFFFFFu);
        edge.weight = static_cast<double>(j - i);
        edges.push_back(edge);
        i = j;
      }
    }

    // 2. Weighted degrees and a CSR adjacency over the aggregated edges.
    std::vector<double> degree(n, 0.0);
    std::vector<std::size_t> adj_start(n + 1, 0);
    for (const Edge& e : edges) {
      degree[static_cast<std::size_t>(e.a)] += e.weight;
      degree[static_cast<std::size_t>(e.b)] += e.weight;
      ++adj_start[static_cast<std::size_t>(e.a) + 1];
      ++adj_start[static_cast<std::size_t>(e.b) + 1];
    }
    for (std::size_t i = 1; i <= n; ++i) adj_start[i] += adj_start[i - 1];
    std::vector<std::pair<NodeId, double>> adj(edges.size() * 2);
    std::vector<std::size_t> cursor(adj_start.begin(), adj_start.end() - 1);
    for (const Edge& e : edges) {
      adj[cursor[static_cast<std::size_t>(e.a)]++] = {e.b, e.weight};
      adj[cursor[static_cast<std::size_t>(e.b)]++] = {e.a, e.weight};
    }

    const double total =
        std::accumulate(degree.begin(), degree.end(), 0.0);
    const double max_degree =
        degree.empty() ? 0.0 : *std::max_element(degree.begin(), degree.end());
    // The cap never forbids placing a single node: the heaviest hub fits.
    const double cap = std::max(
        total * (1.0 + kLoadSlack) / static_cast<double>(plan.shard_count),
        max_degree);

    // 3. Agglomerate nodes into cap-bounded clusters, heaviest edge first
    // (a METIS-style coarsening pass over a union-find). On a modular
    // graph every intra-community edge outweighs every cross-community
    // edge, so communities coalesce completely before any cross edge is
    // considered — and by then merging two communities would blow the
    // cap, so the clusters ARE the communities. Placing nodes one at a
    // time (the previous scheme here) cannot do this: a node placed
    // before its community has arrived follows whatever weak edge it has
    // into an already-seeded shard, and the community then cascades after
    // it. Sorting by (weight desc, endpoint ids asc) and rooting the
    // union-find at the minimum id keeps every step deterministic.
    std::vector<Edge> merge_order(edges);
    std::sort(merge_order.begin(), merge_order.end(),
              [](const Edge& x, const Edge& y) {
                if (x.weight != y.weight) return x.weight > y.weight;
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
    std::vector<std::int32_t> root(n);
    std::iota(root.begin(), root.end(), 0);
    std::vector<double> cluster_load(degree);
    const auto find_root = [&](std::int32_t v) {
      while (root[static_cast<std::size_t>(v)] != v) {
        root[static_cast<std::size_t>(v)] =
            root[static_cast<std::size_t>(root[static_cast<std::size_t>(v)])];
        v = root[static_cast<std::size_t>(v)];
      }
      return v;
    };
    for (const Edge& e : merge_order) {
      const std::int32_t ra = find_root(e.a);
      const std::int32_t rb = find_root(e.b);
      if (ra == rb) continue;
      const double merged = cluster_load[static_cast<std::size_t>(ra)] +
                            cluster_load[static_cast<std::size_t>(rb)];
      if (merged > cap) continue;
      const std::int32_t keep = std::min(ra, rb);
      const std::int32_t gone = std::max(ra, rb);
      root[static_cast<std::size_t>(gone)] = keep;
      cluster_load[static_cast<std::size_t>(keep)] = merged;
    }

    // Pack clusters onto shards, heaviest first onto the least-loaded
    // shard (LPT). Cluster order is (load desc, root id asc); shard ties
    // resolve to the lowest index.
    std::vector<std::int32_t> roots;
    roots.reserve(n);
    for (std::size_t vi = 0; vi < n; ++vi) {
      const auto v = static_cast<std::int32_t>(vi);
      if (find_root(v) == v) roots.push_back(v);
    }
    std::sort(roots.begin(), roots.end(),
              [&](std::int32_t x, std::int32_t y) {
                const double lx = cluster_load[static_cast<std::size_t>(x)];
                const double ly = cluster_load[static_cast<std::size_t>(y)];
                if (lx != ly) return lx > ly;
                return x < y;
              });
    std::vector<std::int32_t> cluster_shard(n, 0);
    for (const std::int32_t r : roots) {
      const auto lightest = static_cast<std::int32_t>(
          std::min_element(plan.shard_load.begin(), plan.shard_load.end()) -
          plan.shard_load.begin());
      cluster_shard[static_cast<std::size_t>(r)] = lightest;
      plan.shard_load[static_cast<std::size_t>(lightest)] +=
          cluster_load[static_cast<std::size_t>(r)];
    }
    std::vector<std::int32_t> assign(n, 0);
    for (std::size_t vi = 0; vi < n; ++vi) {
      assign[vi] = cluster_shard[static_cast<std::size_t>(
          find_root(static_cast<std::int32_t>(vi)))];
    }

    // 4. Local refinement: a few Kernighan-Lin-style sweeps repair
    // whatever the cluster granularity got wrong (a node whose volume
    // mostly points out of its cluster, a cap-split community). Each node
    // moves to the shard holding the most of its total contact volume
    // (cap permitting); every move strictly increases the intra-shard
    // weight, so the loop terminates, and the sweep limit is a safety
    // bound. Node-id order and strict-improvement-only moves keep it
    // deterministic.
    std::vector<double> gain(k, 0.0);
    bool moved = true;
    for (int sweep = 0; sweep < 8 && moved; ++sweep) {
      moved = false;
      for (std::size_t vi = 0; vi < n; ++vi) {
        std::fill(gain.begin(), gain.end(), 0.0);
        for (std::size_t a = adj_start[vi]; a < adj_start[vi + 1]; ++a) {
          const std::int32_t s = assign[static_cast<std::size_t>(adj[a].first)];
          gain[static_cast<std::size_t>(s)] += adj[a].second;
        }
        const std::int32_t cur = assign[vi];
        std::int32_t best = cur;
        for (std::int32_t s = 0; s < plan.shard_count; ++s) {
          if (s == cur) continue;
          const std::size_t si = static_cast<std::size_t>(s);
          if (plan.shard_load[si] + degree[vi] > cap) continue;
          if (gain[si] > gain[static_cast<std::size_t>(best)]) best = s;
        }
        if (best != cur) {
          plan.shard_load[static_cast<std::size_t>(cur)] -= degree[vi];
          plan.shard_load[static_cast<std::size_t>(best)] += degree[vi];
          assign[vi] = best;
          moved = true;
        }
      }
    }
    plan.node_shard = std::move(assign);
  }

  // 5. Derived statistics: intra/cross split and the epoch bound (minimum
  // gap between consecutive cross-shard contact start times).
  Time prev_cross = kNever;
  for (const ContactEvent& e : contacts) {
    if (plan.cross(e)) {
      ++plan.cross_contacts;
      if (prev_cross != kNever) {
        plan.epoch_bound = std::min(plan.epoch_bound, e.start - prev_cross);
      }
      prev_cross = e.start;
    } else {
      ++plan.intra_contacts;
    }
  }
  return plan;
}

std::vector<std::vector<std::uint32_t>> shard_contact_feeds(
    const ShardPlan& plan, const std::vector<ContactEvent>& contacts) {
  std::vector<std::vector<std::uint32_t>> feeds(
      static_cast<std::size_t>(plan.shard_count));
  std::vector<std::size_t> counts(static_cast<std::size_t>(plan.shard_count),
                                  0);
  for (const ContactEvent& e : contacts) {
    if (!plan.cross(e)) ++counts[static_cast<std::size_t>(plan.shard_of(e.a))];
  }
  for (std::size_t s = 0; s < feeds.size(); ++s) feeds[s].reserve(counts[s]);
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    const ContactEvent& e = contacts[i];
    if (plan.cross(e)) continue;
    feeds[static_cast<std::size_t>(plan.shard_of(e.a))].push_back(
        static_cast<std::uint32_t>(i));
  }
  return feeds;
}

}  // namespace dtn

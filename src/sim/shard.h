// Node sharding for the bound-weave parallel engine (DESIGN.md §12).
//
// The contact trace induces a contact-frequency graph: nodes are trace
// nodes, edge weights count how often a pair meets. A ShardPlan partitions
// the nodes into K shards so that most contact volume stays inside a shard
// (the parallel "bound" phase) and only the residual cross-shard contacts
// must be applied serially at synchronization points (the "weave" phase).
// Meeting-rate-driven contact processes make this split principled: the
// minimum gap between successive cross-shard contacts bounds how far shards
// can advance independently without reordering any interaction.
//
// The partitioner agglomerates nodes into cap-bounded clusters by merging
// the heaviest edges first (union-find coarsening), packs the clusters
// onto shards heaviest-first (LPT), then runs a few Kernighan-Lin-style
// refinement sweeps — so communities coalesce before any weak cross edge
// can scatter them, and loads stay balanced under a slack cap over the
// even share. Everything here is deterministic — same
// contacts, same K, same plan — and the plan depends only on the filtered
// contact sequence, never on thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "trace/contact_event.h"

namespace dtn {

/// A deterministic assignment of trace nodes to shards, plus the derived
/// per-plan statistics the engine, benches and tests consume.
struct ShardPlan {
  int shard_count = 1;

  /// node -> shard in [0, shard_count). Size = node_count.
  std::vector<std::int32_t> node_shard;

  /// Weighted contact degree placed on each shard (size = shard_count).
  std::vector<double> shard_load;

  /// Contacts whose endpoints share a shard (bound-phase work).
  std::size_t intra_contacts = 0;

  /// Contacts crossing shards (weave-phase work).
  std::size_t cross_contacts = 0;

  /// Minimum gap between the start times of consecutive cross-shard
  /// contacts; kNever when fewer than two contacts cross shards. This is
  /// the epoch bound: between two synchronization points separated by less
  /// than this gap, no cross-shard interaction can occur.
  Time epoch_bound = kNever;

  std::int32_t shard_of(NodeId node) const {
    return node_shard[static_cast<std::size_t>(node)];
  }

  /// True when the contact's endpoints live on different shards.
  bool cross(const ContactEvent& e) const {
    return shard_of(e.a) != shard_of(e.b);
  }
};

/// Builds the degree-balanced greedy partition over the contact-frequency
/// graph of `contacts` (already filtered: the engine drops missed/downtime
/// contacts before planning). `shards` is clamped to >= 1; nodes never seen
/// in a contact are spread across shards by load. Deterministic.
ShardPlan build_shard_plan(const std::vector<ContactEvent>& contacts,
                           NodeId node_count, int shards);

/// Per-shard contact feeds: indices into `contacts` of each shard's
/// intra-shard contacts, in trace order (cross-shard contacts belong to the
/// weave and appear in no feed). Wrap a feed in
/// traceio::SubsetContactCursor to stream one shard's slice of the trace.
std::vector<std::vector<std::uint32_t>> shard_contact_feeds(
    const ShardPlan& plan, const std::vector<ContactEvent>& contacts);

}  // namespace dtn

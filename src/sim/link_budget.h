// Transfer budget of one contact session.
//
// The paper assumes bidirectional Bluetooth EDR links at 2.1 Mb/s; a contact
// of duration d can carry at most d * bandwidth bytes in total. Schemes
// charge every bundle they move against this budget; when it runs out, the
// remaining transfers wait for a future contact.
#pragma once

#include "common/types.h"

namespace dtn {

class LinkBudget {
 public:
  explicit LinkBudget(Bytes capacity)
      : capacity_(capacity < 0 ? 0 : capacity), remaining_(capacity_) {}

  Bytes capacity() const { return capacity_; }
  Bytes remaining() const { return remaining_; }
  Bytes used() const { return capacity_ - remaining_; }
  bool exhausted() const { return remaining_ <= 0; }

  /// True if `amount` more bytes fit in this session.
  bool can_transfer(Bytes amount) const { return amount <= remaining_; }

  /// Charges `amount` bytes; returns false (charging nothing) when the
  /// budget cannot cover it. Partial transfers are not modeled.
  bool consume(Bytes amount) {
    if (amount < 0 || amount > remaining_) return false;
    remaining_ -= amount;
    return true;
  }

 private:
  Bytes capacity_;
  Bytes remaining_;
};

}  // namespace dtn

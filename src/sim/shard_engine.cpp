// The sharded bound-weave engine (DESIGN.md §12).
//
// A zsim-style two-phase schedule over the partition built by
// build_shard_plan (sim/shard.h):
//
//  * Plan pass (serial, cheap): replay the serial engine's merge logic
//    over contacts + workload + maintenance ticks without touching the
//    scheme, assigning every event a global sequence number, drawing the
//    failure-injection stream draw-for-draw, and routing each event as it
//    is sequenced — bound work straight into its owning shard's feed,
//    weave barriers into the serial barrier list, estimator-only
//    cross-shard contacts into the deferred list. There is no
//    intermediate timeline: the plan pass IS the distribution pass.
//  * Bound phase (parallel): between barriers, each shard advances a
//    persistent cursor through its own feed in sequence order on the
//    thread pool — rate-estimator updates hit disjoint dense pair slots,
//    node-local scheme hooks touch only their shard's nodes, and metric
//    output is appended to a per-shard sequence-tagged log.
//  * Weave phase (serial): at every barrier the shard logs are merged by
//    sequence into the shared MetricsCollector (restoring the serial
//    engine's exact floating-point fold order), deferred cross-shard
//    estimator updates are applied, and the barrier event itself runs with
//    the global services on the legacy RNG stream.
//
// Determinism contract: output is byte-identical to the serial engine for
// every (shards, threads) combination. Schemes declaring kNodeLocal never
// draw from the global stream during per-event hooks today (the flooding
// family draws nothing); if one ever does, it draws from the owner node's
// derive_seed stream, which is shard-count-invariant by construction.
// Global schemes (NCL caching) have every scheme-visible event woven
// serially on the exact legacy stream, so they too match bit-for-bit.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/instrument.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "graph/contact_graph.h"
#include "sim/engine.h"
#include "sim/engine_detail.h"
#include "sim/shard.h"

namespace dtn {
namespace {

/// One bound-phase work unit in a shard's feed (or the deferred list):
/// a contact or workload event this shard owns outright.
struct BoundItem {
  /// Global sequence number in exact serial processing order.
  std::uint64_t seq = 0;
  /// Index into the contact vector / workload event vector.
  std::uint32_t index = 0;
  /// Node whose derived RNG stream scheme hooks draw from (min endpoint
  /// for contacts, the acting node for workload events).
  NodeId owner = kNoNode;
  bool is_contact = false;
  /// Contacts only: inside the data-access phase (scheme.on_contact fires).
  bool scheme_visible = false;
};

/// One weave barrier: executed serially with the global services after
/// every bound item sequenced before it has been applied.
struct WeaveItem {
  enum class Kind : std::uint8_t { kMaintenance, kWorkload, kContact };
  Kind kind = Kind::kMaintenance;
  std::uint64_t seq = 0;
  /// Feed entries emitted (across all shards) before this barrier: the
  /// bound phase is skipped entirely when the epoch carried no work.
  std::uint64_t bound_before = 0;
  /// Deferred cross-shard estimator updates emitted before this barrier.
  std::uint32_t deferred_before = 0;
  /// Index into the contact vector / workload event vector.
  std::uint32_t index = 0;
  /// Maintenance only (contacts and workload events carry their own time).
  Time time = 0.0;
};

}  // namespace

RunResult run_simulation_sharded(const std::vector<ContactEvent>& contacts,
                                 NodeId node_count, Time trace_end_hint,
                                 const Workload& workload, Scheme& scheme,
                                 const SimConfig& config) {
  detail::validate_sim_config(config);
  DTN_SCOPED_TIMER(kSimulation);
  const std::size_t shard_count =
      static_cast<std::size_t>(std::max(config.shards, 1));

  RunResult result;
  Rng rng(config.seed);  // the global weave stream == the serial engine's
  Rng failure_rng(config.seed ^ 0xFA11FA11FA11FA11ULL);
  const detail::DowntimeIndex downtime(config.node_downtime, node_count);
  SimServices services(workload.registry(), rng, result.metrics);
  result.metrics.set_data_count(workload.data_count());

  RateEstimator estimator(std::max<NodeId>(node_count, 2), config.rate_decay);
  const auto& work = workload.events();

  // ---- plan pass ----------------------------------------------------------

  // Failure injection, replicating the serial loop's dedicated stream
  // draw-for-draw (one bernoulli per contact, in trace order). Dropped
  // contacts still shape the timeline below — in the serial loop their
  // start times participate in the merge that schedules maintenance ticks
  // — but produce no work item.
  // The pre-pass only runs when failures are actually configured; the
  // common clean-trace case plans straight off the contacts, with the
  // sortedness check and end-time tracking folded into the merge below.
  const bool failures_possible =
      config.contact_miss_prob > 0.0 || !config.node_downtime.empty();
  std::vector<std::uint8_t> dropped(failures_possible ? contacts.size() : 0,
                                    0);
  bool any_dropped = false;
  Time latest_contact_end = contacts.empty() ? 0.0 : contacts.front().end();
  if (failures_possible) {
    for (std::size_t i = 0; i < contacts.size(); ++i) {
      const ContactEvent& e = contacts[i];
      if (config.contact_miss_prob > 0.0 &&
          failure_rng.bernoulli(config.contact_miss_prob)) {
        dropped[i] = 1;
        any_dropped = true;
      } else if (downtime.down(e.a, e.start) || downtime.down(e.b, e.start)) {
        dropped[i] = 1;
        any_dropped = true;
      }
    }
  }

  // Partition over the surviving contact-frequency graph. The filtered
  // copy is only materialized when failure injection actually dropped
  // something; the common all-live case plans straight off the trace.
  std::vector<ContactEvent> live;
  if (any_dropped) {
    live.reserve(contacts.size());
    for (std::size_t i = 0; i < contacts.size(); ++i) {
      if (dropped[i] == 0) live.push_back(contacts[i]);
    }
  }
  const std::vector<ContactEvent>& planned = any_dropped ? live : contacts;
  const ShardPlan plan = build_shard_plan(planned, node_count,
                                          static_cast<int>(shard_count));

  const bool node_local =
      scheme.concurrency() == SchemeConcurrency::kNodeLocal;

  // Merge contacts + workload + maintenance with global sequence numbers,
  // replicating the serial merge exactly (due maintenance ticks fire
  // before the next event, workload beats contacts at equal times), and
  // route every event to its destination as it is sequenced.
  std::vector<std::vector<BoundItem>> feeds(shard_count);
  for (auto& f : feeds) f.reserve(planned.size() / shard_count + 64);
  std::vector<BoundItem> deferred;
  std::vector<WeaveItem> weave;
  std::uint64_t bound_emitted = 0;
  const Time phase_start = work.empty() ? trace_end_hint : work.front().time;
  {
    Time next_maintenance = phase_start;
    bool started = false;
    std::uint64_t seq = 0;
    std::size_t ci = 0;
    std::size_t wi = 0;
    const auto emit_weave = [&](WeaveItem::Kind kind, std::uint32_t index,
                                Time t) {
      WeaveItem it;
      it.kind = kind;
      it.seq = seq++;
      it.bound_before = bound_emitted;
      it.deferred_before = static_cast<std::uint32_t>(deferred.size());
      it.index = index;
      it.time = t;
      weave.push_back(it);
    };
    Time prev_start = contacts.empty() ? 0.0 : contacts.front().start;
    while (ci < contacts.size() || wi < work.size()) {
      const Time t_contact = ci < contacts.size() ? contacts[ci].start : kNever;
      const Time t_work = wi < work.size() ? work[wi].time : kNever;
      const Time t_next = std::min(t_contact, t_work);
      while (next_maintenance <= t_next && next_maintenance != kNever) {
        emit_weave(WeaveItem::Kind::kMaintenance, 0, next_maintenance);
        started = true;
        next_maintenance += config.maintenance_interval;
      }
      if (t_work <= t_contact) {
        const WorkloadEvent& w = work[wi];
        if (!node_local) {
          emit_weave(WeaveItem::Kind::kWorkload,
                     static_cast<std::uint32_t>(wi), w.time);
        } else {
          BoundItem it;
          it.seq = seq++;
          it.index = static_cast<std::uint32_t>(wi);
          it.owner = w.kind == WorkloadEvent::Kind::kDataGenerated
                         ? workload.registry().get(w.data).source
                         : w.query.requester;
          feeds[static_cast<std::size_t>(plan.shard_of(it.owner))].push_back(
              it);
          ++bound_emitted;
        }
        ++wi;
        continue;
      }
      // Contacts run back-to-back until the next workload event or
      // maintenance tick (both rare); consume the whole run in one tight
      // loop instead of re-testing the merge boundaries per contact. A
      // contact AT the boundary exits the run: equal-time workload events
      // and due maintenance both precede it in the serial order.
      const Time boundary = std::min(t_work, next_maintenance);
      while (ci < contacts.size() && contacts[ci].start < boundary) {
        const bool skip = failures_possible && dropped[ci] != 0;
        const ContactEvent& e = contacts[ci];
        ++ci;
        // Cursor contract: contacts arrive in start-time order.
        DTN_CHECK_GE(e.start, prev_start);
        prev_start = e.start;
        latest_contact_end = std::max(latest_contact_end, e.end());
        if (skip) continue;
        const bool scheme_visible = e.start >= phase_start && started;
        const bool cross = plan.cross(e);
        if (scheme_visible) {
          ++result.contacts_processed;
          if (cross) {
            DTN_COUNT(kShardCrossContacts);
          } else {
            DTN_COUNT(kShardIntraContacts);
          }
        }
        if (scheme_visible && (cross || !node_local)) {
          emit_weave(WeaveItem::Kind::kContact,
                     static_cast<std::uint32_t>(ci - 1), e.start);
        } else if (cross) {
          // Estimator-only cross-shard contact: no shard owns its pair
          // slot, so it applies serially at the next flush — still in
          // sequence order (nothing reads pair state between barriers, so
          // deferral is order-preserving per pair).
          BoundItem it;
          it.seq = seq++;
          it.index = static_cast<std::uint32_t>(ci - 1);
          deferred.push_back(it);
        } else {
          BoundItem it;
          it.seq = seq++;
          it.index = static_cast<std::uint32_t>(ci - 1);
          it.owner = std::min(e.a, e.b);
          it.is_contact = true;
          it.scheme_visible = scheme_visible;
          feeds[static_cast<std::size_t>(plan.shard_of(e.a))].push_back(it);
          ++bound_emitted;
        }
      }
    }
  }

  // ---- execution ----------------------------------------------------------

  // Per-node derived RNG streams for bound-phase scheme draws: stream
  // identity is the node, never the shard, so consumption is invariant
  // under repartitioning.
  std::vector<Rng> node_rng;
  const std::size_t rng_nodes =
      static_cast<std::size_t>(std::max<NodeId>(node_count, 1));
  node_rng.reserve(rng_nodes);
  for (std::size_t nid = 0; nid < rng_nodes; ++nid) {
    node_rng.emplace_back(
        derive_seed(config.seed, static_cast<std::uint64_t>(nid)));
  }

  std::vector<MetricEventLog> shard_logs(shard_count);
  std::vector<SimServices> shard_services;
  shard_services.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_services.emplace_back(workload.registry(), rng, result.metrics);
    shard_services.back().set_event_log(&shard_logs[s]);
    // The maintenance-built tables live in the global services; shards
    // share them read-only through the view.
    shard_services.back().set_paths_view(&services.paths());
  }

  bool started = false;
  auto run_maintenance = [&](Time now) {
    DTN_SCOPED_TIMER(kMaintenance);
    DTN_COUNT(kMaintenanceTicks);
    services.set_now(now);
    services.set_paths(AllPairsPaths(
        estimator.snapshot(now, config.min_contacts_for_rate),
        config.path_horizon, config.max_hops, config.threads,
        config.path_engine));
    if (!started) {
      scheme.on_start(services);
      started = true;
    }
    scheme.on_maintenance(services);
    const std::size_t alive = workload.registry().alive_count(now);
    if (alive > 0) {
      result.metrics.sample_copy_count(
          static_cast<double>(scheme.cached_copies(now)) /
          static_cast<double>(alive));
    }
    ++result.maintenance_ticks;
  };

  // One bound phase + weave: every shard advances its feed cursor through
  // the items sequenced before the barrier on the pool, deferred
  // cross-shard estimator updates are applied, then the serial metric
  // order is restored by replaying the shard logs in sequence order.
  std::vector<std::size_t> cursor(shard_count, 0);
  std::uint64_t bound_done = 0;
  std::size_t deferred_done = 0;
  auto bound_and_weave = [&](std::uint64_t barrier_seq,
                             std::uint64_t bound_before,
                             std::size_t deferred_before) {
    if (bound_done < bound_before) {
      DTN_COUNT(kShardEpochs);
      parallel_for(config.threads, shard_count, [&](std::size_t s) {
        SimServices& svc = shard_services[s];
        const std::vector<BoundItem>& feed = feeds[s];
        std::size_t& cur = cursor[s];
        while (cur < feed.size() && feed[cur].seq < barrier_seq) {
          const BoundItem& it = feed[cur];
          ++cur;
          if (it.is_contact) {
            const ContactEvent& e = contacts[it.index];
            estimator.record_contact(e.a, e.b, e.start);
            if (it.scheme_visible) {
              DTN_SCOPED_TIMER(kContacts);
              DTN_COUNT(kContactsProcessed);
              svc.set_now(e.start);
              svc.set_event_seq(it.seq);
              svc.set_rng(&node_rng[static_cast<std::size_t>(it.owner)]);
              LinkBudget budget(static_cast<Bytes>(
                  e.duration *
                  static_cast<double>(config.bandwidth_per_second)));
              scheme.on_contact(svc, e.a, e.b, budget);
            }
          } else {
            const WorkloadEvent& w = work[it.index];
            svc.set_now(w.time);
            svc.set_event_seq(it.seq);
            svc.set_rng(&node_rng[static_cast<std::size_t>(it.owner)]);
            if (w.kind == WorkloadEvent::Kind::kDataGenerated) {
              scheme.on_data_generated(svc, workload.registry().get(w.data));
            } else {
              shard_logs[s].query_issued(it.seq, w.query);
              scheme.on_query(svc, w.query);
            }
          }
        }
      });
      bound_done = bound_before;
    }
    while (deferred_done < deferred_before) {
      const ContactEvent& e = contacts[deferred[deferred_done].index];
      ++deferred_done;
      estimator.record_contact(e.a, e.b, e.start);
    }
    MetricEventLog::replay_into(shard_logs, result.metrics);
  };

  for (const WeaveItem& it : weave) {
    bound_and_weave(it.seq, it.bound_before, it.deferred_before);
    switch (it.kind) {
      case WeaveItem::Kind::kMaintenance:
        run_maintenance(it.time);
        break;
      case WeaveItem::Kind::kWorkload: {
        const WorkloadEvent& w = work[it.index];
        services.set_now(w.time);
        if (w.kind == WorkloadEvent::Kind::kDataGenerated) {
          scheme.on_data_generated(services, workload.registry().get(w.data));
        } else {
          result.metrics.on_query_issued(w.query);
          scheme.on_query(services, w.query);
        }
        break;
      }
      case WeaveItem::Kind::kContact: {
        const ContactEvent& e = contacts[it.index];
        estimator.record_contact(e.a, e.b, e.start);
        DTN_SCOPED_TIMER(kContacts);
        DTN_COUNT(kContactsProcessed);
        services.set_now(e.start);
        LinkBudget budget(static_cast<Bytes>(
            e.duration * static_cast<double>(config.bandwidth_per_second)));
        scheme.on_contact(services, e.a, e.b, budget);
        break;
      }
    }
  }
  bound_and_weave(std::numeric_limits<std::uint64_t>::max(), bound_emitted,
                  deferred.size());

  // Final sampling instant, identical to the serial engine.
  const Time end_time =
      std::max({trace_end_hint, latest_contact_end, phase_start});
  services.set_now(end_time);
  scheme.on_end(services);
  return result;
}

}  // namespace dtn

// The discrete-event simulation engine.
//
// Drives a Scheme over the merged timeline of trace contacts and workload
// events. Contact rates are estimated online from the very beginning of the
// trace (warm-up included); at every maintenance tick the engine refreshes
// the all-pairs opportunistic path tables from the current estimates and
// samples the caching-overhead metric.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/sparse_metric.h"
#include "sim/metrics.h"
#include "sim/scheme.h"
#include "trace/trace.h"
#include "traceio/cursor.h"
#include "workload/workload.h"

namespace dtn {

/// Scheme-implementation engine for the simulator hot loop. kFast runs the
/// SoA/arena NclCachingScheme (pooled bundle chains, reusable per-contact
/// workspaces, zero steady-state allocations); kReference runs the legacy
/// per-object implementation preserved verbatim as NclCachingSchemeReference.
/// The two are bit-identical — same protocol decisions, same RNG stream,
/// same metrics (tests/engine_golden_test.cpp pins this across all four
/// traces and five schemes) — so this knob exists only for golden
/// comparisons and bench denominators. The four baseline schemes have a
/// single implementation and ignore the switch.
enum class SimEngine { kFast, kReference };

struct SimConfig {
  /// Link bandwidth during contacts (paper: Bluetooth EDR 2.1 Mb/s).
  Bytes bandwidth_per_second = megabits(2.1);

  /// Time budget T used for opportunistic path weights (trace-specific;
  /// the paper uses 1 h for Infocom, 1 week for MIT Reality, 3 d for UCSD).
  Time path_horizon = hours(1);

  /// Maximum hops considered for opportunistic paths.
  int max_hops = 8;

  /// Interval between maintenance ticks (path refresh + metric sampling).
  /// Must be > 0.
  Time maintenance_interval = hours(6);

  /// Pairs seen fewer than this many times are excluded from the graph.
  std::size_t min_contacts_for_rate = 2;

  /// Exponential decay constant for rate estimation; 0 uses the paper's
  /// cumulative time-average. A decay of, say, a week makes the estimated
  /// graph forget nodes that churn or fail (pairs RateEstimator).
  Time rate_decay = 0.0;

  /// Seed for the scheme-visible RNG stream (workload has its own seed).
  std::uint64_t seed = 7;

  /// Thread count for the embarrassingly parallel substrate work (per-root
  /// path tables at maintenance ticks, NCL metric computation). 0 =
  /// hardware_concurrency, 1 = fully serial. Results are bit-identical for
  /// every value; this is purely a resource knob.
  int threads = 0;

  /// Number of event-loop shards for the bound-weave engine (sim/shard.h,
  /// DESIGN.md §12). 1 = the classic serial loop; K > 1 partitions the
  /// nodes into K shards whose intra-shard events run concurrently on the
  /// thread pool between synchronization points, with cross-shard contacts
  /// and global scheme events woven in serially. Output is byte-identical
  /// for every value of shards and threads (tests/shard_test.cpp); like
  /// `threads`, this is purely a resource knob.
  int shards = 1;

  /// Path-table construction engine. kFast is the production default;
  /// kReference re-runs the legacy allocating construction. The two are
  /// bit-identical (tests/path_golden_test.cpp), so this knob exists only
  /// for golden comparisons and bench denominators.
  PathEngine path_engine = PathEngine::kFast;

  /// Scheme-implementation engine (see SimEngine above). Dispatch happens
  /// where schemes are constructed (experiment/experiment.cpp make_scheme);
  /// the event loop itself is shared.
  SimEngine sim_engine = SimEngine::kFast;

  /// NCL-metric construction engine (graph/sparse_metric.h, DESIGN.md §14).
  /// kFast is exact; kSparse applies the landmark-sampled + frontier-pruned
  /// scale tier configured by `sparse_metric`. The degenerate sparse config
  /// (all landmarks, zero floor) is bit-identical to kFast, so flipping
  /// this knob with default SparseMetricConfig changes nothing.
  MetricEngine metric_engine = MetricEngine::kFast;
  SparseMetricConfig sparse_metric;

  // ---- failure injection ----

  /// Each contact is independently missed (failed discovery, interference)
  /// with this probability. Missed contacts are invisible to the rate
  /// estimator too — the devices never saw each other.
  double contact_miss_prob = 0.0;

  /// Intervals during which a node is down (battery out, device off).
  /// Contacts involving a down node are skipped entirely.
  struct Downtime {
    NodeId node = kNoNode;
    Time from = 0.0;
    Time to = 0.0;
  };
  std::vector<Downtime> node_downtime;
};

/// Draws random downtime intervals: each node fails as a Poisson process
/// with `failures_per_node` expected failures over `duration`, each outage
/// lasting Exp(mean_outage). Deterministic in the seed.
std::vector<SimConfig::Downtime> random_downtimes(NodeId node_count,
                                                  Time duration,
                                                  double failures_per_node,
                                                  Time mean_outage,
                                                  std::uint64_t seed);

struct RunResult {
  MetricsCollector metrics;
  std::size_t contacts_processed = 0;
  std::size_t maintenance_ticks = 0;
};

/// Runs `scheme` over the trace and workload. The workload's events define
/// the data-access phase; trace contacts before the first workload event
/// only feed the rate estimator (warm-up).
RunResult run_simulation(const ContactTrace& trace, const Workload& workload,
                         Scheme& scheme, const SimConfig& config);

/// Streaming form: consumes contacts from a cursor (traceio/cursor.h)
/// instead of a materialized vector, so a multi-GB .dtntrace runs in
/// O(io-buffer) memory. `contacts` must emit events sorted by start time
/// (DTN_CHECK-enforced); `node_count` bounds node ids; `trace_end_hint` is
/// the trace's end time when known (a BinaryFileContactCursor's
/// meta().end_time) — the engine also tracks the latest contact end seen,
/// so 0 is safe and only shifts the final sampling instant for cursors
/// whose last contact is not the latest-ending one. The ContactTrace
/// overload delegates here; both paths are bit-identical.
RunResult run_simulation(traceio::ContactCursor& contacts, NodeId node_count,
                         Time trace_end_hint, const Workload& workload,
                         Scheme& scheme, const SimConfig& config);

/// The sharded bound-weave engine (DESIGN.md §12). Both run_simulation
/// overloads dispatch here when config.shards > 1; tests call it directly
/// to force the sharded machinery for any shard count, including 1. Plans
/// the whole timeline up front (failure filtering, partition, global
/// sequence numbers), then alternates parallel bound phases over intra-
/// shard events with serial weaves applying cross-shard contacts,
/// maintenance ticks and global-scheme events in canonical sequence order.
/// Byte-identical to the serial engine for every shards/threads value.
/// Requires the materialized contact vector (the cursor overload drains
/// first), so memory is O(contacts) — the streaming guarantee holds only
/// for shards == 1.
RunResult run_simulation_sharded(const std::vector<ContactEvent>& contacts,
                                 NodeId node_count, Time trace_end_hint,
                                 const Workload& workload, Scheme& scheme,
                                 const SimConfig& config);

}  // namespace dtn

// Run metrics matching the paper's evaluation metrics (Sec. VI):
// successful ratio, data access delay, caching overhead (average number of
// cached copies per live data item) and cache-replacement overhead.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "net/message.h"

namespace dtn {

class AllPairsPaths;

/// Summary of the path-weight landscape a table set induces at a given time
/// budget: how reachable the network is and how strong the paths are. Used
/// by dtnsim --path-quality and by bench_paths' batched weight sweep; built
/// on AllPairsPaths::weights_at, so the whole profile runs allocation-free.
struct PathQualityProfile {
  double mean = 0.0;  ///< mean weight over ordered pairs (from != to)
  double min = 1.0;   ///< weakest pair weight (1 when there are no pairs)
  double max = 0.0;   ///< strongest pair weight
  double reachable_fraction = 0.0;  ///< pairs with weight > 0
  std::size_t pairs = 0;            ///< ordered pairs profiled
};

/// Profiles every ordered pair at `budget`. Deterministic: pairs are
/// folded in (to, from) index order regardless of thread count upstream.
PathQualityProfile collect_path_quality(const AllPairsPaths& paths,
                                        Time budget);

class MetricsCollector {
 public:
  /// Called by the engine for every issued query.
  void on_query_issued(const Query& query);

  /// Called (via SimServices) when a data copy reaches the requester.
  /// Only the first delivery of each query counts; duplicates are recorded
  /// separately as wasted transmissions.
  void on_delivery(const Query& query, Time when);

  /// Periodic sample: cached copies per alive data item.
  void sample_copy_count(double copies_per_item);

  /// Bytes moved over links (all transfers).
  void on_bytes_transferred(Bytes bytes) { bytes_transferred_ += bytes; }

  /// Data items moved or dropped by cache replacement.
  void on_replacement(std::size_t items) { replaced_items_ += items; }

  /// Total data items generated (for replacement overhead normalization).
  void set_data_count(std::size_t count) { data_count_ = count; }

  // ---- results ----
  std::size_t queries_issued() const { return queries_issued_; }
  std::size_t queries_satisfied() const { return satisfied_.size(); }
  std::size_t duplicate_deliveries() const { return duplicate_deliveries_; }

  /// Fraction of issued queries satisfied before expiry.
  double success_ratio() const;

  /// Mean delay (seconds) over satisfied queries.
  double mean_delay() const { return delay_.mean(); }
  const RunningStats& delay_stats() const { return delay_; }

  /// Delay percentile (seconds) over satisfied queries; q in [0, 1].
  double delay_percentile(double q) const;

  /// Time-average cached copies per live data item.
  double mean_copies() const { return copies_.mean(); }

  std::uint64_t bytes_transferred() const { return bytes_transferred_; }

  /// Replaced items per generated data item.
  double replacement_overhead() const;

 private:
  std::size_t queries_issued_ = 0;
  std::unordered_set<QueryId> satisfied_;
  std::size_t duplicate_deliveries_ = 0;
  RunningStats delay_;
  std::vector<double> delays_;
  RunningStats copies_;
  std::uint64_t bytes_transferred_ = 0;
  std::uint64_t replaced_items_ = 0;
  std::size_t data_count_ = 0;
};

/// Deferred metric events, recorded by bound-phase shards of the sharded
/// engine (sim/shard.h, DESIGN.md §12) instead of mutating the shared
/// MetricsCollector from worker threads. Every entry carries the global
/// timeline sequence number of the event that produced it; at each weave
/// the engine merges all shard logs by that sequence and replays them into
/// the collector, so delivery dedup and the floating-point delay folds see
/// events in exactly the order the serial engine would have produced.
class MetricEventLog {
 public:
  struct Entry {
    enum class Kind : std::uint8_t {
      kQueryIssued,
      kDelivery,
      kBytes,
      kReplacement,
    };
    std::uint64_t seq = 0;
    Kind kind = Kind::kQueryIssued;
    Query query;            ///< kQueryIssued / kDelivery
    Time when = 0.0;        ///< kDelivery
    Bytes bytes = 0;        ///< kBytes
    std::size_t items = 0;  ///< kReplacement
  };

  void query_issued(std::uint64_t seq, const Query& query);
  void delivery(std::uint64_t seq, const Query& query, Time when);
  void bytes_transferred(std::uint64_t seq, Bytes bytes);
  void replacement(std::uint64_t seq, std::size_t items);

  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Merges every log by ascending sequence number into `metrics` and
  /// clears them (capacity retained for the next epoch). Each sequence
  /// number lives in exactly one log — events are owned by one shard — and
  /// a log is internally sorted by construction, so the k-way front-merge
  /// reproduces the serial engine's exact event order.
  static void replay_into(std::vector<MetricEventLog>& logs,
                          MetricsCollector& metrics);

 private:
  std::vector<Entry> entries_;
};

}  // namespace dtn

// End-to-end experiment harness reproducing the paper's evaluation setup
// (Sec. VI-A): the first half of the trace is the warm-up period used for
// rate accumulation and NCL selection; data and queries are generated over
// the second half; metrics are averaged over repeated runs with different
// workload seeds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/ncl_scheme.h"
#include "common/stats.h"
#include "graph/ncl.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace dtn {

enum class SchemeKind {
  kNclCache,
  kNoCache,
  kRandomCache,
  kCacheData,
  kBundleCache,
};

std::string scheme_kind_name(SchemeKind kind);

struct ExperimentConfig {
  // Workload (paper defaults).
  Time avg_lifetime = weeks(1);            ///< T_L
  Bytes avg_data_size = megabits(100);     ///< s_avg
  double generation_prob = 0.2;            ///< p_G
  double zipf_exponent = 1.0;              ///< s
  double query_constraint_factor = 0.5;    ///< T_q = factor * T_L

  // Node buffers: uniform in [buffer_min, buffer_max] (paper: 200-600 Mb).
  Bytes buffer_min = megabits(200);
  Bytes buffer_max = megabits(600);

  // NCL caching parameters.
  int ncl_count = 8;  ///< K
  CacheStrategy strategy = CacheStrategy::kUtilityExchange;
  ResponseMode response_mode = ResponseMode::kPathWeight;
  bool enable_replacement = true;
  bool dynamic_ncl = false;
  SigmoidResponse sigmoid;  ///< parameters for the sigmoid variant

  // Simulation substrate. When `auto_horizon` is set the path-weight time
  // budget T is calibrated from the warm-up contact graph so the NCL metric
  // differentiates (the paper's adaptive choice of T, Sec. IV-B),
  // overriding sim.path_horizon.
  SimConfig sim;
  bool auto_horizon = true;
  double horizon_target_median = 0.3;

  // Repetitions with different workload/buffer seeds.
  int repetitions = 3;
  std::uint64_t seed = 2026;
};

/// Aggregated outcome of one (trace, scheme, config) cell, over repetitions.
struct ExperimentResult {
  std::string scheme;
  RunningStats success_ratio;
  RunningStats delay_hours;            ///< mean access delay per run, hours
  RunningStats copies_per_item;        ///< caching overhead
  RunningStats replacement_overhead;   ///< replaced items per data item
  RunningStats queries_issued;
  RunningStats queries_satisfied;
  RunningStats gigabytes_transferred;
  RunningStats duplicate_deliveries;
};

/// Contact graph estimated from the warm-up half of the trace.
ContactGraph warmup_graph(const ContactTrace& trace,
                          const ExperimentConfig& config);

/// The path-weight horizon actually used: sim.path_horizon, or the
/// calibrated value when auto_horizon is set.
Time effective_horizon(const ContactGraph& graph,
                       const ExperimentConfig& config);

/// Warm-up products that depend only on the trace and the substrate
/// parameters (min_contacts_for_rate, max_hops, auto_horizon, ...), not on
/// the swept workload axes (lifetime, data size, K, scheme). A sweep or
/// comparison computes this once and every cell reuses it instead of
/// re-estimating the same graph and re-calibrating the same horizon.
struct WarmupContext {
  ContactGraph graph;
  Time horizon = 0.0;
};

WarmupContext make_warmup_context(const ContactTrace& trace,
                                  const ExperimentConfig& config);

/// Selects NCLs from the warm-up half of the trace (utility for benches
/// and examples that want the selection itself).
NclSelection warmup_ncl_selection(const ContactTrace& trace,
                                  const ExperimentConfig& config);

/// Draws the per-node buffer capacities for one repetition.
std::vector<Bytes> draw_buffer_capacities(const ExperimentConfig& config,
                                          NodeId node_count,
                                          std::uint64_t seed);

/// Builds a scheme instance (NCL selection already done by the caller for
/// kNclCache; pass the warm-up selection).
std::unique_ptr<Scheme> make_scheme(SchemeKind kind,
                                    const ExperimentConfig& config,
                                    const NclSelection& ncls,
                                    std::vector<Bytes> buffers);

/// Runs the full experiment cell: warm-up split, NCL selection, repeated
/// simulation, aggregation. When `warmup` is non-null it must have been
/// built by make_warmup_context for the same trace and the same substrate
/// fields of `config`; the cell then skips graph estimation and horizon
/// calibration. Passing nullptr computes a private context — results are
/// identical either way.
ExperimentResult run_experiment(const ContactTrace& trace, SchemeKind kind,
                                const ExperimentConfig& config,
                                const WarmupContext* warmup = nullptr);

/// Shared-trace form for drivers that load once and fan out (dtnsim,
/// sweeps): same results, no copy of the trace.
ExperimentResult run_experiment(
    const std::shared_ptr<const ContactTrace>& trace, SchemeKind kind,
    const ExperimentConfig& config);

/// Convenience: run several schemes on the same trace and identical
/// workloads. The warm-up context is computed once and shared across
/// schemes.
std::vector<ExperimentResult> run_comparison(
    const ContactTrace& trace, const std::vector<SchemeKind>& kinds,
    const ExperimentConfig& config);

std::vector<ExperimentResult> run_comparison(
    const std::shared_ptr<const ContactTrace>& trace,
    const std::vector<SchemeKind>& kinds, const ExperimentConfig& config);

}  // namespace dtn

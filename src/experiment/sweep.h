// Declarative parameter sweeps: the cross product of lifetimes, data sizes,
// NCL counts and schemes over one trace, with CSV export — the batch-mode
// complement to the per-figure benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "experiment/experiment.h"

namespace dtn {

struct SweepConfig {
  /// Base configuration; each axis below overrides one field per cell.
  ExperimentConfig base;

  std::vector<SchemeKind> schemes{SchemeKind::kNclCache};
  std::vector<Time> lifetimes;       ///< empty = keep base.avg_lifetime
  std::vector<Bytes> data_sizes;     ///< empty = keep base.avg_data_size
  std::vector<int> ncl_counts;       ///< empty = keep base.ncl_count
};

/// One sweep cell's outcome, flattened for tabulation.
struct SweepRow {
  std::string scheme;
  Time avg_lifetime = 0.0;
  Bytes avg_data_size = 0;
  int ncl_count = 0;
  double success_ratio = 0.0;
  double delay_hours = 0.0;
  double copies_per_item = 0.0;
  double replacement_overhead = 0.0;
  double queries = 0.0;
};

/// Runs the full cross product. `progress` (optional) is called once per
/// completed cell with (done, total).
std::vector<SweepRow> run_sweep(
    const ContactTrace& trace, const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// CSV rendering (header + one line per row).
std::string sweep_to_csv(const std::vector<SweepRow>& rows);

}  // namespace dtn

// Declarative parameter sweeps: the cross product of lifetimes, data sizes,
// NCL counts and schemes over one trace, with CSV export — the batch-mode
// complement to the per-figure benches.
//
// Cells are independent experiments, so the grid runs on the shared thread
// pool. Determinism contract: every cell's RNG seed is derived from the
// base seed and the cell's grid index (never from the draw order of a
// shared stream), rows are emitted in grid order, and `sweep_to_csv` output
// is therefore byte-identical for every thread count.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiment/experiment.h"

namespace dtn {

struct SweepConfig {
  /// Base configuration; each axis below overrides one field per cell.
  ExperimentConfig base;

  std::vector<SchemeKind> schemes{SchemeKind::kNclCache};
  std::vector<Time> lifetimes;       ///< empty = keep base.avg_lifetime
  std::vector<Bytes> data_sizes;     ///< empty = keep base.avg_data_size
  std::vector<int> ncl_counts;       ///< empty = keep base.ncl_count

  /// Cells run concurrently on this many threads (resolve_threads
  /// semantics: 0 = hardware_concurrency, 1 = the legacy serial path).
  /// Purely a resource knob — results are identical for every value.
  int threads = 0;
};

/// One sweep cell's outcome, flattened for tabulation.
struct SweepRow {
  std::string scheme;
  Time avg_lifetime = 0.0;
  Bytes avg_data_size = 0;
  int ncl_count = 0;
  double success_ratio = 0.0;
  double delay_hours = 0.0;
  double copies_per_item = 0.0;
  double replacement_overhead = 0.0;
  double queries = 0.0;
};

/// Runs the full cross product; rows come back in grid order (the same
/// order the serial loops produced) regardless of completion order.
///
/// `progress` (optional) is called once per completed cell with
/// (done, total). Contract: invocations are serialized under a mutex,
/// `done` is monotonically non-decreasing (in fact exactly 1, 2, ..,
/// total), and the final call carries done == total — even when cells
/// finish out of order on the pool. `done` counts completed cells, not
/// which cell completed.
std::vector<SweepRow> run_sweep(
    const ContactTrace& trace, const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Shared-trace form: the parsed trace is held by shared_ptr and every cell
/// reads the same immutable instance (no per-cell copies or re-reads).
/// The warm-up context (contact graph + calibrated horizon) is likewise
/// computed once per sweep — none of the swept axes affect it.
std::vector<SweepRow> run_sweep(
    const std::shared_ptr<const ContactTrace>& trace, const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// CSV rendering (header + one line per row).
std::string sweep_to_csv(const std::vector<SweepRow>& rows);

}  // namespace dtn

#include "experiment/sweep.h"

#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/instrument.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace dtn {

std::vector<SweepRow> run_sweep(
    const ContactTrace& trace, const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  const std::vector<Time> lifetimes =
      config.lifetimes.empty() ? std::vector<Time>{config.base.avg_lifetime}
                               : config.lifetimes;
  const std::vector<Bytes> sizes =
      config.data_sizes.empty() ? std::vector<Bytes>{config.base.avg_data_size}
                                : config.data_sizes;
  const std::vector<int> ks = config.ncl_counts.empty()
                                  ? std::vector<int>{config.base.ncl_count}
                                  : config.ncl_counts;

  // Enumerate the full grid up front so every cell knows its index; the
  // index both addresses the row slot and derives the cell's RNG seed.
  struct Cell {
    SchemeKind scheme;
    Time lifetime;
    Bytes size;
    int k;
  };
  std::vector<Cell> cells;
  cells.reserve(config.schemes.size() * lifetimes.size() * sizes.size() *
                ks.size());
  for (int k : ks) {
    for (Time lifetime : lifetimes) {
      for (Bytes size : sizes) {
        for (SchemeKind scheme : config.schemes) {
          cells.push_back({scheme, lifetime, size, k});
        }
      }
    }
  }

  const std::size_t total = cells.size();
  std::vector<SweepRow> rows(total);
  std::mutex progress_mutex;
  std::size_t done = 0;
  DTN_SCOPED_TIMER(kSweep);

  // The swept axes (scheme, lifetime, size, K) never touch the warm-up
  // graph or the horizon calibration, so those are computed once here and
  // shared read-only by every cell.
  const WarmupContext warmup = make_warmup_context(trace, config.base);

  parallel_for(config.threads, total, [&](std::size_t index) {
    const Cell& c = cells[index];
    ExperimentConfig cell = config.base;
    cell.avg_lifetime = c.lifetime;
    cell.avg_data_size = c.size;
    cell.ncl_count = c.k;
    // Seed as a pure function of (base seed, grid index): cells never share
    // an RNG stream, so the schedule cannot leak into the results.
    cell.seed = derive_seed(config.base.seed, index);
    const ExperimentResult r = run_experiment(trace, c.scheme, cell, &warmup);

    SweepRow row;
    row.scheme = r.scheme;
    row.avg_lifetime = c.lifetime;
    row.avg_data_size = c.size;
    row.ncl_count = c.k;
    row.success_ratio = r.success_ratio.mean();
    row.delay_hours = r.delay_hours.mean();
    row.copies_per_item = r.copies_per_item.mean();
    row.replacement_overhead = r.replacement_overhead.mean();
    row.queries = r.queries_issued.mean();
    rows[index] = std::move(row);
    DTN_COUNT(kSweepCells);

    if (progress) {
      // The counter is incremented under the same mutex that serializes the
      // callback, so observers see done = 1, 2, .., total in order.
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(++done, total);
    }
  });
  return rows;
}

std::vector<SweepRow> run_sweep(
    const std::shared_ptr<const ContactTrace>& trace, const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  if (!trace) throw std::invalid_argument("run_sweep: null trace");
  return run_sweep(*trace, config, progress);
}

std::string sweep_to_csv(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  out << "scheme,lifetime_hours,size_mb,k,success_ratio,delay_hours,"
         "copies_per_item,replacement_overhead,queries\n";
  out.precision(6);
  for (const auto& row : rows) {
    out << row.scheme << ',' << row.avg_lifetime / 3600.0 << ','
        << static_cast<double>(row.avg_data_size) * 8.0 / 1e6 << ','
        << row.ncl_count << ',' << row.success_ratio << ',' << row.delay_hours
        << ',' << row.copies_per_item << ',' << row.replacement_overhead << ','
        << row.queries << '\n';
  }
  return out.str();
}

}  // namespace dtn

#include "experiment/sweep.h"

#include <sstream>

namespace dtn {

std::vector<SweepRow> run_sweep(
    const ContactTrace& trace, const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  const std::vector<Time> lifetimes =
      config.lifetimes.empty() ? std::vector<Time>{config.base.avg_lifetime}
                               : config.lifetimes;
  const std::vector<Bytes> sizes =
      config.data_sizes.empty() ? std::vector<Bytes>{config.base.avg_data_size}
                                : config.data_sizes;
  const std::vector<int> ks = config.ncl_counts.empty()
                                  ? std::vector<int>{config.base.ncl_count}
                                  : config.ncl_counts;

  const std::size_t total =
      config.schemes.size() * lifetimes.size() * sizes.size() * ks.size();
  std::vector<SweepRow> rows;
  rows.reserve(total);

  std::size_t done = 0;
  for (int k : ks) {
    for (Time lifetime : lifetimes) {
      for (Bytes size : sizes) {
        for (SchemeKind scheme : config.schemes) {
          ExperimentConfig cell = config.base;
          cell.avg_lifetime = lifetime;
          cell.avg_data_size = size;
          cell.ncl_count = k;
          const ExperimentResult r = run_experiment(trace, scheme, cell);

          SweepRow row;
          row.scheme = r.scheme;
          row.avg_lifetime = lifetime;
          row.avg_data_size = size;
          row.ncl_count = k;
          row.success_ratio = r.success_ratio.mean();
          row.delay_hours = r.delay_hours.mean();
          row.copies_per_item = r.copies_per_item.mean();
          row.replacement_overhead = r.replacement_overhead.mean();
          row.queries = r.queries_issued.mean();
          rows.push_back(std::move(row));
          if (progress) progress(++done, total);
        }
      }
    }
  }
  return rows;
}

std::string sweep_to_csv(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  out << "scheme,lifetime_hours,size_mb,k,success_ratio,delay_hours,"
         "copies_per_item,replacement_overhead,queries\n";
  out.precision(6);
  for (const auto& row : rows) {
    out << row.scheme << ',' << row.avg_lifetime / 3600.0 << ','
        << static_cast<double>(row.avg_data_size) * 8.0 / 1e6 << ','
        << row.ncl_count << ',' << row.success_ratio << ',' << row.delay_hours
        << ',' << row.copies_per_item << ',' << row.replacement_overhead << ','
        << row.queries << '\n';
  }
  return out.str();
}

}  // namespace dtn

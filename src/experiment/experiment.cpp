#include "experiment/experiment.h"

#include <stdexcept>

#include "baselines/bundle_cache.h"
#include "baselines/cache_data.h"
#include "baselines/no_cache.h"
#include "baselines/random_cache.h"
#include "graph/ncl.h"

namespace dtn {

std::string scheme_kind_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNclCache: return "NCL-Cache";
    case SchemeKind::kNoCache: return "NoCache";
    case SchemeKind::kRandomCache: return "RandomCache";
    case SchemeKind::kCacheData: return "CacheData";
    case SchemeKind::kBundleCache: return "BundleCache";
  }
  return "?";
}

ContactGraph warmup_graph(const ContactTrace& trace,
                          const ExperimentConfig& config) {
  const Time warmup_end = trace.start_time() + trace.duration() / 2.0;
  return build_contact_graph(trace, warmup_end,
                             config.sim.min_contacts_for_rate);
}

Time effective_horizon(const ContactGraph& graph,
                       const ExperimentConfig& config) {
  if (!config.auto_horizon) return config.sim.path_horizon;
  return calibrate_horizon(graph, config.horizon_target_median, minutes(1),
                           days(90), config.sim.max_hops);
}

NclSelection warmup_ncl_selection(const ContactTrace& trace,
                                  const ExperimentConfig& config) {
  const ContactGraph graph = warmup_graph(trace, config);
  return select_ncls(graph, effective_horizon(graph, config),
                     config.ncl_count, config.sim.max_hops);
}

std::vector<Bytes> draw_buffer_capacities(const ExperimentConfig& config,
                                          NodeId node_count,
                                          std::uint64_t seed) {
  if (config.buffer_min <= 0 || config.buffer_max < config.buffer_min) {
    throw std::invalid_argument("invalid buffer capacity range");
  }
  Rng rng(seed);
  std::vector<Bytes> buffers(static_cast<std::size_t>(node_count));
  for (auto& b : buffers) {
    b = rng.uniform_int(config.buffer_min, config.buffer_max);
  }
  return buffers;
}

std::unique_ptr<Scheme> make_scheme(SchemeKind kind,
                                    const ExperimentConfig& config,
                                    const NclSelection& ncls,
                                    std::vector<Bytes> buffers) {
  switch (kind) {
    case SchemeKind::kNclCache: {
      NclSchemeConfig c;
      c.central_nodes = ncls.central_nodes;
      c.buffer_capacity = std::move(buffers);
      c.response_mode = config.response_mode;
      c.sigmoid = config.sigmoid;
      c.strategy = config.strategy;
      c.enable_replacement = config.enable_replacement;
      c.dynamic_ncl = config.dynamic_ncl;
      return std::make_unique<NclCachingScheme>(std::move(c));
    }
    case SchemeKind::kNoCache: {
      FloodingConfig c;
      c.buffer_capacity = std::move(buffers);
      return std::make_unique<NoCacheScheme>(std::move(c));
    }
    case SchemeKind::kRandomCache: {
      FloodingConfig c;
      c.buffer_capacity = std::move(buffers);
      return std::make_unique<RandomCacheScheme>(std::move(c));
    }
    case SchemeKind::kCacheData: {
      FloodingConfig c;
      c.buffer_capacity = std::move(buffers);
      return std::make_unique<CacheDataScheme>(std::move(c));
    }
    case SchemeKind::kBundleCache: {
      BundleCacheConfig c;
      c.flooding.buffer_capacity = std::move(buffers);
      return std::make_unique<BundleCacheScheme>(std::move(c));
    }
  }
  throw std::logic_error("unknown scheme kind");
}

ExperimentResult run_experiment(const ContactTrace& trace, SchemeKind kind,
                                const ExperimentConfig& config) {
  if (config.repetitions < 1) throw std::invalid_argument("repetitions >= 1");

  ExperimentResult result;
  result.scheme = scheme_kind_name(kind);

  const Time warmup_end = trace.start_time() + trace.duration() / 2.0;
  const ContactGraph graph = warmup_graph(trace, config);
  const Time horizon = effective_horizon(graph, config);
  const NclSelection ncls = select_ncls(graph, horizon, config.ncl_count,
                                        config.sim.max_hops);

  for (int rep = 0; rep < config.repetitions; ++rep) {
    const std::uint64_t rep_seed =
        config.seed + 0x9E3779B9ULL * static_cast<std::uint64_t>(rep + 1);

    WorkloadConfig wc;
    wc.start = warmup_end;
    wc.end = trace.end_time();
    wc.avg_lifetime = config.avg_lifetime;
    wc.generation_prob = config.generation_prob;
    wc.avg_size = config.avg_data_size;
    wc.zipf_exponent = config.zipf_exponent;
    wc.query_constraint_factor = config.query_constraint_factor;
    wc.seed = rep_seed;
    const Workload workload = generate_workload(wc, trace.node_count());

    std::vector<Bytes> buffers =
        draw_buffer_capacities(config, trace.node_count(), rep_seed ^ 0xB0FFu);
    std::unique_ptr<Scheme> scheme =
        make_scheme(kind, config, ncls, std::move(buffers));

    SimConfig sc = config.sim;
    sc.path_horizon = horizon;
    sc.seed = rep_seed ^ 0x51Au;
    const RunResult run = run_simulation(trace, workload, *scheme, sc);

    result.success_ratio.add(run.metrics.success_ratio());
    if (run.metrics.queries_satisfied() > 0) {
      result.delay_hours.add(run.metrics.mean_delay() / 3600.0);
    }
    result.copies_per_item.add(run.metrics.mean_copies());
    result.replacement_overhead.add(run.metrics.replacement_overhead());
    result.queries_issued.add(static_cast<double>(run.metrics.queries_issued()));
    result.queries_satisfied.add(
        static_cast<double>(run.metrics.queries_satisfied()));
    result.gigabytes_transferred.add(
        static_cast<double>(run.metrics.bytes_transferred()) / 1e9);
    result.duplicate_deliveries.add(
        static_cast<double>(run.metrics.duplicate_deliveries()));
  }
  return result;
}

std::vector<ExperimentResult> run_comparison(
    const ContactTrace& trace, const std::vector<SchemeKind>& kinds,
    const ExperimentConfig& config) {
  std::vector<ExperimentResult> results;
  results.reserve(kinds.size());
  for (SchemeKind kind : kinds) {
    results.push_back(run_experiment(trace, kind, config));
  }
  return results;
}

}  // namespace dtn

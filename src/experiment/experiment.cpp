#include "experiment/experiment.h"

#include <optional>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "common/parallel.h"
#include "baselines/bundle_cache.h"
#include "baselines/cache_data.h"
#include "baselines/no_cache.h"
#include "baselines/random_cache.h"
#include "cache/ncl_scheme_reference.h"
#include "graph/ncl.h"

namespace dtn {

std::string scheme_kind_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNclCache: return "NCL-Cache";
    case SchemeKind::kNoCache: return "NoCache";
    case SchemeKind::kRandomCache: return "RandomCache";
    case SchemeKind::kCacheData: return "CacheData";
    case SchemeKind::kBundleCache: return "BundleCache";
  }
  return "?";
}

ContactGraph warmup_graph(const ContactTrace& trace,
                          const ExperimentConfig& config) {
  const Time warmup_end = trace.start_time() + trace.duration() / 2.0;
  return build_contact_graph(trace, warmup_end,
                             config.sim.min_contacts_for_rate);
}

Time effective_horizon(const ContactGraph& graph,
                       const ExperimentConfig& config) {
  if (!config.auto_horizon) return config.sim.path_horizon;
  return calibrate_horizon(graph, config.horizon_target_median, minutes(1),
                           days(90), config.sim.max_hops, config.sim.threads,
                           config.sim.metric_engine, config.sim.sparse_metric);
}

WarmupContext make_warmup_context(const ContactTrace& trace,
                                  const ExperimentConfig& config) {
  WarmupContext ctx;
  ctx.graph = warmup_graph(trace, config);
  ctx.horizon = effective_horizon(ctx.graph, config);
  return ctx;
}

NclSelection warmup_ncl_selection(const ContactTrace& trace,
                                  const ExperimentConfig& config) {
  const ContactGraph graph = warmup_graph(trace, config);
  return select_ncls(graph, effective_horizon(graph, config),
                     config.ncl_count, config.sim.max_hops,
                     config.sim.threads, config.sim.metric_engine,
                     config.sim.sparse_metric);
}

std::vector<Bytes> draw_buffer_capacities(const ExperimentConfig& config,
                                          NodeId node_count,
                                          std::uint64_t seed) {
  if (config.buffer_min <= 0 || config.buffer_max < config.buffer_min) {
    throw std::invalid_argument("invalid buffer capacity range");
  }
  Rng rng(seed);
  std::vector<Bytes> buffers(static_cast<std::size_t>(node_count));
  for (auto& b : buffers) {
    b = rng.uniform_int(config.buffer_min, config.buffer_max);
  }
  return buffers;
}

std::unique_ptr<Scheme> make_scheme(SchemeKind kind,
                                    const ExperimentConfig& config,
                                    const NclSelection& ncls,
                                    std::vector<Bytes> buffers) {
  switch (kind) {
    case SchemeKind::kNclCache: {
      NclSchemeConfig c;
      c.central_nodes = ncls.central_nodes;
      c.buffer_capacity = std::move(buffers);
      c.response_mode = config.response_mode;
      c.sigmoid = config.sigmoid;
      c.strategy = config.strategy;
      c.enable_replacement = config.enable_replacement;
      c.dynamic_ncl = config.dynamic_ncl;
      if (config.sim.sim_engine == SimEngine::kReference) {
        return std::make_unique<NclCachingSchemeReference>(std::move(c));
      }
      return std::make_unique<NclCachingScheme>(std::move(c));
    }
    case SchemeKind::kNoCache: {
      FloodingConfig c;
      c.buffer_capacity = std::move(buffers);
      return std::make_unique<NoCacheScheme>(std::move(c));
    }
    case SchemeKind::kRandomCache: {
      FloodingConfig c;
      c.buffer_capacity = std::move(buffers);
      return std::make_unique<RandomCacheScheme>(std::move(c));
    }
    case SchemeKind::kCacheData: {
      FloodingConfig c;
      c.buffer_capacity = std::move(buffers);
      return std::make_unique<CacheDataScheme>(std::move(c));
    }
    case SchemeKind::kBundleCache: {
      BundleCacheConfig c;
      c.flooding.buffer_capacity = std::move(buffers);
      return std::make_unique<BundleCacheScheme>(std::move(c));
    }
  }
  throw std::logic_error("unknown scheme kind");
}

ExperimentResult run_experiment(const ContactTrace& trace, SchemeKind kind,
                                const ExperimentConfig& config,
                                const WarmupContext* warmup) {
  if (config.repetitions < 1) throw std::invalid_argument("repetitions >= 1");
  DTN_SCOPED_TIMER(kExperiment);

  ExperimentResult result;
  result.scheme = scheme_kind_name(kind);

  const Time warmup_end = trace.start_time() + trace.duration() / 2.0;
  std::optional<WarmupContext> local;
  if (warmup == nullptr) {
    local.emplace(make_warmup_context(trace, config));
    warmup = &*local;
  }
  const ContactGraph& graph = warmup->graph;
  const Time horizon = warmup->horizon;
  const NclSelection ncls = select_ncls(graph, horizon, config.ncl_count,
                                        config.sim.max_hops,
                                        config.sim.threads,
                                        config.sim.metric_engine,
                                        config.sim.sparse_metric);

  // Repetitions are independent (each derives its own seeds from the rep
  // index), so they run on the thread pool; the fold below accumulates the
  // per-rep outcomes in rep order, keeping the aggregated statistics
  // bit-identical to the serial path for every thread count.
  struct RepOutcome {
    double success_ratio, delay_hours, copies, replacement;
    double issued, satisfied, gigabytes, duplicates;
    bool has_delay;
  };
  const std::size_t reps = static_cast<std::size_t>(config.repetitions);
  const std::vector<RepOutcome> outcomes = parallel_map(
      config.sim.threads, reps, [&](std::size_t rep) {
        const std::uint64_t rep_seed =
            config.seed + 0x9E3779B9ULL * static_cast<std::uint64_t>(rep + 1);

        WorkloadConfig wc;
        wc.start = warmup_end;
        wc.end = trace.end_time();
        wc.avg_lifetime = config.avg_lifetime;
        wc.generation_prob = config.generation_prob;
        wc.avg_size = config.avg_data_size;
        wc.zipf_exponent = config.zipf_exponent;
        wc.query_constraint_factor = config.query_constraint_factor;
        wc.seed = rep_seed;
        const Workload workload = generate_workload(wc, trace.node_count());

        std::vector<Bytes> buffers = draw_buffer_capacities(
            config, trace.node_count(), rep_seed ^ 0xB0FFu);
        std::unique_ptr<Scheme> scheme =
            make_scheme(kind, config, ncls, std::move(buffers));

        SimConfig sc = config.sim;
        sc.path_horizon = horizon;
        sc.seed = rep_seed ^ 0x51Au;
        const RunResult run = run_simulation(trace, workload, *scheme, sc);

        RepOutcome o;
        o.success_ratio = run.metrics.success_ratio();
        o.has_delay = run.metrics.queries_satisfied() > 0;
        o.delay_hours = o.has_delay ? run.metrics.mean_delay() / 3600.0 : 0.0;
        o.copies = run.metrics.mean_copies();
        o.replacement = run.metrics.replacement_overhead();
        o.issued = static_cast<double>(run.metrics.queries_issued());
        o.satisfied = static_cast<double>(run.metrics.queries_satisfied());
        o.gigabytes =
            static_cast<double>(run.metrics.bytes_transferred()) / 1e9;
        o.duplicates =
            static_cast<double>(run.metrics.duplicate_deliveries());
        DTN_COUNT(kExperimentRepetitions);
        return o;
      });

  for (const RepOutcome& o : outcomes) {
    // Fold only sane repetition outcomes: one NaN here would silently
    // poison every aggregated statistic of the experiment.
    DTN_CHECK_PROB(o.success_ratio);
    DTN_CHECK_FINITE(o.delay_hours);
    DTN_CHECK_FINITE(o.copies);
    DTN_CHECK_FINITE(o.replacement);
    result.success_ratio.add(o.success_ratio);
    if (o.has_delay) result.delay_hours.add(o.delay_hours);
    result.copies_per_item.add(o.copies);
    result.replacement_overhead.add(o.replacement);
    result.queries_issued.add(o.issued);
    result.queries_satisfied.add(o.satisfied);
    result.gigabytes_transferred.add(o.gigabytes);
    result.duplicate_deliveries.add(o.duplicates);
  }
  return result;
}

ExperimentResult run_experiment(
    const std::shared_ptr<const ContactTrace>& trace, SchemeKind kind,
    const ExperimentConfig& config) {
  if (!trace) throw std::invalid_argument("run_experiment: null trace");
  return run_experiment(*trace, kind, config);
}

std::vector<ExperimentResult> run_comparison(
    const ContactTrace& trace, const std::vector<SchemeKind>& kinds,
    const ExperimentConfig& config) {
  const WarmupContext warmup = make_warmup_context(trace, config);
  std::vector<ExperimentResult> results;
  results.reserve(kinds.size());
  for (SchemeKind kind : kinds) {
    results.push_back(run_experiment(trace, kind, config, &warmup));
  }
  return results;
}

std::vector<ExperimentResult> run_comparison(
    const std::shared_ptr<const ContactTrace>& trace,
    const std::vector<SchemeKind>& kinds, const ExperimentConfig& config) {
  if (!trace) throw std::invalid_argument("run_comparison: null trace");
  return run_comparison(*trace, kinds, config);
}

}  // namespace dtn

#include "traceio/cursor.h"

#include <fstream>
#include <stdexcept>

namespace dtn::traceio {

struct BinaryFileContactCursor::Impl {
  std::ifstream in;
  std::unique_ptr<BinaryDecoder> decoder;
};

BinaryFileContactCursor::BinaryFileContactCursor(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->in.open(path, std::ios::binary);
  if (!impl_->in) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  impl_->decoder = std::make_unique<BinaryDecoder>(impl_->in, path);
}

BinaryFileContactCursor::~BinaryFileContactCursor() = default;

const BinaryTraceMeta& BinaryFileContactCursor::meta() const {
  return impl_->decoder->meta();
}

bool BinaryFileContactCursor::next(ContactEvent& out) {
  return impl_->decoder->next(out);
}

std::vector<ContactEvent> drain(ContactCursor& cursor) {
  std::vector<ContactEvent> events;
  ContactEvent e;
  while (cursor.next(e)) events.push_back(e);
  return events;
}

}  // namespace dtn::traceio

#include "traceio/binary.h"

#include <algorithm>
#include <array>
#include <bit>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn::traceio {
namespace {

constexpr std::size_t kHeaderFixedSize = 76;
constexpr std::size_t kIoBufferSize = 64 * 1024;

[[noreturn]] void binary_error(const std::string& source,
                               const std::string& why) {
  throw std::runtime_error(source + ": .dtntrace error: " + why);
}

constexpr std::uint64_t bswap64(std::uint64_t v) {
  return ((v & 0x00000000000000ffull) << 56) |
         ((v & 0x000000000000ff00ull) << 40) |
         ((v & 0x0000000000ff0000ull) << 24) |
         ((v & 0x00000000ff000000ull) << 8) |
         ((v & 0x000000ff00000000ull) >> 8) |
         ((v & 0x0000ff0000000000ull) >> 24) |
         ((v & 0x00ff000000000000ull) >> 40) |
         ((v & 0xff00000000000000ull) >> 56);
}

constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ---- little-endian fixed-width append/read (host-order independent) ----

void append_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<char>((v & 0x7fu) | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t fnv1a_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for checksum: " + path);
  std::array<char, kIoBufferSize> buffer;
  std::uint64_t hash = kFnvOffset;
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    hash = fnv1a(buffer.data(), static_cast<std::size_t>(in.gcount()), hash);
  }
  if (in.bad()) throw std::runtime_error("I/O error hashing: " + path);
  return hash;
}

void write_trace_binary(const ContactTrace& trace, std::ostream& out,
                        std::uint64_t source_size,
                        std::uint64_t source_checksum) {
  // Encode the payload first: the header carries its checksum.
  std::string payload;
  payload.reserve(trace.size() * 8);
  std::uint64_t prev_start_bits = 0;
  std::uint64_t prev_duration_bits = 0;
  NodeId prev_a = 0;
  for (const ContactEvent& e : trace.events()) {
    const std::uint64_t start_bits = std::bit_cast<std::uint64_t>(e.start);
    const std::uint64_t duration_bits =
        std::bit_cast<std::uint64_t>(e.duration);
    append_varint(payload, bswap64(start_bits ^ prev_start_bits));
    append_varint(payload, bswap64(duration_bits ^ prev_duration_bits));
    append_varint(payload, zigzag_encode(static_cast<std::int64_t>(e.a) -
                                         static_cast<std::int64_t>(prev_a)));
    DTN_CHECK(e.b > e.a, "canonical contact order a < b");
    append_varint(payload,
                  static_cast<std::uint64_t>(e.b - e.a - 1));
    prev_start_bits = start_bits;
    prev_duration_bits = duration_bits;
    prev_a = e.a;
  }

  std::string header;
  header.reserve(kHeaderFixedSize + trace.name().size());
  header.append(kBinaryMagic, sizeof(kBinaryMagic));
  append_u32(header, kBinaryVersion);
  append_u32(header, kEndianTag);
  append_u32(header, static_cast<std::uint32_t>(trace.node_count()));
  append_u32(header, 0);  // flags, reserved
  append_u64(header, static_cast<std::uint64_t>(trace.size()));
  append_u64(header, std::bit_cast<std::uint64_t>(trace.start_time()));
  append_u64(header, std::bit_cast<std::uint64_t>(trace.end_time()));
  append_u64(header, source_size);
  append_u64(header, source_checksum);
  append_u64(header, fnv1a(payload.data(), payload.size()));
  append_u32(header, static_cast<std::uint32_t>(trace.name().size()));
  header.append(trace.name());

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw std::runtime_error("failed writing binary trace");
}

void save_trace_binary(const ContactTrace& trace, const std::string& path,
                       std::uint64_t source_size,
                       std::uint64_t source_checksum) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace_binary(trace, out, source_size, source_checksum);
}

BinaryTraceMeta read_binary_header(std::istream& in,
                                   const std::string& source_name) {
  std::array<unsigned char, kHeaderFixedSize> raw;
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (static_cast<std::size_t>(in.gcount()) != raw.size()) {
    binary_error(source_name, "truncated header");
  }
  if (!std::equal(kBinaryMagic, kBinaryMagic + sizeof(kBinaryMagic),
                  raw.begin())) {
    binary_error(source_name, "bad magic (not a .dtntrace file)");
  }
  BinaryTraceMeta meta;
  meta.version = read_u32(&raw[8]);
  if (meta.version != kBinaryVersion) {
    binary_error(source_name,
                 "unsupported version " + std::to_string(meta.version) +
                     " (expected " + std::to_string(kBinaryVersion) + ")");
  }
  const std::uint32_t endian = read_u32(&raw[12]);
  if (endian != kEndianTag) {
    binary_error(source_name, endian == 0x04030201u
                                  ? "byte-swapped endianness tag"
                                  : "bad endianness tag");
  }
  meta.node_count = static_cast<NodeId>(read_u32(&raw[16]));
  // raw[20..23]: reserved flags, ignored.
  meta.contact_count = read_u64(&raw[24]);
  meta.start_time = std::bit_cast<Time>(read_u64(&raw[32]));
  meta.end_time = std::bit_cast<Time>(read_u64(&raw[40]));
  meta.source_size = read_u64(&raw[48]);
  meta.source_checksum = read_u64(&raw[56]);
  meta.payload_checksum = read_u64(&raw[64]);
  const std::uint32_t name_length = read_u32(&raw[72]);
  if (name_length > 4096) {
    binary_error(source_name, "implausible trace name length");
  }
  meta.name.resize(name_length);
  in.read(meta.name.data(), static_cast<std::streamsize>(name_length));
  if (static_cast<std::uint32_t>(in.gcount()) != name_length) {
    binary_error(source_name, "truncated trace name");
  }
  DTN_COUNT_N(kTraceBytesRead, kHeaderFixedSize + name_length);
  return meta;
}

// ---- incremental decoder ----

struct BinaryDecoder::Impl {
  std::istream& in;
  std::string source_name;
  BinaryTraceMeta meta;

  std::vector<char> buffer = std::vector<char>(kIoBufferSize);
  std::size_t buffer_pos = 0;
  std::size_t buffer_len = 0;

  std::uint64_t checksum = kFnvOffset;
  std::uint64_t decoded = 0;
  std::uint64_t prev_start_bits = 0;
  std::uint64_t prev_duration_bits = 0;
  NodeId prev_a = 0;
  ContactEvent prev_event;
  bool finished = false;

  Impl(std::istream& stream, std::string source)
      : in(stream), source_name(std::move(source)) {}

  bool fill() {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    buffer_len = static_cast<std::size_t>(in.gcount());
    buffer_pos = 0;
    DTN_COUNT_N(kTraceBytesRead, buffer_len);
    return buffer_len > 0;
  }

  bool read_byte(std::uint8_t& out) {
    if (buffer_pos == buffer_len && !fill()) return false;
    const std::uint8_t byte =
        static_cast<std::uint8_t>(buffer[buffer_pos++]);
    checksum ^= byte;
    checksum *= 0x100000001b3ull;
    out = byte;
    return true;
  }

  std::uint64_t read_varint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      std::uint8_t byte = 0;
      if (!read_byte(byte)) {
        binary_error(source_name, "truncated record payload");
      }
      value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
      if ((byte & 0x80u) == 0) return value;
    }
    binary_error(source_name, "overlong varint in record payload");
  }

  void finish() {
    if (checksum != meta.payload_checksum) {
      binary_error(source_name, "payload checksum mismatch (corrupt file)");
    }
    // The payload must end exactly with the last record.
    std::uint8_t extra = 0;
    if (read_byte(extra)) {
      binary_error(source_name, "trailing bytes after the last record");
    }
    finished = true;
  }
};

BinaryDecoder::BinaryDecoder(std::istream& in, std::string source_name)
    : impl_(std::make_unique<Impl>(in, std::move(source_name))) {
  impl_->meta = read_binary_header(in, impl_->source_name);
  if (impl_->meta.contact_count == 0) impl_->finish();
}

BinaryDecoder::~BinaryDecoder() = default;

const BinaryTraceMeta& BinaryDecoder::meta() const { return impl_->meta; }

bool BinaryDecoder::next(ContactEvent& out) {
  Impl& d = *impl_;
  if (d.decoded == d.meta.contact_count) return false;

  const std::uint64_t start_bits =
      d.prev_start_bits ^ bswap64(d.read_varint());
  const std::uint64_t duration_bits =
      d.prev_duration_bits ^ bswap64(d.read_varint());
  const std::int64_t a = static_cast<std::int64_t>(d.prev_a) +
                         zigzag_decode(d.read_varint());
  const std::uint64_t b_delta = d.read_varint();

  ContactEvent e;
  e.start = std::bit_cast<Time>(start_bits);
  e.duration = std::bit_cast<Time>(duration_bits);
  if (a < 0 || a >= d.meta.node_count) {
    binary_error(d.source_name, "record references node outside [0, N)");
  }
  e.a = static_cast<NodeId>(a);
  const std::int64_t b = a + 1 + static_cast<std::int64_t>(b_delta);
  if (b >= d.meta.node_count) {
    binary_error(d.source_name, "record references node outside [0, N)");
  }
  e.b = static_cast<NodeId>(b);
  if (e.duration < 0.0) {
    binary_error(d.source_name, "record carries a negative duration");
  }
  if (d.decoded > 0 && ContactEventOrder{}(e, d.prev_event)) {
    binary_error(d.source_name, "records are not sorted by start time");
  }

  d.prev_start_bits = start_bits;
  d.prev_duration_bits = duration_bits;
  d.prev_a = e.a;
  d.prev_event = e;
  ++d.decoded;
  DTN_COUNT(kTraceContactsDecoded);
  if (d.decoded == d.meta.contact_count) d.finish();
  out = e;
  return true;
}

ContactTrace read_trace_binary(std::istream& in,
                               const std::string& source_name,
                               NodeId min_node_count) {
  BinaryDecoder decoder(in, source_name);
  const BinaryTraceMeta& meta = decoder.meta();
  std::vector<ContactEvent> events;
  events.reserve(static_cast<std::size_t>(meta.contact_count));
  ContactEvent e;
  while (decoder.next(e)) events.push_back(e);
  const NodeId node_count = std::max(min_node_count, meta.node_count);
  try {
    return ContactTrace(node_count, std::move(events), meta.name);
  } catch (const std::invalid_argument& error) {
    binary_error(source_name, error.what());
  }
}

ContactTrace load_trace_binary(const std::string& path,
                               NodeId min_node_count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace_binary(in, path, min_node_count);
}

}  // namespace dtn::traceio

// The .dtntrace compact binary trace format (version 1).
//
// Re-parsing a multi-hundred-thousand-contact text trace through iostreams
// for every sweep costs orders of magnitude more than the simulation's own
// per-contact work; this format is the parse-once half of the subsystem's
// "parse once, stream everywhere" contract (DESIGN.md §8). Layout, all
// fixed-width fields little-endian regardless of host byte order:
//
//   offset size field
//   0      8    magic "DTNTRACE"
//   8      4    version (u32) = 1
//   12     4    endianness tag (u32) = 0x01020304, written LE; a reader
//               seeing 0x04030201 is looking at a foreign-order file
//   16     4    node_count (u32)
//   20     4    flags (u32, reserved, 0)
//   24     8    contact_count (u64)
//   32     8    start_time (f64 bit pattern)
//   40     8    end_time (f64 bit pattern)
//   48     8    source_size (u64): byte size of the text file this sidecar
//               caches; 0 for standalone traces
//   56     8    source_checksum (u64): FNV-1a of the text file's bytes
//   64     8    payload_checksum (u64): FNV-1a of the encoded records
//   72     4    name_length (u32)
//   76     n    trace name (UTF-8, no terminator)
//   76+n   ...  contact records, delta-encoded (below), sorted by
//               ContactEventOrder
//
// Record encoding (per contact, LEB128 varints — byte-oriented, so
// endian-neutral):
//
//   varint( bswap64(bits(start)    XOR bits(previous start)) )
//   varint( bswap64(bits(duration) XOR bits(previous duration)) )
//   varint( zigzag(a - previous a) )
//   varint( b - a - 1 )                                  // b > a always
//
// XOR-of-bit-patterns round-trips doubles exactly (no float arithmetic on
// the deltas), and sorted traces share high mantissa/exponent bits between
// neighbours, so after the byte swap the varint usually fits in a few
// bytes. Loaders verify magic, version, endianness, checksum, record count
// and sort order; any mismatch throws (never a partial trace).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "trace/trace.h"

namespace dtn::traceio {

inline constexpr char kBinaryMagic[8] = {'D', 'T', 'N', 'T',
                                         'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kBinaryVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

/// 64-bit FNV-1a over a byte range, seedable for incremental use.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = kFnvOffset);

/// Streaming FNV-1a of a whole file. Throws std::runtime_error on I/O
/// failure.
std::uint64_t fnv1a_file(const std::string& path);

/// Everything the header says about a binary trace, available without
/// decoding a single record — the metadata a streaming consumer needs.
struct BinaryTraceMeta {
  std::uint32_t version = 0;
  NodeId node_count = 0;
  std::uint64_t contact_count = 0;
  Time start_time = 0.0;
  Time end_time = 0.0;
  std::uint64_t source_size = 0;      ///< 0 = standalone (not a sidecar)
  std::uint64_t source_checksum = 0;
  std::uint64_t payload_checksum = 0;
  std::string name;
};

/// Writes the trace in .dtntrace format. `source_size`/`source_checksum`
/// describe the text file a sidecar caches (0/0 for standalone saves).
/// Throws std::runtime_error on I/O failure.
void write_trace_binary(const ContactTrace& trace, std::ostream& out,
                        std::uint64_t source_size = 0,
                        std::uint64_t source_checksum = 0);
void save_trace_binary(const ContactTrace& trace, const std::string& path,
                       std::uint64_t source_size = 0,
                       std::uint64_t source_checksum = 0);

/// Reads and validates just the header, leaving the stream positioned at
/// the first record. `source_name` contextualizes errors.
BinaryTraceMeta read_binary_header(std::istream& in,
                                   const std::string& source_name);

/// Incremental record decoder: pulls one contact at a time from a stream
/// whose header was already consumed, verifying sort order as it goes and
/// the payload checksum + record count once the last record was read. This
/// is the O(window)-memory engine behind both load_trace_binary and
/// BinaryFileContactCursor (cursor.h).
class BinaryDecoder {
 public:
  /// Reads the header; throws on any validation failure.
  BinaryDecoder(std::istream& in, std::string source_name);
  ~BinaryDecoder();

  BinaryDecoder(const BinaryDecoder&) = delete;
  BinaryDecoder& operator=(const BinaryDecoder&) = delete;

  const BinaryTraceMeta& meta() const;

  /// Decodes the next contact into `out`; false once all contact_count
  /// records were produced (at which point checksum and trailing-byte
  /// validation have already run). Throws on corruption.
  bool next(ContactEvent& out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Loads a whole binary trace (header + all records, fully validated).
/// `min_node_count` mirrors the text loaders.
ContactTrace read_trace_binary(std::istream& in,
                               const std::string& source_name,
                               NodeId min_node_count = 0);
ContactTrace load_trace_binary(const std::string& path,
                               NodeId min_node_count = 0);

}  // namespace dtn::traceio

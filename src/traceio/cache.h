// load_trace_any: the single entry point of the trace ingestion subsystem.
//
// Accepts any registered text format (CSV, ONE, iMote — reader.h) or a
// .dtntrace binary, and maintains a transparent binary sidecar cache:
// parsing `trace.csv` once writes `trace.csv.dtntrace`, and subsequent
// loads decode the sidecar instead of re-parsing the text whenever it is
// still fresh. Freshness (make-style, checksum-backed):
//
//   1. the sidecar's recorded source_size must equal the text file's size;
//   2. if the sidecar's mtime >= the source's mtime, it is fresh (fast
//      path, no hashing);
//   3. otherwise the source is re-hashed (FNV-1a) and compared against the
//      sidecar's recorded source_checksum — a touched-but-unchanged file
//      still hits.
//
// Cache observations (mtime reads, hit/miss counters) never feed
// simulation state: a stale sidecar re-parses the identical text and
// yields the identical trace, so caching cannot perturb determinism (see
// tools/lint_allowlist.txt).
#pragma once

#include <memory>
#include <string>

#include "trace/trace.h"
#include "traceio/reader.h"

namespace dtn::traceio {

enum class CachePolicy {
  kUse,      ///< load fresh sidecars, write one after a text parse
  kBypass,   ///< never read or write sidecars (tools that must not leave
             ///< artifacts next to their inputs)
  kRefresh,  ///< ignore any existing sidecar, parse text, rewrite it
};

struct LoadOptions {
  TraceReadOptions read;
  CachePolicy cache = CachePolicy::kUse;
  /// Force a specific reader ("csv", "one", "imote", "binary"); empty =
  /// detect from the file extension (.dtntrace) and content sniffing.
  std::string format;
};

/// Loads a trace of any supported format from `path`, going through the
/// binary sidecar cache per `options.cache`. Sidecar write failures (e.g.
/// read-only directories) are non-fatal: the parsed trace is returned and
/// a one-line warning goes to stderr. Throws std::runtime_error on
/// unreadable/undetectable/corrupt input.
ContactTrace load_trace_any(const std::string& path,
                            const LoadOptions& options = {});

/// load_trace_any into a shared immutable trace: the form the experiment /
/// sweep layer shares across repetitions and grid cells (one parse, many
/// consumers; see run_sweep's shared_ptr overload).
std::shared_ptr<const ContactTrace> load_trace_shared(
    const std::string& path, const LoadOptions& options = {});

/// The sidecar path for a text trace: `<path>.dtntrace`.
std::string sidecar_path(const std::string& path);

}  // namespace dtn::traceio

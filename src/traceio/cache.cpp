#include "traceio/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "common/instrument.h"
#include "traceio/binary.h"

namespace dtn::traceio {
namespace {

namespace fs = std::filesystem;

bool has_dtntrace_extension(const std::string& path) {
  constexpr const char* kExt = ".dtntrace";
  const std::size_t n = std::char_traits<char>::length(kExt);
  return path.size() >= n && path.compare(path.size() - n, n, kExt) == 0;
}

/// First few KiB of a file, for format sniffing and magic detection.
std::string read_head(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::string head(4096, '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<std::size_t>(in.gcount()));
  return head;
}

bool starts_with_magic(const std::string& head) {
  return head.size() >= sizeof(kBinaryMagic) &&
         head.compare(0, sizeof(kBinaryMagic), kBinaryMagic,
                      sizeof(kBinaryMagic)) == 0;
}

/// True when `sidecar` is a fresh cache of `source` (see header comment
/// for the freshness rules). Never throws: any irregularity just means
/// "not fresh" and the text is re-parsed.
bool sidecar_fresh(const std::string& source, const std::string& sidecar) {
  std::ifstream in(sidecar, std::ios::binary);
  if (!in) return false;
  BinaryTraceMeta meta;
  try {
    meta = read_binary_header(in, sidecar);
  } catch (const std::exception&) {
    return false;  // truncated/corrupt header: treat as stale
  }
  if (meta.source_size == 0 && meta.source_checksum == 0) {
    return false;  // standalone .dtntrace, not a sidecar of this text file
  }
  std::error_code ec;
  const std::uintmax_t source_size = fs::file_size(source, ec);
  if (ec || source_size != meta.source_size) return false;

  // Make-style fast path: a sidecar at least as new as its source is
  // trusted without hashing. Observation-only (lint: fs-mtime allowlist) —
  // the worst a wrong mtime can do is force the checksum fallback below or
  // an extra re-parse of identical text.
  std::error_code ec_source, ec_sidecar;
  const fs::file_time_type source_mtime = fs::last_write_time(source, ec_source);
  const fs::file_time_type sidecar_mtime =
      fs::last_write_time(sidecar, ec_sidecar);
  if (!ec_source && !ec_sidecar && sidecar_mtime >= source_mtime) return true;

  // Touched but maybe unchanged: settle it by content.
  try {
    return fnv1a_file(source) == meta.source_checksum;
  } catch (const std::exception&) {
    return false;
  }
}

ContactTrace parse_text(const std::string& path, const std::string& text,
                        const TraceReader& reader,
                        const TraceReadOptions& options) {
  std::istringstream in(text);
  return reader.read(in, trace_name_from_path(path), path, options);
}

}  // namespace

std::string sidecar_path(const std::string& path) {
  return path + ".dtntrace";
}

ContactTrace load_trace_any(const std::string& path,
                            const LoadOptions& options) {
  DTN_SCOPED_TIMER(kTraceLoad);

  if (options.format == "binary" ||
      (options.format.empty() && has_dtntrace_extension(path))) {
    return load_trace_binary(path, options.read.min_node_count);
  }

  const TraceReader* reader = nullptr;
  if (!options.format.empty()) {
    reader = reader_for_format(options.format);
    if (reader == nullptr) {
      throw std::runtime_error("unknown trace format '" + options.format +
                               "' (csv, one, imote or binary)");
    }
  } else {
    const std::string head = read_head(path);
    if (starts_with_magic(head)) {
      return load_trace_binary(path, options.read.min_node_count);
    }
    reader = detect_reader(head);
    if (reader == nullptr) {
      throw std::runtime_error(
          path + ": cannot detect trace format (not CSV, a ONE "
                 "connectivity report, an iMote contact log or .dtntrace)");
    }
  }

  const std::string sidecar = sidecar_path(path);
  if (options.cache == CachePolicy::kUse && sidecar_fresh(path, sidecar)) {
    DTN_COUNT(kTraceCacheHits);
    return load_trace_binary(sidecar, options.read.min_node_count);
  }

  // Parse once from an in-memory copy of the text: the same bytes feed the
  // parser and the sidecar's source checksum, so the cache can never
  // record a checksum for content other than what was parsed.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) throw std::runtime_error("I/O error reading: " + path);
  const std::string text = content.str();

  ContactTrace trace = parse_text(path, text, *reader, options.read);
  if (options.cache == CachePolicy::kUse ||
      options.cache == CachePolicy::kRefresh) {
    DTN_COUNT(kTraceCacheMisses);
    try {
      save_trace_binary(trace, sidecar, text.size(),
                        fnv1a(text.data(), text.size()));
    } catch (const std::exception& error) {
      // Non-fatal: a read-only input directory just means no cache.
      std::fprintf(stderr,
                   "load_trace_any: cannot write sidecar %s: %s\n",
                   sidecar.c_str(), error.what());
      std::error_code ec;
      fs::remove(sidecar, ec);  // never leave a half-written sidecar
    }
  }
  return trace;
}

std::shared_ptr<const ContactTrace> load_trace_shared(
    const std::string& path, const LoadOptions& options) {
  return std::make_shared<const ContactTrace>(load_trace_any(path, options));
}

}  // namespace dtn::traceio

#include "traceio/reader.h"

#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace dtn::traceio {

// Concrete readers register themselves here; each is defined in its own
// translation unit (csv_reader.cpp, one_reader.cpp, imote_reader.cpp) and
// exposed through an accessor so the registry needs no global-constructor
// ordering tricks.
const TraceReader& csv_reader();
const TraceReader& one_reader();
const TraceReader& imote_reader();

const std::vector<const TraceReader*>& readers() {
  static const std::vector<const TraceReader*> all = {
      &csv_reader(), &one_reader(), &imote_reader()};
  return all;
}

const TraceReader* reader_for_format(const std::string& format) {
  for (const TraceReader* reader : readers()) {
    if (format == reader->format_name()) return reader;
  }
  return nullptr;
}

const TraceReader* detect_reader(const std::string& head) {
  for (const TraceReader* reader : readers()) {
    if (reader->sniff(head)) return reader;
  }
  return nullptr;
}

void parse_error(const std::string& source_name, std::size_t line_no,
                 const std::string& format, const std::string& why) {
  throw std::runtime_error(source_name + ":" + std::to_string(line_no) +
                           ": " + format + " parse error: " + why);
}

std::string trace_name_from_path(const std::string& path) {
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return name;
}

void NodeIdMap::note(std::int64_t raw) {
  DTN_CHECK(!finalized_, "NodeIdMap::note after finalize");
  map_.emplace(raw, 0);
}

void NodeIdMap::finalize() {
  // std::map iterates in ascending raw-id order, so dense ids are a pure
  // function of the id *set* — reordering input lines cannot change them.
  NodeId next = 0;
  for (auto& [raw, dense] : map_) dense = next++;
  finalized_ = true;
}

NodeId NodeIdMap::dense(std::int64_t raw) const {
  DTN_CHECK(finalized_, "NodeIdMap::dense before finalize");
  const auto it = map_.find(raw);
  DTN_CHECK(it != map_.end(), "NodeIdMap::dense of unnoted raw id");
  return it->second;
}

}  // namespace dtn::traceio

// CRAWDAD/Haggle-style pairwise iMote contact log reader.
//
// Each line records one sighting between two Bluetooth devices:
//
//   <device-a> <device-b> <start> <end> [extra columns ignored]
//
// with absolute timestamps (Unix epoch seconds in the published datasets)
// and sparse raw device ids. Canonicalization, in order:
//
//   1. node-id remapping     sparse raw ids -> dense [0, N), by ascending
//                            raw id (deterministic in the id set)
//   2. duplicate/overlap     per pair, overlapping or touching sightings
//      merging               merge into one contact (two radios scanning
//                            each other log the same encounter twice)
//   3. clock-offset          the earliest start becomes t = 0, so epoch
//      normalization         timestamps don't leak into Time arithmetic
//
// Self-sightings (a == b, a scanner artifact in real logs) are skipped;
// strict mode rejects them and any extra trailing columns instead.
#include "traceio/reader.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <istream>
#include <sstream>
#include <utility>

#include "common/instrument.h"

namespace dtn::traceio {
namespace {

constexpr const char* kFormat = "iMote contact log";

class ImoteReader final : public TraceReader {
 public:
  const char* format_name() const override { return "imote"; }

  bool sniff(const std::string& head) const override {
    // First non-comment line: >= 4 whitespace-separated numeric tokens and
    // no comma (CSV) or CONN keyword (ONE). Sniffed last, so this only has
    // to reject the other formats' shapes.
    std::istringstream in(head);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      if (line.find(',') != std::string::npos) return false;
      if (line.find("CONN") != std::string::npos) return false;
      std::istringstream cells(line);
      std::string token;
      int numeric = 0;
      while (cells >> token && numeric < 4) {
        char* end = nullptr;
        std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') return false;
        ++numeric;
      }
      return numeric == 4;
    }
    return false;
  }

  ContactTrace read(std::istream& in, const std::string& trace_name,
                    const std::string& source_name,
                    const TraceReadOptions& options) const override {
    struct Interval {
      Time start, end;
    };
    // Per raw (min, max) pair, all sighting intervals. std::map keeps the
    // merge fold in deterministic pair order.
    std::map<std::pair<std::int64_t, std::int64_t>, std::vector<Interval>>
        sightings;
    NodeIdMap ids;
    Time earliest = kNever;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      DTN_COUNT_N(kTraceBytesRead, line.size() + 1);
      std::istringstream cells(line);
      std::int64_t a = 0, b = 0;
      Time start = 0.0, end = 0.0;
      if (!(cells >> a >> b >> start >> end)) {
        parse_error(source_name, line_no, kFormat,
                    "expected '<a> <b> <start> <end>' in line '" + line + "'");
      }
      if (options.strict) {
        std::string extra;
        if (cells >> extra) {
          parse_error(source_name, line_no, kFormat,
                      "trailing characters after the fourth field");
        }
      }
      if (!std::isfinite(start) || !std::isfinite(end)) {
        parse_error(source_name, line_no, kFormat, "non-finite timestamp");
      }
      if (end < start) {
        parse_error(source_name, line_no, kFormat,
                    "contact ends before it starts");
      }
      if (a == b) {
        if (options.strict) {
          parse_error(source_name, line_no, kFormat,
                      "self-sighting (a == b)");
        }
        continue;
      }
      ids.note(a);
      ids.note(b);
      const std::pair<std::int64_t, std::int64_t> key{std::min(a, b),
                                                      std::max(a, b)};
      sightings[key].push_back({start, end});
      earliest = std::min(earliest, start);
    }
    if (sightings.empty()) {
      parse_error(source_name, 1, kFormat, "no contacts in input");
    }
    ids.finalize();

    // Clock-offset normalization: shift the whole trace so the earliest
    // sighting starts at t = 0.
    const Time offset = earliest;

    std::vector<ContactEvent> events;
    for (auto& [key, intervals] : sightings) {
      std::sort(intervals.begin(), intervals.end(),
                [](const Interval& x, const Interval& y) {
                  return x.start != y.start ? x.start < y.start
                                            : x.end < y.end;
                });
      // Merge overlapping or touching sightings of the same pair.
      std::size_t merged_from = 0;
      while (merged_from < intervals.size()) {
        Time start = intervals[merged_from].start;
        Time end = intervals[merged_from].end;
        std::size_t next = merged_from + 1;
        while (next < intervals.size() && intervals[next].start <= end) {
          end = std::max(end, intervals[next].end);
          ++next;
        }
        ContactEvent e;
        e.start = start - offset;
        e.duration = end - start;
        e.a = ids.dense(key.first);
        e.b = ids.dense(key.second);
        events.push_back(e);
        DTN_COUNT(kTraceContactsDecoded);
        merged_from = next;
      }
    }
    const NodeId node_count =
        std::max(options.min_node_count, ids.node_count());
    return ContactTrace(node_count, std::move(events), trace_name);
  }
};

}  // namespace

const TraceReader& imote_reader() {
  static const ImoteReader reader;
  return reader;
}

}  // namespace dtn::traceio

// Pluggable trace ingestion: one interface, many on-disk formats.
//
// The paper's evaluation is trace-driven (Infocom05/06, MIT Reality, UCSD;
// Table I), and real DTN datasets ship in heterogeneous formats. A
// TraceReader turns one such format into the canonical ContactTrace; the
// registry plus content sniffing make `load_trace_any` (cache.h) accept any
// of them behind a single entry point. Concrete readers:
//
//   csv    the repo's native format: `start,duration,a,b` (trace/trace_io.h)
//   one    ONE-simulator connectivity reports: `<time> CONN <a> <b> up|down`
//   imote  CRAWDAD/Haggle-style pairwise iMote logs: `<a> <b> <start> <end>`
//          with sparse raw device ids (remapped densely), duplicate/overlap
//          merging and clock-offset normalization
//
// The versioned binary format (.dtntrace, binary.h) is deliberately not a
// TraceReader: text readers are line-oriented and sniffable, the binary
// loader is magic-tagged and owns the cache path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace dtn::traceio {

struct TraceReadOptions {
  /// `node_count` of the result is max(dense node id) + 1 unless a larger
  /// value is given (mirrors read_trace_csv).
  NodeId min_node_count = 0;

  /// Strict mode turns every tolerated irregularity (trailing fields,
  /// non-CONN lines, duplicate `up` events, self-contacts, duplicate
  /// intervals) into a parse error with file:line context. Used by
  /// `tracetool validate`.
  bool strict = false;
};

/// One on-disk trace format. Implementations are stateless and registered
/// once in readers(); read() may be called concurrently from different
/// streams.
class TraceReader {
 public:
  virtual ~TraceReader() = default;

  /// Stable format identifier ("csv", "one", "imote").
  virtual const char* format_name() const = 0;

  /// True when `head` (the first few KiB of the file) looks like this
  /// format. Sniffing is ordered and first-match (see detect_reader).
  virtual bool sniff(const std::string& head) const = 0;

  /// Parses the whole stream into a canonical trace. `source_name` is the
  /// "<source>:<line>" context for parse errors; the trace is named
  /// `trace_name`. Throws std::runtime_error on malformed input.
  virtual ContactTrace read(std::istream& in, const std::string& trace_name,
                            const std::string& source_name,
                            const TraceReadOptions& options) const = 0;
};

/// All registered text readers, in sniffing priority order (csv, one,
/// imote). Pointers are to function-local statics and never expire.
const std::vector<const TraceReader*>& readers();

/// Reader by format_name(); nullptr when unknown.
const TraceReader* reader_for_format(const std::string& format);

/// First reader whose sniff() accepts `head`; nullptr when none match.
const TraceReader* detect_reader(const std::string& head);

/// Throws the canonical "<source>:<line>: <format> parse error: <why>".
[[noreturn]] void parse_error(const std::string& source_name,
                              std::size_t line_no, const std::string& format,
                              const std::string& why);

/// Trace name for a file path: basename with the final extension stripped
/// (the same rule load_trace_csv always used).
std::string trace_name_from_path(const std::string& path);

/// Deterministic raw-id -> dense-id remapping shared by the ONE and iMote
/// readers: raw ids (arbitrary sparse integers) map to [0, N) by ascending
/// raw id, so the mapping depends only on the set of ids, never on line
/// order.
class NodeIdMap {
 public:
  /// Registers a raw id (idempotent). Only valid before finalize().
  void note(std::int64_t raw);

  /// Freezes the mapping; note() afterwards is a logic error.
  void finalize();

  /// Dense id of a previously noted raw id.
  NodeId dense(std::int64_t raw) const;

  NodeId node_count() const { return static_cast<NodeId>(map_.size()); }

 private:
  std::map<std::int64_t, NodeId> map_;
  bool finalized_ = false;
};

}  // namespace dtn::traceio

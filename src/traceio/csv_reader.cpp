// The native CSV format as a pluggable reader. Parsing itself lives in
// trace/trace_io.cpp (the historical entry point, still used directly by
// code that knows it has CSV); this adapter only adds sniffing.
#include "traceio/reader.h"

#include <cctype>

#include "trace/trace_io.h"

namespace dtn::traceio {
namespace {

class CsvReader final : public TraceReader {
 public:
  const char* format_name() const override { return "csv"; }

  bool sniff(const std::string& head) const override {
    // Either the canonical header, or a first line shaped like
    // `<num>,<num>,<int>,<int>`. A comma before any whitespace separator is
    // the discriminator against the whitespace-separated formats.
    if (head.rfind("start", 0) == 0) return true;
    for (const char c : head) {
      if (c == ',') return true;
      if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) break;
    }
    return false;
  }

  ContactTrace read(std::istream& in, const std::string& trace_name,
                    const std::string& source_name,
                    const TraceReadOptions& options) const override {
    CsvParseOptions csv;
    csv.strict = options.strict;
    csv.source_name = source_name;
    return read_trace_csv(in, trace_name, options.min_node_count, csv);
  }
};

}  // namespace

const TraceReader& csv_reader() {
  static const CsvReader reader;
  return reader;
}

}  // namespace dtn::traceio

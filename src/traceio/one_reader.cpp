// ONE-simulator connectivity report reader.
//
// The ONE (Opportunistic Network Environment) simulator's ConnectivityONE
// report emits one line per link event:
//
//   <time> CONN <host-a> <host-b> up
//   <time> CONN <host-a> <host-b> down
//
// An `up`/`down` pair becomes one ContactEvent. Host ids are arbitrary
// integers and are densely remapped by ascending raw id (NodeIdMap). Events
// may interleave across pairs but each pair's events must be time-ordered.
// Contacts still open at end-of-report close at the last timestamp seen
// (the report simply stopped while the link was up). Non-CONN report lines
// (ONE mixes event types when misconfigured) and `# comments` are skipped;
// strict mode rejects them instead, along with duplicate `up` events and
// `down` events without a matching `up` (tolerated otherwise, as real
// reports truncated mid-run produce both).
#include "traceio/reader.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <sstream>
#include <utility>

#include "common/instrument.h"

namespace dtn::traceio {
namespace {

constexpr const char* kFormat = "ONE connectivity report";

bool parse_int(const std::string& token, std::int64_t& out) {
  if (token.empty()) return false;
  std::size_t pos = 0;
  try {
    out = std::stoll(token, &pos);
  } catch (const std::exception&) {
    return false;
  }
  return pos == token.size();
}

class OneReader final : public TraceReader {
 public:
  const char* format_name() const override { return "one"; }

  bool sniff(const std::string& head) const override {
    return head.find(" CONN ") != std::string::npos ||
           head.find("\tCONN\t") != std::string::npos;
  }

  ContactTrace read(std::istream& in, const std::string& trace_name,
                    const std::string& source_name,
                    const TraceReadOptions& options) const override {
    struct RawContact {
      Time start, end;
      std::int64_t a, b;
    };
    std::vector<RawContact> contacts;
    // Open link per raw (min, max) pair -> start time.
    std::map<std::pair<std::int64_t, std::int64_t>, Time> open;
    NodeIdMap ids;
    Time last_time = 0.0;
    bool any_line = false;

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      DTN_COUNT_N(kTraceBytesRead, line.size() + 1);
      std::istringstream cells(line);
      std::string time_token, kind, a_token, b_token, state;
      cells >> time_token >> kind >> a_token >> b_token >> state;
      if (kind != "CONN") {
        if (options.strict) {
          parse_error(source_name, line_no, kFormat,
                      "expected '<time> CONN <a> <b> up|down'");
        }
        continue;  // other ONE report event types are not contacts
      }
      any_line = true;
      Time when = 0.0;
      try {
        when = std::stod(time_token);
      } catch (const std::exception&) {
        parse_error(source_name, line_no, kFormat,
                    "malformed timestamp '" + time_token + "'");
      }
      if (!std::isfinite(when)) {
        parse_error(source_name, line_no, kFormat, "non-finite timestamp");
      }
      std::int64_t a = 0, b = 0;
      if (!parse_int(a_token, a) || !parse_int(b_token, b)) {
        parse_error(source_name, line_no, kFormat,
                    "malformed host id in '" + line + "'");
      }
      if (a == b) {
        if (options.strict) {
          parse_error(source_name, line_no, kFormat, "self-contact (a == b)");
        }
        continue;
      }
      last_time = std::max(last_time, when);
      const std::pair<std::int64_t, std::int64_t> key{std::min(a, b),
                                                      std::max(a, b)};
      if (state == "up") {
        ids.note(a);
        ids.note(b);
        const auto [it, inserted] = open.emplace(key, when);
        if (!inserted) {
          if (options.strict) {
            parse_error(source_name, line_no, kFormat,
                        "duplicate 'up' for an already-open link");
          }
          // Keep the earlier start: the link has been up the whole time.
          (void)it;
        }
      } else if (state == "down") {
        const auto it = open.find(key);
        if (it == open.end()) {
          if (options.strict) {
            parse_error(source_name, line_no, kFormat,
                        "'down' without a matching 'up'");
          }
          continue;
        }
        if (when < it->second) {
          parse_error(source_name, line_no, kFormat,
                      "link goes down before it came up");
        }
        contacts.push_back({it->second, when, a, b});
        open.erase(it);
      } else {
        parse_error(source_name, line_no, kFormat,
                    "link state must be 'up' or 'down', got '" + state + "'");
      }
    }
    if (!any_line) {
      parse_error(source_name, 1, kFormat, "no CONN events in input");
    }
    // Links still up when the report ends lasted until the last timestamp.
    for (const auto& [key, start] : open) {
      contacts.push_back({start, std::max(last_time, start), key.first,
                          key.second});
    }

    ids.finalize();
    std::vector<ContactEvent> events;
    events.reserve(contacts.size());
    for (const RawContact& c : contacts) {
      ContactEvent e;
      e.start = c.start;
      e.duration = c.end - c.start;
      e.a = ids.dense(c.a);
      e.b = ids.dense(c.b);
      events.push_back(e);
      DTN_COUNT(kTraceContactsDecoded);
    }
    const NodeId node_count =
        std::max(options.min_node_count, ids.node_count());
    return ContactTrace(node_count, std::move(events), trace_name);
  }
};

}  // namespace

const TraceReader& one_reader() {
  static const OneReader reader;
  return reader;
}

}  // namespace dtn::traceio

// Streaming contact iteration: the "stream everywhere" half of the
// subsystem's contract (DESIGN.md §8).
//
// The sim engine consumes contacts strictly in start-time order and never
// looks back, so it does not need a materialized std::vector<ContactEvent>
// — a pull-based cursor suffices, and a multi-GB .dtntrace runs in
// O(io-buffer) memory. run_simulation (sim/engine.h) takes a ContactCursor;
// the ContactTrace overload wraps the trace in a VectorContactCursor, so
// materialized and streamed runs are the same code path and bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/contact_event.h"
#include "trace/trace.h"
#include "traceio/binary.h"

namespace dtn::traceio {

/// Pull-based iterator over a time-sorted contact sequence. Contract:
/// emitted events are sorted by ContactEventOrder (consumers DTN_CHECK
/// this), and next() returns false exactly once, at end-of-stream.
class ContactCursor {
 public:
  virtual ~ContactCursor() = default;

  /// Advances to the next contact; false at end-of-stream.
  virtual bool next(ContactEvent& out) = 0;
};

/// Cursor over an in-memory event vector (e.g. ContactTrace::events()).
/// Does not own the vector; it must outlive the cursor.
class VectorContactCursor final : public ContactCursor {
 public:
  explicit VectorContactCursor(const std::vector<ContactEvent>& events)
      : events_(&events) {}

  bool next(ContactEvent& out) override {
    if (index_ == events_->size()) return false;
    out = (*events_)[index_++];
    return true;
  }

 private:
  const std::vector<ContactEvent>* events_;
  std::size_t index_ = 0;
};

/// Cursor over a subset of a parent vector, selected by index list (e.g. a
/// shard's intra-shard feed from shard_contact_feeds, sim/shard.h). The
/// indices must be sorted if the subset is to honor the cursor ordering
/// contract. Owns neither; both must outlive the cursor.
class SubsetContactCursor final : public ContactCursor {
 public:
  SubsetContactCursor(const std::vector<ContactEvent>& events,
                      const std::vector<std::uint32_t>& indices)
      : events_(&events), indices_(&indices) {}

  bool next(ContactEvent& out) override {
    if (pos_ == indices_->size()) return false;
    out = (*events_)[(*indices_)[pos_++]];
    return true;
  }

 private:
  const std::vector<ContactEvent>* events_;
  const std::vector<std::uint32_t>* indices_;
  std::size_t pos_ = 0;
};

/// Cursor streaming records straight out of a .dtntrace file in O(1)
/// memory. Header metadata (node count, span, contact count) is available
/// up front via meta(); corruption anywhere in the file throws from next().
class BinaryFileContactCursor final : public ContactCursor {
 public:
  explicit BinaryFileContactCursor(const std::string& path);
  ~BinaryFileContactCursor() override;

  const BinaryTraceMeta& meta() const;

  bool next(ContactEvent& out) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Drains a cursor into a vector (test/diagnostic helper; defeats the
/// point of streaming for anything large).
std::vector<ContactEvent> drain(ContactCursor& cursor);

}  // namespace dtn::traceio

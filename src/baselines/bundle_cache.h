// BundleCache baseline (Sec. VI) — caching of pass-by bundles driven by the
// node contact pattern, adapted from the infrastructure-assisted setting of
// the original proposal to peer-to-peer data access: a relay admits a
// pass-by bundle only when its own contact centrality (how quickly it can
// reach the rest of the network) is high enough for caching there to reduce
// the expected access delay, and evicts by the smallest
// popularity x centrality utility. See DESIGN.md for the substitution note.
#pragma once

#include <vector>

#include "baselines/flooding_base.h"

namespace dtn {

struct BundleCacheConfig {
  FloodingConfig flooding;
  /// A node may cache pass-by data only when its centrality is at least
  /// this fraction of the current maximum across nodes.
  double centrality_admission_fraction = 0.25;
};

class BundleCacheScheme : public FloodingSchemeBase {
 public:
  explicit BundleCacheScheme(BundleCacheConfig config);

  std::string name() const override { return "BundleCache"; }

  void on_maintenance(SimServices& services) override;

  /// Contact centrality of a node: mean opportunistic path weight from all
  /// other nodes (recomputed each maintenance tick). 0 before the first.
  double centrality(NodeId node) const;

 protected:
  void on_response_relayed(SimServices& services, NodeId relay,
                           const Query& query) override;
  bool admission_allowed(SimServices& services, NodeId node,
                         const DataItem& incoming) override;
  std::vector<DataId> eviction_order(SimServices& services, NodeId node,
                                     const DataItem& incoming) override;

 private:
  BundleCacheConfig bundle_config_;
  std::vector<double> centrality_;
  double max_centrality_ = 0.0;
};

}  // namespace dtn

// Shared machinery for the baseline data-access schemes (Sec. VI):
// NoCache, RandomCache, CacheData and BundleCache.
//
// None of these schemes know about NCLs. A query is routed as a single
// copy along the opportunistic path-weight gradient towards the *data
// source* (the natural DTN transplant of the MANET baselines, where the
// query follows the route to the source); any node holding the requested
// data en route — the source, or a caching node — replies with a copy
// routed back to the requester along the same gradient. Both directions
// use exactly the forwarding substrate the NCL scheme uses, so the
// comparison isolates the *caching* policy, which is the paper's intent.
//
// Derived schemes customize:
//  * where data gets cached (requester / response-path relays / nowhere);
//  * the admission + eviction policy of the node-local cache.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/popularity.h"
#include "net/buffer.h"
#include "sim/scheme.h"

namespace dtn {

struct FloodingConfig {
  /// Per-node cache capacity in bytes (size N).
  std::vector<Bytes> buffer_capacity;
  /// Maximum distinct queries a node tracks (state bound).
  std::size_t max_tracked_queries = 4096;
};

class FloodingSchemeBase : public Scheme {
 public:
  explicit FloodingSchemeBase(FloodingConfig config);

  /// Every per-event hook touches only the involved nodes' NodeState (plus
  /// read-only services), so the flooding family runs in the sharded
  /// engine's parallel bound phase. The eviction counter is per-node for
  /// the same reason — no hook writes state shared across nodes.
  SchemeConcurrency concurrency() const override {
    return SchemeConcurrency::kNodeLocal;
  }

  void on_data_generated(SimServices& services, const DataItem& item) override;
  void on_query(SimServices& services, const Query& query) override;
  void on_contact(SimServices& services, NodeId a, NodeId b,
                  LinkBudget& budget) override;
  void on_maintenance(SimServices& services) override;

  std::size_t cached_copies(Time now) const override;
  Bytes cached_bytes(Time now) const override;

  /// Introspection for tests.
  bool node_caches(NodeId node, DataId data) const;
  std::uint64_t evictions() const;

  /// Structural invariants (buffer/entry accounting); see
  /// NclCachingScheme::check_invariants for the contract.
  bool check_invariants(const DataRegistry& registry) const;

 protected:
  struct CachedEntry {
    Bytes size = 0;
    Time inserted_at = 0.0;
    Time last_access = 0.0;
  };

  /// A single-copy query bundle riding the gradient towards the source.
  struct FloodCopy {
    Query query;
  };

  struct ResponseBundle {
    Query query;
    Bytes size = 0;
  };

  struct NodeState {
    CacheBuffer buffer{0};
    std::unordered_map<DataId, CachedEntry> entries;
    std::unordered_map<DataId, PopularityEstimator> history;
    std::vector<FloodCopy> flood;
    std::vector<ResponseBundle> responses;
    std::unordered_set<QueryId> seen_queries;
    std::unordered_set<QueryId> responded;
    std::deque<QueryId> seen_order;
    std::uint64_t evictions = 0;
  };

  NodeState& state(NodeId node) { return nodes_.at(static_cast<std::size_t>(node)); }
  const NodeState& state(NodeId node) const {
    return nodes_.at(static_cast<std::size_t>(node));
  }
  NodeId node_count() const { return static_cast<NodeId>(nodes_.size()); }

  /// True when the node can serve the data: it is the source (native copy)
  /// or it caches a copy.
  bool holds_data(SimServices& services, NodeId node, DataId data) const;

  /// Popularity estimate of `data` as seen by `node`'s query history.
  double popularity_of(SimServices& services, NodeId node, DataId data) const;

  /// Inserts `item` into `node`'s cache, evicting per the derived policy.
  /// Returns true when cached. Counts evictions into the metrics.
  bool try_cache(SimServices& services, NodeId node, const DataItem& item);

  /// Records a query sighting (popularity history + dedup bookkeeping).
  void note_query_seen(SimServices& services, NodeId node, const Query& query);

  // ---- derived-scheme policy hooks ----

  /// The requester received the data (RandomCache caches here).
  virtual void on_delivered(SimServices& services, const Query& query) {
    (void)services;
    (void)query;
  }

  /// A relay forwarded a response bundle (CacheData / BundleCache cache
  /// pass-by data here).
  virtual void on_response_relayed(SimServices& services, NodeId relay,
                                   const Query& query) {
    (void)services;
    (void)relay;
    (void)query;
  }

  /// Whether admission of `item` at `node` is allowed, and which victims to
  /// evict to make room. Returns the eviction order (ascending priority to
  /// keep); return an empty vector to evict nothing. Base implementation:
  /// LRU order over all entries.
  virtual std::vector<DataId> eviction_order(SimServices& services, NodeId node,
                                             const DataItem& incoming);

  /// Admission check before any eviction happens (BundleCache gates on the
  /// node's contact centrality). Default: always admit.
  virtual bool admission_allowed(SimServices& services, NodeId node,
                                 const DataItem& incoming) {
    (void)services;
    (void)node;
    (void)incoming;
    return true;
  }

 private:
  void transfer_direction(SimServices& services, NodeId from, NodeId to,
                          LinkBudget& budget);
  void maybe_respond(SimServices& services, NodeId node, const Query& query);
  void prune_node(SimServices& services, NodeId node);

  FloodingConfig config_;
  std::vector<NodeState> nodes_;
};

}  // namespace dtn

// RandomCache baseline (Sec. VI): every requester caches the data it
// receives, hoping to serve future queries; LRU eviction. Requesters are
// randomly distributed, so cached copies end up at random locations —
// the paper's argument for why this is ineffective in DTNs.
#pragma once

#include "baselines/flooding_base.h"

namespace dtn {

class RandomCacheScheme : public FloodingSchemeBase {
 public:
  explicit RandomCacheScheme(FloodingConfig config)
      : FloodingSchemeBase(std::move(config)) {}

  std::string name() const override { return "RandomCache"; }

 protected:
  void on_delivered(SimServices& services, const Query& query) override {
    try_cache(services, query.requester, services.data(query.data));
  }
  // Eviction: base-class LRU.
};

}  // namespace dtn

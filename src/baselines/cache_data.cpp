#include "baselines/cache_data.h"

#include <algorithm>

namespace dtn {

void CacheDataScheme::on_response_relayed(SimServices& services, NodeId relay,
                                          const Query& query) {
  // Cache pass-by data when the relay's local query history says it is
  // popular; the relay may not cache data it has never seen queried
  // (popularity 0 loses every eviction comparison, so try_cache admits it
  // only into free space).
  try_cache(services, relay, services.data(query.data));
}

std::vector<DataId> CacheDataScheme::eviction_order(SimServices& services,
                                                    NodeId node,
                                                    const DataItem& incoming) {
  const double incoming_popularity = popularity_of(services, node, incoming.id);
  const auto& entries = state(node).entries;
  std::vector<std::pair<double, DataId>> ranked;
  ranked.reserve(entries.size());
  for (const auto& [id, entry] : entries) {
    const double p = popularity_of(services, node, id);
    if (p < incoming_popularity) ranked.emplace_back(p, id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<DataId> order;
  order.reserve(ranked.size());
  for (const auto& [p, id] : ranked) order.push_back(id);
  return order;
}

}  // namespace dtn

// CacheData baseline — the cooperative caching scheme of Yin & Cao for
// wireless ad-hoc networks, transplanted to the DTN setting (Sec. VI):
// every relay on a response path caches the pass-by data according to its
// popularity. In a connected MANET the relay sits on a stable query route
// and sees the query history; in a DTN it only sees the queries that happen
// to be flooded through it, which is why the paper finds it "inappropriate
// to be used in DTNs".
#pragma once

#include "baselines/flooding_base.h"

namespace dtn {

class CacheDataScheme : public FloodingSchemeBase {
 public:
  explicit CacheDataScheme(FloodingConfig config)
      : FloodingSchemeBase(std::move(config)) {}

  std::string name() const override { return "CacheData"; }

 protected:
  void on_response_relayed(SimServices& services, NodeId relay,
                           const Query& query) override;

  /// Popularity-based eviction: least popular first; never evicts entries
  /// more popular than the incoming item.
  std::vector<DataId> eviction_order(SimServices& services, NodeId node,
                                     const DataItem& incoming) override;
};

}  // namespace dtn

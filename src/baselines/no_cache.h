// NoCache baseline (Sec. VI): no caching at all — every query is answered
// only by the data source; queries are flooded until they find it.
#pragma once

#include "baselines/flooding_base.h"

namespace dtn {

class NoCacheScheme : public FloodingSchemeBase {
 public:
  explicit NoCacheScheme(FloodingConfig config)
      : FloodingSchemeBase(std::move(config)) {}

  std::string name() const override { return "NoCache"; }

  // Never caches: all hooks keep the base no-op behaviour, and the cache
  // stays empty because nothing ever calls try_cache.
};

}  // namespace dtn

#include "baselines/flooding_base.h"

#include <algorithm>
#include <stdexcept>

namespace dtn {

FloodingSchemeBase::FloodingSchemeBase(FloodingConfig config)
    : config_(std::move(config)) {
  if (config_.buffer_capacity.empty()) {
    throw std::invalid_argument("per-node buffer capacities required");
  }
  nodes_.resize(config_.buffer_capacity.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (config_.buffer_capacity[i] < 0) {
      throw std::invalid_argument("negative buffer capacity");
    }
    nodes_[i].buffer = CacheBuffer(config_.buffer_capacity[i]);
  }
}

void FloodingSchemeBase::on_data_generated(SimServices& services,
                                           const DataItem& item) {
  // Pull-only schemes: data stays at the source until queried.
  (void)services;
  (void)item;
}

bool FloodingSchemeBase::holds_data(SimServices& services, NodeId node,
                                    DataId data) const {
  const DataItem& item = services.data(data);
  if (!item.alive(services.now())) return false;
  if (item.source == node) return true;
  return state(node).entries.contains(data);
}

double FloodingSchemeBase::popularity_of(SimServices& services, NodeId node,
                                         DataId data) const {
  const auto& history = state(node).history;
  const auto it = history.find(data);
  if (it == history.end()) return 0.0;
  return it->second.popularity(services.now(), services.data(data).expires);
}

bool FloodingSchemeBase::node_caches(NodeId node, DataId data) const {
  return state(node).entries.contains(data);
}

std::uint64_t FloodingSchemeBase::evictions() const {
  std::uint64_t total = 0;
  for (const NodeState& ns : nodes_) total += ns.evictions;
  return total;
}

bool FloodingSchemeBase::check_invariants(const DataRegistry& registry) const {
  for (NodeId node = 0; node < node_count(); ++node) {
    const NodeState& ns = state(node);
    if (ns.buffer.used() > ns.buffer.capacity()) return false;
    Bytes entry_bytes = 0;
    for (const auto& [id, entry] : ns.entries) {
      if (!ns.buffer.contains(id)) return false;
      if (ns.buffer.size_of(id) != entry.size) return false;
      if (registry.get(id).size != entry.size) return false;
      entry_bytes += entry.size;
    }
    if (entry_bytes != ns.buffer.used()) return false;
  }
  return true;
}

void FloodingSchemeBase::note_query_seen(SimServices& services, NodeId node,
                                         const Query& query) {
  NodeState& ns = state(node);
  if (ns.seen_queries.contains(query.id)) return;
  ns.seen_queries.insert(query.id);
  ns.seen_order.push_back(query.id);
  while (ns.seen_order.size() > config_.max_tracked_queries) {
    const QueryId evicted = ns.seen_order.front();
    ns.seen_order.pop_front();
    ns.seen_queries.erase(evicted);
    ns.responded.erase(evicted);
  }
  ns.history[query.data].record_request(query.issued);
  (void)services;
}

std::vector<DataId> FloodingSchemeBase::eviction_order(SimServices& services,
                                                       NodeId node,
                                                       const DataItem& incoming) {
  (void)services;
  (void)incoming;
  // LRU: least recently accessed first.
  const NodeState& ns = state(node);
  std::vector<DataId> order;
  order.reserve(ns.entries.size());
  for (const auto& [id, entry] : ns.entries) order.push_back(id);
  std::sort(order.begin(), order.end(), [&](DataId x, DataId y) {
    const auto& ex = ns.entries.at(x);
    const auto& ey = ns.entries.at(y);
    if (ex.last_access != ey.last_access) return ex.last_access < ey.last_access;
    return x < y;
  });
  return order;
}

bool FloodingSchemeBase::try_cache(SimServices& services, NodeId node,
                                   const DataItem& item) {
  NodeState& ns = state(node);
  if (ns.entries.contains(item.id)) return true;  // already cached
  if (item.size > ns.buffer.capacity()) return false;
  if (!admission_allowed(services, node, item)) return false;

  if (!ns.buffer.fits(item.size)) {
    const std::vector<DataId> order = eviction_order(services, node, item);
    for (DataId victim : order) {
      if (ns.buffer.fits(item.size)) break;
      ns.buffer.erase(victim);
      ns.entries.erase(victim);
      ++ns.evictions;
      services.count_replacement(1);
    }
  }
  if (!ns.buffer.fits(item.size)) return false;
  const bool inserted = ns.buffer.insert(item.id, item.size);
  if (inserted) {
    ns.entries[item.id] =
        CachedEntry{item.size, services.now(), services.now()};
  }
  return inserted;
}

void FloodingSchemeBase::on_query(SimServices& services, const Query& query) {
  note_query_seen(services, query.requester, query);
  if (holds_data(services, query.requester, query.data)) {
    services.deliver(query);
    on_delivered(services, query);
    return;
  }
  state(query.requester).flood.push_back(FloodCopy{query});
}

void FloodingSchemeBase::maybe_respond(SimServices& services, NodeId node,
                                       const Query& query) {
  const Time now = services.now();
  if (!query.alive(now)) return;
  NodeState& ns = state(node);
  if (ns.responded.contains(query.id)) return;
  if (!holds_data(services, node, query.data)) return;
  ns.responded.insert(query.id);

  // Refresh recency for LRU-style policies.
  if (auto it = ns.entries.find(query.data); it != ns.entries.end()) {
    it->second.last_access = now;
  }
  ns.responses.push_back(ResponseBundle{query, services.data(query.data).size});
}

void FloodingSchemeBase::transfer_direction(SimServices& services, NodeId from,
                                            NodeId to, LinkBudget& budget) {
  const Time now = services.now();
  NodeState& src = state(from);
  NodeState& dst = state(to);

  // ---- 1. Responses ride the gradient to the requester. ----
  {
    std::vector<ResponseBundle> kept;
    kept.reserve(src.responses.size());
    for (auto& response : src.responses) {
      const Query& q = response.query;
      if (!q.alive(now) || !services.data(q.data).alive(now)) continue;
      if (to == q.requester) {
        if (budget.consume(response.size)) {
          services.count_bytes(response.size);
          services.deliver(q);
          on_delivered(services, q);
          continue;
        }
        kept.push_back(std::move(response));
        continue;
      }
      const double w_to = services.path_weight(to, q.requester);
      const double w_from = services.path_weight(from, q.requester);
      if (w_to > w_from && budget.consume(response.size)) {
        services.count_bytes(response.size);
        on_response_relayed(services, to, q);
        dst.responses.push_back(std::move(response));
        continue;
      }
      kept.push_back(std::move(response));
    }
    src.responses = std::move(kept);
  }

  // ---- 2. Queries: single copy riding the gradient to the source. ----
  {
    std::vector<FloodCopy> kept;
    kept.reserve(src.flood.size());
    for (auto& copy : src.flood) {
      const Query& q = copy.query;
      if (!q.alive(now)) continue;

      // Direct encounter with a holder answers the query on the spot,
      // whatever the gradient says.
      if (holds_data(services, to, q.data)) {
        if (budget.consume(kQueryBytes)) {
          services.count_bytes(kQueryBytes);
          note_query_seen(services, to, q);
          maybe_respond(services, to, q);
          continue;  // the query found its target; copy consumed
        }
        kept.push_back(std::move(copy));
        continue;
      }

      const NodeId source = services.data(q.data).source;
      const double w_to = services.path_weight(to, source);
      const double w_from = services.path_weight(from, source);
      if (w_to > w_from && budget.consume(kQueryBytes)) {
        services.count_bytes(kQueryBytes);
        note_query_seen(services, to, q);
        dst.flood.push_back(std::move(copy));
        continue;  // moved one hop closer to the source
      }
      kept.push_back(std::move(copy));
    }
    src.flood = std::move(kept);
  }
}

void FloodingSchemeBase::on_contact(SimServices& services, NodeId a, NodeId b,
                                    LinkBudget& budget) {
  prune_node(services, a);
  prune_node(services, b);
  transfer_direction(services, a, b, budget);
  transfer_direction(services, b, a, budget);
}

void FloodingSchemeBase::prune_node(SimServices& services, NodeId node) {
  const Time now = services.now();
  NodeState& ns = state(node);
  for (auto it = ns.entries.begin(); it != ns.entries.end();) {
    if (!services.data(it->first).alive(now)) {
      ns.buffer.erase(it->first);
      it = ns.entries.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(ns.flood, [&](const FloodCopy& c) { return !c.query.alive(now); });
  std::erase_if(ns.responses,
                [&](const ResponseBundle& r) { return !r.query.alive(now); });
  for (auto it = ns.history.begin(); it != ns.history.end();) {
    if (!services.data(it->first).alive(now)) {
      it = ns.history.erase(it);
    } else {
      ++it;
    }
  }
}

void FloodingSchemeBase::on_maintenance(SimServices& services) {
  for (NodeId node = 0; node < node_count(); ++node) prune_node(services, node);
}

std::size_t FloodingSchemeBase::cached_copies(Time now) const {
  std::size_t count = 0;
  for (const auto& ns : nodes_) count += ns.entries.size();
  (void)now;
  return count;
}

Bytes FloodingSchemeBase::cached_bytes(Time now) const {
  Bytes total = 0;
  for (const auto& ns : nodes_) total += ns.buffer.used();
  (void)now;
  return total;
}

}  // namespace dtn

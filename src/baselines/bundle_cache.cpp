#include "baselines/bundle_cache.h"

#include <algorithm>

namespace dtn {

BundleCacheScheme::BundleCacheScheme(BundleCacheConfig config)
    : FloodingSchemeBase(config.flooding), bundle_config_(std::move(config)) {
  centrality_.assign(static_cast<std::size_t>(node_count()), 0.0);
}

double BundleCacheScheme::centrality(NodeId node) const {
  return centrality_.at(static_cast<std::size_t>(node));
}

void BundleCacheScheme::on_maintenance(SimServices& services) {
  FloodingSchemeBase::on_maintenance(services);
  const AllPairsPaths& paths = services.paths();
  if (paths.empty()) return;
  const NodeId n = paths.node_count();
  max_centrality_ = 0.0;
  for (NodeId i = 0; i < n && i < node_count(); ++i) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += paths.weight(j, i);
    }
    centrality_[static_cast<std::size_t>(i)] =
        n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
    max_centrality_ =
        std::max(max_centrality_, centrality_[static_cast<std::size_t>(i)]);
  }
}

void BundleCacheScheme::on_response_relayed(SimServices& services, NodeId relay,
                                            const Query& query) {
  try_cache(services, relay, services.data(query.data));
}

bool BundleCacheScheme::admission_allowed(SimServices& services, NodeId node,
                                          const DataItem& incoming) {
  (void)services;
  (void)incoming;
  if (max_centrality_ <= 0.0) return false;  // no contact knowledge yet
  return centrality(node) >=
         bundle_config_.centrality_admission_fraction * max_centrality_;
}

std::vector<DataId> BundleCacheScheme::eviction_order(SimServices& services,
                                                      NodeId node,
                                                      const DataItem& incoming) {
  // Utility = popularity x centrality; the node factor is common to all
  // entries at this node, so the order reduces to popularity — but the
  // incoming comparison keeps the centrality factor for clarity.
  const double c = centrality(node);
  const double incoming_utility = popularity_of(services, node, incoming.id) * c;
  const auto& entries = state(node).entries;
  std::vector<std::pair<double, DataId>> ranked;
  ranked.reserve(entries.size());
  for (const auto& [id, entry] : entries) {
    const double u = popularity_of(services, node, id) * c;
    if (u <= incoming_utility) ranked.emplace_back(u, id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<DataId> order;
  order.reserve(ranked.size());
  for (const auto& [u, id] : ranked) order.push_back(id);
  return order;
}

}  // namespace dtn

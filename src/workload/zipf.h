// Zipf query popularity (paper Eq. 8 and Fig. 9(b)).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace dtn {

/// P_j = (1/j^s) / sum_i (1/i^s) over ranks j = 1..M. Rank 1 is the most
/// popular. `exponent` is the paper's s.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t item_count, double exponent);

  std::size_t item_count() const { return probabilities_.size(); }
  double exponent() const { return exponent_; }

  /// Probability of rank j (1-based, as in the paper).
  double probability(std::size_t rank) const;

  /// Samples a 0-based index according to the distribution.
  std::size_t sample(Rng& rng) const;

 private:
  double exponent_;
  std::vector<double> probabilities_;  // 0-based
  std::vector<double> cumulative_;
};

}  // namespace dtn

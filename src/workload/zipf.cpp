#include "workload/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dtn {

ZipfDistribution::ZipfDistribution(std::size_t item_count, double exponent)
    : exponent_(exponent) {
  if (item_count == 0) throw std::invalid_argument("zipf needs >= 1 item");
  if (exponent < 0.0) throw std::invalid_argument("zipf exponent must be >= 0");
  probabilities_.resize(item_count);
  double total = 0.0;
  for (std::size_t j = 1; j <= item_count; ++j) {
    probabilities_[j - 1] = 1.0 / std::pow(static_cast<double>(j), exponent);
    total += probabilities_[j - 1];
  }
  cumulative_.resize(item_count);
  double running = 0.0;
  for (std::size_t j = 0; j < item_count; ++j) {
    probabilities_[j] /= total;
    running += probabilities_[j];
    cumulative_[j] = running;
  }
  cumulative_.back() = 1.0;  // guard against round-off
}

double ZipfDistribution::probability(std::size_t rank) const {
  if (rank == 0 || rank > probabilities_.size()) {
    throw std::out_of_range("zipf rank out of range");
  }
  return probabilities_[rank - 1];
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace dtn

#include "workload/workload.h"

#include <algorithm>
#include <stdexcept>

namespace dtn {
namespace {

void validate(const WorkloadConfig& c, NodeId node_count) {
  if (node_count < 2) throw std::invalid_argument("need at least 2 nodes");
  if (!(c.end > c.start)) throw std::invalid_argument("end must exceed start");
  if (!(c.avg_lifetime > 0.0)) throw std::invalid_argument("T_L must be > 0");
  if (c.generation_prob < 0.0 || c.generation_prob > 1.0) {
    throw std::invalid_argument("p_G must be in [0,1]");
  }
  if (c.avg_size <= 0) throw std::invalid_argument("s_avg must be > 0");
  if (c.zipf_exponent < 0.0) throw std::invalid_argument("zipf s must be >= 0");
  if (!(c.query_constraint_factor > 0.0)) {
    throw std::invalid_argument("query constraint factor must be > 0");
  }
}

}  // namespace

Workload::Workload(DataRegistry registry, std::vector<WorkloadEvent> events)
    : registry_(std::move(registry)), events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const WorkloadEvent& a, const WorkloadEvent& b) {
                     return a.time < b.time;
                   });
  for (const auto& e : events_) {
    if (e.kind == WorkloadEvent::Kind::kQueryIssued) ++query_count_;
  }
}

Workload generate_workload(const WorkloadConfig& config, NodeId node_count) {
  validate(config, node_count);
  Rng rng(config.seed);

  DataRegistry registry;
  std::vector<WorkloadEvent> events;

  // ---- Data generation ----
  // Per-node check ticks with random phase so nodes are not synchronized.
  struct NodeGenState {
    Time next_tick;
    Time live_until = -1.0;  // expiry of this node's current live item
  };
  std::vector<NodeGenState> gen(static_cast<std::size_t>(node_count));
  for (auto& g : gen) g.next_tick = config.start + rng.uniform() * config.avg_lifetime;

  // Process node ticks in time order (simple round-based scan is fine: each
  // node's ticks are T_L apart, and cross-node ordering only matters for
  // the deterministic rng draw order, which the per-draw sequence fixes).
  for (NodeId node = 0; node < node_count; ++node) {
    auto& g = gen[static_cast<std::size_t>(node)];
    for (Time t = g.next_tick; t < config.end; t += config.avg_lifetime) {
      if (t < g.live_until) continue;  // still has a live item
      if (!rng.bernoulli(config.generation_prob)) continue;
      DataItem item;
      item.source = node;
      item.created = t;
      const Time lifetime = rng.uniform(0.5, 1.5) * config.avg_lifetime;
      item.expires = t + lifetime;
      item.size = static_cast<Bytes>(rng.uniform(0.5, 1.5) *
                                     static_cast<double>(config.avg_size));
      const DataId id = registry.add(item);
      g.live_until = item.expires;

      WorkloadEvent e;
      e.time = t;
      e.kind = WorkloadEvent::Kind::kDataGenerated;
      e.data = id;
      events.push_back(e);
    }
  }

  // ---- Query generation ----
  const Time t_q = config.query_constraint_factor * config.avg_lifetime;
  QueryId next_query = 0;
  for (NodeId node = 0; node < node_count; ++node) {
    Time tick = config.start + rng.uniform() * t_q;
    for (Time t = tick; t < config.end; t += t_q) {
      // Alive data items at time t, ranked by creation order (older ids
      // have lower rank numbers => higher popularity).
      std::vector<DataId> alive;
      for (std::size_t i = 0; i < registry.size(); ++i) {
        const DataItem& item = registry.get(static_cast<DataId>(i));
        if (item.created <= t && item.alive(t)) {
          alive.push_back(item.id);
        }
      }
      if (alive.empty()) continue;
      const ZipfDistribution zipf(alive.size(), config.zipf_exponent);
      for (std::size_t rank = 1; rank <= alive.size(); ++rank) {
        const DataId target = alive[rank - 1];
        if (registry.get(target).source == node) continue;  // already has it
        if (!rng.bernoulli(zipf.probability(rank))) continue;
        Query q;
        q.id = next_query++;
        q.requester = node;
        q.data = target;
        q.issued = t;
        q.expires = t + t_q;
        WorkloadEvent e;
        e.time = t;
        e.kind = WorkloadEvent::Kind::kQueryIssued;
        e.query = q;
        events.push_back(e);
      }
    }
  }

  return Workload(std::move(registry), std::move(events));
}

}  // namespace dtn

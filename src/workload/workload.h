// Workload generation following the paper's experiment setup (Sec. VI-A).
//
// Data: each node checks every T_L (with a per-node random phase) whether it
// still has a live generated item; if not it generates one with probability
// p_G. Lifetimes are U[0.5 T_L, 1.5 T_L], sizes U[0.5 s_avg, 1.5 s_avg].
// Queries: every T_L/2 each node requests data j with its Zipf probability
// P_j over the items currently alive; each query carries time constraint
// T_L/2. All workload randomness is pre-generated from a seed, so every
// scheme in a comparison sees the *identical* workload.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/message.h"
#include "workload/zipf.h"

namespace dtn {

struct WorkloadConfig {
  Time start = 0.0;  ///< data/query generation begins (end of warm-up)
  Time end = 0.0;    ///< generation stops (trace end)

  Time avg_lifetime = weeks(1);     ///< T_L
  double generation_prob = 0.2;     ///< p_G
  Bytes avg_size = megabits(100);   ///< s_avg
  double zipf_exponent = 1.0;       ///< s

  /// Query time constraint as a fraction of T_L (paper: 1/2).
  double query_constraint_factor = 0.5;

  std::uint64_t seed = 42;
};

/// One timeline entry: either a data generation or a query.
struct WorkloadEvent {
  enum class Kind { kDataGenerated, kQueryIssued };
  Time time = 0.0;
  Kind kind = Kind::kDataGenerated;
  DataId data = kNoData;   ///< valid for kDataGenerated
  Query query;             ///< valid for kQueryIssued
};

/// A fully pre-generated workload: the data registry plus the time-sorted
/// event sequence.
class Workload {
 public:
  Workload(DataRegistry registry, std::vector<WorkloadEvent> events);

  const DataRegistry& registry() const { return registry_; }
  const std::vector<WorkloadEvent>& events() const { return events_; }

  std::size_t data_count() const { return registry_.size(); }
  std::size_t query_count() const { return query_count_; }

 private:
  DataRegistry registry_;
  std::vector<WorkloadEvent> events_;
  std::size_t query_count_ = 0;
};

/// Generates the workload for `node_count` nodes. Deterministic in the seed.
Workload generate_workload(const WorkloadConfig& config, NodeId node_count);

}  // namespace dtn

#include "graph/contact_graph.h"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <stdexcept>

namespace dtn {

ContactGraph::ContactGraph(NodeId node_count)
    : adjacency_(static_cast<std::size_t>(node_count)) {
  if (node_count < 0) throw std::invalid_argument("negative node count");
}

void ContactGraph::set_rate(NodeId i, NodeId j, double rate) {
  if (i == j) throw std::invalid_argument("self-edge");
  if (i < 0 || j < 0 || i >= node_count() || j >= node_count()) {
    throw std::invalid_argument("node id out of range");
  }
  if (!(rate > 0.0)) throw std::invalid_argument("rate must be > 0");

  auto update_direction = [&](NodeId from, NodeId to) -> bool {
    auto& list = adjacency_[static_cast<std::size_t>(from)];
    for (auto& nb : list) {
      if (nb.node == to) {
        nb.rate = rate;
        return false;  // existing edge updated
      }
    }
    list.push_back({to, rate});
    return true;
  };
  const bool inserted = update_direction(i, j);
  update_direction(j, i);
  if (inserted) ++edge_count_;
}

bool ContactGraph::remove_edge(NodeId i, NodeId j) {
  if (i == j) throw std::invalid_argument("self-edge");
  if (i < 0 || j < 0 || i >= node_count() || j >= node_count()) {
    throw std::invalid_argument("node id out of range");
  }
  auto erase_direction = [&](NodeId from, NodeId to) -> bool {
    auto& list = adjacency_[static_cast<std::size_t>(from)];
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->node == to) {
        list.erase(it);
        return true;
      }
    }
    return false;
  };
  const bool removed = erase_direction(i, j);
  erase_direction(j, i);
  if (removed) --edge_count_;
  return removed;
}

double ContactGraph::rate(NodeId i, NodeId j) const {
  if (i < 0 || j < 0 || i >= node_count() || j >= node_count() || i == j) {
    return 0.0;
  }
  for (const auto& nb : adjacency_[static_cast<std::size_t>(i)]) {
    if (nb.node == j) return nb.rate;
  }
  return 0.0;
}

const std::vector<ContactGraph::Neighbor>& ContactGraph::neighbors(NodeId i) const {
  return adjacency_.at(static_cast<std::size_t>(i));
}

RateEstimator::RateEstimator(NodeId node_count, Time decay)
    : node_count_(node_count), decay_(decay > 0.0 ? decay : 0.0) {
  if (node_count < 2) throw std::invalid_argument("need at least 2 nodes");
  const std::size_t n = static_cast<std::size_t>(node_count);
  const std::size_t pairs = n * (n - 1) / 2;
  counts_.assign(pairs, 0);
  if (decay_ > 0.0) {
    weights_.assign(pairs, 0.0);
    last_update_.assign(pairs, 0.0);
  }
}

std::size_t RateEstimator::index(NodeId i, NodeId j) const {
  assert(i != j && i >= 0 && j >= 0 && i < node_count_ && j < node_count_);
  if (i > j) std::swap(i, j);
  const std::size_t row = static_cast<std::size_t>(i);
  const std::size_t n = static_cast<std::size_t>(node_count_);
  return row * (2 * n - row - 1) / 2 + static_cast<std::size_t>(j - i - 1);
}

void RateEstimator::record_contact(NodeId i, NodeId j, Time when) {
  if (when < 0.0) throw std::invalid_argument("negative contact time");
  const std::size_t k = index(i, j);
  ++counts_[k];
  if (decay_ > 0.0) {
    const Time elapsed = std::max(0.0, when - last_update_[k]);
    weights_[k] = weights_[k] * std::exp(-elapsed / decay_) + 1.0;
    last_update_[k] = std::max(last_update_[k], when);
  }
}

std::size_t RateEstimator::contact_count(NodeId i, NodeId j) const {
  return counts_[index(i, j)];
}

double RateEstimator::rate(NodeId i, NodeId j, Time now) const {
  if (!(now > 0.0)) return 0.0;
  const std::size_t k = index(i, j);
  if (decay_ > 0.0) {
    const Time elapsed = std::max(0.0, now - last_update_[k]);
    return weights_[k] * std::exp(-elapsed / decay_) / decay_;
  }
  return static_cast<double>(counts_[k]) / now;
}

ContactGraph RateEstimator::snapshot(Time now, std::size_t min_contacts) const {
  ContactGraph graph(node_count_);
  if (!(now > 0.0)) return graph;
  for (NodeId i = 0; i < node_count_; ++i) {
    for (NodeId j = i + 1; j < node_count_; ++j) {
      const std::size_t k = index(i, j);
      if (counts_[k] < std::max<std::size_t>(min_contacts, 1)) continue;
      const double r = rate(i, j, now);
      if (r > 0.0) graph.set_rate(i, j, r);
    }
  }
  return graph;
}

ContactGraph build_contact_graph(const ContactTrace& trace, Time horizon,
                                 std::size_t min_contacts) {
  if (horizon < 0.0) horizon = trace.end_time();
  RateEstimator estimator(std::max<NodeId>(trace.node_count(), 2));
  for (const auto& e : trace.events()) {
    if (e.start > horizon) break;  // events are sorted by start
    estimator.record_contact(e.a, e.b, e.start);
  }
  return estimator.snapshot(horizon, min_contacts);
}

}  // namespace dtn

// Network Central Location (NCL) selection — Sec. IV of the paper.
//
// The metric of node i (Eq. 3) is the average, over all other nodes j, of
// the weight of the shortest opportunistic path from j to i within time T:
// the probability that a random node can reach i in time. The network
// administrator computes the metric during the warm-up period and selects
// the top K nodes as central nodes; the selection then stays fixed for the
// whole data-access phase (contact rates are long-term stable).
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/contact_graph.h"
#include "graph/opportunistic_path.h"
#include "graph/sparse_metric.h"

namespace dtn {

/// NCL metric C_i for every node (Eq. 3). Because contacts are symmetric,
/// p_ji = p_ij, so one single-source computation per node suffices. The
/// per-root computations are independent and run on the shared thread pool
/// (`threads`: 0 = hardware_concurrency, 1 = serial); each metric is
/// written to its own index, so results are identical for any thread count.
std::vector<double> ncl_metrics(const ContactGraph& graph, Time horizon,
                                int max_hops = 8, int threads = 0);

/// Engine-dispatching form: kFast and kReference are exact, kSparse applies
/// the landmark-sampled + frontier-pruned approximation in `sparse`
/// (DESIGN.md §14). A degenerate sparse config (all landmarks, zero floor)
/// is bit-identical to kFast.
std::vector<double> ncl_metrics(const ContactGraph& graph, Time horizon,
                                int max_hops, int threads, MetricEngine engine,
                                const SparseMetricConfig& sparse = {});

/// The outcome of NCL selection.
struct NclSelection {
  /// Central node ids, highest metric first; size min(K, N).
  std::vector<NodeId> central_nodes;
  /// Metric value per node id (size N), for validation and reporting.
  std::vector<double> metric;

  bool is_central(NodeId node) const;
  /// Index of `node` within central_nodes, or -1.
  int central_index(NodeId node) const;
};

/// Selects the top `k` nodes by NCL metric. Ties break towards the lower
/// node id for determinism.
NclSelection select_ncls(const ContactGraph& graph, Time horizon, int k,
                         int max_hops = 8, int threads = 0);

/// Engine-dispatching form; same ordering and tie-break rule for every
/// engine, so a degenerate sparse config selects identical central nodes.
NclSelection select_ncls(const ContactGraph& graph, Time horizon, int k,
                         int max_hops, int threads, MetricEngine engine,
                         const SparseMetricConfig& sparse = {});

/// Adaptive choice of the time budget T (Sec. IV-B): "inappropriate values
/// of T will make C_i close to 0 or 1 ... different values of T are used
/// adaptively to ensure the differentiation of the NCL selection metric".
/// Bisects T until the median metric is close to `target_median`.
/// Returns a horizon in [min_horizon, max_horizon].
Time calibrate_horizon(const ContactGraph& graph,
                       double target_median = 0.3,
                       Time min_horizon = 60.0,
                       Time max_horizon = 90.0 * 86400.0,
                       int max_hops = 8, int threads = 0);

/// Engine-dispatching form: bisects on the median of the chosen engine's
/// metric vector, so a sparse deployment calibrates against the same
/// approximation it will serve.
Time calibrate_horizon(const ContactGraph& graph, double target_median,
                       Time min_horizon, Time max_horizon, int max_hops,
                       int threads, MetricEngine engine,
                       const SparseMetricConfig& sparse = {});

}  // namespace dtn

// Sparse/approximate NCL metric engine — the scale tier (DESIGN.md §14).
//
// The exact Eq. 3 metric needs one single-source max-probability Dijkstra
// per node: O(n²) work and, for an AllPairsPaths build, O(n²) memory — fine
// for the paper's 97-node traces, a wall at 10⁵–10⁶ nodes. The sparse tier
// trades bounded error for scale along two independent axes:
//
//  1. Landmark sampling: the metric of a non-landmark node i is estimated
//     as the mean path weight from a sampled set L of landmark roots,
//     mean_{l in L} p(l, i), instead of the mean over all n-1 other nodes.
//     Landmark nodes keep their exact own-root fold, so the degenerate
//     configuration (landmarks = all nodes) reproduces `ncl_metrics`
//     bit-for-bit.
//  2. Bounded-frontier pruning: each single-source build discards frontier
//     candidates whose path weight falls strictly below a configurable
//     floor. Safe because the hypoexp path weight (Eq. 2) decreases
//     monotonically with added hops; every table entry is then either
//     bit-identical to the unpruned build or 0, so the per-entry (and
//     per-metric) absolute error is < the floor.
//
// Peak memory is O(n + one path table): landmark tables are folded into a
// running accumulator one chunk at a time and never materialized as an
// O(n²) table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/contact_graph.h"
#include "graph/opportunistic_path.h"
#include "trace/synthetic.h"

namespace dtn {

/// Materializes the ContactGraph of a scale-tier synthetic process
/// (O(edges) memory; the edge list lives in src/trace, which cannot depend
/// on src/graph, so the bridge lives here).
ContactGraph scale_contact_graph(const ScaleSyntheticConfig& config);

/// Which construction computes the Eq. 3 NCL metric vector. kFast is the
/// exact production engine (all-roots, zero-allocation), kReference the
/// exact legacy oracle, kSparse the landmark-sampled + frontier-pruned
/// approximation configured by SparseMetricConfig.
enum class MetricEngine {
  kFast,
  kReference,
  kSparse,
};

/// How landmark roots are chosen. All strategies are deterministic pure
/// functions of (graph, config): kUniform is a seeded Fisher-Yates sample,
/// the other two are top-k by a degree/rate key with id tie-breaks.
enum class LandmarkStrategy {
  kUniform,      ///< seeded uniform sample without replacement
  kTopDegree,    ///< highest contact-graph degree first
  kTopRate,      ///< highest summed adjacent meeting rate first
};

struct SparseMetricConfig {
  /// Number of landmark roots; <= 0 (or >= node count) means every node is
  /// a landmark, which makes the metric exact (and, with a zero floor,
  /// bit-identical to MetricEngine::kFast).
  int landmark_count = 0;
  LandmarkStrategy strategy = LandmarkStrategy::kUniform;
  /// Frontier candidates below this weight are pruned (0 = no pruning).
  /// Must be in [0, 1). Per-entry absolute error is < the floor.
  double weight_floor = 0.0;
  /// Seed for LandmarkStrategy::kUniform sampling.
  std::uint64_t seed = 1;

  /// True when this configuration is exact for `node_count` nodes:
  /// every node is a landmark and the floor never prunes.
  bool is_degenerate(NodeId node_count) const {
    return (landmark_count <= 0 || landmark_count >= node_count) &&
           weight_floor == 0.0;
  }
};

/// Deterministic landmark selection; returns sorted ascending node ids.
/// Size min(max(landmark_count, 0) or n, n); the full id range when the
/// count is <= 0 or >= n.
std::vector<NodeId> select_landmarks(const ContactGraph& graph,
                                     const SparseMetricConfig& config);

/// Eq. 3 metric vector under the sparse engine. Landmark nodes get the
/// exact own-root fold (identical to ncl_metrics up to the weight floor);
/// non-landmark nodes get the landmark-sampled estimate. Deterministic for
/// any thread count; never materializes more than a fixed chunk of
/// single-source weight rows at once.
std::vector<double> sparse_ncl_metrics(const ContactGraph& graph, Time horizon,
                                       int max_hops, int threads,
                                       const SparseMetricConfig& config);

/// Exact Eq. 3 metrics via the legacy allocating PathEngine::kReference
/// construction — the oracle the measured-error harness compares against.
/// O(n²) work; small graphs only.
std::vector<double> reference_ncl_metrics(const ContactGraph& graph,
                                          Time horizon, int max_hops,
                                          int threads);

/// Measured-error report of a sparse configuration vs the kReference
/// oracle on the same graph/horizon.
struct MetricErrorReport {
  double max_abs_error = 0.0;   ///< max_i |sparse_i - reference_i|
  double mean_abs_error = 0.0;  ///< mean_i |sparse_i - reference_i|
  /// Fraction of the reference top-k NCL selection recovered by the sparse
  /// selection (both ranked with the select_ncls tie-break rule).
  double topk_overlap = 1.0;
  int k = 0;
  std::size_t landmark_count = 0;
};

MetricErrorReport measure_metric_error(const ContactGraph& graph, Time horizon,
                                       int max_hops, int threads,
                                       const SparseMetricConfig& config, int k);

/// CLI helpers: "fast" | "reference" | "sparse", and
/// "uniform" | "degree" | "rate". Throw std::invalid_argument on others.
MetricEngine metric_engine_from_string(const std::string& name);
LandmarkStrategy landmark_strategy_from_string(const std::string& name);
const char* metric_engine_name(MetricEngine engine);
const char* landmark_strategy_name(LandmarkStrategy strategy);

}  // namespace dtn

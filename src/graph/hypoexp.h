// Hypoexponential distribution: the law of a sum of independent exponential
// random variables with (possibly distinct) rates. This is the paper's
// Eq. (1)-(2): the delivery delay along an r-hop opportunistic path is the
// sum of r exponential inter-contact times, and the *path weight* is the
// CDF of that sum evaluated at the time budget T.
//
// Numerical strategy (three cross-validated paths):
//  * r == 1 ............ plain exponential CDF;
//  * all rates equal ... Erlang closed form;
//  * distinct rates .... classic partial-fraction closed form
//                        P(S <= t) = sum_k C_k (1 - e^{-l_k t}),
//                        C_k = prod_{s != k} l_s / (l_s - l_k);
//  * near-equal rates .. the closed form suffers catastrophic cancellation
//                        (C_k blow up with alternating signs), so we fall
//                        back to uniformization of the underlying
//                        phase-type chain, which is unconditionally stable.
#pragma once

#include <vector>

namespace dtn {

/// CDF of the sum of independent exponentials with the given rates,
/// evaluated at t. All rates must be > 0; throws std::invalid_argument
/// otherwise. An empty rate list is the sum of zero variables, i.e. the
/// constant 0: the CDF is 1 for t >= 0. Returns 0 for t <= 0 (r >= 1).
///
/// The result is clamped to [0, 1].
double hypoexp_cdf(const std::vector<double>& rates, double t);

/// Erlang CDF: sum of `shape` exponentials with common `rate`.
/// Exposed separately for testing; shape >= 1, rate > 0.
double erlang_cdf(int shape, double rate, double t);

/// Closed-form hypoexponential CDF for *strictly distinct* rates. Exposed
/// for testing; callers should normally use hypoexp_cdf, which dispatches.
double hypoexp_cdf_closed_form(const std::vector<double>& rates, double t);

/// Uniformization-based CDF; stable for any positive rates. Exposed for
/// testing. `tolerance` bounds the truncation error of the Poisson mixture.
double hypoexp_cdf_uniformization(const std::vector<double>& rates, double t,
                                  double tolerance = 1e-12);

/// Mean of the hypoexponential: sum of 1/rate.
double hypoexp_mean(const std::vector<double>& rates);

}  // namespace dtn

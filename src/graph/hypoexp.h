// Hypoexponential distribution: the law of a sum of independent exponential
// random variables with (possibly distinct) rates. This is the paper's
// Eq. (1)-(2): the delivery delay along an r-hop opportunistic path is the
// sum of r exponential inter-contact times, and the *path weight* is the
// CDF of that sum evaluated at the time budget T.
//
// Numerical strategy (three cross-validated paths):
//  * r == 1 ............ plain exponential CDF;
//  * all rates equal ... Erlang closed form;
//  * distinct rates .... classic partial-fraction closed form
//                        P(S <= t) = sum_k C_k (1 - e^{-l_k t}),
//                        C_k = prod_{s != k} l_s / (l_s - l_k);
//  * near-equal rates .. the closed form suffers catastrophic cancellation
//                        (C_k blow up with alternating signs), so we fall
//                        back to uniformization of the underlying
//                        phase-type chain, which is unconditionally stable.
#pragma once

#include <vector>

namespace dtn {

/// Reusable scratch buffers for the hypoexponential evaluators. The
/// dispatcher's near-equal-rates probe needs a sorted copy of the rates and
/// uniformization needs two per-phase probability buffers; with a workspace
/// those live in caller-owned vectors that amortize to zero heap traffic
/// across evaluations (the path engine's inner loop evaluates millions of
/// CDFs per all-pairs build). A workspace carries no results — only
/// capacity — so reusing one across calls, threads permitting, is purely a
/// performance knob: every overload below returns bit-identical values with
/// a fresh or a recycled workspace. One workspace per thread; sharing one
/// across concurrent calls is a data race.
struct HypoexpWorkspace {
  std::vector<double> sorted;  ///< near-equal-rates probe scratch
  std::vector<double> v;       ///< uniformization phase probabilities
  std::vector<double> next;    ///< uniformization ping-pong buffer
};

/// CDF of the sum of independent exponentials with the given rates,
/// evaluated at t. All rates must be > 0; throws std::invalid_argument
/// otherwise. An empty rate list is the sum of zero variables, i.e. the
/// constant 0: the CDF is 1 for t >= 0. Returns 0 for t <= 0 (r >= 1).
///
/// The result is clamped to [0, 1].
double hypoexp_cdf(const std::vector<double>& rates, double t);

/// Workspace form of hypoexp_cdf: identical dispatch, identical bits, zero
/// allocations once `ws` has warmed up. The allocating overload above is a
/// thin wrapper over this one with a fresh workspace.
double hypoexp_cdf(const std::vector<double>& rates, double t,
                   HypoexpWorkspace& ws);

/// Erlang CDF: sum of `shape` exponentials with common `rate`.
/// Exposed separately for testing; shape >= 1, rate > 0.
double erlang_cdf(int shape, double rate, double t);

/// Closed-form hypoexponential CDF for *strictly distinct* rates. Exposed
/// for testing; callers should normally use hypoexp_cdf, which dispatches.
double hypoexp_cdf_closed_form(const std::vector<double>& rates, double t);

/// Uniformization-based CDF; stable for any positive rates. Exposed for
/// testing. `tolerance` bounds the truncation error of the Poisson mixture.
double hypoexp_cdf_uniformization(const std::vector<double>& rates, double t,
                                  double tolerance = 1e-12);

/// Workspace form of hypoexp_cdf_uniformization: same truncation, same
/// bits, the per-jump ping-pong buffers live in `ws` instead of the heap.
double hypoexp_cdf_uniformization(const std::vector<double>& rates, double t,
                                  HypoexpWorkspace& ws,
                                  double tolerance = 1e-12);

/// Mean of the hypoexponential: sum of 1/rate.
double hypoexp_mean(const std::vector<double>& rates);

/// Incremental CDF evaluation for chains sharing a fixed prefix: after
/// reset(prefix, t), eval(chain, ws) returns hypoexp_cdf(chain, t) for any
/// chain = prefix + {x} — bit-identical to the dispatcher, per-eval cost
/// O(r) instead of O(r²) + r exp() calls.
///
/// This exploits the shape of the path engine's relaxation loop: all edges
/// out of a settled node extend the *same* rate chain by one hop, and the
/// legacy closed form's coefficient loop multiplies factors in index order,
/// so for every retained stage k the appended rate contributes exactly the
/// final factor x/(x - λ_k). Precomputing the prefix partial products and
/// the 1 - e^{-λ_k t} terms therefore reproduces the identical sequence of
/// floating-point operations — same values, same rounding — with the
/// prefix work hoisted out of the per-edge path. Dispatch tiers are decided
/// exactly as the dispatcher would: the Erlang check compares x against the
/// prefix's common rate, and the near-equal probe inserts x into the
/// pre-sorted prefix (a prefix that already has a near-equal or duplicate
/// pair forces uniformization for every x, because inserting x either
/// leaves that pair adjacent or splits it into two at-least-as-near pairs).
///
/// Not thread-safe; one evaluator per thread (it lives in PathWorkspace).
class HypoexpAppendEvaluator {
 public:
  /// Fixes the prefix (first `p` elements of `prefix`) and the time budget.
  /// Throws std::invalid_argument when a prefix rate is not > 0, like
  /// validate_rates would on the full chain.
  void reset(const double* prefix, std::size_t p, double t);

  /// CDF of the full chain at the reset-time budget. `chain` must be the
  /// reset prefix plus the appended rate at chain.back(); `ws` is scratch
  /// for the uniformization fallback.
  double eval(const std::vector<double>& chain, HypoexpWorkspace& ws) const;

  /// Same, with the appended rate's 1 - e^{-x t} term supplied by the
  /// caller (an EdgeExpTable row). `one_minus_exp_x` must equal
  /// 1.0 - std::exp(-chain.back() * t) for the reset-time t — the exact
  /// double, not an approximation — or the bit-identity promise is void.
  double eval(const std::vector<double>& chain, HypoexpWorkspace& ws,
              double one_minus_exp_x) const;

 private:
  double eval_impl(const std::vector<double>& chain, HypoexpWorkspace& ws,
                   const double* one_minus_exp_x) const;

  double t_ = 0.0;
  std::size_t p_ = 0;
  bool all_equal_ = true;            ///< prefix rates all identical
  double equal_value_ = 0.0;         ///< their common value (p >= 1)
  bool force_uniformization_ = false;  ///< prefix alone is near-equal
  std::vector<double> sorted_;         ///< prefix, ascending (probe input)
  std::vector<double> partial_;        ///< per-k prefix coefficient products
  std::vector<double> one_minus_exp_;  ///< per-k 1 - e^{-λ_k t}
};

}  // namespace dtn

// Structural analysis of contact graphs: degree statistics, clustering,
// connected components. Used to characterize traces (trace_explorer) and to
// sanity-check synthetic generation (hubs, communities, sparsity).
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/contact_graph.h"

namespace dtn {

struct DegreeStats {
  double mean = 0.0;
  double max = 0.0;
  double gini = 0.0;  ///< inequality of the degree distribution (hubs!)
};

/// Unweighted degree (number of neighbors) per node.
std::vector<std::size_t> degrees(const ContactGraph& graph);
DegreeStats degree_stats(const ContactGraph& graph);

/// Weighted degree: sum of incident contact rates per node — the "contact
/// capacity" of a node, the raw ingredient of its centrality.
std::vector<double> weighted_degrees(const ContactGraph& graph);

/// Local clustering coefficient of one node: the fraction of its neighbor
/// pairs that are themselves connected. 0 for degree < 2.
double clustering_coefficient(const ContactGraph& graph, NodeId node);

/// Mean local clustering coefficient over all nodes (Watts-Strogatz).
double average_clustering(const ContactGraph& graph);

/// Component id per node (ids dense from 0, assigned in node order) plus
/// the number of components. Isolated nodes form singleton components.
struct Components {
  std::vector<int> component;  ///< size N
  int count = 0;

  /// Size of the largest component.
  std::size_t largest() const;
};
Components connected_components(const ContactGraph& graph);

}  // namespace dtn

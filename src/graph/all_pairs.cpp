#include "graph/all_pairs.h"

#include <stdexcept>

#include "graph/hypoexp.h"

namespace dtn {

AllPairsPaths::AllPairsPaths(const ContactGraph& graph, Time horizon,
                             int max_hops)
    : horizon_(horizon) {
  tables_.reserve(static_cast<std::size_t>(graph.node_count()));
  for (NodeId root = 0; root < graph.node_count(); ++root) {
    tables_.push_back(
        compute_opportunistic_paths(graph, root, horizon, max_hops));
  }
}

const PathTable& AllPairsPaths::table(NodeId root) const {
  return tables_.at(static_cast<std::size_t>(root));
}

double AllPairsPaths::weight(NodeId from, NodeId to) const {
  if (from == to) return 1.0;
  return table(to).weight(from);
}

double AllPairsPaths::weight_at(NodeId from, NodeId to, Time budget) const {
  if (from == to) return 1.0;
  const auto& entry = table(to).entry(from);
  if (entry.weight <= 0.0) return 0.0;
  return hypoexp_cdf(entry.rates, budget);
}

}  // namespace dtn

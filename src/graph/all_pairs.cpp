#include "graph/all_pairs.h"

#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "common/parallel.h"
#include "graph/hypoexp.h"

namespace dtn {

AllPairsPaths::AllPairsPaths(const ContactGraph& graph, Time horizon,
                             int max_hops, int threads)
    : horizon_(horizon) {
  DTN_SCOPED_TIMER(kAllPairs);
  const std::size_t n = static_cast<std::size_t>(graph.node_count());
  tables_ = parallel_map(threads, n, [&](std::size_t root) {
    return compute_opportunistic_paths(graph, static_cast<NodeId>(root),
                                       horizon, max_hops);
  });
}

const PathTable& AllPairsPaths::table(NodeId root) const {
  return tables_.at(static_cast<std::size_t>(root));
}

double AllPairsPaths::weight(NodeId from, NodeId to) const {
  if (from == to) return 1.0;
  return table(to).weight(from);
}

double AllPairsPaths::weight_at(NodeId from, NodeId to, Time budget) const {
  if (from == to) return 1.0;
  const auto& entry = table(to).entry(from);
  if (entry.weight <= 0.0) return 0.0;
  const double w = hypoexp_cdf(entry.rates, budget);
  DTN_CHECK_PROB(w);
  return w;
}

}  // namespace dtn

#include "graph/all_pairs.h"

#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "common/parallel.h"
#include "graph/hypoexp.h"

namespace dtn {
namespace {

/// One workspace per worker thread. parallel_map hands workers only the
/// item index, so per-thread scratch lives in thread-local storage; a
/// workspace carries capacity, never results, so reuse across roots (and
/// across AllPairsPaths instances) cannot perturb the tables.
PathWorkspace& thread_workspace() {
  static thread_local PathWorkspace ws;
  return ws;
}

}  // namespace

AllPairsPaths::AllPairsPaths(const ContactGraph& graph, Time horizon,
                             int max_hops, int threads, PathEngine engine)
    : horizon_(horizon) {
  DTN_SCOPED_TIMER(kAllPairs);
  const std::size_t n = static_cast<std::size_t>(graph.node_count());
  // The 1 - e^{-rate * horizon} terms are shared by every root: one exp per
  // edge here instead of one per relaxation per root.
  const EdgeExpTable edge_exp =
      engine == PathEngine::kFast ? build_edge_exp_table(graph, horizon)
                                  : EdgeExpTable{};
  tables_ = parallel_map(threads, n, [&](std::size_t root) {
    if (engine == PathEngine::kReference) {
      return compute_opportunistic_paths_reference(
          graph, static_cast<NodeId>(root), horizon, max_hops);
    }
    return compute_opportunistic_paths(graph, static_cast<NodeId>(root),
                                       horizon, max_hops, thread_workspace(),
                                       edge_exp);
  });
}

const PathTable& AllPairsPaths::table(NodeId root) const {
  DTN_CHECK(root >= 0 && root < node_count(), "all-pairs root out of range");
  return tables_[static_cast<std::size_t>(root)];
}

std::size_t AllPairsPaths::table_bytes() const {
  const std::size_t n = tables_.size();
  return n * n * sizeof(PathTable::Entry);
}

double AllPairsPaths::weight(NodeId from, NodeId to) const {
  if (from == to) return 1.0;
  return table(to).weight(from);
}

double AllPairsPaths::weight_at(NodeId from, NodeId to, Time budget) const {
  if (from == to) return 1.0;
  const auto& entry = table(to).entry(from);
  if (entry.weight <= 0.0) return 0.0;
  PathWorkspace& ws = thread_workspace();
  table(to).rates_to_root(from, ws.chain);
  const double w = hypoexp_cdf(ws.chain, budget, ws.hypoexp);
  DTN_CHECK_PROB(w);
  return w;
}

void AllPairsPaths::weights_at(const std::vector<NodeId>& from_list, NodeId to,
                               Time budget, std::vector<double>& out) const {
  out.resize(from_list.size());
  const PathTable& t = table(to);
  PathWorkspace& ws = thread_workspace();
  for (std::size_t i = 0; i < from_list.size(); ++i) {
    const NodeId from = from_list[i];
    if (from == to) {
      out[i] = 1.0;
      continue;
    }
    const auto& entry = t.entry(from);
    if (entry.weight <= 0.0) {
      out[i] = 0.0;
      continue;
    }
    t.rates_to_root(from, ws.chain);
    const double w = hypoexp_cdf(ws.chain, budget, ws.hypoexp);
    DTN_CHECK_PROB(w);
    out[i] = w;
  }
}

}  // namespace dtn

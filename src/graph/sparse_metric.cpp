#include "graph/sparse_metric.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace dtn {

ContactGraph scale_contact_graph(const ScaleSyntheticConfig& config) {
  const std::vector<ScaleEdge> edges = scale_edge_list(config);
  ContactGraph graph(config.node_count);
  for (const ScaleEdge& edge : edges) {
    graph.set_rate(edge.u, edge.v, edge.rate);
  }
  return graph;
}

namespace {

void validate_config(const SparseMetricConfig& config) {
  if (!(config.weight_floor >= 0.0) || config.weight_floor >= 1.0) {
    throw std::invalid_argument("weight_floor must be in [0, 1)");
  }
}

/// Top-k node ids by metric, with the exact select_ncls ordering rule
/// (metric descending, id ascending on ties).
std::vector<NodeId> top_k_ids(const std::vector<double>& metric, int k) {
  std::vector<NodeId> order(metric.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double ma = metric[static_cast<std::size_t>(a)];
    const double mb = metric[static_cast<std::size_t>(b)];
    if (ma != mb) return ma > mb;
    return a < b;
  });
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)),
                            order.size());
  order.resize(take);
  return order;
}

}  // namespace

std::vector<NodeId> select_landmarks(const ContactGraph& graph,
                                     const SparseMetricConfig& config) {
  validate_config(config);
  const NodeId n = graph.node_count();
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  if (config.landmark_count <= 0 || config.landmark_count >= n) return ids;
  const std::size_t count = static_cast<std::size_t>(config.landmark_count);

  switch (config.strategy) {
    case LandmarkStrategy::kUniform: {
      Rng rng(config.seed);
      rng.shuffle(ids);
      ids.resize(count);
      break;
    }
    case LandmarkStrategy::kTopDegree: {
      std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
        const std::size_t da = graph.neighbors(a).size();
        const std::size_t db = graph.neighbors(b).size();
        if (da != db) return da > db;
        return a < b;
      });
      ids.resize(count);
      break;
    }
    case LandmarkStrategy::kTopRate: {
      std::vector<double> rate_sum(static_cast<std::size_t>(n), 0.0);
      for (NodeId u = 0; u < n; ++u) {
        double sum = 0.0;
        for (const auto& nb : graph.neighbors(u)) sum += nb.rate;
        rate_sum[static_cast<std::size_t>(u)] = sum;
      }
      std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
        const double ra = rate_sum[static_cast<std::size_t>(a)];
        const double rb = rate_sum[static_cast<std::size_t>(b)];
        if (ra != rb) return ra > rb;
        return a < b;
      });
      ids.resize(count);
      break;
    }
  }
  // Ascending processing order: the accumulator fold below visits landmarks
  // in list order, so a canonical order keeps results independent of the
  // selection strategy's internal ordering.
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<double> sparse_ncl_metrics(const ContactGraph& graph, Time horizon,
                                       int max_hops, int threads,
                                       const SparseMetricConfig& config) {
  validate_config(config);
  const NodeId n = graph.node_count();
  std::vector<double> metrics(static_cast<std::size_t>(n), 0.0);
  if (n < 2) return metrics;
  DTN_SCOPED_TIMER(kSparseMetrics);

  const std::vector<NodeId> landmarks = select_landmarks(graph, config);
  const std::size_t num_landmarks = landmarks.size();
  const EdgeExpTable edge_exp = build_edge_exp_table(graph, horizon);
  const double floor = config.weight_floor;

  if (num_landmarks == static_cast<std::size_t>(n)) {
    // Every node is a landmark: the exact tier. Same per-root fold as
    // ncl_metrics — with a zero floor the pruned build never prunes, so the
    // metric vector is bit-identical to MetricEngine::kFast.
    parallel_for(threads, static_cast<std::size_t>(n), [&](std::size_t root) {
      static thread_local PathWorkspace ws;
      const NodeId i = static_cast<NodeId>(root);
      const PathTable table = compute_opportunistic_paths_pruned(
          graph, i, horizon, max_hops, ws, edge_exp, floor);
      double sum = 0.0;
      for (NodeId j = 0; j < n; ++j) {
        if (j == i) continue;
        sum += table.weight(j);
      }
      metrics[root] = sum / static_cast<double>(n - 1);
      DTN_CHECK_PROB(metrics[root]);
    });
    DTN_COUNT_N(kSparseLandmarkTables, static_cast<std::uint64_t>(n));
    return metrics;
  }

  // Landmark-sampled tier. Landmark tables are built in fixed-size chunks:
  // a chunk's rows are computed in parallel (each worker owns its slice),
  // then folded into the accumulator serially in landmark order — results
  // are therefore identical for any thread count, and peak memory is
  // O(kChunk · n) instead of O(|L| · n). kChunk is a constant, NOT derived
  // from the thread count, so the fold order never depends on parallelism.
  constexpr std::size_t kChunk = 16;
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
  std::vector<double> weights(kChunk * static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint8_t> is_landmark(static_cast<std::size_t>(n), 0);
  for (const NodeId l : landmarks) is_landmark[static_cast<std::size_t>(l)] = 1;

  for (std::size_t start = 0; start < num_landmarks; start += kChunk) {
    const std::size_t count = std::min(kChunk, num_landmarks - start);
    parallel_for(threads, count, [&](std::size_t k) {
      static thread_local PathWorkspace ws;
      const NodeId l = landmarks[start + k];
      const PathTable table = compute_opportunistic_paths_pruned(
          graph, l, horizon, max_hops, ws, edge_exp, floor);
      double* row = weights.data() + k * static_cast<std::size_t>(n);
      double sum = 0.0;
      for (NodeId j = 0; j < n; ++j) {
        const double w = table.weight(j);
        row[static_cast<std::size_t>(j)] = w;
        if (j != l) sum += w;
      }
      // A landmark keeps the exact own-root fold (Eq. 3 over all peers).
      metrics[static_cast<std::size_t>(l)] = sum / static_cast<double>(n - 1);
      DTN_CHECK_PROB(metrics[static_cast<std::size_t>(l)]);
    });
    DTN_COUNT_N(kSparseLandmarkTables, count);
    for (std::size_t k = 0; k < count; ++k) {
      const double* row = weights.data() + k * static_cast<std::size_t>(n);
      for (NodeId j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] += row[static_cast<std::size_t>(j)];
      }
    }
  }

  // Non-landmark metric: mean path weight from the landmark sample
  // (contacts are symmetric, so p_li = p_il — the same symmetry Eq. 3's
  // one-build-per-root evaluation already relies on).
  for (NodeId i = 0; i < n; ++i) {
    if (is_landmark[static_cast<std::size_t>(i)]) continue;
    metrics[static_cast<std::size_t>(i)] =
        acc[static_cast<std::size_t>(i)] / static_cast<double>(num_landmarks);
    DTN_CHECK_PROB(metrics[static_cast<std::size_t>(i)]);
  }
  return metrics;
}

std::vector<double> reference_ncl_metrics(const ContactGraph& graph,
                                          Time horizon, int max_hops,
                                          int threads) {
  const NodeId n = graph.node_count();
  std::vector<double> metrics(static_cast<std::size_t>(n), 0.0);
  if (n < 2) return metrics;
  DTN_SCOPED_TIMER(kNclMetrics);
  parallel_for(threads, static_cast<std::size_t>(n), [&](std::size_t root) {
    const NodeId i = static_cast<NodeId>(root);
    const PathTable table =
        compute_opportunistic_paths_reference(graph, i, horizon, max_hops);
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += table.weight(j);
    }
    metrics[root] = sum / static_cast<double>(n - 1);
    DTN_CHECK_PROB(metrics[root]);
  });
  return metrics;
}

MetricErrorReport measure_metric_error(const ContactGraph& graph, Time horizon,
                                       int max_hops, int threads,
                                       const SparseMetricConfig& config,
                                       int k) {
  if (k < 1) throw std::invalid_argument("k must be >= 1");
  MetricErrorReport report;
  const std::vector<double> reference =
      reference_ncl_metrics(graph, horizon, max_hops, threads);
  const std::vector<double> sparse =
      sparse_ncl_metrics(graph, horizon, max_hops, threads, config);
  DTN_CHECK(reference.size() == sparse.size(), "metric size mismatch");
  report.landmark_count = select_landmarks(graph, config).size();
  report.k = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(k), reference.size()));
  double sum = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double err = std::fabs(sparse[i] - reference[i]);
    report.max_abs_error = std::max(report.max_abs_error, err);
    sum += err;
  }
  report.mean_abs_error =
      reference.empty() ? 0.0 : sum / static_cast<double>(reference.size());

  const std::vector<NodeId> ref_top = top_k_ids(reference, report.k);
  const std::vector<NodeId> sparse_top = top_k_ids(sparse, report.k);
  std::size_t hits = 0;
  for (const NodeId id : ref_top) {
    if (std::find(sparse_top.begin(), sparse_top.end(), id) !=
        sparse_top.end()) {
      ++hits;
    }
  }
  report.topk_overlap =
      ref_top.empty() ? 1.0
                      : static_cast<double>(hits) /
                            static_cast<double>(ref_top.size());
  return report;
}

MetricEngine metric_engine_from_string(const std::string& name) {
  if (name == "fast") return MetricEngine::kFast;
  if (name == "reference") return MetricEngine::kReference;
  if (name == "sparse") return MetricEngine::kSparse;
  throw std::invalid_argument("unknown metric engine: " + name);
}

LandmarkStrategy landmark_strategy_from_string(const std::string& name) {
  if (name == "uniform") return LandmarkStrategy::kUniform;
  if (name == "degree") return LandmarkStrategy::kTopDegree;
  if (name == "rate") return LandmarkStrategy::kTopRate;
  throw std::invalid_argument("unknown landmark strategy: " + name);
}

const char* metric_engine_name(MetricEngine engine) {
  switch (engine) {
    case MetricEngine::kFast: return "fast";
    case MetricEngine::kReference: return "reference";
    case MetricEngine::kSparse: return "sparse";
  }
  return "unknown";
}

const char* landmark_strategy_name(LandmarkStrategy strategy) {
  switch (strategy) {
    case LandmarkStrategy::kUniform: return "uniform";
    case LandmarkStrategy::kTopDegree: return "degree";
    case LandmarkStrategy::kTopRate: return "rate";
  }
  return "unknown";
}

}  // namespace dtn

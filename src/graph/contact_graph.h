// The network contact graph G(V, E) of Sec. III-B: nodes are mobile devices,
// an undirected edge (i, j) carries the pairwise Poisson contact rate
// lambda_ij estimated from cumulative contact history.
#pragma once

#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace dtn {

/// Sparse undirected graph with per-edge contact rates (per second).
/// Invariant: adjacency is symmetric and rates are strictly positive.
class ContactGraph {
 public:
  struct Neighbor {
    NodeId node = kNoNode;
    double rate = 0.0;  // contacts per second
  };

  explicit ContactGraph(NodeId node_count = 0);

  NodeId node_count() const { return static_cast<NodeId>(adjacency_.size()); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds (or overwrites) the undirected edge i-j. rate must be > 0;
  /// i != j; both in range. Overwriting updates both directions.
  void set_rate(NodeId i, NodeId j, double rate);

  /// Removes the undirected edge i-j; returns false when absent. Needed by
  /// the daemon's estimator expiry (daemon/rate_estimator.h): an expired
  /// pair's rate goes to 0, which set_rate by design refuses to express.
  bool remove_edge(NodeId i, NodeId j);

  /// Rate of edge i-j, or 0 when absent.
  double rate(NodeId i, NodeId j) const;

  const std::vector<Neighbor>& neighbors(NodeId i) const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// Online estimator of pairwise contact rates.
///
/// Two modes:
///  * cumulative (paper, Sec. III-B): lambda_ij(t) = contacts in [0,t] / t
///    — "calculated at real-time from the cumulative contacts ... in a
///    time-average manner". Assumes long-term stable contact patterns.
///  * exponentially decaying (extension, decay > 0): each contact carries
///    weight e^{-(now - t_i)/decay}; lambda_ij(now) = decayed mass / decay.
///    Nodes that disappear (failures, churn) fade from the graph within a
///    few decay constants, letting dynamic NCL re-selection route around
///    them.
class RateEstimator {
 public:
  /// decay <= 0 selects the cumulative mode.
  explicit RateEstimator(NodeId node_count, Time decay = 0.0);

  /// Records one contact between i and j at time `when` (>= 0).
  void record_contact(NodeId i, NodeId j, Time when);

  /// Number of contacts observed for the pair so far.
  std::size_t contact_count(NodeId i, NodeId j) const;

  /// Current rate estimate at time `now` (> 0): count / now. Pairs never
  /// seen have rate 0.
  double rate(NodeId i, NodeId j, Time now) const;

  /// Snapshot of the full graph at time `now`; pairs with zero contacts are
  /// omitted. `min_contacts` filters out pairs seen fewer times (rates from
  /// one or two contacts are noisy; the paper's warm-up period exists
  /// precisely to let estimates converge).
  ContactGraph snapshot(Time now, std::size_t min_contacts = 1) const;

  NodeId node_count() const { return node_count_; }

  /// Active decay constant (0 = cumulative mode).
  Time decay() const { return decay_; }

 private:
  std::size_t index(NodeId i, NodeId j) const;

  NodeId node_count_;
  Time decay_;
  std::vector<std::uint32_t> counts_;   // raw counts, upper-triangular
  std::vector<double> weights_;         // decayed mass (decay mode only)
  std::vector<Time> last_update_;       // per pair (decay mode only)
};

/// Builds a contact graph directly from a full trace over [0, horizon]
/// (horizon defaults to the trace end): the administrator's warm-up
/// computation. Pairs with fewer than `min_contacts` contacts are omitted.
ContactGraph build_contact_graph(const ContactTrace& trace,
                                 Time horizon = -1.0,
                                 std::size_t min_contacts = 1);

}  // namespace dtn

#include "graph/analysis.h"

#include <algorithm>
#include <unordered_map>

#include "common/stats.h"

namespace dtn {

std::vector<std::size_t> degrees(const ContactGraph& graph) {
  std::vector<std::size_t> result(static_cast<std::size_t>(graph.node_count()));
  for (NodeId i = 0; i < graph.node_count(); ++i) {
    result[static_cast<std::size_t>(i)] = graph.neighbors(i).size();
  }
  return result;
}

DegreeStats degree_stats(const ContactGraph& graph) {
  DegreeStats stats;
  const auto d = degrees(graph);
  if (d.empty()) return stats;
  std::vector<double> values(d.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    values[i] = static_cast<double>(d[i]);
    sum += values[i];
    stats.max = std::max(stats.max, values[i]);
  }
  stats.mean = sum / static_cast<double>(d.size());
  stats.gini = gini(values);
  return stats;
}

std::vector<double> weighted_degrees(const ContactGraph& graph) {
  std::vector<double> result(static_cast<std::size_t>(graph.node_count()), 0.0);
  for (NodeId i = 0; i < graph.node_count(); ++i) {
    for (const auto& nb : graph.neighbors(i)) {
      result[static_cast<std::size_t>(i)] += nb.rate;
    }
  }
  return result;
}

double clustering_coefficient(const ContactGraph& graph, NodeId node) {
  const auto& neighbors = graph.neighbors(node);
  const std::size_t k = neighbors.size();
  if (k < 2) return 0.0;
  std::size_t closed = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (graph.rate(neighbors[i].node, neighbors[j].node) > 0.0) ++closed;
    }
  }
  return 2.0 * static_cast<double>(closed) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double average_clustering(const ContactGraph& graph) {
  if (graph.node_count() == 0) return 0.0;
  double total = 0.0;
  for (NodeId i = 0; i < graph.node_count(); ++i) {
    total += clustering_coefficient(graph, i);
  }
  return total / static_cast<double>(graph.node_count());
}

std::size_t Components::largest() const {
  std::unordered_map<int, std::size_t> sizes;
  std::size_t best = 0;
  for (int c : component) best = std::max(best, ++sizes[c]);
  return best;
}

Components connected_components(const ContactGraph& graph) {
  const NodeId n = graph.node_count();
  Components result;
  result.component.assign(static_cast<std::size_t>(n), -1);

  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (result.component[static_cast<std::size_t>(start)] >= 0) continue;
    const int id = result.count++;
    stack.push_back(start);
    result.component[static_cast<std::size_t>(start)] = id;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const auto& nb : graph.neighbors(u)) {
        if (result.component[static_cast<std::size_t>(nb.node)] < 0) {
          result.component[static_cast<std::size_t>(nb.node)] = id;
          stack.push_back(nb.node);
        }
      }
    }
  }
  return result;
}

}  // namespace dtn

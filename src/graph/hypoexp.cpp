#include "graph/hypoexp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn {
namespace {

void validate_rates(const std::vector<double>& rates) {
  for (double r : rates) {
    if (!(r > 0.0)) throw std::invalid_argument("hypoexp rates must be > 0");
  }
}

/// True when any two rates are close enough to make the partial-fraction
/// coefficients numerically unreliable.
bool has_near_equal_rates(std::vector<double> rates) {
  std::sort(rates.begin(), rates.end());
  for (std::size_t i = 1; i < rates.size(); ++i) {
    if ((rates[i] - rates[i - 1]) <= 1e-6 * rates[i]) return true;
  }
  return false;
}

}  // namespace

double erlang_cdf(int shape, double rate, double t) {
  if (shape < 1 || !(rate > 0.0)) {
    throw std::invalid_argument("erlang_cdf requires shape >= 1, rate > 0");
  }
  DTN_COUNT(kHypoexpErlangEvals);
  if (t <= 0.0) return 0.0;
  // 1 - e^{-rt} * sum_{i=0}^{shape-1} (rt)^i / i!
  const double x = rate * t;
  double term = 1.0;  // (rt)^0 / 0!
  double sum = 1.0;
  for (int i = 1; i < shape; ++i) {
    term *= x / static_cast<double>(i);
    sum += term;
  }
  const double result = 1.0 - std::exp(-x) * sum;
  DTN_CHECK_FINITE(result);
  return std::clamp(result, 0.0, 1.0);
}

double hypoexp_cdf_closed_form(const std::vector<double>& rates, double t) {
  validate_rates(rates);
  if (rates.empty()) return t >= 0.0 ? 1.0 : 0.0;
  if (t <= 0.0) return 0.0;
  DTN_COUNT(kHypoexpClosedFormEvals);
  double result = 0.0;
  const std::size_t r = rates.size();
  for (std::size_t k = 0; k < r; ++k) {
    double coeff = 1.0;
    for (std::size_t s = 0; s < r; ++s) {
      if (s == k) continue;
      const double denom = rates[s] - rates[k];
      if (denom == 0.0) {
        throw std::invalid_argument(
            "hypoexp_cdf_closed_form requires strictly distinct rates");
      }
      coeff *= rates[s] / denom;
    }
    result += coeff * (1.0 - std::exp(-rates[k] * t));
  }
  // Partial-fraction coefficients alternate in sign and can be huge; the
  // dispatch in hypoexp_cdf routes near-equal rates to uniformization, so a
  // non-finite sum here means that guard failed (Eq. 2 weight corrupted).
  DTN_CHECK_FINITE(result);
  return std::clamp(result, 0.0, 1.0);
}

double hypoexp_cdf_uniformization(const std::vector<double>& rates, double t,
                                  double tolerance) {
  validate_rates(rates);
  if (rates.empty()) return t >= 0.0 ? 1.0 : 0.0;
  if (t <= 0.0) return 0.0;
  DTN_COUNT(kHypoexpUniformizationEvals);

  const std::size_t r = rates.size();
  const double big_lambda = *std::max_element(rates.begin(), rates.end());
  const double a = big_lambda * t;

  // v[k] = probability of being in transient phase k after m uniformized
  // jumps; `absorbed` = probability of having completed all phases.
  std::vector<double> v(r, 0.0);
  v[0] = 1.0;
  double absorbed = 0.0;

  // Poisson(a) pmf computed iteratively. Start from m = 0.
  double log_pois = -a;  // log pmf at m=0
  double result = 0.0;
  double tail = 1.0;  // remaining Poisson mass, bounds truncation error

  // Upper bound on iterations: mean + wide safety margin.
  const std::size_t max_terms =
      static_cast<std::size_t>(a + 12.0 * std::sqrt(a + 1.0) + 64.0);

  for (std::size_t m = 0;; ++m) {
    const double pois = std::exp(log_pois);
    result += pois * absorbed;
    tail -= pois;
    if (tail * 1.0 <= tolerance || m >= max_terms) break;

    // One uniformized jump.
    std::vector<double> next(r, 0.0);
    for (std::size_t k = 0; k < r; ++k) {
      if (v[k] == 0.0) continue;
      const double p_move = rates[k] / big_lambda;
      if (k + 1 < r) {
        next[k + 1] += v[k] * p_move;
      } else {
        absorbed += v[k] * p_move;
      }
      next[k] += v[k] * (1.0 - p_move);
    }
    v = std::move(next);

    log_pois += std::log(a) - std::log(static_cast<double>(m + 1));
  }
  // The neglected tail has absorbed-probability <= 1, so `result` may be
  // short by at most `tail`. Add nothing; clamp for safety.
  DTN_CHECK_FINITE(result);
  return std::clamp(result, 0.0, 1.0);
}

double hypoexp_cdf(const std::vector<double>& rates, double t) {
  validate_rates(rates);
  if (rates.empty()) return t >= 0.0 ? 1.0 : 0.0;
  if (t <= 0.0) return 0.0;
  double result = 0.0;
  if (rates.size() == 1) {
    DTN_COUNT(kHypoexpSingleEvals);
    result = std::clamp(1.0 - std::exp(-rates[0] * t), 0.0, 1.0);
  } else {
    const double first = rates.front();
    if (std::all_of(rates.begin(), rates.end(),
                    [&](double x) { return x == first; })) {
      result = erlang_cdf(static_cast<int>(rates.size()), first, t);
    } else if (has_near_equal_rates(rates)) {
      result = hypoexp_cdf_uniformization(rates, t);
    } else {
      result = hypoexp_cdf_closed_form(rates, t);
    }
  }
  // Eq. 2: an opportunistic path weight is P(sum of exp stages <= T).
  DTN_CHECK_PROB(result);
  return result;
}

double hypoexp_mean(const std::vector<double>& rates) {
  validate_rates(rates);
  double mean = 0.0;
  for (double r : rates) mean += 1.0 / r;
  DTN_CHECK_FINITE(mean);
  return mean;
}

}  // namespace dtn

#include "graph/hypoexp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"

namespace dtn {
namespace {

void validate_rates(const std::vector<double>& rates) {
  for (double r : rates) {
    if (!(r > 0.0)) throw std::invalid_argument("hypoexp rates must be > 0");
  }
}

/// True when any two rates are close enough to make the partial-fraction
/// coefficients numerically unreliable. The two-rate case dominates the
/// path engine (short opportunistic paths) and needs no sorted copy at
/// all: min/max of two elements reproduces the sorted comparison exactly.
bool has_near_equal_rates(const std::vector<double>& rates,
                          HypoexpWorkspace& ws) {
  if (rates.size() == 2) {
    const double lo = std::min(rates[0], rates[1]);
    const double hi = std::max(rates[0], rates[1]);
    return (hi - lo) <= 1e-6 * hi;
  }
  ws.sorted.assign(rates.begin(), rates.end());
  std::sort(ws.sorted.begin(), ws.sorted.end());
  for (std::size_t i = 1; i < ws.sorted.size(); ++i) {
    if ((ws.sorted[i] - ws.sorted[i - 1]) <= 1e-6 * ws.sorted[i]) return true;
  }
  return false;
}

}  // namespace

double erlang_cdf(int shape, double rate, double t) {
  if (shape < 1 || !(rate > 0.0)) {
    throw std::invalid_argument("erlang_cdf requires shape >= 1, rate > 0");
  }
  DTN_COUNT(kHypoexpErlangEvals);
  if (t <= 0.0) return 0.0;
  // 1 - e^{-rt} * sum_{i=0}^{shape-1} (rt)^i / i!
  const double x = rate * t;
  double term = 1.0;  // (rt)^0 / 0!
  double sum = 1.0;
  for (int i = 1; i < shape; ++i) {
    term *= x / static_cast<double>(i);
    sum += term;
  }
  const double result = 1.0 - std::exp(-x) * sum;
  DTN_CHECK_FINITE(result);
  return std::clamp(result, 0.0, 1.0);
}

double hypoexp_cdf_closed_form(const std::vector<double>& rates, double t) {
  validate_rates(rates);
  if (rates.empty()) return t >= 0.0 ? 1.0 : 0.0;
  if (t <= 0.0) return 0.0;
  DTN_COUNT(kHypoexpClosedFormEvals);
  double result = 0.0;
  const std::size_t r = rates.size();
  for (std::size_t k = 0; k < r; ++k) {
    double coeff = 1.0;
    for (std::size_t s = 0; s < r; ++s) {
      if (s == k) continue;
      const double denom = rates[s] - rates[k];
      if (denom == 0.0) {
        throw std::invalid_argument(
            "hypoexp_cdf_closed_form requires strictly distinct rates");
      }
      coeff *= rates[s] / denom;
    }
    result += coeff * (1.0 - std::exp(-rates[k] * t));
  }
  // Partial-fraction coefficients alternate in sign and can be huge; the
  // dispatch in hypoexp_cdf routes near-equal rates to uniformization, so a
  // non-finite sum here means that guard failed (Eq. 2 weight corrupted).
  DTN_CHECK_FINITE(result);
  return std::clamp(result, 0.0, 1.0);
}

double hypoexp_cdf_uniformization(const std::vector<double>& rates, double t,
                                  HypoexpWorkspace& ws, double tolerance) {
  validate_rates(rates);
  if (rates.empty()) return t >= 0.0 ? 1.0 : 0.0;
  if (t <= 0.0) return 0.0;
  DTN_COUNT(kHypoexpUniformizationEvals);

  const std::size_t r = rates.size();
  const double big_lambda = *std::max_element(rates.begin(), rates.end());
  const double a = big_lambda * t;
  const double log_a = std::log(a);  // loop-invariant

  // ws.v[k] = probability of being in transient phase k after m uniformized
  // jumps; `absorbed` = probability of having completed all phases.
  ws.v.assign(r, 0.0);
  ws.v[0] = 1.0;
  double absorbed = 0.0;

  // Poisson(a) pmf computed iteratively. Start from m = 0.
  double log_pois = -a;  // log pmf at m=0
  double result = 0.0;
  double tail = 1.0;  // remaining Poisson mass, bounds truncation error

  // Upper bound on iterations: mean + wide safety margin.
  const std::size_t max_terms =
      static_cast<std::size_t>(a + 12.0 * std::sqrt(a + 1.0) + 64.0);

  for (std::size_t m = 0;; ++m) {
    const double pois = std::exp(log_pois);
    result += pois * absorbed;
    tail -= pois;
    // The neglected terms contribute at most `tail` (absorbed-probability
    // is <= 1), so `tail` alone bounds the truncation error.
    if (tail <= tolerance || m >= max_terms) break;

    // One uniformized jump, ping-ponging between ws.v and ws.next.
    ws.next.assign(r, 0.0);
    for (std::size_t k = 0; k < r; ++k) {
      if (ws.v[k] == 0.0) continue;
      const double p_move = rates[k] / big_lambda;
      if (k + 1 < r) {
        ws.next[k + 1] += ws.v[k] * p_move;
      } else {
        absorbed += ws.v[k] * p_move;
      }
      ws.next[k] += ws.v[k] * (1.0 - p_move);
    }
    ws.v.swap(ws.next);

    log_pois += log_a - std::log(static_cast<double>(m + 1));
  }
  // The neglected tail has absorbed-probability <= 1, so `result` may be
  // short by at most `tail`. Add nothing; clamp for safety.
  DTN_CHECK_FINITE(result);
  return std::clamp(result, 0.0, 1.0);
}

double hypoexp_cdf_uniformization(const std::vector<double>& rates, double t,
                                  double tolerance) {
  HypoexpWorkspace ws;
  return hypoexp_cdf_uniformization(rates, t, ws, tolerance);
}

double hypoexp_cdf(const std::vector<double>& rates, double t,
                   HypoexpWorkspace& ws) {
  validate_rates(rates);
  if (rates.empty()) return t >= 0.0 ? 1.0 : 0.0;
  if (t <= 0.0) return 0.0;
  double result = 0.0;
  if (rates.size() == 1) {
    DTN_COUNT(kHypoexpSingleEvals);
    result = std::clamp(1.0 - std::exp(-rates[0] * t), 0.0, 1.0);
  } else {
    const double first = rates.front();
    if (std::all_of(rates.begin(), rates.end(),
                    [&](double x) { return x == first; })) {
      result = erlang_cdf(static_cast<int>(rates.size()), first, t);
    } else if (has_near_equal_rates(rates, ws)) {
      result = hypoexp_cdf_uniformization(rates, t, ws);
    } else {
      result = hypoexp_cdf_closed_form(rates, t);
    }
  }
  // Eq. 2: an opportunistic path weight is P(sum of exp stages <= T).
  DTN_CHECK_PROB(result);
  return result;
}

double hypoexp_cdf(const std::vector<double>& rates, double t) {
  HypoexpWorkspace ws;
  return hypoexp_cdf(rates, t, ws);
}

void HypoexpAppendEvaluator::reset(const double* prefix, std::size_t p,
                                   double t) {
  for (std::size_t i = 0; i < p; ++i) {
    if (!(prefix[i] > 0.0)) {
      throw std::invalid_argument("hypoexp rates must be > 0");
    }
  }
  t_ = t;
  p_ = p;
  all_equal_ = true;
  equal_value_ = p > 0 ? prefix[0] : 0.0;
  for (std::size_t i = 1; i < p; ++i) {
    if (prefix[i] != equal_value_) {
      all_equal_ = false;
      break;
    }
  }

  sorted_.assign(prefix, prefix + p);
  std::sort(sorted_.begin(), sorted_.end());
  force_uniformization_ = false;
  for (std::size_t i = 1; i < p; ++i) {
    if ((sorted_[i] - sorted_[i - 1]) <= 1e-6 * sorted_[i]) {
      // Any appended x keeps a near-equal adjacent pair: x either leaves
      // this pair adjacent, or lands inside it, in which case the upper
      // sub-gap sorted_[i] - x <= the original gap <= 1e-6 * sorted_[i].
      force_uniformization_ = true;
      break;
    }
  }

  // Closed-form precomputation: only reachable when the prefix is strictly
  // distinct and not near-equal (otherwise every eval dispatches to Erlang
  // or uniformization), so the denominators below are bounded away from 0.
  partial_.resize(p);
  one_minus_exp_.resize(p);
  if (force_uniformization_ || (all_equal_ && p >= 2)) return;
  for (std::size_t k = 0; k < p; ++k) {
    double coeff = 1.0;
    for (std::size_t s = 0; s < p; ++s) {
      if (s == k) continue;
      coeff *= prefix[s] / (prefix[s] - prefix[k]);
    }
    partial_[k] = coeff;
    one_minus_exp_[k] = 1.0 - std::exp(-prefix[k] * t);
  }
}

double HypoexpAppendEvaluator::eval(const std::vector<double>& chain,
                                    HypoexpWorkspace& ws) const {
  return eval_impl(chain, ws, nullptr);
}

double HypoexpAppendEvaluator::eval(const std::vector<double>& chain,
                                    HypoexpWorkspace& ws,
                                    double one_minus_exp_x) const {
  return eval_impl(chain, ws, &one_minus_exp_x);
}

double HypoexpAppendEvaluator::eval_impl(const std::vector<double>& chain,
                                         HypoexpWorkspace& ws,
                                         const double* one_minus_exp_x) const {
  const double x = chain.back();
  if (!(x > 0.0)) throw std::invalid_argument("hypoexp rates must be > 0");
  if (t_ <= 0.0) return 0.0;
  const std::size_t r = p_ + 1;
  // 1 - e^{-x t}: the only exp the closed form needs per append. Callers
  // with an EdgeExpTable hand in the precomputed value — the identical
  // expression, so the identical double.
  const double e_x =
      one_minus_exp_x ? *one_minus_exp_x : 1.0 - std::exp(-x * t_);

  double result = 0.0;
  if (r == 1) {
    DTN_COUNT(kHypoexpSingleEvals);
    result = std::clamp(e_x, 0.0, 1.0);
  } else if (all_equal_ && x == equal_value_) {
    result = erlang_cdf(static_cast<int>(r), equal_value_, t_);
  } else if (force_uniformization_ ||
             [&] {
               // Near-equal probe by virtual insertion of x into the
               // sorted prefix: only the two pairs adjacent to x can be
               // new; every original pair is known not-near (else
               // force_uniformization_). Same predicate, same bits, as
               // sorting the full chain.
               std::size_t j = 0;
               while (j < p_ && sorted_[j] < x) ++j;
               if (j > 0 && (x - sorted_[j - 1]) <= 1e-6 * x) return true;
               if (j < p_ && (sorted_[j] - x) <= 1e-6 * sorted_[j]) return true;
               return false;
             }()) {
    result = hypoexp_cdf_uniformization(chain, t_, ws);
  } else {
    DTN_COUNT(kHypoexpClosedFormEvals);
    // The legacy coefficient loop multiplies factors in index order, so
    // for k < p the appended rate's factor x/(x - λ_k) is exactly the
    // final multiplication — partial_[k] holds everything before it.
    double acc = 0.0;
    for (std::size_t k = 0; k < p_; ++k) {
      const double coeff = partial_[k] * (x / (x - chain[k]));
      acc += coeff * one_minus_exp_[k];
    }
    double coeff = 1.0;
    for (std::size_t s = 0; s < p_; ++s) {
      coeff *= chain[s] / (chain[s] - x);
    }
    acc += coeff * e_x;
    DTN_CHECK_FINITE(acc);
    result = std::clamp(acc, 0.0, 1.0);
  }
  DTN_CHECK_PROB(result);
  return result;
}

double hypoexp_mean(const std::vector<double>& rates) {
  validate_rates(rates);
  double mean = 0.0;
  for (double r : rates) mean += 1.0 / r;
  DTN_CHECK_FINITE(mean);
  return mean;
}

}  // namespace dtn

// All-pairs shortest opportunistic paths.
//
// Because contacts are symmetric, the weight of the shortest opportunistic
// path from u to v equals the weight from v to u, and one single-source
// table rooted at v answers "how well can anyone reach v". Schemes use
// these tables for (a) gradient forwarding towards central nodes, (b)
// routing replies back to requesters, and (c) the path-weight variant of
// the probabilistic response (Sec. V-C).
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/contact_graph.h"
#include "graph/opportunistic_path.h"

namespace dtn {

class AllPairsPaths {
 public:
  AllPairsPaths() = default;

  /// Computes one PathTable per root. O(N) Dijkstra runs; the roots are
  /// independent, so they run on the shared thread pool (`threads` follows
  /// resolve_threads semantics: 0 = hardware_concurrency, 1 = serial).
  /// Each table is written into its preallocated slot, so the result is
  /// bit-identical for every thread count — and, by the golden test, for
  /// either engine (`PathEngine::kReference` re-runs the legacy allocating
  /// construction; production callers never pass it).
  AllPairsPaths(const ContactGraph& graph, Time horizon, int max_hops = 8,
                int threads = 0, PathEngine engine = PathEngine::kFast);

  NodeId node_count() const { return static_cast<NodeId>(tables_.size()); }
  bool empty() const { return tables_.empty(); }
  Time horizon() const { return horizon_; }

  /// Table rooted at `root`: entry(u).weight is p_{u,root}(horizon).
  const PathTable& table(NodeId root) const;

  /// Weight of the shortest opportunistic path from `from` to `to`
  /// within the construction horizon. 1.0 when from == to.
  double weight(NodeId from, NodeId to) const;

  /// Weight of the same path re-evaluated at a different time budget
  /// (used for p_CR(T_q - t_0)). Falls back to 0 when unreachable.
  double weight_at(NodeId from, NodeId to, Time budget) const;

  /// Heap bytes held by the materialized tables: n² path entries. This is
  /// the O(n²) footprint the sparse metric tier (DESIGN.md §14) avoids —
  /// bench_sparse_metric reports it next to the sparse engine's peak RSS.
  std::size_t table_bytes() const;

  /// Batched weight_at: evaluates every (from, to) pair at `budget` into
  /// `out[i]` (resized to match). One destination table, one scratch chain,
  /// one hypoexp workspace for the whole sweep — this is the form
  /// weight_at-heavy metric loops should use. out[i] is bit-identical to
  /// weight_at(from_list[i], to, budget).
  void weights_at(const std::vector<NodeId>& from_list, NodeId to, Time budget,
                  std::vector<double>& out) const;

 private:
  std::vector<PathTable> tables_;
  Time horizon_ = 0.0;
};

}  // namespace dtn

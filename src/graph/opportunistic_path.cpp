#include "graph/opportunistic_path.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "graph/hypoexp.h"

namespace dtn {

PathTable::PathTable(NodeId root, Time horizon, std::vector<Entry> entries)
    : root_(root), horizon_(horizon), entries_(std::move(entries)) {
  if (root_ < 0 || root_ >= node_count()) {
    throw std::invalid_argument("path table root out of range");
  }
}

const PathTable::Entry& PathTable::entry(NodeId node) const {
  return entries_.at(static_cast<std::size_t>(node));
}

std::vector<NodeId> PathTable::path_to_root(NodeId node) const {
  if (!reachable(node)) return {};
  std::vector<NodeId> path;
  NodeId current = node;
  path.push_back(current);
  while (current != root_) {
    current = entry(current).next_hop;
    assert(current != kNoNode);
    path.push_back(current);
    if (path.size() > entries_.size()) {
      throw std::logic_error("cycle in path table");  // defensive
    }
  }
  return path;
}

PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops) {
  const NodeId n = graph.node_count();
  if (root < 0 || root >= n) throw std::invalid_argument("root out of range");
  if (!(horizon > 0.0)) throw std::invalid_argument("horizon must be > 0");
  if (max_hops < 1) throw std::invalid_argument("max_hops must be >= 1");
  DTN_SCOPED_TIMER(kDijkstra);

  std::vector<PathTable::Entry> entries(static_cast<std::size_t>(n));
  entries[static_cast<std::size_t>(root)].weight = 1.0;  // empty path
  entries[static_cast<std::size_t>(root)].next_hop = root;

  struct QueueItem {
    double weight;
    NodeId node;
    bool operator<(const QueueItem& other) const {
      // max-heap on weight, deterministic tie-break on node id
      if (weight != other.weight) return weight < other.weight;
      return node > other.node;
    }
  };
  std::priority_queue<QueueItem> queue;
  queue.push({1.0, root});
  std::vector<bool> settled(static_cast<std::size_t>(n), false);

  while (!queue.empty()) {
    const auto [weight, u] = queue.top();
    queue.pop();
    auto& eu = entries[static_cast<std::size_t>(u)];
    if (settled[static_cast<std::size_t>(u)]) continue;
    if (weight < eu.weight) continue;  // stale entry
    settled[static_cast<std::size_t>(u)] = true;
    DTN_COUNT(kDijkstraSettled);
    if (eu.hops >= max_hops) continue;

    for (const auto& nb : graph.neighbors(u)) {
      auto& ev = entries[static_cast<std::size_t>(nb.node)];
      if (settled[static_cast<std::size_t>(nb.node)]) continue;
      DTN_COUNT(kDijkstraRelaxations);
      std::vector<double> rates = eu.rates;
      rates.push_back(nb.rate);
      const double candidate = hypoexp_cdf(rates, horizon);
      DTN_CHECK_PROB(candidate);
      // Appending an exponential stage strictly decreases P(sum <= T); the
      // greedy exchange argument behind max-probability Dijkstra needs it.
      // Tolerance: prefix and extended path may dispatch to different CDF
      // algorithms (closed form / Erlang / uniformization), which disagree
      // by a few ulps when both weights saturate towards 1.
      DTN_CHECK_LE(candidate, eu.weight + 1e-9);
      if (candidate > ev.weight) {
        ev.weight = candidate;
        ev.next_hop = u;
        ev.hops = eu.hops + 1;
        ev.rates = std::move(rates);
        queue.push({candidate, nb.node});
      }
    }
  }
  DTN_COUNT(kPathTablesBuilt);
  return PathTable(root, horizon, std::move(entries));
}

namespace {

void dfs_best(const ContactGraph& graph, NodeId current, NodeId target,
              Time horizon, int hops_left, std::vector<double>& rates,
              std::vector<bool>& visited, double& best) {
  if (current == target) {
    best = std::max(best, hypoexp_cdf(rates, horizon));
    return;
  }
  if (hops_left == 0) return;
  visited[static_cast<std::size_t>(current)] = true;
  for (const auto& nb : graph.neighbors(current)) {
    if (visited[static_cast<std::size_t>(nb.node)]) continue;
    rates.push_back(nb.rate);
    dfs_best(graph, nb.node, target, horizon, hops_left - 1, rates, visited,
             best);
    rates.pop_back();
  }
  visited[static_cast<std::size_t>(current)] = false;
}

}  // namespace

double brute_force_best_weight(const ContactGraph& graph, NodeId from,
                               NodeId to, Time horizon, int max_hops) {
  if (from == to) return 1.0;
  std::vector<double> rates;
  std::vector<bool> visited(static_cast<std::size_t>(graph.node_count()), false);
  double best = 0.0;
  dfs_best(graph, from, to, horizon, max_hops, rates, visited, best);
  return best;
}

}  // namespace dtn

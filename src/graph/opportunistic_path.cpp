#include "graph/opportunistic_path.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "graph/hypoexp.h"

namespace dtn {

PathTable::PathTable(NodeId root, Time horizon, std::vector<Entry> entries)
    : root_(root), horizon_(horizon), entries_(std::move(entries)) {
  if (root_ < 0 || root_ >= node_count()) {
    throw std::invalid_argument("path table root out of range");
  }
}

void PathTable::rates_to_root(NodeId node, std::vector<double>& out) const {
  const Entry& e = entry(node);
  out.resize(static_cast<std::size_t>(e.hops));
  if (e.hops == 0) return;  // root or unreachable
  DTN_COUNT(kParentChainWalks);
  NodeId current = node;
  for (int i = e.hops - 1; i >= 0; --i) {
    const Entry& ec = entries_[static_cast<std::size_t>(current)];
    out[static_cast<std::size_t>(i)] = ec.last_rate;
    current = ec.next_hop;
  }
  DTN_CHECK(current == root_, "parent chain did not terminate at the root");
}

std::vector<double> PathTable::rates(NodeId node) const {
  std::vector<double> out;
  rates_to_root(node, out);
  return out;
}

std::vector<NodeId> PathTable::path_to_root(NodeId node) const {
  if (!reachable(node)) return {};
  std::vector<NodeId> path;
  NodeId current = node;
  path.push_back(current);
  while (current != root_) {
    current = entry(current).next_hop;
    assert(current != kNoNode);
    path.push_back(current);
    if (path.size() > entries_.size()) {
      throw std::logic_error("cycle in path table");  // defensive
    }
  }
  return path;
}

namespace {

struct QueueItem {
  double weight;
  NodeId node;
  bool operator<(const QueueItem& other) const {
    // max-heap on weight, deterministic tie-break on node id
    if (weight != other.weight) return weight < other.weight;
    return node > other.node;
  }
};

void validate_dijkstra_args(const ContactGraph& graph, NodeId root,
                            Time horizon, int max_hops) {
  if (root < 0 || root >= graph.node_count()) {
    throw std::invalid_argument("root out of range");
  }
  if (!(horizon > 0.0)) throw std::invalid_argument("horizon must be > 0");
  if (max_hops < 1) throw std::invalid_argument("max_hops must be >= 1");
}

/// Fills chain[0..hops) with node's hop rates (root-adjacent hop first) by
/// walking the parent chain, and leaves one extra slot at chain[hops] for
/// the rate of the edge being relaxed. Same element order the legacy
/// embedded-rates layout stored, so hypoexp_cdf sees identical input.
void materialize_prefix(const std::vector<PathTable::Entry>& entries,
                        NodeId node, int hops, std::vector<double>& chain) {
  chain.resize(static_cast<std::size_t>(hops) + 1);
  if (hops == 0) return;
  DTN_COUNT(kParentChainWalks);
  NodeId current = node;
  for (int i = hops - 1; i >= 0; --i) {
    const auto& e = entries[static_cast<std::size_t>(current)];
    chain[static_cast<std::size_t>(i)] = e.last_rate;
    current = e.next_hop;
  }
}

PathTable run_fast_dijkstra(const ContactGraph& graph, NodeId root,
                            Time horizon, int max_hops, PathWorkspace& ws,
                            const EdgeExpTable* edge_exp,
                            double weight_floor) {
  validate_dijkstra_args(graph, root, horizon, max_hops);
  DTN_CHECK(weight_floor >= 0.0 && weight_floor < 1.0,
            "weight floor must be in [0, 1)");
  const NodeId n = graph.node_count();
  DTN_SCOPED_TIMER(kDijkstra);

  std::vector<PathTable::Entry> entries(static_cast<std::size_t>(n));
  entries[static_cast<std::size_t>(root)].weight = 1.0;  // empty path
  entries[static_cast<std::size_t>(root)].next_hop = root;

  std::priority_queue<QueueItem> queue;
  queue.push({1.0, root});
  // uint8_t instead of vector<bool>: the settle test sits on every pop and
  // every relaxation, and byte loads beat bit extraction there.
  std::vector<std::uint8_t> settled(static_cast<std::size_t>(n), 0);

  // Counter totals are the observable contract, not per-call granularity:
  // accumulate locally and flush once per table, keeping atomic traffic
  // out of the inner loop (the reference engine pays one fetch_add per
  // relaxation; this one pays a handful per table). maybe_unused: with
  // DTN_INSTRUMENT_OFF the flushes below compile to nothing (by contract
  // they must not evaluate their argument) and the accumulation dead-codes
  // away.
  [[maybe_unused]] std::uint64_t settled_count = 0;
  [[maybe_unused]] std::uint64_t relaxations = 0;
  [[maybe_unused]] std::uint64_t bytes_not_allocated = 0;
  [[maybe_unused]] std::uint64_t pruned = 0;

  while (!queue.empty()) {
    const auto [weight, u] = queue.top();
    queue.pop();
    auto& eu = entries[static_cast<std::size_t>(u)];
    if (settled[static_cast<std::size_t>(u)]) continue;
    if (weight < eu.weight) continue;  // stale entry
    settled[static_cast<std::size_t>(u)] = 1;
    ++settled_count;
    if (eu.hops >= max_hops) continue;

    // u is settled, so its rate chain is final: materialize it once into
    // the scratch prefix, fix the shared-prefix evaluator on it, and reuse
    // both for every outgoing relaxation.
    const std::size_t prefix = static_cast<std::size_t>(eu.hops);
    materialize_prefix(entries, u, eu.hops, ws.chain);
    ws.append.reset(ws.chain.data(), prefix, horizon);

    const auto& neighbors = graph.neighbors(u);
    const std::vector<double>* exp_row =
        edge_exp ? &edge_exp->one_minus_exp[static_cast<std::size_t>(u)]
                 : nullptr;
    for (std::size_t idx = 0; idx < neighbors.size(); ++idx) {
      const auto& nb = neighbors[idx];
      auto& ev = entries[static_cast<std::size_t>(nb.node)];
      if (settled[static_cast<std::size_t>(nb.node)]) continue;
      ++relaxations;
      // Bytes the legacy per-relaxation chain copy would have heap-allocated.
      bytes_not_allocated += (prefix + 1) * sizeof(double);
      ws.chain[prefix] = nb.rate;
      const double candidate =
          exp_row ? ws.append.eval(ws.chain, ws.hypoexp, (*exp_row)[idx])
                  : ws.append.eval(ws.chain, ws.hypoexp);
      DTN_CHECK_PROB(candidate);
      // Appending an exponential stage strictly decreases P(sum <= T); the
      // greedy exchange argument behind max-probability Dijkstra needs it.
      // Tolerance: prefix and extended path may dispatch to different CDF
      // algorithms (closed form / Erlang / uniformization), which disagree
      // by a few ulps when both weights saturate towards 1.
      DTN_CHECK_LE(candidate, eu.weight + 1e-9);
      // Bounded-frontier pruning (DESIGN.md §14): appending hops only ever
      // decreases the hypoexp weight, so once a candidate drops below the
      // floor no extension of it can climb back above — dropping it here
      // cannot disturb any entry whose final weight is >= the floor. The
      // comparison is strict, so a zero floor never fires and the build is
      // bit-identical to the unpruned one.
      if (candidate < weight_floor) {
        ++pruned;
        continue;
      }
      if (candidate > ev.weight) {
        ev.weight = candidate;
        ev.next_hop = u;
        ev.hops = eu.hops + 1;
        ev.last_rate = nb.rate;
        queue.push({candidate, nb.node});
      }
    }
  }
  DTN_COUNT_N(kDijkstraSettled, settled_count);
  DTN_COUNT_N(kDijkstraRelaxations, relaxations);
  DTN_COUNT_N(kPathScratchReuses, relaxations);
  DTN_COUNT_N(kPathBytesNotAllocated, bytes_not_allocated);
  DTN_COUNT_N(kDijkstraPruned, pruned);
  DTN_COUNT(kPathTablesBuilt);
  return PathTable(root, horizon, std::move(entries));
}

}  // namespace

EdgeExpTable build_edge_exp_table(const ContactGraph& graph, Time horizon) {
  EdgeExpTable table;
  table.horizon = horizon;
  const NodeId n = graph.node_count();
  table.one_minus_exp.resize(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    const auto& neighbors = graph.neighbors(u);
    auto& row = table.one_minus_exp[static_cast<std::size_t>(u)];
    row.resize(neighbors.size());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      row[i] = 1.0 - std::exp(-neighbors[i].rate * horizon);
    }
  }
  return table;
}

PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops,
                                      PathWorkspace& ws) {
  return run_fast_dijkstra(graph, root, horizon, max_hops, ws, nullptr, 0.0);
}

PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops,
                                      PathWorkspace& ws,
                                      const EdgeExpTable& edge_exp) {
  DTN_CHECK(edge_exp.horizon == horizon,
            "edge-exp table built for a different horizon");
  DTN_CHECK(edge_exp.one_minus_exp.size() ==
                static_cast<std::size_t>(graph.node_count()),
            "edge-exp table built for a different graph");
  return run_fast_dijkstra(graph, root, horizon, max_hops, ws, &edge_exp, 0.0);
}

PathTable compute_opportunistic_paths_pruned(const ContactGraph& graph,
                                             NodeId root, Time horizon,
                                             int max_hops, PathWorkspace& ws,
                                             const EdgeExpTable& edge_exp,
                                             double weight_floor) {
  DTN_CHECK(edge_exp.horizon == horizon,
            "edge-exp table built for a different horizon");
  DTN_CHECK(edge_exp.one_minus_exp.size() ==
                static_cast<std::size_t>(graph.node_count()),
            "edge-exp table built for a different graph");
  return run_fast_dijkstra(graph, root, horizon, max_hops, ws, &edge_exp,
                           weight_floor);
}

PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops) {
  PathWorkspace ws;
  return compute_opportunistic_paths(graph, root, horizon, max_hops, ws);
}

PathTable compute_opportunistic_paths_reference(const ContactGraph& graph,
                                                NodeId root, Time horizon,
                                                int max_hops) {
  validate_dijkstra_args(graph, root, horizon, max_hops);
  const NodeId n = graph.node_count();
  DTN_SCOPED_TIMER(kDijkstra);

  std::vector<PathTable::Entry> entries(static_cast<std::size_t>(n));
  // The legacy layout embedded each entry's full rate chain; the reference
  // engine keeps those chains in a side table so the relaxation loop below
  // is a line-for-line transcription of the pre-workspace implementation.
  std::vector<std::vector<double>> rate_chains(static_cast<std::size_t>(n));
  entries[static_cast<std::size_t>(root)].weight = 1.0;  // empty path
  entries[static_cast<std::size_t>(root)].next_hop = root;

  std::priority_queue<QueueItem> queue;
  queue.push({1.0, root});
  std::vector<bool> settled(static_cast<std::size_t>(n), false);

  while (!queue.empty()) {
    const auto [weight, u] = queue.top();
    queue.pop();
    auto& eu = entries[static_cast<std::size_t>(u)];
    if (settled[static_cast<std::size_t>(u)]) continue;
    if (weight < eu.weight) continue;  // stale entry
    settled[static_cast<std::size_t>(u)] = true;
    DTN_COUNT(kDijkstraSettled);
    if (eu.hops >= max_hops) continue;

    for (const auto& nb : graph.neighbors(u)) {
      auto& ev = entries[static_cast<std::size_t>(nb.node)];
      if (settled[static_cast<std::size_t>(nb.node)]) continue;
      DTN_COUNT(kDijkstraRelaxations);
      std::vector<double> rates = rate_chains[static_cast<std::size_t>(u)];
      rates.push_back(nb.rate);
      const double candidate = hypoexp_cdf(rates, horizon);
      DTN_CHECK_PROB(candidate);
      DTN_CHECK_LE(candidate, eu.weight + 1e-9);
      if (candidate > ev.weight) {
        ev.weight = candidate;
        ev.next_hop = u;
        ev.hops = eu.hops + 1;
        ev.last_rate = nb.rate;
        rate_chains[static_cast<std::size_t>(nb.node)] = std::move(rates);
        queue.push({candidate, nb.node});
      }
    }
  }
  DTN_COUNT(kPathTablesBuilt);
  return PathTable(root, horizon, std::move(entries));
}

namespace {

void dfs_best(const ContactGraph& graph, NodeId current, NodeId target,
              Time horizon, int hops_left, std::vector<double>& rates,
              std::vector<bool>& visited, double& best) {
  if (current == target) {
    best = std::max(best, hypoexp_cdf(rates, horizon));
    return;
  }
  if (hops_left == 0) return;
  visited[static_cast<std::size_t>(current)] = true;
  for (const auto& nb : graph.neighbors(current)) {
    if (visited[static_cast<std::size_t>(nb.node)]) continue;
    rates.push_back(nb.rate);
    dfs_best(graph, nb.node, target, horizon, hops_left - 1, rates, visited,
             best);
    rates.pop_back();
  }
  visited[static_cast<std::size_t>(current)] = false;
}

}  // namespace

double brute_force_best_weight(const ContactGraph& graph, NodeId from,
                               NodeId to, Time horizon, int max_hops) {
  if (from == to) return 1.0;
  std::vector<double> rates;
  std::vector<bool> visited(static_cast<std::size_t>(graph.node_count()), false);
  double best = 0.0;
  dfs_best(graph, from, to, horizon, max_hops, rates, visited, best);
  return best;
}

}  // namespace dtn

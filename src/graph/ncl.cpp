#include "graph/ncl.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/check.h"
#include "common/instrument.h"
#include "common/parallel.h"

namespace dtn {

std::vector<double> ncl_metrics(const ContactGraph& graph, Time horizon,
                                int max_hops, int threads) {
  const NodeId n = graph.node_count();
  std::vector<double> metrics(static_cast<std::size_t>(n), 0.0);
  if (n < 2) return metrics;
  DTN_SCOPED_TIMER(kNclMetrics);
  const EdgeExpTable edge_exp = build_edge_exp_table(graph, horizon);
  parallel_for(threads, static_cast<std::size_t>(n), [&](std::size_t root) {
    // Scratch carries capacity only, never results, so reusing it across
    // roots (and across ncl_metrics calls) keeps the output bit-identical.
    static thread_local PathWorkspace ws;
    const NodeId i = static_cast<NodeId>(root);
    const PathTable table =
        compute_opportunistic_paths(graph, i, horizon, max_hops, ws, edge_exp);
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += table.weight(j);
    }
    metrics[root] = sum / static_cast<double>(n - 1);
    // Eq. 3: the NCL metric is a mean of path weights, itself in [0, 1].
    DTN_CHECK_PROB(metrics[root]);
  });
  return metrics;
}

std::vector<double> ncl_metrics(const ContactGraph& graph, Time horizon,
                                int max_hops, int threads, MetricEngine engine,
                                const SparseMetricConfig& sparse) {
  switch (engine) {
    case MetricEngine::kFast:
      return ncl_metrics(graph, horizon, max_hops, threads);
    case MetricEngine::kReference:
      return reference_ncl_metrics(graph, horizon, max_hops, threads);
    case MetricEngine::kSparse:
      return sparse_ncl_metrics(graph, horizon, max_hops, threads, sparse);
  }
  return ncl_metrics(graph, horizon, max_hops, threads);
}

bool NclSelection::is_central(NodeId node) const {
  return central_index(node) >= 0;
}

int NclSelection::central_index(NodeId node) const {
  for (std::size_t i = 0; i < central_nodes.size(); ++i) {
    if (central_nodes[i] == node) return static_cast<int>(i);
  }
  return -1;
}

namespace {

/// Shared ranking step: fills central_nodes from selection.metric with the
/// deterministic metric-descending / id-ascending order. One implementation
/// for every engine keeps the degenerate-sparse bit-identity argument local
/// to the metric vector.
void rank_central_nodes(NclSelection& selection, int k) {
  std::vector<NodeId> order(selection.metric.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double ma = selection.metric[static_cast<std::size_t>(a)];
    const double mb = selection.metric[static_cast<std::size_t>(b)];
    if (ma != mb) return ma > mb;
    return a < b;
  });
  const std::size_t take = std::min<std::size_t>(static_cast<std::size_t>(k),
                                                 order.size());
  selection.central_nodes.assign(order.begin(),
                                 order.begin() + static_cast<std::ptrdiff_t>(take));
}

}  // namespace

NclSelection select_ncls(const ContactGraph& graph, Time horizon, int k,
                         int max_hops, int threads) {
  if (k < 1) throw std::invalid_argument("k must be >= 1");
  NclSelection selection;
  selection.metric = ncl_metrics(graph, horizon, max_hops, threads);
  rank_central_nodes(selection, k);
  return selection;
}

NclSelection select_ncls(const ContactGraph& graph, Time horizon, int k,
                         int max_hops, int threads, MetricEngine engine,
                         const SparseMetricConfig& sparse) {
  if (k < 1) throw std::invalid_argument("k must be >= 1");
  NclSelection selection;
  selection.metric = ncl_metrics(graph, horizon, max_hops, threads, engine,
                                 sparse);
  rank_central_nodes(selection, k);
  return selection;
}

Time calibrate_horizon(const ContactGraph& graph, double target_median,
                       Time min_horizon, Time max_horizon, int max_hops,
                       int threads) {
  return calibrate_horizon(graph, target_median, min_horizon, max_horizon,
                           max_hops, threads, MetricEngine::kFast,
                           SparseMetricConfig{});
}

Time calibrate_horizon(const ContactGraph& graph, double target_median,
                       Time min_horizon, Time max_horizon, int max_hops,
                       int threads, MetricEngine engine,
                       const SparseMetricConfig& sparse) {
  if (!(target_median > 0.0) || target_median >= 1.0) {
    throw std::invalid_argument("target_median must be in (0, 1)");
  }
  if (!(min_horizon > 0.0) || max_horizon <= min_horizon) {
    throw std::invalid_argument("invalid horizon bounds");
  }
  DTN_SCOPED_TIMER(kCalibrateHorizon);
  auto median_metric = [&](Time horizon) {
    std::vector<double> m =
        ncl_metrics(graph, horizon, max_hops, threads, engine, sparse);
    if (m.empty()) return 0.0;
    std::nth_element(m.begin(), m.begin() + static_cast<std::ptrdiff_t>(m.size() / 2),
                     m.end());
    return m[m.size() / 2];
  };

  // The median is monotone non-decreasing in T: bisect in log space.
  double lo = std::log(min_horizon);
  double hi = std::log(max_horizon);
  if (median_metric(min_horizon) >= target_median) return min_horizon;
  if (median_metric(max_horizon) <= target_median) return max_horizon;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (median_metric(std::exp(mid)) < target_median) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(0.5 * (lo + hi));
}

}  // namespace dtn

// Shortest opportunistic paths (paper Definition 1).
//
// The weight of a path is the probability that data traverses all its hops
// within a time budget T (the hypoexponential CDF of the hop rates); the
// "shortest" path between two nodes is the one maximizing that probability.
// Appending a hop to a path strictly decreases its weight (the sum of one
// more positive random variable stochastically dominates), so a Dijkstra-
// style label-setting search applies. Note the classic caveat: the weight
// is a function of the whole rate multiset, not an edge-decomposable
// semiring, so label-setting is the standard *greedy* construction used in
// this literature rather than an exact optimum over all paths; tests verify
// it is exact on small graphs by comparison with brute-force enumeration.
//
// Memory layout (DESIGN.md §9): an entry stores only its final-stage rate
// plus the parent pointer; the full hop-rate chain of any node is
// materialized on demand by walking the parent chain into a caller-owned
// scratch buffer. This keeps the all-pairs footprint at O(n²) doubles
// (instead of O(n²·hops)) and makes the Dijkstra inner loop allocation-free
// while producing bit-identical tables — the scratch buffer reproduces the
// exact vector the embedded-rates layout used to hand hypoexp_cdf.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "graph/contact_graph.h"
#include "graph/hypoexp.h"

namespace dtn {

/// Which construction of the single-source tables to run. kFast is the
/// production engine; kReference re-runs the legacy allocating construction
/// (embedded per-entry rate vectors, fresh copy per relaxation) and exists
/// as the oracle for the golden equality tests and the same-host speedup
/// ratio in bench_paths. Both produce bit-identical tables.
enum class PathEngine {
  kFast,
  kReference,
};

/// Per-thread scratch for the path engine: the candidate rate chain being
/// evaluated, the hypoexponential evaluator's buffers, and the shared-
/// prefix closed-form evaluator. Reuse across calls (one workspace per
/// thread) amortizes all allocations away; results never depend on the
/// workspace's history.
struct PathWorkspace {
  std::vector<double> chain;
  HypoexpWorkspace hypoexp;
  HypoexpAppendEvaluator append;
};

/// Result of a single-source computation rooted at `root()`.
class PathTable {
 public:
  struct Entry {
    double weight = 0.0;     ///< p(T) to the root; 0 when unreachable.
    double last_rate = 0.0;  ///< rate of the final hop (next_hop -> node);
                             ///< 0 for the root and unreachable nodes.
    NodeId next_hop = kNoNode;  ///< neighbor one hop closer to the root.
    int hops = 0;               ///< path length; 0 only for the root itself.
  };

  PathTable(NodeId root, Time horizon, std::vector<Entry> entries);

  NodeId root() const { return root_; }
  Time horizon() const { return horizon_; }
  NodeId node_count() const { return static_cast<NodeId>(entries_.size()); }

  /// Entry lookup. The node id is a caller contract (ids come from the
  /// same graph the table was built from), enforced by DTN_CHECK rather
  /// than .at()'s exception machinery: this accessor sits under every
  /// weight()/weight_at() metric loop.
  const Entry& entry(NodeId node) const {
    DTN_CHECK(node >= 0 && node < node_count(),
              "path table node out of range");
    return entries_[static_cast<std::size_t>(node)];
  }

  double weight(NodeId node) const { return entry(node).weight; }
  bool reachable(NodeId node) const { return entry(node).weight > 0.0; }

  /// Materializes the hop-rate chain of `node`'s path into `out` by
  /// walking the parent chain: out[0] is the hop leaving the root,
  /// out.back() the final hop into `node` — exactly the vector the legacy
  /// embedded-rates layout stored per entry. Resized to entry(node).hops;
  /// empty for the root and for unreachable nodes.
  void rates_to_root(NodeId node, std::vector<double>& out) const;

  /// Allocating convenience wrapper around rates_to_root (tests, tools).
  std::vector<double> rates(NodeId node) const;

  /// Reconstructs the node sequence from `node` to the root (inclusive).
  /// Empty when unreachable.
  std::vector<NodeId> path_to_root(NodeId node) const;

 private:
  NodeId root_;
  Time horizon_;
  std::vector<Entry> entries_;
};

/// Per-edge cache of 1 - e^{-rate * horizon}: the appended-stage exp term
/// of every closed-form (and single-hop) evaluation in the relaxation loop.
/// The term depends only on the edge rate and the horizon, both fixed
/// across every root of an all-pairs or NCL-metric build, so computing it
/// once per (graph, horizon) and sharing it across roots removes one exp()
/// call per relaxation — same double value, so tables stay bit-identical.
/// Rows parallel ContactGraph::neighbors(u) index-for-index.
struct EdgeExpTable {
  Time horizon = 0.0;
  std::vector<std::vector<double>> one_minus_exp;  ///< [node][neighbor idx]
};

EdgeExpTable build_edge_exp_table(const ContactGraph& graph, Time horizon);

/// Single-source shortest opportunistic paths within time budget `horizon`.
/// Paths longer than `max_hops` hops are not considered (coefficients and
/// delivery probability both degrade rapidly with hop count; the paper's
/// traces rarely need more than a handful of hops).
PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops = 8);

/// Workspace form: zero heap traffic in the relaxation loop once `ws` has
/// warmed up. The allocating overload is a thin wrapper over this one.
PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops,
                                      PathWorkspace& ws);

/// Workspace + shared edge-exp form, for many-roots builds: `edge_exp`
/// must have been built from this graph at this horizon (DTN_CHECK).
PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops,
                                      PathWorkspace& ws,
                                      const EdgeExpTable& edge_exp);

/// Bounded-frontier form (MetricEngine::kSparse, DESIGN.md §14): candidates
/// whose weight drops strictly below `weight_floor` are discarded instead of
/// relaxed. Safe because appending a hop strictly decreases the hypoexp path
/// weight (Eq. 2): a sub-floor partial path can never recover, so every
/// entry whose exact weight is >= the floor is bit-identical to the unpruned
/// build, and every other entry reads 0 (absolute error < weight_floor).
/// A floor of 0 never prunes and reproduces the plain build bit-for-bit.
PathTable compute_opportunistic_paths_pruned(const ContactGraph& graph,
                                             NodeId root, Time horizon,
                                             int max_hops, PathWorkspace& ws,
                                             const EdgeExpTable& edge_exp,
                                             double weight_floor);

/// The legacy construction (PathEngine::kReference): embedded rate chains
/// copied on every relaxation, allocating hypoexp evaluation. Kept as the
/// bit-exactness oracle and the speedup denominator; not a production path.
PathTable compute_opportunistic_paths_reference(const ContactGraph& graph,
                                                NodeId root, Time horizon,
                                                int max_hops = 8);

/// Brute-force exact maximum-weight simple path search (exponential; for
/// testing the Dijkstra construction on small graphs only).
double brute_force_best_weight(const ContactGraph& graph, NodeId from,
                               NodeId to, Time horizon, int max_hops = 8);

}  // namespace dtn

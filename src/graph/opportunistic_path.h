// Shortest opportunistic paths (paper Definition 1).
//
// The weight of a path is the probability that data traverses all its hops
// within a time budget T (the hypoexponential CDF of the hop rates); the
// "shortest" path between two nodes is the one maximizing that probability.
// Appending a hop to a path strictly decreases its weight (the sum of one
// more positive random variable stochastically dominates), so a Dijkstra-
// style label-setting search applies. Note the classic caveat: the weight
// is a function of the whole rate multiset, not an edge-decomposable
// semiring, so label-setting is the standard *greedy* construction used in
// this literature rather than an exact optimum over all paths; tests verify
// it is exact on small graphs by comparison with brute-force enumeration.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/contact_graph.h"

namespace dtn {

/// Result of a single-source computation rooted at `root()`.
class PathTable {
 public:
  struct Entry {
    double weight = 0.0;        ///< p(T) to the root; 0 when unreachable.
    NodeId next_hop = kNoNode;  ///< neighbor one hop closer to the root.
    int hops = 0;               ///< path length; 0 only for the root itself.
    std::vector<double> rates;  ///< hop rates from this node to the root.
  };

  PathTable(NodeId root, Time horizon, std::vector<Entry> entries);

  NodeId root() const { return root_; }
  Time horizon() const { return horizon_; }
  NodeId node_count() const { return static_cast<NodeId>(entries_.size()); }

  const Entry& entry(NodeId node) const;
  double weight(NodeId node) const { return entry(node).weight; }
  bool reachable(NodeId node) const { return entry(node).weight > 0.0; }

  /// Reconstructs the node sequence from `node` to the root (inclusive).
  /// Empty when unreachable.
  std::vector<NodeId> path_to_root(NodeId node) const;

 private:
  NodeId root_;
  Time horizon_;
  std::vector<Entry> entries_;
};

/// Single-source shortest opportunistic paths within time budget `horizon`.
/// Paths longer than `max_hops` hops are not considered (coefficients and
/// delivery probability both degrade rapidly with hop count; the paper's
/// traces rarely need more than a handful of hops).
PathTable compute_opportunistic_paths(const ContactGraph& graph, NodeId root,
                                      Time horizon, int max_hops = 8);

/// Brute-force exact maximum-weight simple path search (exponential; for
/// testing the Dijkstra construction on small graphs only).
double brute_force_best_weight(const ContactGraph& graph, NodeId from,
                               NodeId to, Time horizon, int max_hops = 8);

}  // namespace dtn

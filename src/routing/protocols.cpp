#include "routing/protocols.h"

#include <cmath>
#include <stdexcept>

namespace dtn {

SprayAndWaitRouter::SprayAndWaitRouter(NodeId node_count, int copies)
    : Router(node_count), copies_(copies) {
  if (copies < 1) throw std::invalid_argument("copy budget must be >= 1");
}

std::string SprayAndWaitRouter::name() const {
  return "SprayAndWait(L=" + std::to_string(copies_) + ")";
}

ProphetRouter::ProphetRouter(NodeId node_count)
    : ProphetRouter(node_count, Params()) {}

ProphetRouter::ProphetRouter(NodeId node_count, Params params)
    : Router(node_count), params_(params), node_count_(node_count) {
  if (params_.p_init <= 0.0 || params_.p_init > 1.0 || params_.beta < 0.0 ||
      params_.beta > 1.0 || params_.gamma <= 0.0 || params_.gamma > 1.0 ||
      params_.aging_unit <= 0.0) {
    throw std::invalid_argument("invalid PROPHET parameters");
  }
  table_.assign(static_cast<std::size_t>(node_count) *
                    static_cast<std::size_t>(node_count),
                0.0);
  last_aged_.assign(static_cast<std::size_t>(node_count), 0.0);
}

double ProphetRouter::predictability(NodeId node, NodeId dst) const {
  return table_[static_cast<std::size_t>(node) *
                    static_cast<std::size_t>(node_count_) +
                static_cast<std::size_t>(dst)];
}

void ProphetRouter::age(NodeId node, Time now) {
  Time& last = last_aged_[static_cast<std::size_t>(node)];
  if (now <= last) return;
  const double steps = (now - last) / params_.aging_unit;
  const double factor = std::pow(params_.gamma, steps);
  double* row = &table_[static_cast<std::size_t>(node) *
                        static_cast<std::size_t>(node_count_)];
  for (NodeId d = 0; d < node_count_; ++d) row[d] *= factor;
  last = now;
}

void ProphetRouter::on_encounter(const RoutingContext& ctx, NodeId a,
                                 NodeId b) {
  age(a, ctx.now);
  age(b, ctx.now);
  auto at = [&](NodeId node, NodeId dst) -> double& {
    return table_[static_cast<std::size_t>(node) *
                      static_cast<std::size_t>(node_count_) +
                  static_cast<std::size_t>(dst)];
  };
  // Direct reinforcement: P(a,b) += (1 - P(a,b)) * p_init, symmetric.
  at(a, b) += (1.0 - at(a, b)) * params_.p_init;
  at(b, a) += (1.0 - at(b, a)) * params_.p_init;
  // Transitivity: P(a,d) += (1 - P(a,d)) * P(a,b) * P(b,d) * beta.
  for (NodeId d = 0; d < node_count_; ++d) {
    if (d == a || d == b) continue;
    at(a, d) += (1.0 - at(a, d)) * at(a, b) * at(b, d) * params_.beta;
    at(b, d) += (1.0 - at(b, d)) * at(b, a) * at(a, d) * params_.beta;
  }
}

Router::Action ProphetRouter::decide(const RoutingContext& ctx,
                                     const Copy& copy, NodeId holder,
                                     NodeId peer) {
  (void)ctx;
  const NodeId dst = copy.message.destination;
  return predictability(peer, dst) > predictability(holder, dst)
             ? Action::kHandOver
             : Action::kKeep;
}

}  // namespace dtn

// The classic DTN unicast protocols, over the Router scaffold.
#pragma once

#include "routing/router.h"

namespace dtn {

/// Direct delivery: the source holds the bundle until it meets the
/// destination. One copy, minimal cost, worst delay.
class DirectDeliveryRouter : public Router {
 public:
  using Router::Router;
  std::string name() const override { return "DirectDelivery"; }

 protected:
  Action decide(const RoutingContext&, const Copy&, NodeId, NodeId) override {
    return Action::kKeep;  // only the destination check in the base fires
  }
};

/// Epidemic routing (Vahdat & Becker): replicate to every encountered node
/// that lacks the bundle. Delivery-optimal, cost-maximal — the paper's
/// reference point for forwarding performance.
class EpidemicRouter : public Router {
 public:
  using Router::Router;
  std::string name() const override { return "Epidemic"; }

 protected:
  Action decide(const RoutingContext&, const Copy&, NodeId, NodeId) override {
    return Action::kReplicate;
  }
};

/// Binary spray-and-wait (Spyropoulos et al.): L copies total; a holder
/// with more than one token gives half to each new encounter, a holder
/// with one token waits for the destination.
class SprayAndWaitRouter : public Router {
 public:
  SprayAndWaitRouter(NodeId node_count, int copies = 8);
  std::string name() const override;

 protected:
  Action decide(const RoutingContext&, const Copy& copy, NodeId,
                NodeId) override {
    return copy.tokens > 1 ? Action::kReplicate : Action::kKeep;
  }
  int initial_tokens() const override { return copies_; }
  int tokens_for_peer(int holder_tokens) const override {
    return holder_tokens / 2;
  }

 private:
  int copies_;
};

/// PROPHET (Lindgren et al.): per-node delivery predictabilities with
/// direct reinforcement, aging and transitivity; a copy is handed to peers
/// with higher predictability for its destination.
class ProphetRouter : public Router {
 public:
  struct Params {
    double p_init = 0.75;   ///< reinforcement on encounter
    double beta = 0.25;     ///< transitivity factor
    double gamma = 0.98;    ///< aging base (per aging unit)
    Time aging_unit = 3600; ///< seconds per aging step
  };

  explicit ProphetRouter(NodeId node_count);
  ProphetRouter(NodeId node_count, Params params);
  std::string name() const override { return "PROPHET"; }

  /// Current predictability P(node, dst) — exposed for tests.
  double predictability(NodeId node, NodeId dst) const;

 protected:
  Action decide(const RoutingContext& ctx, const Copy& copy, NodeId holder,
                NodeId peer) override;
  void on_encounter(const RoutingContext& ctx, NodeId a, NodeId b) override;

 private:
  void age(NodeId node, Time now);

  Params params_;
  NodeId node_count_;
  /// Row-major P table plus last-aging timestamps.
  std::vector<double> table_;
  std::vector<Time> last_aged_;
};

/// Gradient forwarding on opportunistic path weights — the substrate the
/// NCL caching scheme itself uses for push/query/reply legs. Single copy,
/// hands the bundle to any peer strictly closer (in delivery probability)
/// to the destination.
class GradientRouter : public Router {
 public:
  using Router::Router;
  std::string name() const override { return "Gradient"; }

 protected:
  Action decide(const RoutingContext& ctx, const Copy& copy, NodeId holder,
                NodeId peer) override {
    const NodeId dst = copy.message.destination;
    return ctx.path_weight(peer, dst) > ctx.path_weight(holder, dst)
               ? Action::kHandOver
               : Action::kKeep;
  }
};

}  // namespace dtn

#include "routing/router.h"

#include <algorithm>
#include <stdexcept>

namespace dtn {

Router::Router(NodeId node_count)
    : queues_(static_cast<std::size_t>(node_count)) {
  if (node_count < 2) throw std::invalid_argument("need at least 2 nodes");
}

void Router::submit(const RoutingContext& ctx, const BundleMessage& message) {
  if (message.source < 0 ||
      message.source >= static_cast<NodeId>(queues_.size()) ||
      message.destination < 0 ||
      message.destination >= static_cast<NodeId>(queues_.size())) {
    throw std::invalid_argument("message endpoints out of range");
  }
  ++submitted_;
  if (message.source == message.destination) {
    delivered_at_.emplace(message.id, ctx.now);
    return;
  }
  Copy copy;
  copy.message = message;
  copy.tokens = initial_tokens();
  queues_[static_cast<std::size_t>(message.source)].push_back(copy);
}

Time Router::delivered_at(MessageId id) const {
  const auto it = delivered_at_.find(id);
  return it == delivered_at_.end() ? kNever : it->second;
}

std::size_t Router::copies_in_flight() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

bool Router::peer_has(NodeId node, MessageId id) const {
  for (const auto& copy : queues_[static_cast<std::size_t>(node)]) {
    if (copy.message.id == id) return true;
  }
  return false;
}

void Router::on_contact(const RoutingContext& ctx, NodeId a, NodeId b,
                        LinkBudget& budget) {
  on_encounter(ctx, a, b);
  transfer_direction(ctx, a, b, budget);
  transfer_direction(ctx, b, a, budget);
}

void Router::transfer_direction(const RoutingContext& ctx, NodeId from,
                                NodeId to, LinkBudget& budget) {
  auto& src = queues_[static_cast<std::size_t>(from)];
  std::vector<Copy> kept;
  kept.reserve(src.size());
  for (auto& copy : src) {
    const BundleMessage& m = copy.message;
    if (!m.alive(ctx.now) || delivered(m.id)) continue;  // drop stale copies

    // Destination encountered: always deliver (all protocols).
    if (to == m.destination) {
      if (budget.consume(m.size)) {
        ++transmissions_;
        delivered_at_.emplace(m.id, ctx.now);
        continue;
      }
      kept.push_back(std::move(copy));
      continue;
    }

    if (peer_has(to, m.id)) {
      kept.push_back(std::move(copy));
      continue;
    }

    switch (decide(ctx, copy, from, to)) {
      case Action::kKeep:
        kept.push_back(std::move(copy));
        break;
      case Action::kReplicate: {
        if (!budget.consume(m.size)) {
          kept.push_back(std::move(copy));
          break;
        }
        ++transmissions_;
        Copy replica = copy;
        replica.tokens = tokens_for_peer(copy.tokens);
        copy.tokens -= replica.tokens;
        if (copy.tokens < 1) copy.tokens = 1;
        queues_[static_cast<std::size_t>(to)].push_back(std::move(replica));
        kept.push_back(std::move(copy));
        break;
      }
      case Action::kHandOver:
        if (!budget.consume(m.size)) {
          kept.push_back(std::move(copy));
          break;
        }
        ++transmissions_;
        queues_[static_cast<std::size_t>(to)].push_back(std::move(copy));
        break;
    }
  }
  src = std::move(kept);
}

}  // namespace dtn

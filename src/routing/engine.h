// Harness for unicast routing experiments: random messages over a contact
// trace, delivery ratio / delay / transmission-cost metrics per protocol.
#pragma once

#include <memory>
#include <vector>

#include "common/stats.h"
#include "routing/router.h"
#include "trace/trace.h"

namespace dtn {

struct RoutingExperimentConfig {
  /// Messages are injected uniformly at random (source, destination, time
  /// within the data phase — the second half of the trace).
  std::size_t message_count = 200;
  Bytes message_size = megabits(10);
  /// Message TTL.
  Time ttl = days(2);
  /// Path-table refresh cadence (gradient routing needs it).
  Time maintenance_interval = hours(12);
  Time path_horizon = 0.0;  ///< 0 = auto-calibrate from the warm-up graph
  int max_hops = 8;
  Bytes bandwidth_per_second = megabits(2.1);
  std::uint64_t seed = 99;
  /// Threads for path-table refreshes (0 = hardware_concurrency,
  /// 1 = serial). Results are identical for every value.
  int threads = 0;
};

struct RoutingResult {
  std::string protocol;
  double delivery_ratio = 0.0;
  double mean_delay_hours = 0.0;   ///< over delivered messages
  double transmissions_per_message = 0.0;
  double copies_in_flight_end = 0.0;
};

/// Generates the message workload (deterministic in the seed).
std::vector<BundleMessage> generate_messages(
    const RoutingExperimentConfig& config, const ContactTrace& trace);

/// Runs one router over the trace.
RoutingResult run_routing(const ContactTrace& trace, Router& router,
                          const RoutingExperimentConfig& config);

}  // namespace dtn

// DTN unicast routing protocols.
//
// The paper builds on the carry-and-forward literature: queries, pushed
// data and replies all ride some single- or multi-copy forwarding scheme
// ("data can be sent to the requester by any existing data forwarding
// protocol in DTNs", Sec. V-B). This module implements the classic
// protocols behind one interface so they can be studied — and compared
// against the opportunistic-path gradient the caching scheme uses — on the
// same traces: direct delivery, epidemic, binary spray-and-wait, PROPHET
// and path-weight gradient forwarding.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "graph/all_pairs.h"
#include "sim/link_budget.h"

namespace dtn {

using MessageId = std::int64_t;

/// A unicast bundle: `source` wants `payload` bytes delivered to
/// `destination` before `expires`.
struct BundleMessage {
  MessageId id = -1;
  NodeId source = kNoNode;
  NodeId destination = kNoNode;
  Time created = 0.0;
  Time expires = kNever;
  Bytes size = 0;

  bool alive(Time now) const { return now < expires; }
};

/// Context a router sees during a contact: the clock, the (periodically
/// refreshed) opportunistic path tables, and a deterministic RNG.
struct RoutingContext {
  Time now = 0.0;
  const AllPairsPaths* paths = nullptr;
  Rng* rng = nullptr;

  double path_weight(NodeId from, NodeId to) const {
    if (paths == nullptr || paths->empty()) return from == to ? 1.0 : 0.0;
    return paths->weight(from, to);
  }
};

/// Base class: owns per-node bundle queues and delivery records; derived
/// protocols implement the forwarding decision.
class Router {
 public:
  explicit Router(NodeId node_count);
  virtual ~Router() = default;

  virtual std::string name() const = 0;

  /// Injects a new message at its source.
  void submit(const RoutingContext& ctx, const BundleMessage& message);

  /// Handles a contact between a and b (both directions).
  void on_contact(const RoutingContext& ctx, NodeId a, NodeId b,
                  LinkBudget& budget);

  bool delivered(MessageId id) const { return delivered_at_.contains(id); }
  /// Delivery time; kNever when not delivered.
  Time delivered_at(MessageId id) const;

  std::size_t submitted() const { return submitted_; }
  std::size_t delivered_count() const { return delivered_at_.size(); }
  std::uint64_t transmissions() const { return transmissions_; }

  /// Total bundle copies currently buffered across nodes.
  std::size_t copies_in_flight() const;

 protected:
  struct Copy {
    BundleMessage message;
    /// Remaining replication budget (used by spray-and-wait; others
    /// ignore it).
    int tokens = 1;
  };

  /// Forwarding decision for one copy at `holder` meeting `peer`.
  enum class Action {
    kKeep,       ///< do nothing this contact
    kReplicate,  ///< give the peer a copy and keep ours
    kHandOver,   ///< give the peer the copy and drop ours
  };
  virtual Action decide(const RoutingContext& ctx, const Copy& copy,
                        NodeId holder, NodeId peer) = 0;

  /// Hook: protocol-specific per-contact state update (PROPHET tables).
  virtual void on_encounter(const RoutingContext& ctx, NodeId a, NodeId b) {
    (void)ctx;
    (void)a;
    (void)b;
  }

  /// How many replication tokens a fresh message starts with.
  virtual int initial_tokens() const { return 1; }

  /// Splits the token budget on replication (spray-and-wait halves it).
  virtual int tokens_for_peer(int holder_tokens) const {
    (void)holder_tokens;
    return 1;
  }

  std::vector<std::vector<Copy>>& queues() { return queues_; }

 private:
  void transfer_direction(const RoutingContext& ctx, NodeId from, NodeId to,
                          LinkBudget& budget);
  bool peer_has(NodeId node, MessageId id) const;

  std::vector<std::vector<Copy>> queues_;
  std::unordered_map<MessageId, Time> delivered_at_;
  std::size_t submitted_ = 0;
  std::uint64_t transmissions_ = 0;
};

}  // namespace dtn

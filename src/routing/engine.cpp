#include "routing/engine.h"

#include <algorithm>
#include <stdexcept>

#include "graph/contact_graph.h"
#include "graph/ncl.h"

namespace dtn {

std::vector<BundleMessage> generate_messages(
    const RoutingExperimentConfig& config, const ContactTrace& trace) {
  if (trace.node_count() < 2) throw std::invalid_argument("trace too small");
  if (config.message_count == 0 || config.message_size <= 0 ||
      !(config.ttl > 0.0)) {
    throw std::invalid_argument("invalid routing workload");
  }
  Rng rng(config.seed);
  const Time phase_start = trace.start_time() + trace.duration() / 2.0;
  const Time phase_end = trace.end_time();

  std::vector<BundleMessage> messages;
  messages.reserve(config.message_count);
  for (std::size_t i = 0; i < config.message_count; ++i) {
    BundleMessage m;
    m.id = static_cast<MessageId>(i);
    m.source = static_cast<NodeId>(
        rng.uniform_int(0, trace.node_count() - 1));
    do {
      m.destination = static_cast<NodeId>(
          rng.uniform_int(0, trace.node_count() - 1));
    } while (m.destination == m.source);
    m.created = rng.uniform(phase_start, phase_end);
    m.expires = m.created + config.ttl;
    m.size = config.message_size;
    messages.push_back(m);
  }
  std::sort(messages.begin(), messages.end(),
            [](const BundleMessage& x, const BundleMessage& y) {
              return x.created < y.created;
            });
  return messages;
}

RoutingResult run_routing(const ContactTrace& trace, Router& router,
                          const RoutingExperimentConfig& config) {
  const std::vector<BundleMessage> messages =
      generate_messages(config, trace);

  RateEstimator estimator(std::max<NodeId>(trace.node_count(), 2));
  Rng rng(config.seed ^ 0x5EEDULL);
  RoutingContext ctx;
  ctx.rng = &rng;

  AllPairsPaths paths;
  const Time phase_start = trace.start_time() + trace.duration() / 2.0;
  Time horizon = config.path_horizon;
  Time next_maintenance = phase_start;

  std::size_t mi = 0;
  for (const auto& contact : trace.events()) {
    // Inject messages due before this contact.
    while (mi < messages.size() && messages[mi].created <= contact.start) {
      ctx.now = messages[mi].created;
      router.submit(ctx, messages[mi]);
      ++mi;
    }
    estimator.record_contact(contact.a, contact.b, contact.start);
    if (contact.start < phase_start) continue;

    if (contact.start >= next_maintenance) {
      const ContactGraph graph = estimator.snapshot(contact.start, 2);
      if (horizon <= 0.0) {
        horizon = calibrate_horizon(graph, 0.3, minutes(1), days(90), 8,
                                    config.threads);
      }
      paths = AllPairsPaths(graph, horizon, config.max_hops, config.threads);
      ctx.paths = &paths;
      next_maintenance = contact.start + config.maintenance_interval;
    }

    ctx.now = contact.start;
    LinkBudget budget(static_cast<Bytes>(
        contact.duration * static_cast<double>(config.bandwidth_per_second)));
    router.on_contact(ctx, contact.a, contact.b, budget);
  }
  // Late messages created after the last contact still count as submitted.
  while (mi < messages.size()) {
    ctx.now = messages[mi].created;
    router.submit(ctx, messages[mi]);
    ++mi;
  }

  RoutingResult result;
  result.protocol = router.name();
  RunningStats delay;
  for (const auto& m : messages) {
    const Time at = router.delivered_at(m.id);
    if (at != kNever && at < m.expires) delay.add((at - m.created) / 3600.0);
  }
  result.delivery_ratio =
      messages.empty() ? 0.0
                       : static_cast<double>(delay.count()) /
                             static_cast<double>(messages.size());
  result.mean_delay_hours = delay.mean();
  result.transmissions_per_message =
      messages.empty() ? 0.0
                       : static_cast<double>(router.transmissions()) /
                             static_cast<double>(messages.size());
  result.copies_in_flight_end =
      static_cast<double>(router.copies_in_flight());
  return result;
}

}  // namespace dtn

// Mobility-model trace generation: random waypoint with home-point
// attraction.
//
// The paper's network model is contact-level (pairwise Poisson processes);
// the synthetic generator in synthetic.h samples that model directly. This
// module generates contacts from an actual *mobility* model instead: nodes
// move in a rectangular area following random waypoint, optionally biased
// towards a per-node home point, and a contact is recorded while two nodes
// are within communication range. Home-point attraction concentrates some
// nodes near the middle of the area, which produces the heterogeneous
// popularity (hub nodes) NCL selection relies on — emergently rather than
// by construction.
#pragma once

#include <vector>

#include "common/rng.h"
#include "trace/trace.h"

namespace dtn {

struct MobilityConfig {
  NodeId node_count = 40;
  Time duration = days(1);

  /// Simulation area in meters.
  double area_width = 1000.0;
  double area_height = 1000.0;

  /// Node speed drawn uniformly per leg, meters/second.
  double speed_min = 0.5;
  double speed_max = 2.0;

  /// Pause at each waypoint, uniform seconds.
  Time pause_min = 0.0;
  Time pause_max = 120.0;

  /// Two nodes are in contact while within this range (meters).
  double comm_range = 30.0;

  /// Position sampling interval for contact detection (seconds). Smaller
  /// is more precise and slower; contacts shorter than this can be missed.
  Time sample_interval = 10.0;

  /// With this probability a node's next waypoint is drawn near its home
  /// point (Gaussian with `home_sigma`) instead of uniformly — 0 disables
  /// homes and yields classic random waypoint.
  double home_attachment = 0.0;
  double home_sigma = 80.0;

  std::uint64_t seed = 1;
};

/// A node's position at a sampling instant (exposed for tests/visualizers).
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Deterministic mobility simulator. Generates the full contact trace; the
/// intermediate trajectory is also queryable for testing.
class MobilitySimulator {
 public:
  explicit MobilitySimulator(MobilityConfig config);

  const MobilityConfig& config() const { return config_; }

  /// Position of `node` at time `t` (t in [0, duration]).
  Position position(NodeId node, Time t) const;

  /// Home point of `node` (meaningful when home_attachment > 0).
  Position home(NodeId node) const;

  /// Extracts the contact trace by sampling all pairwise distances.
  ContactTrace generate(const std::string& name = "mobility") const;

 private:
  struct Leg {
    Time start = 0.0;   ///< movement begins (after the pause)
    Time arrive = 0.0;  ///< waypoint reached
    Position from;
    Position to;
  };

  void build_trajectory(NodeId node, Rng& rng);

  MobilityConfig config_;
  std::vector<Position> homes_;
  std::vector<std::vector<Leg>> legs_;  ///< per node, time-ordered
};

/// Convenience wrapper: build the simulator and generate in one call.
ContactTrace generate_mobility_trace(const MobilityConfig& config,
                                     const std::string& name = "mobility");

}  // namespace dtn

// Contact trace container and summary statistics (paper Table I).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "trace/contact_event.h"

namespace dtn {

/// An immutable-after-build, time-sorted sequence of contacts among
/// `node_count` nodes. This is the substrate every experiment runs on:
/// real traces load into it, synthetic generators produce it.
class ContactTrace {
 public:
  ContactTrace() = default;

  /// Takes ownership of events; sorts them by start time; validates node
  /// ids against node_count. Negative durations are rejected.
  ContactTrace(NodeId node_count, std::vector<ContactEvent> events,
               std::string name = "trace");

  NodeId node_count() const { return node_count_; }
  const std::string& name() const { return name_; }
  const std::vector<ContactEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Time of the first/last contact start (0 for an empty trace).
  Time start_time() const;
  Time end_time() const;
  Time duration() const { return end_time() - start_time(); }

  /// Returns the sub-trace with contacts starting in [from, to).
  /// Node count and name are preserved.
  ContactTrace slice(Time from, Time to) const;

 private:
  NodeId node_count_ = 0;
  std::vector<ContactEvent> events_;
  std::string name_;
};

/// The per-trace summary the paper reports in Table I.
struct TraceSummary {
  std::string name;
  NodeId devices = 0;
  std::size_t internal_contacts = 0;
  double duration_days = 0.0;
  /// Average contacts per node pair per day, over pairs that met at least
  /// once — the paper's "pairwise contact frequency".
  double pairwise_contact_frequency_per_day = 0.0;
  /// Fraction of node pairs that ever met.
  double pair_coverage = 0.0;
};

TraceSummary summarize(const ContactTrace& trace);

}  // namespace dtn

#include "trace/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dtn {
namespace {

void validate(const SyntheticTraceConfig& c) {
  if (c.node_count < 2) throw std::invalid_argument("need at least 2 nodes");
  if (c.duration <= 0.0) throw std::invalid_argument("duration must be positive");
  if (c.target_total_contacts <= 0.0) {
    throw std::invalid_argument("target_total_contacts must be positive");
  }
  if (c.popularity_shape <= 0.0) {
    throw std::invalid_argument("popularity_shape must be positive");
  }
  if (c.mean_contact_duration <= 0.0 || c.granularity < 0.0) {
    throw std::invalid_argument("contact duration parameters must be positive");
  }
  if (c.community_count < 0) throw std::invalid_argument("negative community count");
  if (c.intra_community_boost < 1.0) {
    throw std::invalid_argument("intra_community_boost must be >= 1");
  }
  if (!(c.pair_fraction > 0.0) || c.pair_fraction > 1.0) {
    throw std::invalid_argument("pair_fraction must be in (0, 1]");
  }
  if (c.burst_mean_contacts < 1.0 || c.burst_window <= 0.0) {
    throw std::invalid_argument("burst parameters invalid");
  }
  if (c.diurnal_amplitude < 0.0 || c.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("diurnal_amplitude must be in [0, 1)");
  }
}

int community_of(NodeId node, int communities) {
  return communities > 1 ? node % communities : 0;
}

}  // namespace

SyntheticTraceConfig SyntheticTraceConfig::with_duration(Time new_duration) const {
  SyntheticTraceConfig copy = *this;
  if (new_duration <= 0.0) throw std::invalid_argument("duration must be positive");
  copy.target_total_contacts = target_total_contacts * (new_duration / duration);
  copy.duration = new_duration;
  return copy;
}

SyntheticTraceConfig SyntheticTraceConfig::with_seed(std::uint64_t s) const {
  SyntheticTraceConfig copy = *this;
  copy.seed = s;
  return copy;
}

std::vector<double> popularity_weights(const SyntheticTraceConfig& config) {
  validate(config);
  // Weights must depend only on (seed, node_count, popularity_shape) so that
  // PairRates and generate_trace agree.
  Rng rng(config.seed);
  std::vector<double> weights(static_cast<std::size_t>(config.node_count));
  for (auto& w : weights) w = rng.pareto(1.0, config.popularity_shape);
  return weights;
}

PairRates::PairRates(const SyntheticTraceConfig& config) : n_(config.node_count) {
  validate(config);
  const std::vector<double> weights = popularity_weights(config);

  const std::size_t pair_count =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_ - 1) / 2;
  rates_.resize(pair_count);

  std::size_t index = 0;
  double product_sum = 0.0;
  for (NodeId i = 0; i < n_; ++i) {
    for (NodeId j = i + 1; j < n_; ++j, ++index) {
      double base = weights[static_cast<std::size_t>(i)] *
                    weights[static_cast<std::size_t>(j)];
      if (config.community_count > 1 &&
          community_of(i, config.community_count) ==
              community_of(j, config.community_count)) {
        base *= config.intra_community_boost;
      }
      rates_[index] = base;
      product_sum += base;
    }
  }
  assert(index == pair_count);

  // Sparsify: keep a pair with probability proportional to its popularity
  // product, targeting `pair_fraction` of all pairs in expectation. The
  // draw uses its own seed stream so PairRates and generate_trace agree.
  if (config.pair_fraction < 1.0) {
    Rng edge_rng(config.seed ^ 0xED6E5EEDFACE0FFULL);
    const double mean_product = product_sum / static_cast<double>(pair_count);
    for (auto& r : rates_) {
      const double keep =
          std::min(1.0, config.pair_fraction * r / mean_product);
      if (!edge_rng.bernoulli(keep)) r = 0.0;
    }
  }

  // Scale so the expected total contact count over `duration` matches the
  // target: sum(lambda_ij) * duration = target.
  double unscaled_sum = 0.0;
  for (double r : rates_) unscaled_sum += r;
  if (unscaled_sum <= 0.0) {
    throw std::invalid_argument("pair sparsification removed every pair");
  }
  const double scale =
      config.target_total_contacts / (unscaled_sum * config.duration);
  for (auto& r : rates_) r *= scale;
}

double PairRates::rate(NodeId i, NodeId j) const {
  assert(i != j && i >= 0 && j >= 0 && i < n_ && j < n_);
  if (i > j) std::swap(i, j);
  // Row-major upper triangle offset: rows 0..i-1 contribute (n-1-row) each.
  const std::size_t row = static_cast<std::size_t>(i);
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t offset = row * (2 * n - row - 1) / 2;
  return rates_[offset + static_cast<std::size_t>(j - i - 1)];
}

ContactTrace generate_trace(const SyntheticTraceConfig& config) {
  validate(config);
  const PairRates rates(config);

  // Contact arrival streams must be independent of the weight draw above,
  // hence a distinct seed stream.
  Rng rng(config.seed ^ 0xA5A5A5A5DEADBEEFULL);

  std::vector<ContactEvent> events;
  events.reserve(static_cast<std::size_t>(config.target_total_contacts * 1.1));

  const double burst_mean = config.burst_mean_contacts;
  const double diurnal = config.diurnal_amplitude;
  // Poisson thinning for the diurnal cycle: draw candidates at the peak
  // rate, keep each with the instantaneous relative intensity.
  auto diurnal_keep = [&](Time t) {
    if (diurnal <= 0.0) return true;
    const double intensity =
        1.0 + diurnal * std::sin(2.0 * 3.14159265358979323846 *
                                 (t - config.diurnal_phase) / 86400.0);
    return rng.bernoulli(intensity / (1.0 + diurnal));
  };
  for (NodeId i = 0; i < config.node_count; ++i) {
    for (NodeId j = i + 1; j < config.node_count; ++j) {
      const double lambda = rates.rate(i, j);
      if (lambda <= 0.0) continue;
      // Burst (session) arrivals carry `burst_mean` contacts on average,
      // so the burst rate is scaled down to keep the expected total. The
      // diurnal peak factor is compensated by the thinning above.
      const double burst_rate = lambda / burst_mean * (1.0 + diurnal);
      Time t = rng.exponential(burst_rate);
      while (t < config.duration) {
        if (!diurnal_keep(t)) {
          t += rng.exponential(burst_rate);
          continue;
        }
        std::size_t contacts_in_burst = 1;
        if (burst_mean > 1.0) {
          // Geometric with mean `burst_mean` on {1, 2, ...}.
          const double p = 1.0 / burst_mean;
          double u;
          do {
            u = rng.uniform();
          } while (u <= 0.0);
          contacts_in_burst = 1 + static_cast<std::size_t>(
                                      std::log(u) / std::log(1.0 - p));
        }
        for (std::size_t k = 0; k < contacts_in_burst; ++k) {
          ContactEvent e;
          e.start = k == 0 ? t : t + rng.uniform() * config.burst_window;
          if (e.start >= config.duration) continue;
          e.duration =
              std::max(config.granularity,
                       rng.exponential(1.0 / config.mean_contact_duration));
          e.a = i;
          e.b = j;
          events.push_back(e);
        }
        t += rng.exponential(burst_rate);
      }
    }
  }

  return ContactTrace(config.node_count, std::move(events), config.name);
}

SyntheticTraceConfig infocom05_preset() {
  SyntheticTraceConfig c;
  c.name = "Infocom05";
  c.node_count = 41;
  c.duration = days(3);
  c.target_total_contacts = 22459;
  c.granularity = 120.0;
  c.mean_contact_duration = 240.0;
  c.popularity_shape = 2.0;  // conference crowd: moderately skewed
  c.community_count = 0;
  c.pair_fraction = 0.9;  // a conference: nearly everyone meets
  c.seed = 0x1F05;
  return c;
}

SyntheticTraceConfig infocom06_preset() {
  SyntheticTraceConfig c;
  c.name = "Infocom06";
  c.node_count = 78;
  c.duration = days(4);
  c.target_total_contacts = 182951;
  c.granularity = 120.0;
  c.mean_contact_duration = 240.0;
  c.popularity_shape = 2.0;
  c.community_count = 0;
  c.pair_fraction = 0.9;
  c.seed = 0x1F06;
  return c;
}

SyntheticTraceConfig mit_reality_preset() {
  SyntheticTraceConfig c;
  c.name = "MITReality";
  c.node_count = 97;
  c.duration = days(246);
  c.target_total_contacts = 114046;
  c.granularity = 300.0;
  c.mean_contact_duration = 600.0;
  // Campus trace: strong hubs, community structure, and most pairs never
  // meeting at all over the whole study.
  c.popularity_shape = 1.5;
  c.community_count = 6;
  c.intra_community_boost = 8.0;
  c.pair_fraction = 0.3;
  c.burst_mean_contacts = 4.0;  // Bluetooth re-detections while co-located
  c.burst_window = 3600.0;
  c.seed = 0x317;
  return c;
}

SyntheticTraceConfig ucsd_preset() {
  SyntheticTraceConfig c;
  c.name = "UCSD";
  c.node_count = 275;
  c.duration = days(77);
  c.target_total_contacts = 123225;
  c.granularity = 20.0;
  c.mean_contact_duration = 900.0;  // AP association sessions are long
  c.popularity_shape = 1.5;
  c.community_count = 10;
  c.intra_community_boost = 8.0;
  c.pair_fraction = 0.15;  // large campus: few pairs ever share an AP
  c.burst_mean_contacts = 6.0;  // repeated co-association at the same AP
  c.burst_window = 7200.0;
  c.seed = 0x0C5D;
  return c;
}

std::vector<SyntheticTraceConfig> all_presets() {
  return {infocom05_preset(), infocom06_preset(), mit_reality_preset(),
          ucsd_preset()};
}

namespace {

void validate_scale(const ScaleSyntheticConfig& c) {
  if (c.node_count < 2) throw std::invalid_argument("need at least 2 nodes");
  if (c.community_count < 0) {
    throw std::invalid_argument("negative community count");
  }
  if (!(c.mean_degree > 0.0)) {
    throw std::invalid_argument("mean_degree must be positive");
  }
  if (!(c.intra_fraction >= 0.0) || c.intra_fraction > 1.0) {
    throw std::invalid_argument("intra_fraction must be in [0, 1]");
  }
  if (!(c.min_rate_per_day > 0.0) || c.max_rate_per_day < c.min_rate_per_day) {
    throw std::invalid_argument("invalid rate range");
  }
  if (c.duration <= 0.0 || c.mean_contact_duration <= 0.0) {
    throw std::invalid_argument("duration parameters must be positive");
  }
}

}  // namespace

std::vector<ScaleEdge> scale_edge_list(const ScaleSyntheticConfig& config) {
  validate_scale(config);
  const NodeId n = config.node_count;
  const int communities = config.community_count;
  const auto target = static_cast<std::size_t>(
      config.mean_degree * static_cast<double>(n) / 2.0);
  const double log_min = std::log(config.min_rate_per_day);
  const double log_max = std::log(config.max_rate_per_day);

  std::vector<ScaleEdge> edges;
  edges.reserve(target);
  Rng rng(config.seed);
  for (std::size_t e = 0; e < target; ++e) {
    const NodeId u = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    NodeId v;
    if (communities > 1 && rng.bernoulli(config.intra_fraction)) {
      // Members of community c are {c, c + C, c + 2C, ...}: pick one.
      const int c = community_of(u, communities);
      const NodeId members = (n - 1 - c) / communities + 1;
      v = static_cast<NodeId>(
          c + communities * rng.uniform_int(0, members - 1));
    } else {
      v = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    }
    // The rate draw happens even for rejected self-pairs so the stream
    // position (and thus every later edge) does not depend on the rejection.
    const double rate_per_day = std::exp(rng.uniform(log_min, log_max));
    if (u == v) continue;
    ScaleEdge edge;
    edge.u = std::min(u, v);
    edge.v = std::max(u, v);
    edge.rate = rate_per_day / 86400.0;
    edges.push_back(edge);
  }
  // Canonical order + dedup (first draw wins): the list is a set of
  // undirected edges, independent of sampling order.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const ScaleEdge& a, const ScaleEdge& b) {
                     if (a.u != b.u) return a.u < b.u;
                     return a.v < b.v;
                   });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const ScaleEdge& a, const ScaleEdge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());
  return edges;
}

ContactTrace generate_scale_trace(const ScaleSyntheticConfig& config) {
  const std::vector<ScaleEdge> edges = scale_edge_list(config);
  // Independent stream from the edge sampler, so adding trace emission
  // never perturbs the rate graph itself.
  Rng rng(derive_seed(config.seed, 1));
  std::vector<ContactEvent> events;
  events.reserve(static_cast<std::size_t>(
      static_cast<double>(edges.size()) *
      (config.max_rate_per_day / 86400.0) * config.duration * 0.5));
  for (const ScaleEdge& edge : edges) {
    Time t = rng.exponential(edge.rate);
    while (t < config.duration) {
      ContactEvent ev;
      ev.start = t;
      ev.duration = rng.exponential(1.0 / config.mean_contact_duration);
      ev.a = edge.u;
      ev.b = edge.v;
      events.push_back(ev);
      t += rng.exponential(edge.rate);
    }
  }
  return ContactTrace(config.node_count, std::move(events), config.name);
}

ScaleSyntheticConfig scale_preset(NodeId node_count) {
  if (node_count < 2) throw std::invalid_argument("need at least 2 nodes");
  ScaleSyntheticConfig c;
  c.name = "synth-scale-" + std::to_string(node_count);
  c.node_count = node_count;
  c.community_count = std::max<NodeId>(1, node_count / 500);
  c.mean_degree = 12.0;
  c.intra_fraction = 0.85;
  c.min_rate_per_day = 0.25;
  c.max_rate_per_day = 8.0;
  c.duration = days(3);
  c.mean_contact_duration = 240.0;
  c.seed = 0x5CA1E;
  return c;
}

}  // namespace dtn

#include "trace/trace.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

namespace dtn {

ContactTrace::ContactTrace(NodeId node_count, std::vector<ContactEvent> events,
                           std::string name)
    : node_count_(node_count), events_(std::move(events)), name_(std::move(name)) {
  if (node_count_ < 0) throw std::invalid_argument("negative node count");
  for (auto& e : events_) {
    if (e.a == e.b) throw std::invalid_argument("self-contact in trace");
    if (e.a > e.b) std::swap(e.a, e.b);
    if (e.a < 0 || e.b >= node_count_) {
      throw std::invalid_argument("contact references node outside [0, N)");
    }
    if (e.duration < 0.0) throw std::invalid_argument("negative contact duration");
  }
  std::sort(events_.begin(), events_.end(), ContactEventOrder{});
}

Time ContactTrace::start_time() const {
  return events_.empty() ? 0.0 : events_.front().start;
}

Time ContactTrace::end_time() const {
  if (events_.empty()) return 0.0;
  Time latest = events_.front().end();
  // Events are sorted by start, not end; the last-ending contact can be
  // anywhere, but in practice near the tail. Scan all for correctness.
  for (const auto& e : events_) latest = std::max(latest, e.end());
  return latest;
}

ContactTrace ContactTrace::slice(Time from, Time to) const {
  std::vector<ContactEvent> selected;
  for (const auto& e : events_) {
    if (e.start >= from && e.start < to) selected.push_back(e);
  }
  return ContactTrace(node_count_, std::move(selected), name_);
}

TraceSummary summarize(const ContactTrace& trace) {
  TraceSummary s;
  s.name = trace.name();
  s.devices = trace.node_count();
  s.internal_contacts = trace.size();
  s.duration_days = trace.duration() / 86400.0;

  std::set<std::pair<NodeId, NodeId>> pairs;
  for (const auto& e : trace.events()) pairs.insert({e.a, e.b});
  const double total_pairs =
      static_cast<double>(trace.node_count()) *
      static_cast<double>(trace.node_count() - 1) / 2.0;
  s.pair_coverage = total_pairs > 0 ? static_cast<double>(pairs.size()) / total_pairs : 0.0;

  if (!pairs.empty() && s.duration_days > 0.0) {
    s.pairwise_contact_frequency_per_day =
        static_cast<double>(trace.size()) /
        static_cast<double>(pairs.size()) / s.duration_days;
  }
  return s;
}

}  // namespace dtn

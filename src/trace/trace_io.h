// CSV persistence for contact traces.
//
// Format (one contact per line, header required):
//   start,duration,a,b
// Times are seconds (floating point); node ids are 0-based integers.
// Real traces (e.g. CRAWDAD exports) convert to this format trivially, so
// the whole evaluation pipeline runs unchanged on real data.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace dtn {

/// Writes the trace to a stream / file. Throws std::runtime_error on I/O
/// failure.
void write_trace_csv(const ContactTrace& trace, std::ostream& out);
void save_trace_csv(const ContactTrace& trace, const std::string& path);

/// Reads a trace. `node_count` of the result is max(node id) + 1 unless a
/// larger `min_node_count` is given. Throws std::runtime_error on malformed
/// input.
ContactTrace read_trace_csv(std::istream& in, std::string name = "trace",
                            NodeId min_node_count = 0);
ContactTrace load_trace_csv(const std::string& path,
                            NodeId min_node_count = 0);

}  // namespace dtn

// CSV persistence for contact traces.
//
// Format (one contact per line, header required):
//   start,duration,a,b
// Times are seconds (floating point); node ids are 0-based integers.
// Real traces (e.g. CRAWDAD exports) convert to this format trivially, so
// the whole evaluation pipeline runs unchanged on real data. Heterogeneous
// formats (ONE connectivity reports, iMote pairwise logs) and the compact
// binary cache live one layer up, in src/traceio/.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace dtn {

/// Writes the trace to a stream / file. Throws std::runtime_error on I/O
/// failure.
void write_trace_csv(const ContactTrace& trace, std::ostream& out);
void save_trace_csv(const ContactTrace& trace, const std::string& path);

struct CsvParseOptions {
  /// Strict mode additionally rejects trailing fields / garbage after the
  /// fourth column (tolerated otherwise for compatibility with exports that
  /// carry extra columns) and rows whose start time goes backwards —
  /// lenient parsing re-sorts, but a streaming consumer (the dtnd daemon
  /// feed) never sees the file through ContactTrace, so validation must
  /// catch disorder at the source. Used by `tracetool validate`.
  bool strict = false;
  /// Name used in "<source>:<line>: ..." parse errors; empty = the trace
  /// name (useful when the trace name is a basename but errors should show
  /// the full path).
  std::string source_name;
};

/// Reads a trace. `node_count` of the result is max(node id) + 1 unless a
/// larger `min_node_count` is given. Throws std::runtime_error on malformed
/// input; every parse error carries "<source>:<line>" context.
ContactTrace read_trace_csv(std::istream& in, std::string name = "trace",
                            NodeId min_node_count = 0,
                            const CsvParseOptions& options = {});
ContactTrace load_trace_csv(const std::string& path,
                            NodeId min_node_count = 0,
                            const CsvParseOptions& options = {});

}  // namespace dtn

// Synthetic contact-trace generation.
//
// The paper evaluates on four real traces (Table I). Those traces are not
// redistributable, so we generate synthetic equivalents from the paper's own
// network model (Sec. III-B): pairwise contacts form Poisson processes with
// stable rates. Heterogeneity of node popularity — the property Fig. 4
// validates and NCL selection depends on — is induced by drawing per-node
// popularity weights from a Pareto distribution and optionally overlaying a
// community structure (campus traces such as MIT Reality are strongly
// modular). A generated trace is calibrated to match a preset's device
// count, duration and total contact volume.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/trace.h"

namespace dtn {

/// Parameters of the synthetic generator. Aggregate with no invariant
/// beyond "validated at generation time".
struct SyntheticTraceConfig {
  std::string name = "synthetic";
  NodeId node_count = 50;
  Time duration = days(3);

  /// Total number of contacts to aim for over the whole trace; pair rates
  /// are scaled so the *expected* count equals this.
  double target_total_contacts = 20000;

  /// Pareto shape for node popularity weights; smaller values produce a
  /// heavier tail, i.e. fewer, stronger hubs. Typical: 1.5 – 3.
  double popularity_shape = 2.0;

  /// Mean contact duration in seconds (drawn exponentially, floored at
  /// `granularity`). Mirrors the detection granularity in Table I.
  Time mean_contact_duration = 240.0;
  Time granularity = 120.0;

  /// Contacts arrive in bursts (sessions): real devices detect each other
  /// repeatedly while co-located, so raw contact counts overstate the
  /// number of independent meeting opportunities. Burst arrivals are
  /// Poisson; each burst carries a geometric number of contacts with this
  /// mean, spread over `burst_window` seconds. 1.0 disables burstiness.
  double burst_mean_contacts = 1.0;
  Time burst_window = 3600.0;

  /// Diurnal activity cycle: burst arrivals are modulated by
  /// 1 + amplitude * sin(2*pi*(t - phase)/24h), realized by Poisson
  /// thinning, so the expected total contact count is unchanged.
  /// 0 disables the cycle (exact legacy output). Must be in [0, 1).
  double diurnal_amplitude = 0.0;
  Time diurnal_phase = 0.0;

  /// Number of communities; 0 or 1 disables community structure. Nodes are
  /// assigned round-robin; intra-community pair rates are multiplied by
  /// `intra_community_boost`.
  int community_count = 0;
  double intra_community_boost = 5.0;

  /// Expected fraction of node pairs that ever meet (1.0 = every pair has
  /// a contact process). Real traces are sparse: most pairs never meet, and
  /// the pairs that do are biased towards popular nodes. A pair is kept
  /// with probability min(1, pair_fraction * product / mean_product), where
  /// product is the (community-boosted) popularity product — so hubs keep
  /// nearly all their links while peripheral pairs are pruned.
  double pair_fraction = 1.0;

  std::uint64_t seed = 1;

  /// Returns a copy with a different duration, preserving contact *rates*
  /// (total contacts scale proportionally). Used by benches to run
  /// shortened but statistically identical experiments.
  SyntheticTraceConfig with_duration(Time new_duration) const;

  /// Returns a copy with a different seed (for repetitions).
  SyntheticTraceConfig with_seed(std::uint64_t s) const;
};

/// Generates a trace from the configuration. Deterministic in the seed.
/// Throws std::invalid_argument on nonsensical parameters.
ContactTrace generate_trace(const SyntheticTraceConfig& config);

/// Per-node popularity weights used by the most recent design discussion;
/// exposed so tests can verify the skew the generator induces.
std::vector<double> popularity_weights(const SyntheticTraceConfig& config);

/// Pairwise contact rates (lambda, per second) implied by the config, as a
/// flat row-major upper-triangular matrix helper. Mostly for tests and
/// validation; generation itself uses the same values.
class PairRates {
 public:
  explicit PairRates(const SyntheticTraceConfig& config);
  double rate(NodeId i, NodeId j) const;
  NodeId node_count() const { return n_; }

 private:
  NodeId n_;
  std::vector<double> rates_;  // upper triangle, row-major
};

/// Community-structured contact process for the 10⁵–10⁶-node scale tier
/// (DESIGN.md §14). The classic generator above enumerates all O(n²) node
/// pairs, which is unusable past ~10⁴ nodes; this one samples a target
/// number of *edges* directly — each edge picks a source uniformly, stays
/// inside the source's round-robin community with probability
/// `intra_fraction`, and draws a log-uniform meeting rate — so memory and
/// work are O(n + edges). Deterministic in the seed.
struct ScaleSyntheticConfig {
  std::string name = "synth-scale";
  NodeId node_count = 100000;
  /// Round-robin communities (node % community_count); <= 1 disables
  /// community structure.
  int community_count = 200;
  /// Average edges per node; edge target = node_count * mean_degree / 2.
  double mean_degree = 12.0;
  /// Probability a sampled edge stays within the source's community.
  double intra_fraction = 0.85;
  /// Per-edge meeting rates are log-uniform in [min, max] contacts/day.
  double min_rate_per_day = 0.25;
  double max_rate_per_day = 8.0;
  /// Trace-emission window and contact-duration mean (generate_scale_trace
  /// only; the rate graph itself is duration-free).
  Time duration = days(3);
  Time mean_contact_duration = 240.0;
  std::uint64_t seed = 1;
};

/// One sampled undirected edge of the scale process.
struct ScaleEdge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  double rate = 0.0;  ///< contacts per second
};

/// The deduplicated, (u, v)-sorted edge list of the process: the rate graph
/// in O(edges) memory, without materializing any n² structure. u < v.
std::vector<ScaleEdge> scale_edge_list(const ScaleSyntheticConfig& config);

/// Materializes contact events by running an independent Poisson process on
/// every sampled edge over `config.duration`. Deterministic in the seed.
ContactTrace generate_scale_trace(const ScaleSyntheticConfig& config);

/// Calibrated preset for a given node count: communities of ~500 nodes,
/// mean degree 12, rates spanning 0.25–8 contacts/day.
ScaleSyntheticConfig scale_preset(NodeId node_count);

/// Calibrated presets mirroring paper Table I.
SyntheticTraceConfig infocom05_preset();
SyntheticTraceConfig infocom06_preset();
SyntheticTraceConfig mit_reality_preset();
SyntheticTraceConfig ucsd_preset();

/// All four presets in Table I order.
std::vector<SyntheticTraceConfig> all_presets();

}  // namespace dtn

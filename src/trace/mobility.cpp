#include "trace/mobility.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dtn {
namespace {

void validate(const MobilityConfig& c) {
  if (c.node_count < 2) throw std::invalid_argument("need at least 2 nodes");
  if (!(c.duration > 0.0)) throw std::invalid_argument("duration must be > 0");
  if (!(c.area_width > 0.0) || !(c.area_height > 0.0)) {
    throw std::invalid_argument("area must be positive");
  }
  if (!(c.speed_min > 0.0) || c.speed_max < c.speed_min) {
    throw std::invalid_argument("invalid speed range");
  }
  if (c.pause_min < 0.0 || c.pause_max < c.pause_min) {
    throw std::invalid_argument("invalid pause range");
  }
  if (!(c.comm_range > 0.0)) throw std::invalid_argument("range must be > 0");
  if (!(c.sample_interval > 0.0)) {
    throw std::invalid_argument("sample interval must be > 0");
  }
  if (c.home_attachment < 0.0 || c.home_attachment > 1.0) {
    throw std::invalid_argument("home_attachment must be in [0,1]");
  }
  if (c.home_sigma < 0.0) throw std::invalid_argument("home_sigma must be >= 0");
}

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

MobilitySimulator::MobilitySimulator(MobilityConfig config)
    : config_(std::move(config)) {
  validate(config_);
  Rng master(config_.seed);
  homes_.resize(static_cast<std::size_t>(config_.node_count));
  legs_.resize(static_cast<std::size_t>(config_.node_count));
  for (NodeId node = 0; node < config_.node_count; ++node) {
    Rng node_rng = master.split();
    homes_[static_cast<std::size_t>(node)] = Position{
        node_rng.uniform(0.0, config_.area_width),
        node_rng.uniform(0.0, config_.area_height)};
    build_trajectory(node, node_rng);
  }
}

void MobilitySimulator::build_trajectory(NodeId node, Rng& rng) {
  auto& legs = legs_[static_cast<std::size_t>(node)];
  const Position home = homes_[static_cast<std::size_t>(node)];

  auto next_waypoint = [&]() {
    if (config_.home_attachment > 0.0 && rng.bernoulli(config_.home_attachment)) {
      const double x = home.x + rng.normal(0.0, config_.home_sigma);
      const double y = home.y + rng.normal(0.0, config_.home_sigma);
      return Position{std::clamp(x, 0.0, config_.area_width),
                      std::clamp(y, 0.0, config_.area_height)};
    }
    return Position{rng.uniform(0.0, config_.area_width),
                    rng.uniform(0.0, config_.area_height)};
  };

  Position current{rng.uniform(0.0, config_.area_width),
                   rng.uniform(0.0, config_.area_height)};
  Time t = 0.0;
  while (t < config_.duration) {
    const Time pause = rng.uniform(config_.pause_min, config_.pause_max);
    const Position target = next_waypoint();
    const double speed = rng.uniform(config_.speed_min, config_.speed_max);
    const double d = distance(current, target);
    Leg leg;
    leg.start = t + pause;
    leg.arrive = leg.start + (speed > 0.0 ? d / speed : 0.0);
    leg.from = current;
    leg.to = target;
    legs.push_back(leg);
    current = target;
    t = leg.arrive;
    if (legs.size() > 10'000'000) {
      throw std::runtime_error("mobility trajectory unreasonably long");
    }
  }
}

Position MobilitySimulator::position(NodeId node, Time t) const {
  const auto& legs = legs_.at(static_cast<std::size_t>(node));
  assert(!legs.empty());
  // Binary search for the leg whose [previous arrive, arrive] covers t.
  auto it = std::lower_bound(
      legs.begin(), legs.end(), t,
      [](const Leg& leg, Time when) { return leg.arrive < when; });
  if (it == legs.end()) return legs.back().to;
  const Leg& leg = *it;
  if (t <= leg.start) return leg.from;  // pausing at the previous waypoint
  const double span = leg.arrive - leg.start;
  const double fraction = span > 0.0 ? (t - leg.start) / span : 1.0;
  return Position{leg.from.x + (leg.to.x - leg.from.x) * fraction,
                  leg.from.y + (leg.to.y - leg.from.y) * fraction};
}

Position MobilitySimulator::home(NodeId node) const {
  return homes_.at(static_cast<std::size_t>(node));
}

ContactTrace MobilitySimulator::generate(const std::string& name) const {
  const NodeId n = config_.node_count;
  std::vector<ContactEvent> events;
  // contact_since[pair] >= 0 marks an ongoing contact's start time.
  std::vector<Time> contact_since(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1.0);
  auto slot = [&](NodeId i, NodeId j) -> Time& {
    return contact_since[static_cast<std::size_t>(i) *
                             static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(j)];
  };

  std::vector<Position> positions(static_cast<std::size_t>(n));
  for (Time t = 0.0; t <= config_.duration; t += config_.sample_interval) {
    for (NodeId i = 0; i < n; ++i) {
      positions[static_cast<std::size_t>(i)] = position(i, t);
    }
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        const bool in_range =
            distance(positions[static_cast<std::size_t>(i)],
                     positions[static_cast<std::size_t>(j)]) <=
            config_.comm_range;
        Time& since = slot(i, j);
        if (in_range && since < 0.0) {
          since = t;
        } else if (!in_range && since >= 0.0) {
          ContactEvent e;
          e.start = since;
          e.duration = std::max(t - since, config_.sample_interval);
          e.a = i;
          e.b = j;
          events.push_back(e);
          since = -1.0;
        }
      }
    }
  }
  // Close contacts still open at the end of the simulation.
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const Time since = slot(i, j);
      if (since >= 0.0) {
        ContactEvent e;
        e.start = since;
        e.duration = std::max(config_.duration - since, config_.sample_interval);
        e.a = i;
        e.b = j;
        events.push_back(e);
      }
    }
  }
  return ContactTrace(n, std::move(events), name);
}

ContactTrace generate_mobility_trace(const MobilityConfig& config,
                                     const std::string& name) {
  return MobilitySimulator(config).generate(name);
}

}  // namespace dtn

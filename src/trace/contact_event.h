// A single opportunistic contact between two mobile nodes.
#pragma once

#include "common/types.h"

namespace dtn {

/// One contact: nodes `a` and `b` are within communication range during
/// [start, start + duration). Contacts are symmetric (Sec. III-B of the
/// paper), so the pair is stored in canonical order a < b.
struct ContactEvent {
  Time start = 0.0;
  Time duration = 0.0;
  NodeId a = kNoNode;
  NodeId b = kNoNode;

  Time end() const { return start + duration; }

  friend bool operator==(const ContactEvent&, const ContactEvent&) = default;
};

/// Strict weak ordering by start time, tie-broken by (a, b) for determinism.
struct ContactEventOrder {
  bool operator()(const ContactEvent& x, const ContactEvent& y) const {
    if (x.start != y.start) return x.start < y.start;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

}  // namespace dtn

#include "trace/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dtn {

void write_trace_csv(const ContactTrace& trace, std::ostream& out) {
  out << "start,duration,a,b\n";
  out.precision(17);
  for (const auto& e : trace.events()) {
    out << e.start << ',' << e.duration << ',' << e.a << ',' << e.b << '\n';
  }
  if (!out) throw std::runtime_error("failed writing trace CSV");
}

void save_trace_csv(const ContactTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace_csv(trace, out);
}

ContactTrace read_trace_csv(std::istream& in, std::string name,
                            NodeId min_node_count) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("empty trace file");
  // Tolerate but do not require the canonical header.
  const bool header = line.rfind("start", 0) == 0;

  std::vector<ContactEvent> events;
  NodeId max_node = -1;
  auto parse_line = [&](const std::string& text, std::size_t line_no) {
    if (text.empty()) return;
    std::istringstream cells(text);
    ContactEvent e;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(cells >> e.start >> c1 >> e.duration >> c2 >> e.a >> c3 >> e.b) ||
        c1 != ',' || c2 != ',' || c3 != ',') {
      throw std::runtime_error("malformed trace CSV at line " +
                               std::to_string(line_no) + ": " + text);
    }
    max_node = std::max({max_node, e.a, e.b});
    events.push_back(e);
  };

  std::size_t line_no = 1;
  if (!header) parse_line(line, line_no);
  while (std::getline(in, line)) parse_line(line, ++line_no);

  const NodeId node_count = std::max(min_node_count, max_node + 1);
  return ContactTrace(node_count, std::move(events), std::move(name));
}

ContactTrace load_trace_csv(const std::string& path, NodeId min_node_count) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  // Name the trace after the file's basename.
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return read_trace_csv(in, std::move(name), min_node_count);
}

}  // namespace dtn

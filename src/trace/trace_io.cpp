#include "trace/trace_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/instrument.h"

namespace dtn {

void write_trace_csv(const ContactTrace& trace, std::ostream& out) {
  out << "start,duration,a,b\n";
  out.precision(17);
  for (const auto& e : trace.events()) {
    out << e.start << ',' << e.duration << ',' << e.a << ',' << e.b << '\n';
  }
  if (!out) throw std::runtime_error("failed writing trace CSV");
}

void save_trace_csv(const ContactTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace_csv(trace, out);
}

ContactTrace read_trace_csv(std::istream& in, std::string name,
                            NodeId min_node_count,
                            const CsvParseOptions& options) {
  const std::string& source = options.source_name.empty()
                                  ? name
                                  : options.source_name;
  // DTN_CHECK-style diagnostics: every rejected row names its exact source
  // location and the violated invariant, so a malformed export fails loudly
  // instead of silently skewing Table-1 statistics.
  auto fail = [&](std::size_t line_no, const std::string& why,
                  const std::string& text) -> void {
    throw std::runtime_error(source + ":" + std::to_string(line_no) +
                             ": trace CSV parse error: " + why +
                             (text.empty() ? "" : " in line '" + text + "'"));
  };

  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(source + ":1: trace CSV parse error: empty file");
  }
  // Tolerate but do not require the canonical header.
  const bool header = line.rfind("start", 0) == 0;

  std::vector<ContactEvent> events;
  NodeId max_node = -1;
  auto parse_line = [&](const std::string& text, std::size_t line_no) {
    if (text.empty()) return;
    DTN_COUNT_N(kTraceBytesRead, text.size() + 1);
    std::istringstream cells(text);
    ContactEvent e;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(cells >> e.start >> c1 >> e.duration >> c2 >> e.a >> c3 >> e.b) ||
        c1 != ',' || c2 != ',' || c3 != ',') {
      fail(line_no, "expected 'start,duration,a,b'", text);
    }
    if (options.strict) {
      char extra = 0;
      if (cells >> extra) {
        fail(line_no, "trailing characters after the fourth field", text);
      }
    }
    if (!std::isfinite(e.start) || !std::isfinite(e.duration)) {
      fail(line_no, "non-finite start or duration", text);
    }
    if (options.strict && !events.empty() && e.start < events.back().start) {
      fail(line_no, "contact start time goes backwards", text);
    }
    if (e.duration < 0.0) fail(line_no, "negative contact duration", text);
    if (e.a < 0 || e.b < 0) fail(line_no, "negative node id", text);
    if (e.a == e.b) fail(line_no, "self-contact (a == b)", text);
    max_node = std::max({max_node, e.a, e.b});
    events.push_back(e);
    DTN_COUNT(kTraceContactsDecoded);
  };

  std::size_t line_no = 1;
  if (!header) parse_line(line, line_no);
  while (std::getline(in, line)) parse_line(line, ++line_no);

  const NodeId node_count = std::max(min_node_count, max_node + 1);
  return ContactTrace(node_count, std::move(events), std::move(name));
}

ContactTrace load_trace_csv(const std::string& path, NodeId min_node_count,
                            const CsvParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  // Name the trace after the file's basename; errors carry the full path.
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  CsvParseOptions file_options = options;
  if (file_options.source_name.empty()) file_options.source_name = path;
  return read_trace_csv(in, std::move(name), min_node_count, file_options);
}

}  // namespace dtn

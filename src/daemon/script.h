// Deterministic ingest/query scripting for the daemon.
//
// dtnd (and the daemon tests) drive a Daemon from two inputs: a contact
// feed (any traceio::ContactCursor) and a query script. The script is the
// replayed clock — `advance <t>` pulls the feed up to stream time t, the
// query commands interrogate the daemon in between — so one script run is
// a pure function of (trace bytes, script bytes, config) and its output
// gates byte-for-byte across runs and thread counts.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "common/types.h"
#include "daemon/daemon.h"
#include "traceio/cursor.h"

namespace dtn::daemon {

/// One-slot-pushback adapter over a pull cursor: advance_until() must stop
/// *before* the first contact at or past the limit, but a cursor can only
/// tell us by handing that contact over — so it is parked here until the
/// clock catches up.
class ReplayFeed {
 public:
  explicit ReplayFeed(traceio::ContactCursor& cursor) : cursor_(&cursor) {}

  /// Ingests every remaining contact with start < limit; returns how many.
  std::size_t advance_until(Daemon& daemon, Time limit);

  /// Ingests everything left in the feed; returns how many.
  std::size_t drain(Daemon& daemon);

  bool exhausted() const { return done_ && !has_pending_; }

 private:
  bool peek(ContactEvent& out);

  traceio::ContactCursor* cursor_;
  ContactEvent pending_{};
  bool has_pending_ = false;
  bool done_ = false;
};

/// Executes `script` line by line against the daemon, writing one output
/// line per command to `out`. Commands ('#' starts a comment line):
///   advance <t>                  ingest feed contacts with start < t
///   drain                        ingest the rest of the feed
///   repair                       force a repair batch now
///   ncl <k>                      top-k central nodes
///   weight <src> <dst> <budget>  path weight at the given time budget
///   place <src> <k>              placement ranking for content at src
///   stats                        writer-side counters + current epoch
/// Every query line is stamped `@<epoch> lag=<staleness>`. Doubles print
/// with %.17g, so output is byte-identical across runs and thread counts.
/// Returns the number of commands executed; throws std::runtime_error on a
/// malformed line.
std::size_t run_script(Daemon& daemon, ReplayFeed& feed, std::istream& script,
                       std::ostream& out);

}  // namespace dtn::daemon

// Online per-pair meeting-rate estimation for the serving daemon.
//
// The batch pipeline estimates lambda_ij once, from the whole warm-up
// window (graph/contact_graph.h RateEstimator). A long-running daemon
// instead watches an unbounded contact stream and needs an estimate that
// (a) tracks drift — rates in a live deployment are only piecewise stable —
// and (b) is cheap to update per contact. Following "Optimal Forwarding in
// Opportunistic DTNs with Meeting Rate Estimations" (PAPERS.md), we
// estimate the *inter-contact time* of each pair with an exponentially
// weighted moving average and invert it: lambda_ij = 1 / EWMA(gap).
//
// Determinism contract: the estimate is a pure fold over the contact
// sequence — no clocks, no iteration over unordered containers — so the
// same stream always produces bit-identical rates, which is what lets the
// daemon's ingest -> query scripts gate byte-for-byte.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "trace/contact_event.h"
#include "trace/trace.h"

namespace dtn::daemon {

/// Per-pair summary exposed for inspection (tracetool stats --pairs) and
/// warm-start validation. mean_gap/ewma_gap are 0 until two contacts have
/// been seen (one contact yields no inter-contact sample).
struct PairRateSummary {
  NodeId a = kNoNode;  ///< canonical order a < b
  NodeId b = kNoNode;
  std::uint32_t count = 0;  ///< contacts observed
  double mean_gap = 0.0;    ///< arithmetic mean inter-contact time (s)
  double ewma_gap = 0.0;    ///< exponentially weighted inter-contact time (s)
  double rate = 0.0;        ///< 1 / ewma_gap; 0 below two contacts
};

/// Exponentially weighted inter-contact estimator over all node pairs.
///
/// Update rule per contact of pair p at time t:
///   gap  = t - last_contact(p)
///   ewma = gap                            on the first gap
///   ewma = alpha * gap + (1-alpha) * ewma afterwards
/// Contacts with gap == 0 (duplicate timestamps: one physical meeting
/// reported twice) bump the count but do not feed the EWMA — a zero gap
/// would drive the rate to +inf.
///
/// Storage is dense upper-triangular like the batch RateEstimator: O(n^2/2)
/// small structs, the right trade for the trace scales this tree targets
/// (the million-node tier is the sparse-metric ROADMAP item, not this one).
/// Decay/expiry (expiry > 0): without it, a pair that stops meeting keeps
/// its last EWMA rate forever — dead links stay attractive in the contact
/// graph indefinitely. With an expiry E, the estimate of a silent pair
/// degrades as the stream's watermark (latest contact time seen by the
/// estimator, across all pairs) moves past its last contact:
///   silence = watermark - last_contact(p)
///   silence >= E        -> rate = 0 (the pair has expired)
///   ewma < silence < E  -> the ongoing gap is already longer than the
///                          EWMA, and silence is a *lower bound* on it;
///                          blend it in provisionally:
///                          rate = 1 / (alpha*silence + (1-alpha)*ewma)
///   silence <= ewma     -> rate = 1 / ewma (no evidence of decay yet)
/// Still a pure fold over the contact stream — the watermark is stream
/// data, not a clock — so decayed rates remain bit-reproducible.
class EwmaRateEstimator {
 public:
  /// alpha in (0, 1]: weight of the newest gap. min_contacts (>= 2) is the
  /// observation floor below which rate() reports 0 — a single contact
  /// carries no inter-contact information. expiry (seconds) enables the
  /// silence decay above; 0 keeps the legacy persist-forever behavior.
  explicit EwmaRateEstimator(NodeId node_count, double alpha = 0.125,
                             std::uint32_t min_contacts = 2,
                             Time expiry = 0.0);

  NodeId node_count() const { return node_count_; }
  double alpha() const { return alpha_; }
  std::uint32_t min_contacts() const { return min_contacts_; }
  Time expiry() const { return expiry_; }
  /// Latest contact time ingested so far (0 before any contact).
  Time watermark() const { return watermark_; }

  /// Records one contact between i and j at time `when`. Contacts must
  /// arrive in non-decreasing time order (the cursor contract); i != j.
  /// Returns the flat pair index (stable identifier for dirty tracking).
  std::size_t record(NodeId i, NodeId j, Time when);

  /// Current rate estimate of the pair: 1 / ewma_gap once `min_contacts`
  /// contacts have been seen, else 0.
  double rate(NodeId i, NodeId j) const;
  double rate_by_index(std::size_t pair_index) const;

  std::uint32_t contact_count(NodeId i, NodeId j) const;

  /// Flat upper-triangular index of the pair (i != j, both in range).
  std::size_t pair_index(NodeId i, NodeId j) const;

  /// Inverse of pair_index (for reporting).
  void pair_nodes(std::size_t pair_index, NodeId& a, NodeId& b) const;

  /// Feeds every contact of `trace` (already time-sorted) through record():
  /// the daemon's warm start, and tracetool's offline inspection path.
  void warm_start(const ContactTrace& trace);

  /// Summaries of every pair with at least `min_count` contacts, in
  /// canonical (a, b) ascending order — deterministic, golden-testable.
  std::vector<PairRateSummary> summaries(std::uint32_t min_count = 1) const;

  /// Summary of one pair (count may be 0).
  PairRateSummary summary(NodeId i, NodeId j) const;

 private:
  struct Cell {
    std::uint32_t count = 0;
    Time last = 0.0;
    double gap_sum = 0.0;  ///< for mean_gap reporting
    double ewma = 0.0;
  };

  NodeId node_count_;
  double alpha_;
  std::uint32_t min_contacts_;
  Time expiry_;
  Time watermark_ = 0.0;
  std::vector<Cell> cells_;  ///< upper triangle, row-major
};

}  // namespace dtn::daemon

#include "daemon/rate_estimator.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"

namespace dtn::daemon {

EwmaRateEstimator::EwmaRateEstimator(NodeId node_count, double alpha,
                                     std::uint32_t min_contacts, Time expiry)
    : node_count_(node_count),
      alpha_(alpha),
      min_contacts_(min_contacts),
      expiry_(expiry) {
  if (node_count < 2) {
    throw std::invalid_argument("estimator needs at least 2 nodes");
  }
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1]");
  }
  if (min_contacts < 2) {
    throw std::invalid_argument("min_contacts must be >= 2");
  }
  if (expiry < 0.0) {
    throw std::invalid_argument("expiry must be >= 0 (0 = never)");
  }
  const std::size_t n = static_cast<std::size_t>(node_count);
  cells_.resize(n * (n - 1) / 2);
}

std::size_t EwmaRateEstimator::pair_index(NodeId i, NodeId j) const {
  DTN_CHECK(i != j, "self pair has no meeting rate");
  DTN_CHECK(i >= 0 && i < node_count_ && j >= 0 && j < node_count_,
            "pair node out of range");
  const std::size_t a = static_cast<std::size_t>(std::min(i, j));
  const std::size_t b = static_cast<std::size_t>(std::max(i, j));
  const std::size_t n = static_cast<std::size_t>(node_count_);
  // Row-major upper triangle: row a holds pairs (a, a+1) .. (a, n-1).
  return a * (n - 1) - a * (a + 1) / 2 + (b - 1);
}

void EwmaRateEstimator::pair_nodes(std::size_t pair_index, NodeId& a,
                                   NodeId& b) const {
  DTN_CHECK(pair_index < cells_.size(), "pair index out of range");
  const std::size_t n = static_cast<std::size_t>(node_count_);
  std::size_t row = 0;
  std::size_t row_start = 0;
  while (row_start + (n - 1 - row) <= pair_index) {
    row_start += n - 1 - row;
    ++row;
  }
  a = static_cast<NodeId>(row);
  b = static_cast<NodeId>(pair_index - row_start + row + 1);
}

std::size_t EwmaRateEstimator::record(NodeId i, NodeId j, Time when) {
  const std::size_t index = pair_index(i, j);
  Cell& cell = cells_[index];
  if (cell.count > 0) {
    const Time gap = when - cell.last;
    // The cursor contract guarantees global time order, which implies
    // per-pair order; a negative gap means the feed is corrupt.
    DTN_CHECK_GE(gap, 0.0);
    if (gap > 0.0) {
      cell.gap_sum += gap;
      // First positive gap seeds the EWMA; afterwards the standard
      // exponential blend. ewma == 0 only before any positive gap.
      cell.ewma = cell.ewma > 0.0
                      ? alpha_ * gap + (1.0 - alpha_) * cell.ewma
                      : gap;
    }
  }
  cell.last = when;
  ++cell.count;
  watermark_ = std::max(watermark_, when);
  return index;
}

double EwmaRateEstimator::rate_by_index(std::size_t pair_index) const {
  DTN_CHECK(pair_index < cells_.size(), "pair index out of range");
  const Cell& cell = cells_[pair_index];
  if (cell.count < min_contacts_ || cell.ewma <= 0.0) return 0.0;
  double ewma = cell.ewma;
  if (expiry_ > 0.0) {
    // Silence decay (header comment): the time since the pair's last
    // contact, measured against the stream watermark, is a lower bound on
    // the gap currently in progress.
    const Time silence = watermark_ - cell.last;
    if (silence >= expiry_) return 0.0;
    if (silence > ewma) ewma = alpha_ * silence + (1.0 - alpha_) * ewma;
  }
  const double rate = 1.0 / ewma;
  DTN_CHECK_FINITE(rate);
  return rate;
}

double EwmaRateEstimator::rate(NodeId i, NodeId j) const {
  return rate_by_index(pair_index(i, j));
}

std::uint32_t EwmaRateEstimator::contact_count(NodeId i, NodeId j) const {
  return cells_[pair_index(i, j)].count;
}

void EwmaRateEstimator::warm_start(const ContactTrace& trace) {
  for (const ContactEvent& event : trace.events()) {
    record(event.a, event.b, event.start);
  }
}

PairRateSummary EwmaRateEstimator::summary(NodeId i, NodeId j) const {
  const Cell& cell = cells_[pair_index(i, j)];
  PairRateSummary out;
  out.a = std::min(i, j);
  out.b = std::max(i, j);
  out.count = cell.count;
  // count - 1 inter-contact samples, minus any zero gaps which feed
  // neither the mean nor the EWMA; gap_sum accumulates only positive
  // gaps, so the mean uses the same sample set as the EWMA.
  if (cell.count >= 2 && cell.gap_sum > 0.0 && cell.ewma > 0.0) {
    // Positive-gap sample count is not stored; the mean over the stored
    // sum with (count - 1) slightly underestimates when duplicates exist,
    // which is exactly the "duplicates are one meeting" reading we want.
    out.mean_gap = cell.gap_sum / static_cast<double>(cell.count - 1);
    out.ewma_gap = cell.ewma;
  }
  out.rate = rate_by_index(pair_index(i, j));
  return out;
}

std::vector<PairRateSummary> EwmaRateEstimator::summaries(
    std::uint32_t min_count) const {
  std::vector<PairRateSummary> out;
  for (NodeId a = 0; a < node_count_; ++a) {
    for (NodeId b = a + 1; b < node_count_; ++b) {
      const Cell& cell = cells_[pair_index(a, b)];
      if (cell.count < min_count || cell.count == 0) continue;
      out.push_back(summary(a, b));
    }
  }
  return out;
}

}  // namespace dtn::daemon

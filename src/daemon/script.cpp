#include "daemon/script.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/check.h"

namespace dtn::daemon {
namespace {

/// %.17g: shortest round-trippable decimal form, identical everywhere the
/// same double is produced — the byte-determinism workhorse of this tree's
/// reports.
std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

std::string stamp(const QueryInfo& info) {
  return "@" + std::to_string(info.epoch) + " lag=" + fmt(info.staleness);
}

[[noreturn]] void malformed(std::size_t line_no, const std::string& line) {
  throw std::runtime_error("script line " + std::to_string(line_no) +
                           ": malformed command: " + line);
}

}  // namespace

bool ReplayFeed::peek(ContactEvent& out) {
  if (!has_pending_) {
    if (done_ || !cursor_->next(pending_)) {
      done_ = true;
      return false;
    }
    has_pending_ = true;
  }
  out = pending_;
  return true;
}

std::size_t ReplayFeed::advance_until(Daemon& daemon, Time limit) {
  std::size_t ingested = 0;
  ContactEvent event;
  while (peek(event) && event.start < limit) {
    daemon.ingest(event);
    has_pending_ = false;
    ++ingested;
  }
  return ingested;
}

std::size_t ReplayFeed::drain(Daemon& daemon) {
  return advance_until(daemon, kNever);
}

std::size_t run_script(Daemon& daemon, ReplayFeed& feed, std::istream& script,
                       std::ostream& out) {
  std::size_t executed = 0;
  std::size_t line_no = 0;
  std::string line;
  while (std::getline(script, line)) {
    ++line_no;
    // Strip trailing CR so DOS-edited scripts behave identically.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream words(line);
    std::string cmd;
    if (!(words >> cmd) || cmd[0] == '#') continue;

    if (cmd == "advance") {
      Time limit = 0.0;
      if (!(words >> limit)) malformed(line_no, line);
      const std::size_t n = feed.advance_until(daemon, limit);
      out << "advance " << fmt(limit) << " -> ingested " << n << " t="
          << fmt(daemon.watermark()) << "\n";
    } else if (cmd == "drain") {
      const std::size_t n = feed.drain(daemon);
      out << "drain -> ingested " << n << "\n";
    } else if (cmd == "repair") {
      daemon.repair_now();
      out << "repair -> epoch " << daemon.snapshot()->epoch << "\n";
    } else if (cmd == "ncl") {
      int k = 0;
      if (!(words >> k) || k < 1) malformed(line_no, line);
      const NclAnswer answer = daemon.ncl_set(k);
      out << "ncl " << k << " " << stamp(answer.info) << " :";
      for (const NodeId node : answer.central) out << " " << node;
      out << "\n";
    } else if (cmd == "weight") {
      NodeId src = kNoNode;
      NodeId dst = kNoNode;
      Time budget = 0.0;
      if (!(words >> src >> dst >> budget)) malformed(line_no, line);
      const WeightAnswer answer = daemon.path_weight(src, dst, budget);
      out << "weight " << src << " " << dst << " " << fmt(budget) << " "
          << stamp(answer.info) << " : " << fmt(answer.weight) << "\n";
    } else if (cmd == "place") {
      NodeId src = kNoNode;
      int k = 0;
      if (!(words >> src >> k) || k < 1) malformed(line_no, line);
      const PlacementAnswer answer = daemon.placement_for(src, k);
      out << "place " << src << " " << k << " " << stamp(answer.info) << " :";
      for (std::size_t i = 0; i < answer.ranked.size(); ++i) {
        out << " " << answer.ranked[i] << ":" << fmt(answer.weights[i]);
      }
      out << "\n";
    } else if (cmd == "stats") {
      const Daemon::Stats& s = daemon.stats();
      out << "stats : contacts=" << s.contacts_ingested
          << " batches=" << s.repair_batches << " edges=" << s.edge_updates
          << " roots=" << s.roots_repaired << " full=" << s.full_rebuilds
          << " audits=" << s.audit_rebuilds
          << " epochs=" << s.snapshots_published << "\n";
    } else {
      malformed(line_no, line);
    }
    ++executed;
  }
  return executed;
}

}  // namespace dtn::daemon

// dtnd core: a long-running serving daemon over a live contact stream.
//
// Everything else in this tree is batch: load a trace, build all-pairs
// Eq. 3 tables once, run, exit. The Daemon has a *lifetime*: it ingests
// contacts one at a time (traceio::ContactCursor is the natural feed),
// maintains per-pair meeting-rate estimates online (EwmaRateEstimator),
// and keeps the path tables continuously correct through **incremental
// repair** — when an edge's estimated rate drifts past a configurable
// relative threshold, only the roots whose trees that edge can affect are
// re-run through single-root Dijkstra, instead of rebuilding all pairs.
//
// Repair soundness (DESIGN.md §13 has the full argument): a path-weight
// candidate is strictly increasing in every chain rate, so
//   * a rate DECREASE can only change tables whose tree uses the edge —
//     every candidate through the edge got strictly worse, so relaxations
//     that lost before still lose. The reverse EdgeRootsIndex enumerates
//     exactly those roots.
//   * a rate INCREASE (or a brand-new edge) can additionally pull the edge
//     into a tree, but only by one of its endpoints adopting it as the
//     final hop — and the first adoption relaxes from a chain that avoids
//     the edge, i.e. the endpoint's unchanged current chain. Re-evaluating
//     that one-step candidate against the endpoint's current weight is
//     therefore a sound stale-root detector (>= flags conservatively).
// Repaired roots re-run the exact kFast single-root construction a full
// rebuild would run, so repaired tables are bit-identical to a rebuild;
// with `audit` on, every repair batch is DTN_CHECKed for settled-weight
// equality against a fresh PathEngine::kReference all-pairs build.
//
// Concurrency: ONE writer thread calls warm_start/ingest/repair_now; any
// number of reader threads call snapshot()/ncl_set()/path_weight()/
// placement_for() concurrently. Readers never block the update path —
// queries run against an immutable Snapshot behind a shared_ptr that the
// writer swaps under a short mutex (double-buffer publish; the mutex
// guards only the pointer copy, never any computation). Every answer
// carries the epoch it was computed at plus its staleness: the trace-time
// lag between the latest ingested contact and the last drift reconcile.
// The dtnlint rule `daemon-snapshot-guard` statically enforces that
// `shared_`-prefixed daemon state is only touched under a guard or through
// atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "daemon/edge_index.h"
#include "daemon/rate_estimator.h"
#include "graph/all_pairs.h"
#include "graph/contact_graph.h"
#include "trace/contact_event.h"
#include "trace/trace.h"

namespace dtn::daemon {

struct DaemonConfig {
  /// Path-weight horizon T (Eq. 2/3) the tables are built at.
  Time horizon = hours(1.0);
  int max_hops = 8;

  /// EWMA inter-contact estimator knobs (rate_estimator.h).
  double ewma_alpha = 0.125;
  std::uint32_t min_contacts = 2;

  /// Estimator expiry (seconds of stream time): pairs silent for longer
  /// than this decay towards — and at the expiry, to — rate 0, and their
  /// graph edges are removed at the next repair batch. 0 keeps the legacy
  /// persist-forever estimates (bit-identical to pre-expiry builds).
  Time rate_expiry = 0.0;

  /// Relative rate drift |est - current| / current that marks an edge
  /// stale. Smaller = tighter tables, more repair work.
  double drift_threshold = 0.2;

  /// Trace-time batch boundary: drifted edges are reconciled (and a new
  /// snapshot published if anything changed) every `repair_interval`
  /// seconds of stream time.
  Time repair_interval = hours(1.0);

  /// Repair parallelism (0 = hardware, 1 = serial). Repaired tables are
  /// written into per-root slots, so results are bit-identical for every
  /// value — the daemon_test determinism suite pins this.
  int threads = 1;

  /// Audit mode: after every repair batch, build a fresh
  /// PathEngine::kReference all-pairs table set and DTN_CHECK settled-
  /// weight equality plus NCL-set equality (at audit_ncl_k).
  bool audit = false;
  int audit_ncl_k = 5;
};

/// Immutable published state. Readers hold it via shared_ptr; the writer
/// never mutates a published snapshot.
struct Snapshot {
  std::uint64_t epoch = 0;       ///< 0 = empty pre-warm-start snapshot
  Time published_at = 0.0;       ///< stream time of the publishing batch
  ContactGraph graph;            ///< thresholded working graph
  std::vector<PathTable> tables; ///< one per root; empty at epoch 0
  std::vector<double> metric;    ///< Eq. 3 NCL metric per node

  bool ready() const { return !tables.empty(); }
};

/// Epoch + staleness stamp attached to every answer.
struct QueryInfo {
  std::uint64_t epoch = 0;
  /// Trace-time lag between the newest ingested contact and the last
  /// drift reconcile: how much stream the answer has not seen.
  Time staleness = 0.0;
};

struct NclAnswer {
  QueryInfo info;
  std::vector<NodeId> central;  ///< metric-descending, id tie-break
};

struct WeightAnswer {
  QueryInfo info;
  double weight = 0.0;  ///< opportunistic path weight at the query budget
};

struct PlacementAnswer {
  QueryInfo info;
  /// Caching locations for content originating at `source`: the current
  /// NCL set ranked by path weight from the source (best first).
  std::vector<NodeId> ranked;
  std::vector<double> weights;  ///< parallel to `ranked`
};

class Daemon {
 public:
  Daemon(NodeId node_count, DaemonConfig config);

  const DaemonConfig& config() const { return config_; }
  NodeId node_count() const { return estimator_.node_count(); }

  // ---- writer API (single ingest thread) -------------------------------

  /// Batch warm start: folds the whole trace into the estimator, builds
  /// the initial graph and full all-pairs tables, publishes epoch 1.
  void warm_start(const ContactTrace& trace);

  /// Feeds one contact. Contacts must arrive in non-decreasing start
  /// order; crossing a repair_interval boundary triggers a repair batch
  /// before the event is folded in.
  void ingest(const ContactEvent& event);

  /// Forces a repair batch at the current watermark.
  void repair_now();

  /// Stream time of the newest ingested contact (writer-thread accessor;
  /// readers stamp answers through QueryInfo instead).
  Time watermark() const { return watermark_; }

  /// Writer-side counters for reporting (not thread-safe to read while
  /// ingesting from another thread; the query path never touches them).
  struct Stats {
    std::uint64_t contacts_ingested = 0;
    std::uint64_t repair_batches = 0;
    std::uint64_t edge_updates = 0;
    std::uint64_t roots_repaired = 0;
    std::uint64_t full_rebuilds = 0;   ///< warm start + first-build batches
    std::uint64_t audit_rebuilds = 0;
    std::uint64_t snapshots_published = 0;
  };
  const Stats& stats() const { return stats_; }

  // ---- reader API (any thread) -----------------------------------------

  /// Current published snapshot (never null; epoch 0 before warm start).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Top-k central nodes by the Eq. 3 metric of the current snapshot.
  NclAnswer ncl_set(int k) const;

  /// Opportunistic path weight src -> dst re-evaluated at `budget`
  /// (AllPairsPaths::weight_at semantics). 0 when unreachable or before
  /// the first publish.
  WeightAnswer path_weight(NodeId src, NodeId dst, Time budget) const;

  /// Cache placement for content originating at `source`: the top-k NCL
  /// set ranked by path weight from the source.
  PlacementAnswer placement_for(NodeId source, int k) const;

 private:
  struct EdgeChange {
    NodeId u = kNoNode;
    NodeId v = kNoNode;
    double old_rate = 0.0;
    double new_rate = 0.0;
  };

  void publish(std::shared_ptr<const Snapshot> next);
  QueryInfo query_info(const Snapshot& snap) const;

  /// Drift scan -> affected roots -> single-root re-runs -> publish.
  void repair(Time batch_time);
  std::vector<EdgeChange> collect_drifted_edges();
  std::vector<NodeId> affected_roots(const std::vector<EdgeChange>& changes);
  void full_build(Time batch_time);
  void audit_against_reference();
  double metric_of_root(NodeId root) const;

  DaemonConfig config_;
  EwmaRateEstimator estimator_;

  // Writer-owned master state; copied into a Snapshot at publish time.
  ContactGraph graph_;
  std::vector<PathTable> tables_;
  std::vector<double> metric_;
  EdgeRootsIndex index_;

  std::vector<std::uint8_t> dirty_flags_;   ///< per pair index
  std::vector<std::size_t> dirty_pairs_;    ///< insertion order; sorted at scan
  Time watermark_ = 0.0;                    ///< newest ingested start time
  Time batch_deadline_ = kNever;            ///< next repair boundary
  bool saw_contact_ = false;
  std::uint64_t epoch_ = 0;
  Stats stats_;

  // Reader-visible shared state: the published snapshot pointer under a
  // short mutex, and two atomic stream clocks for staleness stamping.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> shared_snapshot_;
  std::atomic<Time> shared_ingest_clock_{0.0};
  std::atomic<Time> shared_scan_clock_{0.0};
};

}  // namespace dtn::daemon

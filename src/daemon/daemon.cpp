#include "daemon/daemon.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/instrument.h"
#include "common/parallel.h"
#include "graph/hypoexp.h"

namespace dtn::daemon {
namespace {

/// Query-path scratch: queries run on arbitrary reader threads, so each
/// thread keeps its own workspace (capacity only, never results).
PathWorkspace& query_workspace() {
  static thread_local PathWorkspace ws;
  return ws;
}

/// Node order by metric descending, id ascending on ties — the exact
/// select_ncls tie-break, applied to a stored metric vector.
std::vector<NodeId> metric_order(const std::vector<double>& metric) {
  std::vector<NodeId> order(metric.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double ma = metric[static_cast<std::size_t>(a)];
    const double mb = metric[static_cast<std::size_t>(b)];
    if (ma != mb) return ma > mb;
    return a < b;
  });
  return order;
}

std::vector<NodeId> top_k(const std::vector<double>& metric, int k) {
  std::vector<NodeId> order = metric_order(metric);
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k), order.size());
  order.resize(take);
  return order;
}

}  // namespace

Daemon::Daemon(NodeId node_count, DaemonConfig config)
    : config_(config),
      estimator_(node_count, config.ewma_alpha, config.min_contacts,
                 config.rate_expiry),
      graph_(node_count) {
  if (!(config.horizon > 0.0)) {
    throw std::invalid_argument("horizon must be > 0");
  }
  if (config.max_hops < 1) {
    throw std::invalid_argument("max_hops must be >= 1");
  }
  if (!(config.drift_threshold > 0.0)) {
    throw std::invalid_argument("drift_threshold must be > 0");
  }
  if (!(config.repair_interval > 0.0)) {
    throw std::invalid_argument("repair_interval must be > 0");
  }
  if (config.threads < 0) {
    throw std::invalid_argument("threads must be >= 0");
  }
  const std::size_t n = static_cast<std::size_t>(node_count);
  dirty_flags_.assign(n * (n - 1) / 2, 0);
  // Epoch-0 snapshot: queries are answerable (as "nothing known yet")
  // from the first instant of the daemon's life.
  auto initial = std::make_shared<Snapshot>();
  initial->graph = graph_;
  publish(std::move(initial));
}

// ---- shared-state accessors (the only places shared_ members appear) ----

std::shared_ptr<const Snapshot> Daemon::snapshot() const {
  const std::lock_guard<std::mutex> guard(snapshot_mu_);
  return shared_snapshot_;
}

void Daemon::publish(std::shared_ptr<const Snapshot> next) {
  const std::lock_guard<std::mutex> guard(snapshot_mu_);
  shared_snapshot_ = std::move(next);
}

QueryInfo Daemon::query_info(const Snapshot& snap) const {
  QueryInfo info;
  info.epoch = snap.epoch;
  const Time ingested = shared_ingest_clock_.load(std::memory_order_acquire);
  const Time scanned = shared_scan_clock_.load(std::memory_order_acquire);
  info.staleness = std::max(0.0, ingested - scanned);
  return info;
}

// ---- writer path -------------------------------------------------------

void Daemon::warm_start(const ContactTrace& trace) {
  estimator_.warm_start(trace);
  stats_.contacts_ingested += trace.events().size();
  DTN_COUNT_N(kDaemonContactsIngested, trace.events().size());
  if (!trace.events().empty()) {
    const Time end = trace.events().back().start;
    DTN_CHECK(!saw_contact_ || end >= watermark_,
              "warm start behind the live watermark");
    watermark_ = end;
    saw_contact_ = true;
    batch_deadline_ = watermark_ + config_.repair_interval;
    shared_ingest_clock_.store(watermark_, std::memory_order_release);
  }
  full_build(watermark_);
}

void Daemon::ingest(const ContactEvent& event) {
  DTN_CHECK(!saw_contact_ || event.start >= watermark_,
            "contacts must arrive in non-decreasing start order");
  if (!saw_contact_) {
    batch_deadline_ = event.start + config_.repair_interval;
    saw_contact_ = true;
  } else if (event.start >= batch_deadline_) {
    // Reconcile the interval that just closed before folding the new
    // contact in, so a batch covers exactly [deadline - interval, deadline).
    repair(watermark_);
    batch_deadline_ = event.start + config_.repair_interval;
  }
  const std::size_t pair = estimator_.record(event.a, event.b, event.start);
  if (!dirty_flags_[pair]) {
    dirty_flags_[pair] = 1;
    dirty_pairs_.push_back(pair);
  }
  watermark_ = event.start;
  shared_ingest_clock_.store(watermark_, std::memory_order_release);
  ++stats_.contacts_ingested;
  DTN_COUNT(kDaemonContactsIngested);
}

void Daemon::repair_now() { repair(watermark_); }

std::vector<Daemon::EdgeChange> Daemon::collect_drifted_edges() {
  std::vector<EdgeChange> changes;
  // Canonical ascending pair order: the batch's edge-update sequence (and
  // therefore everything downstream) is independent of contact arrival
  // interleaving within the interval.
  std::sort(dirty_pairs_.begin(), dirty_pairs_.end());
  for (const std::size_t pair : dirty_pairs_) {
    dirty_flags_[pair] = 0;
    const double est = estimator_.rate_by_index(pair);
    EdgeChange change;
    estimator_.pair_nodes(pair, change.u, change.v);
    change.old_rate = graph_.rate(change.u, change.v);
    change.new_rate = est;
    if (est <= 0.0) {
      // Below the observation floor (no edge yet) — or, with expiry on, an
      // edge whose estimate just expired: the latter must become a removal.
      if (change.old_rate <= 0.0) continue;
      changes.push_back(change);
      continue;
    }
    if (change.old_rate > 0.0) {
      const double rel = std::abs(est - change.old_rate) / change.old_rate;
      if (rel <= config_.drift_threshold) continue;  // within tolerance
    }
    changes.push_back(change);
  }
  dirty_pairs_.clear();

  if (estimator_.expiry() > 0.0) {
    // Expired pairs usually stop producing contacts, so they never turn
    // dirty: sweep the graph's existing edges for estimates that decayed to
    // 0 behind our back. Candidates are gathered per edge and then sorted
    // into canonical pair order, keeping the change list independent of
    // adjacency-list ordering.
    std::vector<std::size_t> expired;
    const NodeId n = graph_.node_count();
    for (NodeId a = 0; a < n; ++a) {
      for (const auto& nb : graph_.neighbors(a)) {
        if (nb.node <= a) continue;  // visit each undirected edge once
        if (estimator_.rate(a, nb.node) > 0.0) continue;
        expired.push_back(estimator_.pair_index(a, nb.node));
      }
    }
    std::sort(expired.begin(), expired.end());
    // The dirty loop above may already have emitted a removal for a pair
    // that was both dirty and expired; skip those to keep changes unique.
    for (const std::size_t pair : expired) {
      EdgeChange change;
      estimator_.pair_nodes(pair, change.u, change.v);
      const bool already =
          std::any_of(changes.begin(), changes.end(), [&](const EdgeChange& c) {
            return c.u == change.u && c.v == change.v;
          });
      if (already) continue;
      change.old_rate = graph_.rate(change.u, change.v);
      change.new_rate = 0.0;
      changes.push_back(change);
    }
  }
  return changes;
}

std::vector<NodeId> Daemon::affected_roots(
    const std::vector<EdgeChange>& changes) {
  const NodeId n = graph_.node_count();
  std::vector<std::uint8_t> flagged(static_cast<std::size_t>(n), 0);
  PathWorkspace ws;

  // One-step endpoint test against root r's CURRENT table: can the edge
  // (from -> to) at new_rate enter r's tree? The first adoption of a
  // changed edge extends a chain that avoids it — i.e. the unchanged
  // current chain of `from` — so evaluating that single candidate against
  // `to`'s current settled weight is a sound detector. >= flags ties
  // conservatively (flagging extra roots only costs work, never
  // correctness: a repaired root re-runs the full construction).
  const auto adoption_possible = [&](const PathTable& table, NodeId from,
                                     NodeId to, double new_rate) {
    if (to == table.root()) return false;  // the root never adopts a parent
    const PathTable::Entry& ef = table.entry(from);
    if (from != table.root() && ef.weight <= 0.0) return false;  // unreachable
    if (ef.hops + 1 > config_.max_hops) return false;
    table.rates_to_root(from, ws.chain);
    ws.chain.push_back(new_rate);
    const double candidate =
        hypoexp_cdf(ws.chain, config_.horizon, ws.hypoexp);
    DTN_CHECK_PROB(candidate);
    return candidate >= table.entry(to).weight;
  };

  for (const EdgeChange& change : changes) {
    if (const std::vector<NodeId>* roots =
            index_.roots_using(change.u, change.v)) {
      for (const NodeId r : *roots) {
        flagged[static_cast<std::size_t>(r)] = 1;
      }
    }
    if (change.new_rate > change.old_rate) {
      for (NodeId r = 0; r < n; ++r) {
        if (flagged[static_cast<std::size_t>(r)]) continue;
        const PathTable& table = tables_[static_cast<std::size_t>(r)];
        if (adoption_possible(table, change.u, change.v, change.new_rate) ||
            adoption_possible(table, change.v, change.u, change.new_rate)) {
          flagged[static_cast<std::size_t>(r)] = 1;
        }
      }
    }
    // Rate decreases need no extra scan: every candidate through the edge
    // got strictly worse, so only trees already using it (flagged via the
    // reverse index above) can change.
  }

  std::vector<NodeId> roots;
  for (NodeId r = 0; r < n; ++r) {
    if (flagged[static_cast<std::size_t>(r)]) roots.push_back(r);
  }
  return roots;
}

void Daemon::repair(Time batch_time) {
  DTN_SCOPED_TIMER(kDaemonRepair);
  ++stats_.repair_batches;
  if (tables_.empty()) {
    // Nothing to repair incrementally yet: first batch builds from scratch.
    full_build(batch_time);
    return;
  }

  const std::vector<EdgeChange> changes = collect_drifted_edges();
  if (changes.empty()) {
    // Tables still exactly match the thresholded graph; record that this
    // stream prefix has been reconciled, keep the published epoch.
    shared_scan_clock_.store(batch_time, std::memory_order_release);
    return;
  }

  // Detect stale roots against the OLD tables/index, then apply the rate
  // updates and re-run exactly those roots with the production engine.
  std::vector<NodeId> roots = affected_roots(changes);
  for (const EdgeChange& change : changes) {
    if (change.new_rate > 0.0) {
      graph_.set_rate(change.u, change.v, change.new_rate);
    } else {
      graph_.remove_edge(change.u, change.v);
    }
  }
  stats_.edge_updates += changes.size();
  DTN_COUNT_N(kDaemonEdgeUpdates, changes.size());

  if (!roots.empty()) {
    const EdgeExpTable edge_exp = build_edge_exp_table(graph_, config_.horizon);
    std::vector<PathTable> repaired =
        parallel_map(config_.threads, roots.size(), [&](std::size_t i) {
          static thread_local PathWorkspace ws;
          return compute_opportunistic_paths(graph_, roots[i], config_.horizon,
                                             config_.max_hops, ws, edge_exp);
        });
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const std::size_t r = static_cast<std::size_t>(roots[i]);
      tables_[r] = std::move(repaired[i]);
      metric_[r] = metric_of_root(roots[i]);
      index_.update_root(roots[i], tables_[r]);
    }
    stats_.roots_repaired += roots.size();
    DTN_COUNT_N(kDaemonRootsRepaired, roots.size());
  }

  if (config_.audit) audit_against_reference();

  ++epoch_;
  auto next = std::make_shared<Snapshot>();
  next->epoch = epoch_;
  next->published_at = batch_time;
  next->graph = graph_;
  next->tables = tables_;
  next->metric = metric_;
  publish(std::move(next));
  ++stats_.snapshots_published;
  DTN_COUNT(kDaemonSnapshotsPublished);
  shared_scan_clock_.store(batch_time, std::memory_order_release);
}

void Daemon::full_build(Time batch_time) {
  ++stats_.full_rebuilds;
  const NodeId n = estimator_.node_count();
  // Materialize the thresholded graph from the estimator in canonical pair
  // order, counting only genuine edge arrivals/changes.
  ContactGraph fresh(n);
  std::uint64_t updates = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double est = estimator_.rate(a, b);
      if (est <= 0.0) continue;
      fresh.set_rate(a, b, est);
      if (est != graph_.rate(a, b)) ++updates;
    }
  }
  graph_ = std::move(fresh);
  stats_.edge_updates += updates;
  DTN_COUNT_N(kDaemonEdgeUpdates, updates);
  for (const std::size_t pair : dirty_pairs_) dirty_flags_[pair] = 0;
  dirty_pairs_.clear();

  const EdgeExpTable edge_exp = build_edge_exp_table(graph_, config_.horizon);
  tables_ = parallel_map(
      config_.threads, static_cast<std::size_t>(n), [&](std::size_t root) {
        static thread_local PathWorkspace ws;
        return compute_opportunistic_paths(graph_, static_cast<NodeId>(root),
                                           config_.horizon, config_.max_hops,
                                           ws, edge_exp);
      });
  metric_.resize(static_cast<std::size_t>(n));
  for (NodeId r = 0; r < n; ++r) {
    metric_[static_cast<std::size_t>(r)] = metric_of_root(r);
  }
  index_.rebuild(tables_);
  stats_.roots_repaired += static_cast<std::uint64_t>(n);
  DTN_COUNT_N(kDaemonRootsRepaired, static_cast<std::size_t>(n));

  if (config_.audit) audit_against_reference();

  ++epoch_;
  auto next = std::make_shared<Snapshot>();
  next->epoch = epoch_;
  next->published_at = batch_time;
  next->graph = graph_;
  next->tables = tables_;
  next->metric = metric_;
  publish(std::move(next));
  ++stats_.snapshots_published;
  DTN_COUNT(kDaemonSnapshotsPublished);
  shared_scan_clock_.store(batch_time, std::memory_order_release);
}

double Daemon::metric_of_root(NodeId root) const {
  // Same fold as ncl_metrics: j ascending, skip the root, mean over n-1 —
  // bit-identical to a from-scratch metric computation on this graph.
  const NodeId n = graph_.node_count();
  if (n < 2) return 0.0;
  const PathTable& table = tables_[static_cast<std::size_t>(root)];
  double sum = 0.0;
  for (NodeId j = 0; j < n; ++j) {
    if (j == root) continue;
    sum += table.weight(j);
  }
  const double metric = sum / static_cast<double>(n - 1);
  DTN_CHECK_PROB(metric);
  return metric;
}

void Daemon::audit_against_reference() {
  ++stats_.audit_rebuilds;
  DTN_COUNT(kDaemonAuditRebuilds);
  const AllPairsPaths reference(graph_, config_.horizon, config_.max_hops,
                                config_.threads, PathEngine::kReference);
  const NodeId n = graph_.node_count();
  DTN_CHECK(reference.node_count() == n, "audit node count mismatch");
  for (NodeId r = 0; r < n; ++r) {
    const PathTable& mine = tables_[static_cast<std::size_t>(r)];
    const PathTable& ref = reference.table(r);
    for (NodeId node = 0; node < n; ++node) {
      DTN_CHECK(mine.weight(node) == ref.weight(node),
                "incremental repair diverged from reference rebuild");
    }
  }
  // NCL selection must agree too: recompute the reference metric with the
  // same fold and compare the resulting top-k set.
  std::vector<double> ref_metric(static_cast<std::size_t>(n), 0.0);
  for (NodeId r = 0; r < n; ++r) {
    double sum = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (j == r) continue;
      sum += reference.table(r).weight(j);
    }
    if (n >= 2) ref_metric[static_cast<std::size_t>(r)] =
        sum / static_cast<double>(n - 1);
    DTN_CHECK(ref_metric[static_cast<std::size_t>(r)] ==
                  metric_[static_cast<std::size_t>(r)],
              "repaired NCL metric diverged from reference");
  }
  const std::vector<NodeId> mine_k = top_k(metric_, config_.audit_ncl_k);
  const std::vector<NodeId> ref_k = top_k(ref_metric, config_.audit_ncl_k);
  DTN_CHECK(mine_k == ref_k, "repaired NCL set diverged from reference");
}

// ---- reader path -------------------------------------------------------

NclAnswer Daemon::ncl_set(int k) const {
  DTN_CHECK(k >= 1, "ncl_set needs k >= 1");
  DTN_COUNT(kDaemonQueries);
  const std::shared_ptr<const Snapshot> snap = snapshot();
  NclAnswer answer;
  answer.info = query_info(*snap);
  if (!snap->ready()) return answer;
  answer.central = top_k(snap->metric, k);
  return answer;
}

WeightAnswer Daemon::path_weight(NodeId src, NodeId dst, Time budget) const {
  DTN_COUNT(kDaemonQueries);
  const std::shared_ptr<const Snapshot> snap = snapshot();
  WeightAnswer answer;
  answer.info = query_info(*snap);
  DTN_CHECK(src >= 0 && src < node_count() && dst >= 0 && dst < node_count(),
            "path_weight node out of range");
  if (src == dst) {
    answer.weight = 1.0;
    return answer;
  }
  if (!snap->ready()) return answer;
  // AllPairsPaths::weight_at semantics against the snapshot's tables.
  const PathTable& table = snap->tables[static_cast<std::size_t>(dst)];
  const PathTable::Entry& entry = table.entry(src);
  if (entry.weight <= 0.0) return answer;
  PathWorkspace& ws = query_workspace();
  table.rates_to_root(src, ws.chain);
  answer.weight = hypoexp_cdf(ws.chain, budget, ws.hypoexp);
  DTN_CHECK_PROB(answer.weight);
  return answer;
}

PlacementAnswer Daemon::placement_for(NodeId source, int k) const {
  DTN_CHECK(k >= 1, "placement_for needs k >= 1");
  DTN_COUNT(kDaemonQueries);
  const std::shared_ptr<const Snapshot> snap = snapshot();
  PlacementAnswer answer;
  answer.info = query_info(*snap);
  DTN_CHECK(source >= 0 && source < node_count(),
            "placement source out of range");
  if (!snap->ready()) return answer;
  const std::vector<NodeId> central = top_k(snap->metric, k);
  // Rank the central set by how well the source pushes data to each NCL:
  // the settled path weight source -> central at the snapshot horizon.
  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(central.size());
  for (const NodeId c : central) {
    const double w =
        c == source
            ? 1.0
            : snap->tables[static_cast<std::size_t>(c)].weight(source);
    ranked.emplace_back(w, c);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const std::pair<double, NodeId>& a,
                      const std::pair<double, NodeId>& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  for (const auto& [w, c] : ranked) {
    answer.ranked.push_back(c);
    answer.weights.push_back(w);
  }
  return answer;
}

}  // namespace dtn::daemon

// Reverse edge -> roots index over a family of single-source path tables.
//
// Incremental repair needs the inverse of the question a PathTable answers:
// not "which edges does root r's tree use" but "which roots' trees use edge
// (u, v)". The index is built from the PR 5 parent-chain representation —
// every reachable non-root entry contributes exactly the tree edge
// (node, next_hop) — and is maintained per root as tables are repaired, so
// a drift batch can map each changed edge to the set of stale roots in
// O(roots using the edge) instead of O(n^2).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/opportunistic_path.h"

namespace dtn::daemon {

/// Canonical undirected edge key (min, max packed into 64 bits).
inline std::uint64_t edge_key(NodeId u, NodeId v) {
  const std::uint64_t a = static_cast<std::uint64_t>(u < v ? u : v);
  const std::uint64_t b = static_cast<std::uint64_t>(u < v ? v : u);
  return (a << 32) | b;
}

/// Maps every tree edge to the sorted list of roots whose current shortest
/// opportunistic path tree uses it. Lookup-only on the unordered map — the
/// per-edge root lists are kept sorted, and callers fold over those, so no
/// output ever depends on hash iteration order.
class EdgeRootsIndex {
 public:
  EdgeRootsIndex() = default;

  /// Rebuilds from scratch over all tables (warm start / full rebuild).
  void rebuild(const std::vector<PathTable>& tables);

  /// Replaces root's contribution: removes the edges its previous table
  /// registered and adds the edges of `table` (which must be rooted at
  /// `root`). Called for every repaired root after a repair batch.
  void update_root(NodeId root, const PathTable& table);

  /// Roots whose tree currently uses edge (u, v), ascending; nullptr when
  /// no tree uses it.
  const std::vector<NodeId>* roots_using(NodeId u, NodeId v) const;

  /// Total number of distinct tree edges currently indexed.
  std::size_t edge_count() const { return edge_roots_.size(); }

 private:
  void add_root_edges(NodeId root, const PathTable& table);
  void remove_root_edges(NodeId root);

  std::unordered_map<std::uint64_t, std::vector<NodeId>> edge_roots_;
  /// Per-root list of edge keys contributed, so update_root can remove the
  /// old contribution without the old table.
  std::vector<std::vector<std::uint64_t>> root_edges_;
};

}  // namespace dtn::daemon

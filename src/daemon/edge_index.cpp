#include "daemon/edge_index.h"

#include <algorithm>

#include "common/check.h"

namespace dtn::daemon {

void EdgeRootsIndex::add_root_edges(NodeId root, const PathTable& table) {
  auto& edges = root_edges_[static_cast<std::size_t>(root)];
  const NodeId n = table.node_count();
  for (NodeId node = 0; node < n; ++node) {
    const PathTable::Entry& entry = table.entry(node);
    if (entry.hops == 0 || entry.weight <= 0.0) continue;  // root/unreachable
    const std::uint64_t key = edge_key(node, entry.next_hop);
    auto& roots = edge_roots_[key];
    // Insert keeping the list sorted; a root registers an edge only once
    // per table (each non-root node has exactly one parent edge, but two
    // sibling nodes can share no edge, so duplicates cannot occur).
    roots.insert(std::lower_bound(roots.begin(), roots.end(), root), root);
    edges.push_back(key);
  }
}

void EdgeRootsIndex::remove_root_edges(NodeId root) {
  auto& edges = root_edges_[static_cast<std::size_t>(root)];
  for (const std::uint64_t key : edges) {
    auto it = edge_roots_.find(key);
    DTN_CHECK(it != edge_roots_.end(), "edge index out of sync with root");
    auto& roots = it->second;
    auto pos = std::lower_bound(roots.begin(), roots.end(), root);
    DTN_CHECK(pos != roots.end() && *pos == root,
              "edge index missing root entry");
    roots.erase(pos);
    if (roots.empty()) edge_roots_.erase(it);
  }
  edges.clear();
}

void EdgeRootsIndex::rebuild(const std::vector<PathTable>& tables) {
  edge_roots_.clear();
  root_edges_.assign(tables.size(), {});
  for (std::size_t root = 0; root < tables.size(); ++root) {
    DTN_CHECK(tables[root].root() == static_cast<NodeId>(root),
              "tables must be indexed by root");
    add_root_edges(static_cast<NodeId>(root), tables[root]);
  }
}

void EdgeRootsIndex::update_root(NodeId root, const PathTable& table) {
  DTN_CHECK(root >= 0 &&
                static_cast<std::size_t>(root) < root_edges_.size(),
            "update_root out of range");
  DTN_CHECK(table.root() == root, "table rooted elsewhere");
  remove_root_edges(root);
  add_root_edges(root, table);
}

const std::vector<NodeId>* EdgeRootsIndex::roots_using(NodeId u,
                                                       NodeId v) const {
  const auto it = edge_roots_.find(edge_key(u, v));
  return it == edge_roots_.end() ? nullptr : &it->second;
}

}  // namespace dtn::daemon

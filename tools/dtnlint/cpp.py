"""Lightweight structural C++ parser for dtnlint.

Not a grammar: a brace-structure recoverer. It walks the significant token
stream (lexer.py) and rebuilds the nesting the flow rules need —
translation unit -> namespace -> class -> function -> loop/branch/block —
plus a statement list per scope and a best-effort declaration table
(name -> type) covering file/class members, locals, and function
parameters. That is enough structure to answer the questions the rules
ask ("is this `release(h)` followed by a use of `h` on the same path?",
"is this RNG draw inside a range-for over an unordered container?")
without a real C++ frontend, which this environment does not have.

Known, accepted approximations (each is covered by a good-fixture so a
regression shows up in --self-test):
  * Braceless control bodies (`if (x) return;`) are part of the
    enclosing statement, not a scope — flow rules see them as one
    conditional statement and treat their effects as unconditional.
  * Lambda bodies are scopes of kind 'lambda' nested where they appear;
    the statement that contains the lambda keeps accumulating around it.
  * Preprocessor conditionals are invisible: both arms of an #if/#else
    contribute code. Unbalanced braces across arms would desynchronize
    the tree; the parser clamps instead of crashing (no such code in
    this tree, and the fixtures keep it that way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from lexer import Token, lex, significant

_CONTROL_KEYWORDS = {"if", "else", "for", "while", "do", "switch", "try", "catch"}
_CLASS_KEYS = {"class", "struct", "union", "enum"}
_SPECIFIERS = {
    "static", "const", "constexpr", "consteval", "constinit", "inline",
    "mutable", "thread_local", "explicit", "volatile", "register",
    "typename", "friend", "virtual", "extern",
}
_BUILTIN_TYPE_WORDS = {
    "unsigned", "signed", "long", "short", "int", "char", "double",
    "float", "bool", "void", "auto", "std", "size_t",
}
_NOT_A_TYPE = _CONTROL_KEYWORDS | {
    "return", "break", "continue", "goto", "case", "default", "delete",
    "new", "throw", "using", "namespace", "template", "public", "private",
    "protected", "operator", "sizeof", "this",
}


@dataclass
class Stmt:
    tokens: list[Token]

    @property
    def line(self) -> int:
        return self.tokens[0].line if self.tokens else 0

    def texts(self) -> list[str]:
        return [t.text for t in self.tokens]


@dataclass
class Scope:
    kind: str  # file|namespace|class|function|lambda|loop|if|elif|else|switch|block|init
    header: list[Token] = field(default_factory=list)
    name: str | None = None
    line: int = 0
    parent: "Scope | None" = None
    items: list["Stmt | Scope"] = field(default_factory=list)

    def scopes(self):
        """All nested scopes, depth-first, self excluded."""
        for item in self.items:
            if isinstance(item, Scope):
                yield item
                yield from item.scopes()

    def stmts(self):
        """All statements in this scope and below, in source order."""
        for item in self.items:
            if isinstance(item, Stmt):
                yield item
            else:
                yield from item.stmts()

    def function_ancestor(self) -> "Scope | None":
        s = self.parent
        while s is not None and s.kind not in ("function", "lambda"):
            s = s.parent
        return s

    def outermost_function(self) -> "Scope | None":
        best = None
        s = self if self.kind in ("function", "lambda") else self.function_ancestor()
        while s is not None:
            if s.kind == "function":
                best = s
            s = s.function_ancestor()
        return best

    def in_loop(self) -> bool:
        s = self
        while s is not None:
            if s.kind == "loop":
                return True
            # A lambda body does not run once per iteration just because
            # the lambda object is built inside a loop — but building it
            # there is itself suspect, so we do not stop at lambdas.
            s = s.parent
        return False

    # --- loop-specific helpers -------------------------------------------
    def range_for_parts(self):
        """For a range-for loop scope, returns (decl_tokens, expr_tokens);
        None for anything else. The split is the top-level ':' inside the
        for-header parens."""
        if self.kind != "loop" or not self.header or self.header[0].text != "for":
            return None
        depth = 0
        start = None
        for idx, tok in enumerate(self.header):
            if tok.text == "(":
                depth += 1
                if depth == 1:
                    start = idx + 1
            elif tok.text == ")":
                depth -= 1
                if depth == 0:
                    end = idx
                    break
            elif tok.text == ":" and depth == 1:
                colon = idx
                break
        else:
            return None
        if self.header[idx].text != ":":
            return None
        # find matching close paren for expr slice
        depth = 1
        end = len(self.header)
        for j in range(colon + 1, len(self.header)):
            if self.header[j].text == "(":
                depth += 1
            elif self.header[j].text == ")":
                depth -= 1
                if depth == 0:
                    end = j
                    break
        return self.header[start:colon], self.header[colon + 1 : end]


@dataclass
class Decl:
    name: str
    type_str: str
    line: int
    is_ref: bool = False
    is_ptr: bool = False
    init: list[Token] = field(default_factory=list)


def _match_angles(tokens: list[Token], i: int) -> int:
    """tokens[i] is '<' opening a template argument list; returns the index
    one past the matching '>'. `>>` lexes as two '>' tokens, so a plain
    counter works. Gives up (returns i) if the list never closes or if
    this '<' looks like a comparison (heuristic: ';' before any '>')."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t in (";", "{"):
            return i
    return i


def parse_decl(tokens: list[Token]) -> Decl | None:
    """Best-effort parse of `tokens` as a simple variable declaration:
    `[specifiers] type [&*] name [= init | (init) | {init}] [;]`.
    Returns None when the statement does not look like one. Handles
    qualified ids, template argument lists, and multi-word builtin types;
    does not try to handle multi-declarator statements (`int a, b;`) —
    none of the rules need them."""
    i = 0
    n = len(tokens)
    while i < n and tokens[i].kind == "ident" and tokens[i].text in _SPECIFIERS:
        i += 1
    if i >= n or tokens[i].kind != "ident":
        return None
    if tokens[i].text in _NOT_A_TYPE:
        return None

    type_start = i
    if tokens[i].text in _BUILTIN_TYPE_WORDS and tokens[i].text not in ("std", "auto"):
        while i < n and tokens[i].kind == "ident" and tokens[i].text in _BUILTIN_TYPE_WORDS:
            i += 1
    else:
        # qualified-id with optional template args on each segment
        while True:
            if i >= n or tokens[i].kind != "ident":
                return None
            i += 1
            if i < n and tokens[i].text == "<":
                j = _match_angles(tokens, i)
                if j == i:
                    return None
                i = j
            if i < n and tokens[i].text == "::":
                i += 1
                continue
            break
    type_tokens = tokens[type_start:i]

    is_ref = is_ptr = False
    while i < n and tokens[i].text in ("&", "*"):
        if tokens[i].text == "&":
            is_ref = True
        else:
            is_ptr = True
        i += 1

    if i >= n or tokens[i].kind != "ident" or tokens[i].text in _NOT_A_TYPE:
        return None
    name_tok = tokens[i]
    i += 1
    if i < n and tokens[i].text not in (";", "=", "(", "{", "[", ",", ")"):
        return None

    init: list[Token] = []
    if i < n and tokens[i].text == "=":
        init = tokens[i + 1 :]
    elif i < n and tokens[i].text in ("(", "{"):
        init = tokens[i + 1 :]
    type_str = "".join(t.text for t in type_tokens)
    return Decl(
        name=name_tok.text,
        type_str=type_str,
        line=name_tok.line,
        is_ref=is_ref,
        is_ptr=is_ptr,
        init=init,
    )


def _split_params(tokens: list[Token]) -> list[list[Token]]:
    """Splits a parenthesized parameter list (tokens inside the outermost
    parens of a function header) on top-level commas."""
    out: list[list[Token]] = []
    depth = 0
    cur: list[Token] = []
    for t in tokens:
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == "<":
            depth += 1
        elif t.text == ">":
            depth = max(depth - 1, 0)
        if t.text == "," and depth == 0:
            out.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        out.append(cur)
    return out


def _header_paren_contents(header: list[Token]) -> list[Token]:
    """Tokens inside the last top-level (...) group of a header — the
    parameter list of a function header, the condition of an if/while."""
    depth = 0
    start = None
    groups: list[tuple[int, int]] = []
    for idx, tok in enumerate(header):
        if tok.text == "(":
            depth += 1
            if depth == 1:
                start = idx + 1
        elif tok.text == ")":
            depth -= 1
            if depth == 0 and start is not None:
                groups.append((start, idx))
                start = None
    if not groups:
        return []
    s, e = groups[-1]
    return header[s:e]


class TranslationUnit:
    """Parse result: the scope tree plus the flat declaration table."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.all_tokens = lex(text)
        self.tokens = significant(self.all_tokens)
        self.root = _build_tree(self.tokens)
        self.decls: dict[str, Decl] = {}
        self._collect_decls()

    # -- declaration table -------------------------------------------------
    def _collect_decls(self) -> None:
        for stmt in self.root.stmts():
            d = parse_decl(stmt.tokens)
            if d is not None:
                self.decls.setdefault(d.name, d)
        for scope in self.root.scopes():
            if scope.kind in ("function", "lambda"):
                for param in _split_params(_header_paren_contents(scope.header)):
                    d = parse_decl(param)
                    if d is not None:
                        self.decls.setdefault(d.name, d)
            elif scope.kind == "loop":
                parts = scope.range_for_parts()
                if parts is not None:
                    d = parse_decl(parts[0])
                    if d is not None:
                        self.decls.setdefault(d.name, d)

    def decl_type(self, name: str) -> str:
        d = self.decls.get(name)
        return d.type_str if d is not None else ""

    def unordered_names(self) -> set[str]:
        """Names whose declared type mentions an unordered container —
        including containers *of* unordered containers, whose elements
        iterate in hash order just the same."""
        out = set()
        for name, d in self.decls.items():
            if "unordered_map<" in d.type_str or "unordered_set<" in d.type_str \
                    or "unordered_multimap<" in d.type_str \
                    or "unordered_multiset<" in d.type_str:
                out.add(name)
        return out

    def functions(self):
        for scope in self.root.scopes():
            if scope.kind == "function":
                yield scope


def _classify(pending: list[Token], parent_kind: str, paren_depth: int) -> tuple[str, str | None]:
    """Decides what scope a '{' opens, from the tokens accumulated since
    the last statement boundary. Returns (kind, name)."""
    texts = [t.text for t in pending]

    if paren_depth > 0:
        return "init", None

    if texts:
        head = texts[0]
        if head == "namespace" or (head == "inline" and len(texts) > 1 and texts[1] == "namespace"):
            idents = [t for t in texts[1:] if t not in ("inline", "namespace")]
            return "namespace", idents[-1] if idents else None
        if head == "else":
            return ("elif", None) if "if" in texts else ("else", None)
        if head in ("if",):
            return "if", None
        if head in ("for", "while"):
            return "loop", None
        if head == "do":
            return "loop", None
        if head == "switch":
            return "switch", None
        if head in ("try", "catch"):
            return "block", None
        if head == "case" or head == "default":
            return "block", None

    # class/struct/enum definition (possibly after template<...>)
    for idx, t in enumerate(texts):
        if t in _CLASS_KEYS:
            if "=" in texts[:idx] or "(" in texts[:idx]:
                break
            name = None
            for t2 in pending[idx + 1 :]:
                if t2.kind == "ident" and t2.text not in ("final", "alignas"):
                    name = t2.text
                    break
                if t2.text in (":", "{", "<"):
                    break
            return "class", name
        if t in ("(", "=", "return"):
            break

    if texts and texts[-1] == "=":
        return "init", None
    if texts and texts[-1] in (",", "return", "(", "{"):
        return "init", None

    closed_paren = ")" in texts and texts and (
        texts[-1] == ")"
        or texts[-1] in ("const", "noexcept", "override", "final", "mutable")
        or "->" in texts[max(0, len(texts) - 6) :]
        # constructor member-init list: `Ctor(...) : field_(x), other_(y)`
        or (":" in texts and ")" in texts)
    )
    if closed_paren:
        if parent_kind in ("file", "namespace", "class"):
            # function definition: name = identifier before the first
            # top-level '(' (skipping a qualified-id chain)
            name = None
            depth = 0
            for idx, tok in enumerate(pending):
                if tok.text == "(" and depth == 0:
                    for back in range(idx - 1, -1, -1):
                        if pending[back].kind == "ident":
                            name = pending[back].text
                            break
                    break
                if tok.text == "<":
                    depth += 1
                elif tok.text == ">":
                    depth = max(depth - 1, 0)
            return "function", name
        # inside code: a ')' right before '{' is a lambda body when a
        # lambda-introducer bracket appears in the statement
        if "[" in texts:
            return "lambda", None
        return "block", None

    if texts and texts[-1] == "]" and "[" in texts:
        return "lambda", None  # capture-only lambda: [&]{ ... }

    if parent_kind in ("function", "lambda", "loop", "if", "elif", "else",
                       "switch", "block"):
        # `T x{...}` uniform init, or a bare block
        return ("init", None) if texts else ("block", None)
    return "block", None


def _build_tree(tokens: list[Token]) -> Scope:
    root = Scope(kind="file")
    current = root
    pending: list[Token] = []
    paren_depth = 0
    # scopes whose statement continues around them (lambda / init braces):
    # on close, restore the saved pending and keep accumulating.
    saved: list[tuple[Scope, list[Token], int]] = []

    def flush() -> None:
        nonlocal pending
        if pending:
            current.items.append(Stmt(pending))
            pending = []

    for tok in tokens:
        t = tok.text
        if t == "{":
            kind, name = _classify(pending, current.kind, paren_depth)
            scope = Scope(kind=kind, header=list(pending), name=name,
                          line=tok.line, parent=current)
            current.items.append(scope)
            if kind in ("lambda", "init"):
                saved.append((scope, pending, paren_depth))
                pending = []
                paren_depth = 0
            else:
                pending = []
                paren_depth = 0
            current = scope
        elif t == "}":
            flush()
            if saved and saved[-1][0] is current:
                _, pending, paren_depth = saved.pop()
            if current.parent is not None:
                current = current.parent
        elif t == ";" and paren_depth == 0:
            pending.append(tok)
            flush()
        else:
            if t == "(":
                paren_depth += 1
            elif t == ")":
                paren_depth = max(paren_depth - 1, 0)
            pending.append(tok)

    flush()
    return root

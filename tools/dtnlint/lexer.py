"""C++ lexer for dtnlint.

A real tokenizer, not a line regex: it understands line and block comments,
string / char / raw-string literals, numeric literals (including digit
separators, so `1'000'000` never opens a char literal), and preprocessor
lines (including backslash continuations). Rules therefore never fire on
text inside a comment or a literal — the false-positive class that plagued
the original line-grep lint (see tests/lint/fixture_comment_immunity.cpp).

The token stream is intentionally small:

  kind      text
  --------  ---------------------------------------------------------
  ident     identifiers and keywords (`for`, `rand`, `std`, ...)
  number    numeric literals, one token each
  string    string literals, including raw strings; text is the quoted
            source (rules never need the decoded value)
  char      character literals
  punct     operators/punctuation; multi-char only where structure needs
            it (`::` and `->`); everything else is one char per token
  comment   // and /* */ comments (excluded from the significant stream)
  pp        a whole preprocessor directive, continuations included
            (excluded from the significant stream — macro bodies are not
            code the compiler sees at this spot)

`lex()` returns every token; `significant()` filters to the stream the
parser and the rules consume. Tokens carry 1-based line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact, for rule debugging
        return f"{self.kind}:{self.text!r}@{self.line}"


_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

# Two-char puncts the parser relies on. Everything else (<<, >>, <=, ...)
# is deliberately split into single chars: `>>` closing two template
# argument lists then lexes as two `>` tokens, which is exactly what the
# angle-bracket matcher wants.
_TWO_CHAR = {"::", "->"}


def lex(text: str) -> list[Token]:
    """Tokenizes `text`. Never raises on malformed input: an unterminated
    literal or comment simply extends to end of file (the lint must keep
    working on code the compiler would reject)."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    def take(kind: str, start: int, end: int, start_line: int) -> None:
        tokens.append(Token(kind, text[start:end], start_line))

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\v\f":
            i += 1
            continue

        # Preprocessor directive: swallow through any backslash-continued
        # newlines. Comments inside the directive are consumed with it.
        if c == "#" and at_line_start:
            start, start_line = i, line
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                # A block comment may hide the newline that ends the
                # directive; skip it atomically.
                if text[i] == "/" and i + 1 < n and text[i + 1] == "*":
                    i += 2
                    while i < n and not (
                        text[i] == "*" and i + 1 < n and text[i + 1] == "/"
                    ):
                        if text[i] == "\n":
                            line += 1
                        i += 1
                    i = min(i + 2, n)
                    continue
                i += 1
            take("pp", start, i, start_line)
            at_line_start = True  # the upcoming "\n" resets it anyway
            continue

        at_line_start = False

        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                start, start_line = i, line
                while i < n and text[i] != "\n":
                    i += 1
                take("comment", start, i, start_line)
                continue
            if text[i + 1] == "*":
                start, start_line = i, line
                i += 2
                while i < n and not (
                    text[i] == "*" and i + 1 < n and text[i + 1] == "/"
                ):
                    if text[i] == "\n":
                        line += 1
                    i += 1
                i = min(i + 2, n)
                take("comment", start, i, start_line)
                continue

        # Raw string literal: R"delim( ... )delim" with optional encoding
        # prefix (u8R, LR, uR, UR).
        if c in "RuUL" or c == "u":
            j = i
            if text[j] == "u" and j + 1 < n and text[j + 1] == "8":
                j += 2
            elif text[j] in "uUL":
                j += 1
            if j < n and text[j] == "R" and j + 1 < n and text[j + 1] == '"':
                start, start_line = i, line
                j += 2  # past R"
                d0 = j
                while j < n and text[j] != "(":
                    j += 1
                delim = text[d0:j]
                closer = ")" + delim + '"'
                end = text.find(closer, j)
                end = n if end == -1 else end + len(closer)
                line += text.count("\n", i, end)
                take("string", start, end, start_line)
                i = end
                continue

        # Ordinary string / char literal, with optional encoding prefix.
        if c in "\"'" or (
            c in "uUL"
            and i + 1 < n
            and (
                text[i + 1] in "\"'"
                or (c == "u" and text[i + 1] == "8" and i + 2 < n and text[i + 2] in "\"'")
            )
        ):
            start, start_line = i, line
            j = i
            while text[j] not in "\"'":
                j += 1
            quote = text[j]
            j += 1
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    j += 1
                elif text[j] == "\n":
                    line += 1  # unterminated literal: keep line counts right
                j += 1
            j = min(j + 1, n)
            take("string" if quote == '"' else "char", start, j, start_line)
            i = j
            continue

        # Identifier / keyword.
        if c in _IDENT_START:
            start = i
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            take("ident", start, i, line)
            continue

        # Number: also covers `.5`; consumes digit separators and the
        # sign of an exponent so `1e-9` and `0x1p-3` are single tokens.
        if c in _DIGITS or (
            c == "." and i + 1 < n and text[i + 1] in _DIGITS
        ):
            start = i
            i += 1
            while i < n:
                ch = text[i]
                if ch in _IDENT_CONT or ch == ".":
                    i += 1
                elif ch == "'" and i + 1 < n and text[i + 1] in _IDENT_CONT:
                    i += 2  # digit separator
                elif ch in "+-" and text[i - 1] in "eEpP":
                    i += 1
                else:
                    break
            take("number", start, i, line)
            continue

        # Punctuation.
        if text[i : i + 2] in _TWO_CHAR:
            take("punct", i, i + 2, line)
            i += 2
            continue
        take("punct", i, i + 1, line)
        i += 1

    return tokens


def significant(tokens: list[Token]) -> list[Token]:
    """The stream rules and the parser consume: no comments, no
    preprocessor lines, no literal *contents* masquerading as code."""
    return [t for t in tokens if t.kind not in ("comment", "pp")]

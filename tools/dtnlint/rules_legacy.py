"""The seven PR 2/PR 5 determinism-lint rules, re-hosted on the shared
lexer and structural parser.

Behaviour is a superset-accurate re-implementation of the old line-regex
rules in tools/lint_determinism.py with the regex failure modes removed:
nothing here can fire inside a comment, a string/char literal, or a
preprocessor line (the lexer never surfaces them), and the scope-based
rules (unordered-fold, vector-in-loop) use real brace structure instead of
brace-counting heuristics. tools/lint_determinism.py is now a thin CLI
shim that runs exactly this set (Rule.legacy == True).
"""

from __future__ import annotations

from cpp import Scope, TranslationUnit
from engine import Rule, RuleContext, is_fixture, register

# ---------------------------------------------------------------------------
# token-pattern helpers


def _calls(tu: TranslationUnit, name: str):
    """Yields indices i where tokens[i] is identifier `name` directly
    followed by '('."""
    toks = tu.tokens
    for i, t in enumerate(toks):
        if t.kind == "ident" and t.text == name:
            if i + 1 < len(toks) and toks[i + 1].text == "(":
                yield i


def _prev_text(tu: TranslationUnit, i: int) -> str:
    return tu.tokens[i - 1].text if i > 0 else ""


def _is_std_qualified(tu: TranslationUnit, i: int) -> bool:
    """True when tokens[i] is preceded by `std::` (possibly `::std::`)."""
    return i >= 2 and tu.tokens[i - 1].text == "::" and tu.tokens[i - 2].text == "std"


def _is_member_or_qualified(tu: TranslationUnit, i: int) -> bool:
    """True when tokens[i] is reached through `.`, `->`, or a non-std
    `x::` qualifier — i.e. not the global libc symbol."""
    prev = _prev_text(tu, i)
    if prev in (".", "->"):
        return True
    if prev == "::":
        return not (i >= 2 and tu.tokens[i - 2].text == "std")
    return False


# ---------------------------------------------------------------------------


@register
class LibcRandRule(Rule):
    rule_id = "libc-rand"
    legacy = True
    message = (
        "libc rand()/srand() uses hidden global state; use dtn::Rng with an "
        "explicit seed"
    )

    def check(self, tu, ctx):
        for name in ("rand", "srand"):
            for i in _calls(tu, name):
                if _is_member_or_qualified(tu, i):
                    continue  # obj.rand(), my::rand() — not the libc RNG
                yield tu.tokens[i].line, None


@register
class RandomDeviceRule(Rule):
    rule_id = "random-device"
    legacy = True
    message = (
        "std::random_device draws hardware entropy, different on every run; "
        "derive seeds with dtn::derive_seed instead"
    )

    def check(self, tu, ctx):
        for i, t in enumerate(tu.tokens):
            if t.text == "random_device" and _is_std_qualified(tu, i):
                yield t.line, None


@register
class WallClockSeedRule(Rule):
    rule_id = "wall-clock-seed"
    legacy = True
    message = (
        "time(nullptr) makes the run depend on the wall clock; thread the "
        "seed through the config instead"
    )

    def check(self, tu, ctx):
        toks = tu.tokens
        for i in _calls(tu, "time"):
            if _is_member_or_qualified(tu, i) and not _is_std_qualified(tu, i):
                continue
            if i + 3 < len(toks) and toks[i + 2].text in ("nullptr", "NULL", "0") \
                    and toks[i + 3].text == ")":
                yield toks[i].line, None


@register
class ChronoNowRule(Rule):
    rule_id = "chrono-now"
    legacy = True
    message = (
        "clock reads are nondeterministic; keep them out of simulation and "
        "statistics code (allowlist genuine timing/progress call sites)"
    )

    def check(self, tu, ctx):
        toks = tu.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident" or not t.text.endswith("_clock"):
                continue
            if (
                i + 3 < len(toks)
                and toks[i + 1].text == "::"
                and toks[i + 2].text == "now"
                and toks[i + 3].text == "("
            ):
                yield toks[i + 2].line, None


@register
class FsMtimeRule(Rule):
    rule_id = "fs-mtime"
    legacy = True
    message = (
        "file mtimes differ across checkouts and copies; results must never "
        "depend on them (allowlist observation-only cache-freshness probes "
        "whose worst case is an extra re-parse of identical bytes)"
    )

    def check(self, tu, ctx):
        for i in _calls(tu, "last_write_time"):
            yield tu.tokens[i].line, None


# ---------------------------------------------------------------------------
# unordered-fold: range-for over an unordered container inside a function
# that writes CSV or folds statistics.

_FOLD_IDENTS = {
    "add_cell", "add_number", "add_integer", "add_row", "RunningStats",
    "percentile", "gini", "sample_copy_count", "count_bytes",
}
_UNORDERED_TYPE_WORDS = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}


def _function_has_fold_marker(fn: Scope) -> bool:
    for stmt in fn.stmts():
        for tok in stmt.tokens:
            if tok.kind != "ident":
                continue
            if tok.text in _FOLD_IDENTS or "csv" in tok.text.lower():
                return True
    # loop headers and nested scope headers too (e.g. `for (... : csv_rows)`)
    for scope in fn.scopes():
        for tok in scope.header:
            if tok.kind == "ident" and (
                tok.text in _FOLD_IDENTS or "csv" in tok.text.lower()
            ):
                return True
    return False


def unordered_range_fors(tu: TranslationUnit):
    """Yields loop scopes that range-for over an unordered container:
    either the range expression mentions an unordered type inline, or any
    identifier in it is declared (anywhere in this file) with a type that
    contains one — covering members, locals, and elements of containers
    of unordered containers."""
    unordered = tu.unordered_names()
    for scope in tu.root.scopes():
        if scope.kind != "loop":
            continue
        parts = scope.range_for_parts()
        if parts is None:
            continue
        _, expr = parts
        hit = False
        for tok in expr:
            if tok.kind == "ident" and (
                tok.text in unordered or tok.text in _UNORDERED_TYPE_WORDS
            ):
                hit = True
                break
        if hit:
            yield scope


@register
class UnorderedFoldRule(Rule):
    rule_id = "unordered-fold"
    legacy = True
    message = (
        "iteration order of unordered containers is implementation-defined; "
        "sort the keys (or iterate a deterministic index) before folding "
        "stats or writing CSV"
    )

    def check(self, tu, ctx):
        for scope in unordered_range_fors(tu):
            fn = scope.outermost_function()
            if fn is None or not _function_has_fold_marker(fn):
                continue
            yield scope.line, None


# ---------------------------------------------------------------------------
# vector-in-loop: kept with its exact legacy scope (std::vector declared in
# a loop body, src/graph/ only) for the lint_determinism.py shim and its
# allowlist entries. dtnlint's hot-loop-alloc (rules_flow.py) generalizes
# this to more containers and src/sim/ with the same scope machinery.

def container_decls_in_loops(tu: TranslationUnit, type_words: set[str]):
    """Yields (line, type_word) for declarations of matching container
    types in loop bodies (any nesting). References and pointers do not
    allocate and are skipped."""
    for scope in tu.root.scopes():
        if scope.kind != "loop":
            continue
        for item in scope.items:
            yield from _decls_under(item, type_words)


def _decls_under(item, type_words):
    from cpp import Scope, parse_decl

    if isinstance(item, Scope):
        # nested loops yield their own visit via scopes() in the caller?
        # No: the caller iterates top-level items of each loop scope, so
        # recurse through non-loop scopes only to avoid double-reporting
        # (a nested loop is itself visited by the outer iteration).
        if item.kind == "loop":
            return
        for sub in item.items:
            yield from _decls_under(sub, type_words)
        return
    d = parse_decl(item.tokens)
    if d is None or d.is_ref or d.is_ptr:
        return
    for word in type_words:
        if d.type_str.startswith(f"std::{word}<") or d.type_str == f"std::{word}":
            yield d.line, word
            return


@register
class VectorInLoopRule(Rule):
    rule_id = "vector-in-loop"
    legacy = True
    message = (
        "path-engine hot loops are allocation-free by contract; hoist this "
        "vector into a PathWorkspace/HypoexpWorkspace scratch (or allowlist "
        "deliberate legacy-reference code)"
    )

    def applies_to(self, rel_path):
        return rel_path.startswith("src/graph/") or is_fixture(rel_path)

    def check(self, tu, ctx):
        for line, _word in container_decls_in_loops(tu, {"vector"}):
            yield line, None

"""dtnlint: flow-sensitive static analysis for the dtncache tree.

Self-contained, stock-python3, no clang/libclang: a C++ lexer (lexer.py),
a structural parser recovering function/scope/loop nesting and local
declarations (cpp.py), and a rule framework (engine.py) hosting the seven
legacy determinism rules (rules_legacy.py) plus five flow-aware rules
(rules_flow.py). See DESIGN.md §11.

Run as `python3 tools/dtnlint` (the directory is executable via
__main__.py). tools/lint_determinism.py is a compatibility shim that runs
exactly the legacy rule subset through this engine.
"""

__version__ = "1.0"

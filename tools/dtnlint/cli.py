"""Command-line driver for dtnlint.

Usage:
  python3 tools/dtnlint                     lint src/ + tools/*.cpp, all rules
  python3 tools/dtnlint FILE [FILE...]      lint specific files
  python3 tools/dtnlint --json PATH         also write a findings artifact
                                            (schema_version 1; '-' = stdout)
  python3 tools/dtnlint --rules a,b         run a subset of rules
  python3 tools/dtnlint --legacy            run only the seven re-hosted
                                            lint_determinism rules
  python3 tools/dtnlint --list-rules        print rule ids and exit
  python3 tools/dtnlint --self-test DIR     run the fixture self-test
                                            (tests/lint/fixtures/dtnlint)
  python3 tools/dtnlint --allowlist PATH    override tools/lint_allowlist.txt

On a full-tree run (no explicit FILE arguments) the allowlist itself is
audited: an entry whose rule ran but that suppressed nothing is reported
as a `stale-allowlist` finding. `--no-audit-allowlist` disables this (used
by the lint_determinism.py shim, which runs only the legacy rule subset).

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import engine
import rules_flow  # noqa: F401  -- registers the flow rules
import rules_legacy  # noqa: F401  -- registers the legacy rules
import selftest


def main(argv: list[str]) -> int:
    paths: list[str] = []
    json_out: str | None = None
    allowlist_path = engine.DEFAULT_ALLOWLIST
    rule_ids: list[str] | None = None
    legacy_only = False
    audit = None  # tri-state: None = auto (full-tree runs only)
    self_test_dir: str | None = None
    timing = False

    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--json":
            i += 1
            if i >= len(argv):
                print("dtnlint: --json needs a path (or '-')", file=sys.stderr)
                return 2
            json_out = argv[i]
        elif arg == "--allowlist":
            i += 1
            if i >= len(argv):
                print("dtnlint: --allowlist needs a path", file=sys.stderr)
                return 2
            allowlist_path = Path(argv[i])
        elif arg == "--rules":
            i += 1
            if i >= len(argv):
                print("dtnlint: --rules needs a comma-separated list",
                      file=sys.stderr)
                return 2
            rule_ids = [r.strip() for r in argv[i].split(",") if r.strip()]
        elif arg == "--legacy":
            legacy_only = True
        elif arg == "--list-rules":
            for rule in sorted(engine.all_rules(), key=lambda r: r.rule_id):
                tag = " (legacy)" if rule.legacy else ""
                print(f"{rule.rule_id}{tag}")
            return 0
        elif arg == "--audit-allowlist":
            audit = True
        elif arg == "--no-audit-allowlist":
            audit = False
        elif arg == "--self-test":
            i += 1
            if i >= len(argv):
                print("dtnlint: --self-test needs a fixture directory",
                      file=sys.stderr)
                return 2
            self_test_dir = argv[i]
        elif arg == "--time":
            timing = True
        elif arg.startswith("-"):
            print(f"dtnlint: unknown option {arg!r} (see tools/dtnlint/cli.py)",
                  file=sys.stderr)
            return 2
        else:
            paths.append(arg)
        i += 1

    if self_test_dir is not None:
        return selftest.run(Path(self_test_dir))

    if legacy_only and rule_ids is not None:
        print("dtnlint: --legacy and --rules are mutually exclusive",
              file=sys.stderr)
        return 2
    if legacy_only:
        rules = engine.legacy_rules()
    elif rule_ids is not None:
        rules = engine.rules_by_id(rule_ids)
    else:
        rules = engine.all_rules()

    explicit = bool(paths)
    targets = [Path(p) for p in paths] if explicit else engine.default_targets()
    for target in targets:
        if not target.exists():
            print(f"dtnlint: no such file: {target}", file=sys.stderr)
            return 2

    allowlist = engine.load_allowlist(allowlist_path)
    do_audit = audit if audit is not None else not explicit

    t0 = time.monotonic()
    result = engine.lint_paths(targets, rules, allowlist,
                               audit_allowlist=do_audit)
    elapsed = time.monotonic() - t0

    if json_out is not None:
        engine.write_json(result, rules, json_out)
    status = engine.report(result, rules)
    if timing:
        print(f"dtnlint: {result.files} files in {elapsed:.2f}s")
    return status

"""Entry point: `python3 tools/dtnlint [...]`.

Running a directory puts it at sys.path[0] and executes __main__.py, so
the engine's modules import flat (`import engine`, not a package path).
The explicit bootstrap below also covers `python3 tools/dtnlint/__main__.py`
and execution from another working directory.
"""

import sys
from pathlib import Path

_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main(sys.argv))

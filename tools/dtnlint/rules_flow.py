"""The flow-aware dtnlint rules introduced with the analysis engine.

Each rule walks the statement/scope tree from cpp.py rather than matching
lines, so it understands branch-local facts (a handle released in the
then-branch is not dead in the else-branch), kill assignments (`h = next`
after `pool.release(h)` ends the handle's taint), and early returns.

Analysis model, shared across rules:
  * forward, single pass, no loop back-edges: facts do not flow from the
    bottom of a loop body to its top (a release at the end of an
    iteration followed by a use at the top of the next one is missed —
    accepted, because every such site in this tree reassigns the handle
    before the iteration ends, and the runtime SlabPool live-bit check
    still catches the dynamic case);
  * if/elif/else chains evaluate each branch against the pre-branch
    state and join by union (taints) / agreement (bracket state);
  * braceless conditional bodies are part of the conditional statement
    and are treated as executing unconditionally (conservative).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cpp import Scope, Stmt, TranslationUnit, parse_decl
from engine import Rule, RuleContext, is_fixture, register
from rules_legacy import container_decls_in_loops, unordered_range_fors


# ---------------------------------------------------------------------------
# shared walking helpers

def branch_groups(items):
    """Yields ('branch', [if, elif..., else?]) for conditional chains and
    ('item', x) for everything else, preserving order."""
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        if isinstance(item, Scope) and item.kind == "if":
            group = [item]
            j = i + 1
            while j < n and isinstance(items[j], Scope) \
                    and items[j].kind in ("elif", "else"):
                group.append(items[j])
                is_else = items[j].kind == "else"
                j += 1
                if is_else:
                    break
            yield "branch", group
            i = j
        else:
            yield "item", item
            i += 1


def _find_calls(stmt_tokens, method_names):
    """Yields (receiver_ident, method, arg_tokens, line) for member calls
    `recv.method(args...)` / `recv->method(args...)` in a statement."""
    toks = stmt_tokens
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text not in method_names:
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        recv = toks[i - 2].text if i >= 2 and toks[i - 2].kind == "ident" else ""
        # collect argument tokens up to the matching close paren
        depth = 0
        args = []
        for j in range(i + 1, len(toks)):
            if toks[j].text == "(":
                depth += 1
                if depth == 1:
                    continue
            elif toks[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1:
                args.append(toks[j])
        yield recv, tok.text, args, tok.line


# ---------------------------------------------------------------------------
# pool-lifetime: use of a handle after SlabPool::release / values obtained
# from an Arena after reset(). Guards the PR 6 SlabPool contract (DESIGN.md
# §10): the runtime live-bit DTN_CHECK catches a dynamic double release,
# this rule catches the latent path before it ever executes.

def _is_pool(tu: TranslationUnit, name: str) -> bool:
    t = tu.decl_type(name)
    return t.startswith("SlabPool<") or t.startswith("dtn::SlabPool<") \
        or "pool" in name.lower()


def _is_arena(tu: TranslationUnit, name: str) -> bool:
    t = tu.decl_type(name)
    return t in ("Arena", "dtn::Arena") or "arena" in name.lower()


@dataclass
class _PoolEnv:
    # tainted name -> (release line, what was released) for handles,
    # references into released slots, and arena-backed pointers
    dead: dict = field(default_factory=dict)
    # alias name -> (pool receiver, handle name) from `T& r = pool.get(h)`
    aliases: dict = field(default_factory=dict)
    # pointer name -> arena receiver from `p = arena.allocate(...)`
    arena_ptrs: dict = field(default_factory=dict)

    def copy(self):
        return _PoolEnv(dict(self.dead), dict(self.aliases),
                        dict(self.arena_ptrs))

    def union(self, other):
        self.dead.update(other.dead)
        self.aliases.update(other.aliases)
        self.arena_ptrs.update(other.arena_ptrs)


# Statements that unconditionally leave the current path. `continue` and
# `break` end the loop-iteration path: facts tainted on that path never
# reach the statements after the conditional (the chain-walk loops in
# ncl_scheme.cpp release a handle and `continue` — the code after the
# branch is a different path and must not inherit the taint).
_TERMINATORS = {"return", "continue", "break", "throw", "goto"}


def _terminates(stmt: Stmt) -> bool:
    return bool(stmt.tokens) and stmt.tokens[0].text in _TERMINATORS


@register
class PoolLifetimeRule(Rule):
    rule_id = "pool-lifetime"
    message = ""  # always per-finding

    def applies_to(self, rel_path):
        return rel_path.startswith(("src/sim/", "src/cache/", "src/common/")) \
            or is_fixture(rel_path)

    def check(self, tu, ctx):
        for fn in tu.functions():
            findings = []
            self._walk(tu, fn.items, _PoolEnv(), findings)
            yield from findings

    def _walk(self, tu, items, env, findings) -> bool:
        """Processes a statement sequence against `env` (mutated in
        place). Returns True when the sequence unconditionally leaves the
        enclosing path (return/continue/break on every branch)."""
        for kind, thing in branch_groups(items):
            if kind == "branch":
                joined = _PoolEnv()
                any_live = False
                for branch in thing:
                    benv = env.copy()
                    if not self._walk(tu, branch.items, benv, findings):
                        joined.union(benv)
                        any_live = True
                has_else = thing[-1].kind == "else"
                if not has_else:
                    joined.union(env)  # fall-through path
                    any_live = True
                if not any_live:
                    return True  # every branch terminated, else included
                env.dead, env.aliases, env.arena_ptrs = (
                    joined.dead, joined.aliases, joined.arena_ptrs)
            elif isinstance(thing, Scope):
                if thing.kind == "lambda":
                    # a lambda body runs at call time, not here; analyzing
                    # it against this point's state would be wrong both ways
                    continue
                body_env = env.copy()
                body_terminated = self._walk(tu, thing.items, body_env,
                                             findings)
                if thing.kind == "loop":
                    if not body_terminated:
                        env.union(body_env)  # the loop may have run
                else:
                    env.union(body_env)
                    if body_terminated:
                        return True  # plain block always executes
            else:
                self._stmt(tu, thing, env, findings)
                if _terminates(thing):
                    return True
        return False

    def _stmt(self, tu, stmt: Stmt, env: _PoolEnv, findings):
        toks = stmt.tokens
        texts = stmt.texts()

        # kills come first: a declaration (or `name = ...` rebind) makes
        # the name a fresh object before any same-statement read of it
        killed = None
        if len(toks) >= 2 and toks[0].kind == "ident" and texts[1] == "=":
            killed = texts[0]
        decl = parse_decl(toks)
        if decl is not None:
            killed = decl.name
        if killed is not None:
            env.dead.pop(killed, None)
            env.aliases.pop(killed, None)
            env.arena_ptrs.pop(killed, None)

        read_tokens = toks[2:] if killed and texts[1] == "=" else toks
        for tok in read_tokens:
            if tok.kind != "ident" or tok.text not in env.dead:
                continue
            if killed is not None and tok.text == killed:
                continue  # the declarator itself, not a read
            line, what = env.dead[tok.text]
            findings.append(
                (tok.line,
                 f"`{tok.text}` is used after {what} (released at line "
                 f"{line}); a recycled slot can alias a different live "
                 f"bundle — reorder the use before the release or "
                 f"rebind the handle first"))
            del env.dead[tok.text]  # one report per taint

        # alias registration: `T& r = pool.get(h)`. Two conditions keep
        # copies out: the declarator must be a reference/pointer (a
        # by-value `T t = pool.get(h)` copies the slot and survives its
        # release), and the get-chain must be the *root* of the
        # initializer (`f(pool.get(h).x)` produces a value).
        if decl is not None and decl.init and (decl.is_ref or decl.is_ptr):
            for recv, method, args, _line in _find_calls(decl.init, {"get"}):
                if decl.init[0].kind == "ident" \
                        and decl.init[0].text == recv \
                        and _is_pool(tu, recv) and len(args) == 1 \
                        and args[0].kind == "ident":
                    env.aliases[decl.name] = (recv, args[0].text)
            for recv, method, _args, _line in _find_calls(
                    decl.init, {"allocate"}):
                if _is_arena(tu, recv):
                    env.arena_ptrs[decl.name] = recv

        # releases
        for recv, method, args, line in _find_calls(toks, {"release"}):
            if not _is_pool(tu, recv):
                continue
            if len(args) == 1 and args[0].kind == "ident":
                handle = args[0].text
                env.dead[handle] = (line, f"`{recv}.release({handle})`")
                for alias, (arecv, ahandle) in env.aliases.items():
                    if arecv == recv and ahandle == handle:
                        env.dead[alias] = (
                            line, f"`{recv}.release({handle})` (this name "
                            f"references the released slot)")
        for recv, method, args, line in _find_calls(toks, {"reset"}):
            if not _is_arena(tu, recv) or args:
                continue
            for ptr, arecv in env.arena_ptrs.items():
                if arecv == recv:
                    env.dead[ptr] = (line, f"`{recv}.reset()` (this pointer "
                                     f"came from `{recv}.allocate`)")


# ---------------------------------------------------------------------------
# rng-order: an RNG draw (or derive_seed consumption) inside iteration over
# an unordered container makes the draw *sequence* depend on hash-table
# layout — the exact failure PR 1's byte-identical guarantee forbids. The
# legacy unordered-fold rule only sees folds into CSV/stats; this one sees
# the RNG stream itself.

_RNG_METHODS = {
    "uniform", "uniform_int", "exponential", "bernoulli", "pareto",
    "normal", "weighted_index", "shuffle", "split",
}


def _is_rng(tu: TranslationUnit, name: str) -> bool:
    t = tu.decl_type(name)
    return t in ("Rng", "dtn::Rng") or "rng" in name.lower()


@register
class RngOrderRule(Rule):
    rule_id = "rng-order"
    message = (
        "RNG draw inside iteration over an unordered container: the draw "
        "order — and therefore every downstream result — depends on hash-"
        "table layout; iterate a sorted key list or hoist the draws"
    )

    def check(self, tu, ctx):
        for loop in unordered_range_fors(tu):
            for stmt in loop.stmts():
                if self._stmt_draws(tu, stmt):
                    yield stmt.line, None
            for scope in loop.scopes():
                for recv, _m, _a, line in _find_calls(
                        scope.header, _RNG_METHODS):
                    if _is_rng(tu, recv):
                        yield line, None

    def _stmt_draws(self, tu, stmt: Stmt) -> bool:
        toks = stmt.tokens
        for i, tok in enumerate(toks):
            if tok.kind == "ident" and tok.text == "derive_seed" \
                    and i + 1 < len(toks) and toks[i + 1].text == "(":
                return True
        for recv, _method, _args, _line in _find_calls(toks, _RNG_METHODS):
            if _is_rng(tu, recv):
                return True
            # `services.rng().uniform(...)`: receiver is a call result;
            # look for an rng-ish identifier earlier in the chain
            if recv == "" or recv == ")":
                if any(t.kind == "ident" and "rng" in t.text.lower()
                       for t in toks):
                    return True
        return False


# ---------------------------------------------------------------------------
# unchecked-probability: a value produced by a registered probability
# function (Eqs. 2/4: path weights and reply probabilities live in [0,1])
# that is stored into longer-lived state or returned without a reachable
# DTN_CHECK_PROB / clamp on it. Comparisons and local arithmetic are fine —
# the hazard is an unchecked raw value escaping to where the producer's
# internal contract can no longer vouch for it.

_PROB_FUNCTIONS = {
    "hypoexp_cdf", "hypoexp_cdf_closed_form", "hypoexp_cdf_uniformization",
    "reply_probability", "weight_at", "path_weight",
}


@register
class UncheckedProbabilityRule(Rule):
    rule_id = "unchecked-probability"
    message = ""

    def check(self, tu, ctx):
        for fn in tu.functions():
            # tracked name -> (line, producer function)
            env: dict[str, tuple[int, str]] = {}
            for stmt in fn.stmts():
                self._stmt(stmt, env)
                yield from self._escapes(stmt, env)

    @staticmethod
    def _init_producer(tokens):
        for i, tok in enumerate(tokens):
            if tok.kind == "ident" and tok.text in _PROB_FUNCTIONS \
                    and i + 1 < len(tokens) and tokens[i + 1].text == "(":
                return tok.text
        return None

    def _stmt(self, stmt: Stmt, env) -> None:
        toks = stmt.tokens
        texts = stmt.texts()

        # checks: DTN_CHECK_PROB(name) or a clamp mentioning name
        for i, tok in enumerate(toks):
            if tok.text in ("DTN_CHECK_PROB", "clamp") and i + 1 < len(toks) \
                    and toks[i + 1].text == "(":
                for t in toks[i + 1 :]:
                    if t.kind == "ident" and t.text in env:
                        env.pop(t.text)

        # track: `double p = <expr containing prob fn>(...)` or `p = ...`
        decl = parse_decl(toks)
        if decl is not None:
            producer = self._init_producer(decl.init)
            if producer is not None:
                env[decl.name] = (decl.line, producer)
            else:
                env.pop(decl.name, None)
        elif len(toks) >= 3 and toks[0].kind == "ident" and texts[1] == "=":
            producer = self._init_producer(toks[2:])
            if producer is not None:
                env[texts[0]] = (toks[0].line, producer)
            else:
                env.pop(texts[0], None)

    def _escapes(self, stmt: Stmt, env):
        toks = stmt.tokens
        texts = stmt.texts()
        # `return name;`
        if len(toks) >= 2 and texts[0] == "return" and texts[1] in env \
                and (len(toks) == 2 or texts[2] == ";"):
            line, producer = env.pop(texts[1])
            yield (stmt.line,
                   f"`{texts[1]}` holds the raw result of {producer}() "
                   f"(line {line}) and is returned without DTN_CHECK_PROB "
                   f"or a clamp; assert the Eq. 2/4 [0,1] contract before "
                   f"the value escapes this function")
        # `lhs.member = name;` / `lhs[i] = name;` — store into
        # longer-lived state
        if "=" in texts:
            eq = texts.index("=")
            rhs = [t for t in toks[eq + 1 :] if t.text != ";"]
            lhs = texts[:eq]
            if len(rhs) == 1 and rhs[0].kind == "ident" \
                    and rhs[0].text in env \
                    and any(x in lhs for x in (".", "->", "[")):
                line, producer = env.pop(rhs[0].text)
                yield (stmt.line,
                       f"`{rhs[0].text}` holds the raw result of "
                       f"{producer}() (line {line}) and is stored without "
                       f"DTN_CHECK_PROB or a clamp; assert the Eq. 2/4 "
                       f"[0,1] contract before the value escapes into "
                       f"longer-lived state")


# ---------------------------------------------------------------------------
# workspace-bracketing: begin/end pairs must match on every path through a
# function, including early returns — the PR 6 ContactWorkspace contract
# (its runtime DTN_CHECK aborts on reuse; this rule finds the path before
# it runs). The pair table is the extension point for future bracketed
# workspaces.

_BRACKET_PAIRS = [("begin_contact", "end_contact")]


@register
class WorkspaceBracketingRule(Rule):
    rule_id = "workspace-bracketing"
    message = ""

    def check(self, tu, ctx):
        for fn in tu.functions():
            for begin, end in _BRACKET_PAIRS:
                if not self._mentions(fn, begin):
                    continue
                findings = []
                state, returned = self._walk(fn.items, 0, begin, end,
                                             findings)
                if state > 0 and not returned:
                    findings.append(
                        (fn.line,
                         f"function `{fn.name}` can fall off the end with "
                         f"{begin}() still open: add the matching {end}()"))
                yield from findings

    @staticmethod
    def _mentions(fn: Scope, name: str) -> bool:
        return any(
            any(t.kind == "ident" and t.text == name for t in stmt.tokens)
            for stmt in fn.stmts()
        )

    def _walk(self, items, state, begin, end, findings):
        returned = False
        for kind, thing in branch_groups(items):
            if returned:
                break  # unreachable statements
            if kind == "branch":
                exits = []
                all_return = thing[-1].kind == "else"
                for branch in thing:
                    b_state, b_ret = self._walk(branch.items, state, begin,
                                                end, findings)
                    if not b_ret:
                        exits.append(b_state)
                        all_return = False
                if thing[-1].kind != "else":
                    exits.append(state)  # fall-through
                if exits and any(e != exits[0] for e in exits):
                    findings.append(
                        (thing[0].line,
                         f"{begin}()/{end}() bracketing differs across the "
                         f"branches of this conditional: one path leaves "
                         f"the workspace open"))
                state = exits[0] if exits else state
                returned = all_return
            elif isinstance(thing, Scope):
                if thing.kind == "lambda":
                    continue
                if thing.kind == "loop":
                    b_state, _ = self._walk(thing.items, state, begin, end,
                                            findings)
                    if b_state != state:
                        findings.append(
                            (thing.line,
                             f"each loop iteration must leave the "
                             f"{begin}()/{end}() bracket where it found "
                             f"it; this body changes it"))
                else:
                    state, returned = self._walk(thing.items, state, begin,
                                                 end, findings)
            else:
                state, returned = self._bracket_stmt(thing, state, begin,
                                                     end, findings)
        return state, returned

    def _bracket_stmt(self, stmt: Stmt, state, begin, end, findings):
        texts = stmt.texts()
        if "return" in texts and state > 0:
            findings.append(
                (stmt.line,
                 f"return with {begin}() still open: this early exit "
                 f"skips {end}(), and the next contact aborts on the "
                 f"workspace-reuse DTN_CHECK"))
        for i, t in enumerate(texts):
            if t == begin and i + 1 < len(texts) and texts[i + 1] == "(":
                if state > 0:
                    findings.append(
                        (stmt.line,
                         f"{begin}() while the previous bracket is still "
                         f"open (missing {end}() on this path)"))
                state += 1
            elif t == end and i + 1 < len(texts) and texts[i + 1] == "(":
                if state == 0:
                    findings.append(
                        (stmt.line, f"{end}() without a matching {begin}()"))
                else:
                    state -= 1
        returned = bool(texts) and texts[0] == "return"
        return state, returned


# ---------------------------------------------------------------------------
# daemon-snapshot-guard: the dtnd daemon (src/daemon/) publishes state to
# reader threads through exactly two channels — a snapshot pointer swapped
# under a short mutex, and atomic stream clocks. The naming convention makes
# the contract checkable: every cross-thread member is `shared_*_`, and any
# touch of one must either sit under a lock guard on the current path or go
# through an atomic member call (`.load(...)` / `.store(...)` etc.). A bare
# read compiles fine and usually works — until a reader tears a pointer the
# writer is mid-swap on. TSan catches the interleaving that happens to run;
# this rule catches the path before it runs.

_GUARD_TYPES = {"lock_guard", "scoped_lock", "unique_lock", "shared_lock"}
_ATOMIC_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_weak", "compare_exchange_strong",
}


def _is_shared_member(name: str) -> bool:
    # `shared_snapshot_`, `shared_ingest_clock_`, ... — the trailing
    # underscore keeps `shared_ptr`/`shared_lock` (type names) out.
    return name.startswith("shared_") and name.endswith("_")


@register
class DaemonSnapshotGuardRule(Rule):
    rule_id = "daemon-snapshot-guard"
    message = ""  # always per-finding

    def applies_to(self, rel_path):
        return rel_path.startswith("src/daemon/") or is_fixture(rel_path)

    def check(self, tu, ctx):
        for fn in tu.functions():
            findings = []
            self._walk(fn.items, False, findings)
            yield from findings

    def _walk(self, items, guarded, findings):
        """Walks one statement sequence. `guarded` is path state: a lock
        guard declared here protects the rest of THIS block and anything
        nested in it, and dies with the block — a guard taken inside a
        branch does not cover code after the conditional."""
        for item in items:
            if isinstance(item, Scope):
                if item.kind == "lambda":
                    # The body runs at call time; whatever guard is live at
                    # the definition site is long gone by then.
                    self._walk(item.items, False, findings)
                    continue
                if not guarded:
                    self._check_tokens(item.header, findings)
                self._walk(item.items, guarded, findings)
            else:
                if self._declares_guard(item):
                    guarded = True
                    continue
                if not guarded:
                    self._check_tokens(item.tokens, findings)

    @staticmethod
    def _declares_guard(stmt: Stmt) -> bool:
        return any(t.kind == "ident" and t.text in _GUARD_TYPES
                   for t in stmt.tokens)

    def _check_tokens(self, tokens, findings):
        for i, tok in enumerate(tokens):
            if tok.kind != "ident" or not _is_shared_member(tok.text):
                continue
            if self._is_atomic_call(tokens, i):
                continue
            findings.append(
                (tok.line,
                 f"`{tok.text}` is daemon shared state touched outside a "
                 f"lock guard and not through an atomic member call; a "
                 f"reader can observe a torn update — copy it under "
                 f"std::lock_guard (Daemon::snapshot()/publish()) or use "
                 f".load()/.store() with explicit memory order"))

    @staticmethod
    def _is_atomic_call(tokens, i) -> bool:
        return (i + 3 < len(tokens)
                and tokens[i + 1].text in (".", "->")
                and tokens[i + 2].kind == "ident"
                and tokens[i + 2].text in _ATOMIC_METHODS
                and tokens[i + 3].text == "(")


# ---------------------------------------------------------------------------
# hot-loop-alloc: allocating-container construction inside loop bodies on
# the engine fast paths. Generalizes the PR 5 vector-in-loop rule (which
# stays for the legacy shim) to every allocating std container and to
# src/sim/, with real scope accuracy: only declarations of owning objects
# in loop bodies fire — references, pointers, and containers hoisted out
# of the loop do not. The src/graph/ scope also covers the sparse metric
# engine (sparse_metric.cpp): its per-landmark Dijkstra loop must reuse
# one PathWorkspace across all landmark roots, not construct per-root
# frontier containers.

_ALLOC_CONTAINERS = {
    "vector", "deque", "list", "map", "set", "multimap", "multiset",
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "basic_string",
}


@register
class HotLoopAllocRule(Rule):
    rule_id = "hot-loop-alloc"
    message = (
        "allocating container constructed inside a loop body on an engine "
        "fast path; hoist it into a PathWorkspace / ContactWorkspace "
        "scratch that is reused across iterations (PR 5/6 contract, and "
        "the sparse landmark loop reuses one workspace across roots: the "
        "hot loops run allocation-free)"
    )

    def applies_to(self, rel_path):
        return rel_path.startswith(("src/graph/", "src/sim/")) \
            or is_fixture(rel_path)

    def check(self, tu, ctx):
        for line, _word in container_decls_in_loops(tu, _ALLOC_CONTAINERS):
            yield line, None
        # raw `new` in a loop body is the same hazard without a container
        for scope in tu.root.scopes():
            if scope.kind != "loop":
                continue
            for item in scope.items:
                if isinstance(item, Stmt) and any(
                        t.kind == "ident" and t.text == "new"
                        for t in item.tokens):
                    yield item.line, (
                        "raw `new` inside a loop body on an engine fast "
                        "path; use an Arena / SlabPool (src/common/arena.h)")

"""Rule framework for dtnlint: findings, allowlist, runner, JSON output.

A rule is a subclass of Rule registered with @register. Each rule gets the
parsed TranslationUnit plus a RuleContext and emits Findings; the engine
handles allowlist suppression (same format as the PR 2 lint:
`path:rule[:substring]  # why`), reporting, `--json` artifacts, and the
allowlist staleness audit (an entry that suppresses nothing on a full-tree
run is itself a finding — a reviewed exception must keep matching the line
it reviewed, or it is a mute button for code that no longer exists).
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from cpp import TranslationUnit

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_ALLOWLIST = REPO_ROOT / "tools" / "lint_allowlist.txt"

JSON_SCHEMA_VERSION = 1


@dataclass
class Finding:
    file: str  # repo-relative posix path
    line: int
    rule: str
    snippet: str
    message: str
    suppressed_by: int | None = None  # allowlist entry line number

    def as_json(self) -> dict:
        out = {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "snippet": self.snippet,
            "message": self.message,
        }
        if self.suppressed_by is not None:
            out["suppressed_by_allowlist_line"] = self.suppressed_by
        return out


@dataclass
class AllowlistEntry:
    path: str
    rule: str
    substring: str | None
    lineno: int  # line in the allowlist file, for staleness reporting
    hits: int = 0


def load_allowlist(path: Path) -> list[AllowlistEntry]:
    entries: list[AllowlistEntry] = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(":", 2)
        if len(parts) < 2:
            print(f"dtnlint: bad allowlist entry at {path}:{lineno}: {raw!r}",
                  file=sys.stderr)
            sys.exit(2)
        entries.append(
            AllowlistEntry(
                path=parts[0].strip(),
                rule=parts[1].strip(),
                substring=parts[2].strip() if len(parts) == 3 else None,
                lineno=lineno,
            )
        )
    return entries


@dataclass
class RuleContext:
    rel_path: str
    lines: list[str]  # raw source lines, for snippets

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class. Subclasses set `rule_id` and `message`, and implement
    check(tu, ctx) yielding (line, message-or-None) pairs or Findings."""

    rule_id: str = ""
    message: str = ""
    #: legacy rules came from lint_determinism.py; the compat shim runs
    #: exactly the legacy set.
    legacy: bool = False

    def applies_to(self, rel_path: str) -> bool:
        return True

    def check(self, tu: TranslationUnit, ctx: RuleContext):
        raise NotImplementedError

    def run(self, tu: TranslationUnit, ctx: RuleContext) -> list[Finding]:
        if not self.applies_to(ctx.rel_path):
            return []
        findings = []
        for hit in self.check(tu, ctx):
            if isinstance(hit, Finding):
                findings.append(hit)
                continue
            line, msg = hit
            findings.append(
                Finding(
                    file=ctx.rel_path,
                    line=line,
                    rule=self.rule_id,
                    snippet=ctx.snippet(line),
                    message=msg or self.message,
                )
            )
        return findings


_REGISTRY: dict[str, Rule] = {}


def register(cls):
    rule = cls()
    assert rule.rule_id and rule.rule_id not in _REGISTRY, rule.rule_id
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    return list(_REGISTRY.values())


def legacy_rules() -> list[Rule]:
    return [r for r in _REGISTRY.values() if r.legacy]


def rules_by_id(ids) -> list[Rule]:
    missing = [i for i in ids if i not in _REGISTRY]
    if missing:
        print(f"dtnlint: unknown rule id(s): {', '.join(missing)}",
              file=sys.stderr)
        sys.exit(2)
    return [_REGISTRY[i] for i in ids]


# Files whose name marks them as lint fixtures: every rule treats them as
# in-scope regardless of its directory filter, so self-test fixtures can
# exercise path-restricted rules from tests/lint/.
def is_fixture(rel_path: str) -> bool:
    name = Path(rel_path).name
    return name.startswith("fixture_") or "/fixtures/dtnlint/" in rel_path


@dataclass
class RunResult:
    findings: list[Finding] = field(default_factory=list)       # unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    stale_entries: list[AllowlistEntry] = field(default_factory=list)


def rel_to_repo(path: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return resolved.as_posix()


def lint_paths(paths, rules, allowlist, audit_allowlist=False) -> RunResult:
    result = RunResult()
    for path in paths:
        path = Path(path)
        rel = rel_to_repo(path)
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError) as err:
            print(f"dtnlint: cannot read {rel}: {err}", file=sys.stderr)
            sys.exit(2)
        tu = TranslationUnit(rel, text)
        ctx = RuleContext(rel_path=rel, lines=text.splitlines())
        result.files += 1
        for rule in rules:
            for finding in rule.run(tu, ctx):
                entry = _match_allowlist(allowlist, finding)
                if entry is not None:
                    entry.hits += 1
                    finding.suppressed_by = entry.lineno
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)

    if audit_allowlist:
        active = {r.rule_id for r in rules}
        for entry in allowlist:
            if entry.rule in active and entry.hits == 0:
                result.stale_entries.append(entry)
                result.findings.append(
                    Finding(
                        file=rel_to_repo(DEFAULT_ALLOWLIST),
                        line=entry.lineno,
                        rule="stale-allowlist",
                        snippet=f"{entry.path}:{entry.rule}"
                        + (f":{entry.substring}" if entry.substring else ""),
                        message="allowlist entry suppressed nothing on this "
                        "run: the exception it reviewed no longer exists — "
                        "delete the entry (a stale entry is a mute button "
                        "waiting for new code to hide under)",
                    )
                )
    result.findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return result


def _match_allowlist(entries, finding: Finding):
    for e in entries:
        if e.path != finding.file or e.rule != finding.rule:
            continue
        if e.substring is None or e.substring in finding.snippet:
            return e
    return None


def default_targets() -> list[Path]:
    targets = sorted((REPO_ROOT / "src").rglob("*.cpp"))
    targets += sorted((REPO_ROOT / "src").rglob("*.h"))
    targets += sorted((REPO_ROOT / "tools").glob("*.cpp"))
    return targets


def report(result: RunResult, rules) -> int:
    for f in result.findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.snippet}")
        print(f"    {f.message}")
    if result.findings:
        print(
            f"dtnlint: {len(result.findings)} finding(s) across "
            f"{result.files} file(s); fix them or add a reviewed entry to "
            f"{DEFAULT_ALLOWLIST.relative_to(REPO_ROOT)}"
        )
        return 1
    print(
        f"dtnlint: OK ({result.files} files, {len(rules)} rules, "
        f"{len(result.suppressed)} allowlisted exception(s))"
    )
    return 0


def write_json(result: RunResult, rules, out_path: str) -> None:
    record = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "dtnlint",
        "rules": sorted(r.rule_id for r in rules),
        "counts": {
            "files": result.files,
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
        },
        "findings": [f.as_json() for f in result.findings],
        "suppressed": [f.as_json() for f in result.suppressed],
    }
    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    if out_path == "-":
        sys.stdout.write(payload)
    else:
        Path(out_path).write_text(payload)

"""dtnlint --self-test: prove every rule catches its seeded violations and
stays silent on the matching clean fixture.

Fixture contract (tests/lint/fixtures/dtnlint/): for every non-legacy rule
`some-rule` there is a `some_rule_bad.cpp` and a `some_rule_good.cpp`.

  * bad fixture: at least one seeded violation of that rule, and — run
    under the FULL rule set — every finding it produces belongs to that
    rule (a bad fixture may not smuggle violations of other rules, or a
    regression in those would hide here).
  * good fixture: zero findings under the full rule set. Each good
    fixture repeats its rule's trigger constructs inside comments and
    string literals, so comment/string immunity is re-proven per rule.

The allowlist machinery is self-tested too: a synthetic entry must
suppress a bad-fixture finding, and a synthetic entry matching nothing
must be reported by the staleness audit.
"""

from __future__ import annotations

from pathlib import Path

import engine


def _flow_rules():
    return [r for r in engine.all_rules() if not r.legacy]


def run(fixture_dir: Path) -> int:
    failures: list[str] = []
    if not fixture_dir.is_dir():
        print(f"dtnlint self-test: no fixture directory {fixture_dir}")
        return 1

    all_rules = engine.all_rules()
    flow = _flow_rules()
    if not flow:
        print("dtnlint self-test: no non-legacy rules registered")
        return 1

    for rule in flow:
        base = rule.rule_id.replace("-", "_")
        bad = fixture_dir / f"{base}_bad.cpp"
        good = fixture_dir / f"{base}_good.cpp"
        for f in (bad, good):
            if not f.exists():
                failures.append(f"missing fixture {f}")
        if not bad.exists() or not good.exists():
            continue

        bad_result = engine.lint_paths([bad], all_rules, [])
        mine = [f for f in bad_result.findings if f.rule == rule.rule_id]
        others = [f for f in bad_result.findings if f.rule != rule.rule_id]
        if not mine:
            failures.append(
                f"{bad.name}: rule {rule.rule_id!r} caught none of its "
                f"seeded violations")
        for f in others:
            failures.append(
                f"{bad.name}:{f.line}: unexpected {f.rule!r} finding in a "
                f"{rule.rule_id} fixture: {f.snippet}")

        good_result = engine.lint_paths([good], all_rules, [])
        for f in good_result.findings:
            failures.append(
                f"{good.name}:{f.line}: false positive {f.rule!r}: "
                f"{f.snippet}")

    # Allowlist suppression + staleness audit, on the first bad fixture
    # that produced findings.
    for rule in flow:
        bad = fixture_dir / f"{rule.rule_id.replace('-', '_')}_bad.cpp"
        if not bad.exists():
            continue
        result = engine.lint_paths([bad], all_rules, [])
        if not result.findings:
            continue
        target = result.findings[0]
        entries = [
            engine.AllowlistEntry(path=target.file, rule=target.rule,
                                  substring=None, lineno=1),
            engine.AllowlistEntry(path="no/such/file.cpp", rule=target.rule,
                                  substring=None, lineno=2),
        ]
        audited = engine.lint_paths([bad], all_rules, entries,
                                    audit_allowlist=True)
        if any(f.rule == target.rule and f.file == target.file
               for f in audited.findings):
            failures.append(
                f"allowlist failed to suppress {target.rule!r} in {bad.name}")
        stale = [f for f in audited.findings if f.rule == "stale-allowlist"]
        if len(stale) != 1:
            failures.append(
                f"staleness audit reported {len(stale)} stale entries on "
                f"{bad.name}; expected exactly the synthetic unused entry")
        break
    else:
        failures.append("no bad fixture produced findings for the "
                        "allowlist self-test")

    if failures:
        for f in failures:
            print(f"dtnlint self-test FAIL: {f}")
        return 1
    print(f"dtnlint self-test: OK ({len(flow)} rules x good/bad fixtures, "
          f"allowlist suppression + staleness audit)")
    return 0

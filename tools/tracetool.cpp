// tracetool — inspect, convert and validate contact traces.
//
// Subcommands:
//   stats <file>           Table-I-style summary plus contact-duration and
//                          inter-contact percentiles
//   convert <in> <out>     read any supported format, write .dtntrace or
//                          CSV (chosen by the output extension)
//   validate <file>        strict parse with file:line diagnostics; exit 0
//                          only when the file is flawless
//   --self-test            in-memory round-trip checks (registered in ctest)
//
// Input formats are sniffed from content (CSV, ONE connectivity report,
// iMote pairwise log, .dtntrace binary); --format forces one. tracetool
// never touches sidecar caches unless --cache is given, so it is safe to
// point at read-only datasets.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "daemon/rate_estimator.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "traceio/binary.h"
#include "traceio/cache.h"
#include "traceio/cursor.h"
#include "traceio/reader.h"

using namespace dtn;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: tracetool <command> [options]\n"
      "  tracetool stats <file>         print a trace summary\n"
      "                                 --pairs: per-pair inter-contact\n"
      "                                 table (count, mean/EWMA gap, rate)\n"
      "  tracetool convert <in> <out>   convert between formats; the output\n"
      "                                 extension picks .dtntrace or CSV\n"
      "  tracetool validate <file>      strict parse, file:line diagnostics\n"
      "  tracetool synth <out>          generate a community-structured\n"
      "                                 scale trace (O(edges), DESIGN.md\n"
      "                                 \xc2\xa7""14); extension picks the format\n"
      "  tracetool --self-test          run built-in round-trip checks\n"
      "options:\n"
      "  --format F   force the input format: csv|one|imote|binary\n"
      "  --cache      allow the .dtntrace sidecar cache (default: bypass)\n"
      "  --strict     strict parsing for stats/convert (validate always is)\n"
      "synth options (0 keeps the scale_preset value):\n"
      "  --nodes N --communities C --degree D --days X --seed S\n");
  std::exit(2);
}

struct ToolOptions {
  std::string command;
  std::vector<std::string> paths;
  std::string format;
  bool use_cache = false;
  bool strict = false;
  bool pairs = false;
  // synth knobs; 0 keeps the scale_preset default for that field.
  NodeId synth_nodes = 10000;
  int synth_communities = 0;
  double synth_degree = 0.0;
  double synth_days = 0.0;
  std::uint64_t synth_seed = 0;
};

ToolOptions parse_args(int argc, char** argv) {
  ToolOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format") {
      if (i + 1 >= argc) usage();
      options.format = argv[++i];
    } else if (arg == "--cache") {
      options.use_cache = true;
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--pairs") {
      options.pairs = true;
    } else if (arg == "--nodes") {
      if (i + 1 >= argc) usage();
      options.synth_nodes = static_cast<NodeId>(std::atol(argv[++i]));
    } else if (arg == "--communities") {
      if (i + 1 >= argc) usage();
      options.synth_communities = std::atoi(argv[++i]);
    } else if (arg == "--degree") {
      if (i + 1 >= argc) usage();
      options.synth_degree = std::atof(argv[++i]);
    } else if (arg == "--days") {
      if (i + 1 >= argc) usage();
      options.synth_days = std::atof(argv[++i]);
    } else if (arg == "--seed") {
      if (i + 1 >= argc) usage();
      options.synth_seed =
          static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--self-test") {
      options.command = "self-test";
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (options.command.empty()) {
      options.command = arg;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.command.empty()) usage();
  return options;
}

ContactTrace load(const ToolOptions& options, const std::string& path) {
  traceio::LoadOptions load_options;
  load_options.format = options.format;
  load_options.read.strict = options.strict;
  load_options.cache = options.use_cache ? traceio::CachePolicy::kUse
                                         : traceio::CachePolicy::kBypass;
  return traceio::load_trace_any(path, load_options);
}

void print_percentiles(const char* label, std::vector<double> samples) {
  if (samples.empty()) {
    std::printf("%s: none\n", label);
    return;
  }
  std::printf("%s: p50 %.1fs  p90 %.1fs  p99 %.1fs\n", label,
              percentile(samples, 0.50), percentile(samples, 0.90),
              percentile(samples, 0.99));
}

/// Formats the per-pair inter-contact table — count, mean gap, EWMA gap and
/// the implied meeting rate — through the daemon's EwmaRateEstimator, so
/// what tracetool reports is exactly what a dtnd instance warm-started from
/// this trace would serve. Output order is canonical (a, b) ascending and
/// every number prints through a fixed format, so the bytes golden-test.
void write_pair_rates(const ContactTrace& trace, std::ostream& out) {
  daemon::EwmaRateEstimator estimator(trace.node_count());
  estimator.warm_start(trace);
  out << "pair  contacts  mean_gap_s  ewma_gap_s  rate_per_day\n";
  for (const daemon::PairRateSummary& s : estimator.summaries(1)) {
    char line[160];
    std::snprintf(line, sizeof(line), "%d-%d  %u  %.3f  %.3f  %.6f\n", s.a,
                  s.b, s.count, s.mean_gap, s.ewma_gap, s.rate * 86400.0);
    out << line;
  }
}

/// Node-degree (distinct partners) and per-pair contact-rate distribution
/// summaries. These are the two numbers the sparse metric engine is tuned
/// by (DESIGN.md §14): the degree distribution bounds the Dijkstra ball a
/// landmark explores, and the pair-rate distribution locates a weight
/// floor that prunes noise pairs without touching the signal. Fixed
/// formats and canonical pair order, so the bytes golden-test.
void write_trace_distributions(const ContactTrace& trace, std::ostream& out) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(trace.events().size());
  for (const ContactEvent& e : trace.events()) {
    pairs.emplace_back(std::min(e.a, e.b), std::max(e.a, e.b));
  }
  std::sort(pairs.begin(), pairs.end());

  std::vector<double> degree(static_cast<std::size_t>(trace.node_count()),
                             0.0);
  std::vector<double> rates;
  const double span_days = std::max(trace.duration(), 1.0) / 86400.0;
  for (std::size_t i = 0; i < pairs.size();) {
    std::size_t j = i;
    while (j < pairs.size() && pairs[j] == pairs[i]) ++j;
    degree[static_cast<std::size_t>(pairs[i].first)] += 1.0;
    degree[static_cast<std::size_t>(pairs[i].second)] += 1.0;
    rates.push_back(static_cast<double>(j - i) / span_days);
    i = j;
  }

  char line[200];
  RunningStats deg;
  for (double d : degree) deg.add(d);
  if (degree.empty()) {
    out << "node degree:   none\n";
  } else {
    std::snprintf(line, sizeof(line),
                  "node degree:   min %.0f  p50 %.1f  p90 %.1f  max %.0f  "
                  "mean %.3f\n",
                  deg.min(), percentile(degree, 0.50), percentile(degree, 0.90),
                  deg.max(), deg.mean());
    out << line;
  }
  if (rates.empty()) {
    out << "pair rate/day: none\n";
  } else {
    RunningStats rs;
    for (double r : rates) rs.add(r);
    std::snprintf(line, sizeof(line),
                  "pair rate/day: pairs %zu  p50 %.3f  p90 %.3f  p99 %.3f  "
                  "max %.3f\n",
                  rates.size(), percentile(rates, 0.50),
                  percentile(rates, 0.90), percentile(rates, 0.99), rs.max());
    out << line;
  }
}

int cmd_stats(const ToolOptions& options) {
  if (options.paths.size() != 1) usage();
  const ContactTrace trace = load(options, options.paths[0]);
  const TraceSummary summary = summarize(trace);

  std::printf("name:               %s\n", summary.name.c_str());
  std::printf("devices:            %d\n", summary.devices);
  std::printf("contacts:           %zu\n", summary.internal_contacts);
  std::printf("span:               %.1f .. %.1f s (%.2f days)\n",
              trace.start_time(), trace.end_time(), summary.duration_days);
  std::printf("pairwise frequency: %.3f contacts/pair/day (met pairs)\n",
              summary.pairwise_contact_frequency_per_day);
  std::printf("pair coverage:      %.1f%% of pairs ever met\n",
              100.0 * summary.pair_coverage);

  std::vector<double> durations;
  std::vector<double> gaps;
  durations.reserve(trace.events().size());
  double prev_start = trace.start_time();
  double total_contact_time = 0.0;
  for (const ContactEvent& e : trace.events()) {
    durations.push_back(e.duration);
    total_contact_time += e.duration;
    if (e.start > prev_start) gaps.push_back(e.start - prev_start);
    prev_start = e.start;
  }
  std::printf("total contact time: %.1f hours\n", total_contact_time / 3600.0);
  print_percentiles("contact duration  ", std::move(durations));
  print_percentiles("inter-contact gap ", std::move(gaps));
  {
    std::ostringstream dist;
    write_trace_distributions(trace, dist);
    std::fputs(dist.str().c_str(), stdout);
  }
  if (options.pairs) {
    std::ostringstream pairs;
    write_pair_rates(trace, pairs);
    std::fputs(pairs.str().c_str(), stdout);
  }
  return 0;
}

/// Writes `trace` to `out_path`, picking .dtntrace binary or CSV by the
/// extension; returns true for binary.
bool save_trace_by_extension(const ContactTrace& trace,
                             const std::string& out_path) {
  const bool binary_out =
      out_path.size() >= 9 &&
      out_path.compare(out_path.size() - 9, 9, ".dtntrace") == 0;
  if (binary_out) {
    traceio::save_trace_binary(trace, out_path);
  } else {
    save_trace_csv(trace, out_path);
  }
  return binary_out;
}

int cmd_convert(const ToolOptions& options) {
  if (options.paths.size() != 2) usage();
  const std::string& in_path = options.paths[0];
  const std::string& out_path = options.paths[1];
  const ContactTrace trace = load(options, in_path);
  const bool binary_out = save_trace_by_extension(trace, out_path);
  std::printf("%s: %d nodes, %zu contacts -> %s (%s)\n", in_path.c_str(),
              trace.node_count(), trace.events().size(), out_path.c_str(),
              binary_out ? "binary" : "csv");
  return 0;
}

int cmd_synth(const ToolOptions& options) {
  if (options.paths.size() != 1) usage();
  const std::string& out_path = options.paths[0];
  ScaleSyntheticConfig config = scale_preset(options.synth_nodes);
  if (options.synth_communities > 0) {
    config.community_count = options.synth_communities;
  }
  if (options.synth_degree > 0.0) config.mean_degree = options.synth_degree;
  if (options.synth_days > 0.0) config.duration = days(options.synth_days);
  if (options.synth_seed != 0) config.seed = options.synth_seed;
  const ContactTrace trace = generate_scale_trace(config);
  const bool binary_out = save_trace_by_extension(trace, out_path);
  std::printf(
      "%s: %d nodes, %d communities, %zu contacts, %.2f days -> %s (%s)\n",
      config.name.c_str(), trace.node_count(), config.community_count,
      trace.events().size(), config.duration / 86400.0, out_path.c_str(),
      binary_out ? "binary" : "csv");
  return 0;
}

int cmd_validate(const ToolOptions& options) {
  if (options.paths.size() != 1) usage();
  ToolOptions strict = options;
  strict.strict = true;
  strict.use_cache = false;  // validate must read the file itself
  const ContactTrace trace = load(strict, options.paths[0]);
  std::printf("%s: OK (%d nodes, %zu contacts, %.2f days)\n",
              options.paths[0].c_str(), trace.node_count(),
              trace.events().size(), trace.duration() / 86400.0);
  return 0;
}

// ---- self test --------------------------------------------------------

#define TT_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "self-test failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                     \
      return 1;                                                          \
    }                                                                    \
  } while (0)

ContactTrace self_test_trace() {
  std::vector<ContactEvent> events;
  events.push_back({10.0, 120.5, 0, 3});
  events.push_back({10.0, 30.0, 1, 2});
  events.push_back({400.25, 60.0, 0, 1});
  events.push_back({1000.0, 5.0, 2, 3});
  return ContactTrace(5, std::move(events), "selftest");
}

int run_self_test() {
  const ContactTrace trace = self_test_trace();

  // CSV text round-trip: write, re-read, write again — byte-identical.
  std::ostringstream csv1;
  write_trace_csv(trace, csv1);
  std::istringstream csv_in(csv1.str());
  const ContactTrace csv_back =
      read_trace_csv(csv_in, trace.name(), trace.node_count());
  std::ostringstream csv2;
  write_trace_csv(csv_back, csv2);
  TT_CHECK(csv1.str() == csv2.str());

  // Binary round-trip preserves every field exactly.
  std::ostringstream bin;
  traceio::write_trace_binary(trace, bin);
  std::istringstream bin_in(bin.str());
  const ContactTrace bin_back =
      traceio::read_trace_binary(bin_in, "selftest.dtntrace");
  TT_CHECK(bin_back.name() == trace.name());
  TT_CHECK(bin_back.node_count() == trace.node_count());
  TT_CHECK(bin_back.events() == trace.events());

  // A flipped payload byte must be rejected, not silently accepted.
  std::string corrupt = bin.str();
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
  std::istringstream corrupt_in(corrupt);
  bool threw = false;
  try {
    traceio::read_trace_binary(corrupt_in, "corrupt.dtntrace");
  } catch (const std::exception&) {
    threw = true;
  }
  TT_CHECK(threw);

  // ONE connectivity report: up/down pairs become contacts.
  std::istringstream one_in(
      "0.0 CONN 7 3 up\n10.0 CONN 7 3 down\n5.0 CONN 3 9 up\n"
      "25.0 CONN 3 9 down\n");
  const traceio::TraceReader* one = traceio::reader_for_format("one");
  TT_CHECK(one != nullptr);
  const ContactTrace one_trace = one->read(one_in, "one", "one.txt", {});
  TT_CHECK(one_trace.node_count() == 3);  // raw {3,7,9} -> dense {0,1,2}
  TT_CHECK(one_trace.events().size() == 2);

  // iMote log: overlapping sightings merge, clocks normalize to t=0.
  std::istringstream imote_in("20 30 100 160\n20 30 150 200\n41 20 120 130\n");
  const traceio::TraceReader* imote = traceio::reader_for_format("imote");
  TT_CHECK(imote != nullptr);
  const ContactTrace imote_trace =
      imote->read(imote_in, "imote", "imote.txt", {});
  TT_CHECK(imote_trace.events().size() == 2);
  TT_CHECK(imote_trace.start_time() == 0.0);

  // stats --pairs golden: the per-pair table through the daemon estimator,
  // hand-computed. Pair 0-1 gaps {60, 120}: EWMA(0.125) = 0.125*120 +
  // 0.875*60 = 67.5, mean 90. Pair 1-2 has a duplicate timestamp (one
  // meeting reported twice): the zero gap bumps the count only, so the
  // single positive gap 300 is both mean and EWMA. Pair 0-2 has a lone
  // contact: no inter-contact sample, rate 0.
  std::vector<ContactEvent> pair_events;
  pair_events.push_back({0.0, 10.0, 0, 1});
  pair_events.push_back({30.0, 10.0, 0, 2});
  pair_events.push_back({60.0, 10.0, 0, 1});
  pair_events.push_back({100.0, 10.0, 1, 2});
  pair_events.push_back({100.0, 10.0, 1, 2});
  pair_events.push_back({180.0, 10.0, 0, 1});
  pair_events.push_back({400.0, 10.0, 1, 2});
  const ContactTrace pair_trace(3, std::move(pair_events), "pairs");
  std::ostringstream pair_out;
  write_pair_rates(pair_trace, pair_out);
  const std::string pair_golden =
      "pair  contacts  mean_gap_s  ewma_gap_s  rate_per_day\n"
      "0-1  3  90.000  67.500  1280.000000\n"
      "0-2  1  0.000  0.000  0.000000\n"
      "1-2  3  150.000  300.000  288.000000\n";
  TT_CHECK(pair_out.str() == pair_golden);

  // stats distributions golden, hand-computed on the same trace. Every
  // node has two distinct partners. Span = 410 s (last contact *end*), so
  // pair 0-1 with 3 contacts runs at 3 * 86400 / 410 = 632.195
  // contacts/day, pair 0-2 at 210.732, pair 1-2 at 632.195: sorted rates
  // {210.7, 632.2, 632.2} put every reported percentile at 632.195.
  std::ostringstream dist_out;
  write_trace_distributions(pair_trace, dist_out);
  const std::string dist_golden =
      "node degree:   min 2  p50 2.0  p90 2.0  max 2  mean 2.000\n"
      "pair rate/day: pairs 3  p50 632.195  p90 632.195  p99 632.195  "
      "max 632.195\n";
  TT_CHECK(dist_out.str() == dist_golden);

  // synth path: the scale generator is deterministic in the seed and its
  // CSV round-trips byte-identically.
  ScaleSyntheticConfig scale = scale_preset(200);
  scale.duration = days(0.5);
  const ContactTrace scale_a = generate_scale_trace(scale);
  const ContactTrace scale_b = generate_scale_trace(scale);
  TT_CHECK(scale_a.node_count() == 200);
  TT_CHECK(!scale_a.events().empty());
  TT_CHECK(scale_a.events() == scale_b.events());
  std::ostringstream scale_csv;
  write_trace_csv(scale_a, scale_csv);
  std::istringstream scale_csv_in(scale_csv.str());
  const ContactTrace scale_back =
      read_trace_csv(scale_csv_in, scale_a.name(), scale_a.node_count());
  std::ostringstream scale_csv2;
  write_trace_csv(scale_back, scale_csv2);
  TT_CHECK(scale_csv.str() == scale_csv2.str());

  // Streaming cursor == materialized vector.
  std::istringstream bin_in2(bin.str());
  traceio::BinaryDecoder decoder(bin_in2, "selftest.dtntrace");
  ContactEvent event;
  std::vector<ContactEvent> streamed;
  while (decoder.next(event)) streamed.push_back(event);
  TT_CHECK(streamed == trace.events());

  std::printf("tracetool self-test: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ToolOptions options = parse_args(argc, argv);
  try {
    if (options.command == "stats") return cmd_stats(options);
    if (options.command == "convert") return cmd_convert(options);
    if (options.command == "validate") return cmd_validate(options);
    if (options.command == "synth") return cmd_synth(options);
    if (options.command == "self-test") return run_self_test();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tracetool: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "tracetool: unknown command '%s'\n",
               options.command.c_str());
  usage();
}

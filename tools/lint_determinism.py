#!/usr/bin/env python3
"""Determinism lint for the dtncache source tree — compatibility shim.

The seven PR 2/PR 5 rules now live in tools/dtnlint/ (rules_legacy.py),
re-hosted on a real C++ lexer and structural parser instead of the
line-regex heuristics this file used to carry. The lexer closes a whole
false-positive class: nothing can fire inside a comment, a string/char
literal, a raw string, or a preprocessor line (regression fixture:
tests/lint/fixture_comment_immunity.cpp). This shim preserves the old
command line, output shape, and exit codes, and runs exactly the legacy
rule set — the five new flow-aware rules run under `python3 tools/dtnlint`.

  rule id            construct
  -----------------  ----------------------------------------------------
  libc-rand          rand(), srand(), std::rand — hidden-global libc RNG
  random-device      std::random_device — hardware entropy
  wall-clock-seed    time(nullptr) / time(NULL) / time(0)
  chrono-now         *_clock::now() outside designated timing code
  fs-mtime           filesystem last_write_time()
  unordered-fold     range-for over an unordered container in a function
                     that writes CSV or folds statistics
  vector-in-loop     std::vector declared in a loop body in src/graph/

False-positive escape hatch: tools/lint_allowlist.txt, shared with dtnlint
(`path:rule[:substring]  # why`; every entry is a reviewed exception).

Usage:
  tools/lint_determinism.py                 lint src/ and tools/*.cpp
  tools/lint_determinism.py FILE [FILE...]  lint specific files
  tools/lint_determinism.py --self-test DIR run against the lint fixtures
                                            in DIR (tests/lint)

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "dtnlint"))

import engine  # noqa: E402
import rules_legacy  # noqa: E402,F401  (import registers the legacy rules)

REPO_ROOT = engine.REPO_ROOT
DEFAULT_ALLOWLIST = engine.DEFAULT_ALLOWLIST

LEGACY_RULE_IDS = sorted(r.rule_id for r in engine.legacy_rules())


def report(result) -> int:
    for f in result.findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.snippet}")
        print(f"    {f.message}")
    if result.findings:
        print(
            f"lint_determinism: {len(result.findings)} finding(s); fix them "
            f"or add a reviewed entry to "
            f"{DEFAULT_ALLOWLIST.relative_to(REPO_ROOT)}"
        )
        return 1
    print("lint_determinism: OK")
    return 0


def self_test(fixture_dir: Path) -> int:
    rules = engine.legacy_rules()
    banned = fixture_dir / "fixture_banned.cpp"
    clean = fixture_dir / "fixture_clean.cpp"
    immune = fixture_dir / "fixture_comment_immunity.cpp"
    allowlisted = fixture_dir / "fixture_allowlisted.cpp"
    fixture_allowlist = fixture_dir / "fixture_allowlist.txt"
    for f in (banned, clean, immune, allowlisted, fixture_allowlist):
        if not f.exists():
            print(f"self-test: missing fixture {f}", file=sys.stderr)
            return 1

    failures = []

    result = engine.lint_paths([banned], rules, [])
    tripped = {f.rule for f in result.findings}
    for rule_id in LEGACY_RULE_IDS:
        if rule_id not in tripped:
            failures.append(f"banned fixture did not trip rule {rule_id!r}")

    for clean_fixture in (clean, immune):
        result = engine.lint_paths([clean_fixture], rules, [])
        for f in result.findings:
            failures.append(
                f"{clean_fixture.name} tripped {f.rule!r} at "
                f"{f.file}:{f.line}"
            )

    # The allowlisted fixture contains one banned hit per entry in the
    # fixture allowlist: with it loaded, everything must be suppressed and
    # every entry must have suppressed something (a fixture-level staleness
    # check); without it, something must fire.
    entries = engine.load_allowlist(fixture_allowlist)
    result = engine.lint_paths([allowlisted], rules, entries)
    for f in result.findings:
        failures.append(
            f"allowlist failed to suppress {f.rule!r} at {f.file}:{f.line}"
        )
    for e in entries:
        if e.hits == 0:
            failures.append(
                f"fixture allowlist entry {e.path}:{e.rule} suppressed "
                f"nothing (stale)"
            )
    result = engine.lint_paths([allowlisted], rules, [])
    if not result.findings:
        failures.append("allowlisted fixture contains no hits at all")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print("lint_determinism self-test: OK")
    return 0


def main(argv) -> int:
    if len(argv) >= 2 and argv[1] == "--self-test":
        if len(argv) != 3:
            print("usage: lint_determinism.py --self-test DIR", file=sys.stderr)
            return 2
        return self_test(Path(argv[2]))

    targets = [Path(a) for a in argv[1:]] or engine.default_targets()
    for target in targets:
        if not target.exists():
            print(f"lint_determinism: no such file: {target}", file=sys.stderr)
            return 2
    allowlist = engine.load_allowlist(DEFAULT_ALLOWLIST)
    result = engine.lint_paths(targets, engine.legacy_rules(), allowlist)
    return report(result)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

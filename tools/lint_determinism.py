#!/usr/bin/env python3
"""Determinism lint for the dtncache source tree.

The repo's headline guarantee (PR 1, tests/determinism_test.cpp) is that a
simulation's output is byte-identical for every thread count and across
re-runs. That guarantee dies quietly the moment someone introduces ambient
nondeterminism, so this lint greps src/ for the constructs that break it:

  rule id            construct
  -----------------  ----------------------------------------------------------
  libc-rand          rand(), srand(), std::rand — the hidden-global libc RNG
  random-device      std::random_device — hardware entropy, different each run
  wall-clock-seed    time(nullptr) / time(NULL) / time(0)
  chrono-now         std::chrono::*_clock::now() — wall/steady clock reads
                     outside designated timing code (see allowlist)
  fs-mtime           filesystem last_write_time() — file timestamps vary
                     across checkouts/copies; only cache-freshness probing
                     whose outcome cannot change results may read them
  unordered-fold     range-for over a std::unordered_map/std::unordered_set
                     inside a function that writes CSV or folds statistics —
                     iteration order is implementation-defined, so the folded
                     floats / emitted rows depend on hash-table layout
  vector-in-loop     a std::vector declared inside a loop body in a
                     src/graph/ file — the path engine's inner loops are the
                     hottest code in the tree and run allocation-free by
                     contract (PR 5); per-iteration vectors reintroduce the
                     malloc traffic the workspace rewrite removed. Hoist the
                     vector into a PathWorkspace / HypoexpWorkspace scratch
                     (allowlist the legacy reference engine, which keeps the
                     old allocation pattern on purpose)

False-positive escape hatch: tools/lint_allowlist.txt. One entry per line,
`<path-relative-to-repo>:<rule-id>[:<substring>]`; a hit is suppressed when
its file and rule match an entry and, if the entry carries a substring, the
offending line contains it. `#` starts a comment. Every allowlist entry
should say *why* in a trailing comment — an entry is a reviewed exception,
not a mute button.

Usage:
  tools/lint_determinism.py                 lint src/ and tools/*.cpp
  tools/lint_determinism.py FILE [FILE...]  lint specific files
  tools/lint_determinism.py --self-test DIR run against the lint fixtures in
                                            DIR (tests/lint): the banned
                                            fixture must trip every rule, the
                                            clean fixture none, and the
                                            fixture allowlist must suppress

Exit status: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ALLOWLIST = REPO_ROOT / "tools" / "lint_allowlist.txt"

# Direct banned tokens: (rule id, compiled regex, human explanation).
TOKEN_RULES = [
    (
        "libc-rand",
        re.compile(r"(?<![:\w])(?:std::)?s?rand\s*\("),
        "libc rand()/srand() uses hidden global state; use dtn::Rng with an "
        "explicit seed",
    ),
    (
        "random-device",
        re.compile(r"std::random_device"),
        "std::random_device draws hardware entropy, different on every run; "
        "derive seeds with dtn::derive_seed instead",
    ),
    (
        "wall-clock-seed",
        re.compile(r"(?<![:\w])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
        "time(nullptr) makes the run depend on the wall clock; thread the "
        "seed through the config instead",
    ),
    (
        "chrono-now",
        re.compile(r"(?:std::chrono::\w+_clock|\b\w+_clock)::now\s*\("),
        "clock reads are nondeterministic; keep them out of simulation and "
        "statistics code (allowlist genuine timing/progress call sites)",
    ),
    (
        "fs-mtime",
        re.compile(r"\blast_write_time\s*\("),
        "file mtimes differ across checkouts and copies; results must never "
        "depend on them (allowlist observation-only cache-freshness probes "
        "whose worst case is an extra re-parse of identical bytes)",
    ),
]

# A line that starts a range-for over an unordered container. Catches both
# direct members (`for (auto& kv : sizes_)`) and locals when the declared
# type is visible in the same file (second pass below).
RANGE_FOR_RE = re.compile(r"for\s*\(.*?:\s*(?P<expr>[^)]+)\)")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*"
    r"(?P<name>\w+)\s*[;={(]"
)
UNORDERED_INLINE_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b")

# vector-in-loop applies only to the path-engine hot files (plus the lint
# fixtures, which must exercise every rule). A vector *declaration* inside a
# loop body; references/pointers (`const std::vector<double>&`) do not match
# because the regex requires a plain identifier right after the template
# argument list.
HOT_PATH_RE = re.compile(r"^src/graph/")
VECTOR_DECL_RE = re.compile(r"\bstd::vector\s*<[^;(){}]*>\s+\w+\s*[;={(\[]")
LOOP_HEADER_RE = re.compile(r"(?<![\w:])(?:for|while)\s*\(|(?<![\w:])do\s*\{")

# A function body counts as "writes CSV or folds statistics" when it touches
# any of these. Deliberately narrow: flagging every unordered iteration in
# the tree would drown the signal (order-independent predicates like any_of
# are fine); these markers are where iteration order reaches output bytes or
# floating-point accumulation order.
FOLD_MARKER_RE = re.compile(
    r"csv|\bCSV\b|add_cell|add_number|add_integer|add_row|RunningStats|"
    r"\.merge\(|percentile\(|\bgini\(|sample_copy_count|count_bytes"
)


def strip_comments(line: str) -> str:
    """Removes // comments and a best-effort pass at string literals."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def load_allowlist(path: Path):
    entries = []
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(":", 2)
        if len(parts) < 2:
            print(f"lint_determinism: bad allowlist entry: {raw!r}",
                  file=sys.stderr)
            sys.exit(2)
        entries.append(
            {
                "path": parts[0].strip(),
                "rule": parts[1].strip(),
                "substring": parts[2].strip() if len(parts) == 3 else None,
            }
        )
    return entries


def allowed(entries, rel_path: str, rule: str, line_text: str) -> bool:
    for e in entries:
        if e["path"] != rel_path or e["rule"] != rule:
            continue
        if e["substring"] is None or e["substring"] in line_text:
            return True
    return False


NAMESPACE_OPEN_RE = re.compile(r"^\s*(?:inline\s+)?namespace\b[^{}]*\{\s*$")


def function_chunks(lines):
    """Yields (start_line, end_line, body_text) for brace-balanced chunks.

    A heuristic C++ "function" is a top-level `{ ... }` region, where
    namespace braces are transparent (otherwise the conventional
    `namespace dtn { ... }` wrapper would collapse every file into one
    chunk). We do not parse declarators: for lint purposes a class body
    chunk containing a fold marker is just as suspicious as a free function.
    """
    depth = 0
    start = None
    buf = []
    for i, line in enumerate(lines, start=1):
        code = strip_comments(line)
        if start is None and NAMESPACE_OPEN_RE.match(code):
            continue  # transparent: do not count the namespace brace
        opens = code.count("{")
        closes = code.count("}")
        if depth == 0 and opens > 0:
            start = i
            buf = []
        if start is not None:
            buf.append(line)
        depth += opens - closes
        if start is not None and depth <= 0:
            yield start, i, "\n".join(buf)
            start = None
        depth = max(depth, 0)  # unmatched namespace closers clamp back


def loop_body_depth(lines):
    """Yields (lineno, nesting) where nesting = enclosing loop bodies.

    A small character-level state machine: a `for`/`while` keyword arms the
    scanner, the matching close paren of its header ends the header, and the
    next `{` opens a loop body (a `;` first means a braceless single-statement
    body, which cannot contain a declaration). `do` arms the scanner with the
    body brace expected immediately. Multi-line headers work because the
    state persists across lines.
    """
    depth = 0  # brace depth
    paren = 0
    loop_depths = []  # brace depths whose region is a loop body
    awaiting = None  # None | ("header", paren_base) | "body"
    for i, line in enumerate(lines, start=1):
        code = strip_comments(line)
        yield i, len(loop_depths)
        starts = {m.start(): m.group(0) for m in LOOP_HEADER_RE.finditer(code)}
        for pos, ch in enumerate(code):
            if pos in starts:
                awaiting = "body" if starts[pos].startswith("do") else (
                    "header", paren)
            if ch == "(":
                paren += 1
            elif ch == ")":
                paren -= 1
                if isinstance(awaiting, tuple) and paren == awaiting[1]:
                    awaiting = "body"
            elif ch == "{":
                depth += 1
                if awaiting == "body":
                    loop_depths.append(depth)
                    awaiting = None
            elif ch == "}":
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                depth = max(depth - 1, 0)
            elif ch == ";" and awaiting == "body" and paren == 0:
                awaiting = None  # braceless loop body: for (...) stmt;


def lint_vector_in_loop(rel, lines, allowlist, findings):
    for lineno, nesting in loop_body_depth(lines):
        if nesting == 0:
            continue
        raw = lines[lineno - 1]
        code = strip_comments(raw)
        if not VECTOR_DECL_RE.search(code):
            continue
        if allowed(allowlist, rel, "vector-in-loop", raw):
            continue
        findings.append(
            (
                rel,
                lineno,
                "vector-in-loop",
                raw.strip(),
                "path-engine hot loops are allocation-free by contract; "
                "hoist this vector into a PathWorkspace/HypoexpWorkspace "
                "scratch (or allowlist deliberate legacy-reference code)",
            )
        )


def lint_file(path: Path, allowlist, findings):
    rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError) as err:
        print(f"lint_determinism: cannot read {rel}: {err}", file=sys.stderr)
        sys.exit(2)
    lines = text.splitlines()

    for lineno, raw in enumerate(lines, start=1):
        code = strip_comments(raw)
        for rule, pattern, why in TOKEN_RULES:
            if pattern.search(code) and not allowed(allowlist, rel, rule, raw):
                findings.append((rel, lineno, rule, raw.strip(), why))

    if HOT_PATH_RE.match(rel) or path.name.startswith("fixture_"):
        lint_vector_in_loop(rel, lines, allowlist, findings)

    # unordered-fold: names of unordered containers declared in this file,
    # plus literal inline unordered types in the loop expression.
    unordered_names = set(UNORDERED_DECL_RE.findall(text))
    for start, _end, body in function_chunks(lines):
        if not FOLD_MARKER_RE.search(body):
            continue
        for offset, raw in enumerate(body.splitlines()):
            code = strip_comments(raw)
            m = RANGE_FOR_RE.search(code)
            if not m:
                continue
            expr = m.group("expr").strip()
            base = re.split(r"[.\->(]", expr, 1)[0].strip().lstrip("*&")
            if base not in unordered_names and not UNORDERED_INLINE_RE.search(expr):
                continue
            lineno = start + offset
            rule = "unordered-fold"
            if allowed(allowlist, rel, rule, raw):
                continue
            findings.append(
                (
                    rel,
                    lineno,
                    rule,
                    raw.strip(),
                    "iteration order of unordered containers is "
                    "implementation-defined; sort the keys (or iterate a "
                    "deterministic index) before folding stats or writing CSV",
                )
            )


def default_targets():
    targets = sorted((REPO_ROOT / "src").rglob("*.cpp"))
    targets += sorted((REPO_ROOT / "src").rglob("*.h"))
    targets += sorted((REPO_ROOT / "tools").glob("*.cpp"))
    return targets


def report(findings) -> int:
    for rel, lineno, rule, line, why in findings:
        print(f"{rel}:{lineno}: [{rule}] {line}")
        print(f"    {why}")
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s); fix them or add "
            f"a reviewed entry to {DEFAULT_ALLOWLIST.relative_to(REPO_ROOT)}"
        )
        return 1
    print("lint_determinism: OK")
    return 0


def self_test(fixture_dir: Path) -> int:
    banned = fixture_dir / "fixture_banned.cpp"
    clean = fixture_dir / "fixture_clean.cpp"
    allowlisted = fixture_dir / "fixture_allowlisted.cpp"
    fixture_allowlist = fixture_dir / "fixture_allowlist.txt"
    for f in (banned, clean, allowlisted, fixture_allowlist):
        if not f.exists():
            print(f"self-test: missing fixture {f}", file=sys.stderr)
            return 1

    failures = []

    findings = []
    lint_file(banned, [], findings)
    tripped = {rule for _, _, rule, _, _ in findings}
    expected = {rule for rule, _, _ in TOKEN_RULES} | {
        "unordered-fold",
        "vector-in-loop",
    }
    for rule in sorted(expected - tripped):
        failures.append(f"banned fixture did not trip rule {rule!r}")

    findings = []
    lint_file(clean, [], findings)
    for rel, lineno, rule, _, _ in findings:
        failures.append(f"clean fixture tripped {rule!r} at {rel}:{lineno}")

    # The allowlisted fixture contains one banned hit per entry in the
    # fixture allowlist: with it loaded, everything must be suppressed;
    # without it, something must fire (otherwise the test proves nothing).
    entries = load_allowlist(fixture_allowlist)
    findings = []
    lint_file(allowlisted, entries, findings)
    for rel, lineno, rule, _, _ in findings:
        failures.append(
            f"allowlist failed to suppress {rule!r} at {rel}:{lineno}"
        )
    findings = []
    lint_file(allowlisted, [], findings)
    if not findings:
        failures.append("allowlisted fixture contains no hits at all")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print("lint_determinism self-test: OK")
    return 0


def main(argv) -> int:
    if len(argv) >= 2 and argv[1] == "--self-test":
        if len(argv) != 3:
            print("usage: lint_determinism.py --self-test DIR", file=sys.stderr)
            return 2
        return self_test(Path(argv[2]))

    targets = [Path(a) for a in argv[1:]] or default_targets()
    allowlist = load_allowlist(DEFAULT_ALLOWLIST)
    findings = []
    for target in targets:
        if not target.exists():
            print(f"lint_determinism: no such file: {target}", file=sys.stderr)
            return 2
        lint_file(target, allowlist, findings)
    return report(findings)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// dtnsim — command-line experiment runner.
//
// Runs any data-access scheme over any trace (Table-I presets, a CSV trace
// file, or a random-waypoint mobility simulation) with the paper's workload
// model, printing one row per scheme (and optionally machine-readable CSV).
//
// Examples:
//   dtnsim --trace mitreality --days 60 --scheme all
//   dtnsim --trace infocom06 --scheme ncl --k 5 --tl-hours 3
//   dtnsim --trace path/to/contacts.csv --scheme ncl,nocache --csv
//   dtnsim --trace rwp --nodes 40 --days 2 --scheme ncl --miss-prob 0.2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <memory>

#include "common/instrument.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "graph/sparse_metric.h"
#include "trace/mobility.h"
#include "trace/synthetic.h"
#include "traceio/cache.h"

using namespace dtn;

namespace {

struct CliOptions {
  std::string trace = "mitreality";
  std::string trace_format;    // empty = sniff from content/extension
  bool no_trace_cache = false;
  double days = 0.0;           // 0 = preset default
  int nodes = 40;              // rwp only
  std::vector<std::string> schemes{"all"};
  double tl_hours = 0.0;       // 0 = trace-dependent default
  double size_mb = 100.0;
  int k = 8;
  int reps = 2;
  std::uint64_t seed = 2026;
  double zipf = 1.0;
  std::string response = "pathweight";
  std::string strategy = "utility";
  double miss_prob = 0.0;
  bool dynamic_ncl = false;
  bool csv = false;
  bool stats = false;
  int threads = 0;
  int shards = 1;
  std::string metric_engine = "fast";
  int landmarks = 0;
  std::string landmark_strategy = "uniform";
  double weight_floor = 0.0;
  std::uint64_t metric_seed = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --trace NAME     infocom05|infocom06|mitreality|ucsd|rwp or a trace\n"
      "                   file (CSV, ONE report, iMote log or .dtntrace;\n"
      "                   format auto-detected)\n"
      "  --trace-format F force the trace file format: csv|one|imote|binary\n"
      "  --no-trace-cache do not read or write the .dtntrace sidecar cache\n"
      "  --days D         limit/define the trace duration in days\n"
      "  --nodes N        node count (rwp trace only)\n"
      "  --scheme LIST    comma list of ncl,nocache,random,cachedata,bundle\n"
      "                   or 'all' (default)\n"
      "  --tl-hours H     average data lifetime T_L (default: trace-based)\n"
      "  --size-mb S      average data size in megabits (default 100)\n"
      "  --k K            number of NCLs (default 8)\n"
      "  --reps R         repetitions (default 2)\n"
      "  --seed S         base seed\n"
      "  --zipf S         Zipf exponent (default 1.0)\n"
      "  --response M     pathweight|sigmoid|always\n"
      "  --strategy M     utility|fifo|lru|gds\n"
      "  --miss-prob P    contact miss probability (failure injection)\n"
      "  --dynamic-ncl    re-select central nodes at every maintenance tick\n"
      "  --csv            machine-readable CSV instead of a table\n"
      "  --stats          print stage timers and domain counters to stderr\n"
      "                   after the run (no-op in DTN_INSTRUMENT=OFF builds)\n"
      "  --threads T      worker threads (0 = all cores, 1 = serial);\n"
      "                   results are identical for every value\n"
      "  --shards K       event-loop shards for the bound-weave engine\n"
      "                   (default 1 = classic serial loop); results are\n"
      "                   identical for every value\n"
      "  --metric-engine E  NCL metric engine: fast|reference|sparse\n"
      "                   (default fast; sparse is the landmark-sampled\n"
      "                   scale tier, DESIGN.md §14)\n"
      "  --landmarks N    sparse engine: landmark root count (0 = all\n"
      "                   nodes = exact; default 0)\n"
      "  --landmark-strategy S  uniform|degree|rate (default uniform)\n"
      "  --weight-floor F sparse engine: prune frontier candidates below\n"
      "                   this path weight (default 0 = no pruning)\n"
      "  --metric-seed S  seed for uniform landmark sampling (default 1)\n",
      argv0);
  std::exit(2);
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream in(text);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--trace") {
      options.trace = next_value(i);
    } else if (flag == "--trace-format") {
      options.trace_format = next_value(i);
    } else if (flag == "--no-trace-cache") {
      options.no_trace_cache = true;
    } else if (flag == "--days") {
      options.days = std::atof(next_value(i));
    } else if (flag == "--nodes") {
      options.nodes = std::atoi(next_value(i));
    } else if (flag == "--scheme") {
      options.schemes = split_commas(next_value(i));
    } else if (flag == "--tl-hours") {
      options.tl_hours = std::atof(next_value(i));
    } else if (flag == "--size-mb") {
      options.size_mb = std::atof(next_value(i));
    } else if (flag == "--k") {
      options.k = std::atoi(next_value(i));
    } else if (flag == "--reps") {
      options.reps = std::atoi(next_value(i));
    } else if (flag == "--seed") {
      options.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (flag == "--zipf") {
      options.zipf = std::atof(next_value(i));
    } else if (flag == "--response") {
      options.response = next_value(i);
    } else if (flag == "--strategy") {
      options.strategy = next_value(i);
    } else if (flag == "--miss-prob") {
      options.miss_prob = std::atof(next_value(i));
    } else if (flag == "--dynamic-ncl") {
      options.dynamic_ncl = true;
    } else if (flag == "--threads") {
      options.threads = std::atoi(next_value(i));
      if (options.threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0 (0 = all cores)\n");
        std::exit(2);
      }
    } else if (flag == "--shards") {
      options.shards = std::atoi(next_value(i));
      if (options.shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        std::exit(2);
      }
    } else if (flag == "--metric-engine") {
      options.metric_engine = next_value(i);
    } else if (flag == "--landmarks") {
      options.landmarks = std::atoi(next_value(i));
    } else if (flag == "--landmark-strategy") {
      options.landmark_strategy = next_value(i);
    } else if (flag == "--weight-floor") {
      options.weight_floor = std::atof(next_value(i));
      if (options.weight_floor < 0.0 || options.weight_floor >= 1.0) {
        std::fprintf(stderr, "--weight-floor must be in [0, 1)\n");
        std::exit(2);
      }
    } else if (flag == "--metric-seed") {
      options.metric_seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (flag == "--csv") {
      options.csv = true;
    } else if (flag == "--stats") {
      options.stats = true;
    } else {
      usage(argv[0]);
    }
  }
  return options;
}

std::optional<SchemeKind> parse_scheme(const std::string& name) {
  if (name == "ncl") return SchemeKind::kNclCache;
  if (name == "nocache") return SchemeKind::kNoCache;
  if (name == "random") return SchemeKind::kRandomCache;
  if (name == "cachedata") return SchemeKind::kCacheData;
  if (name == "bundle") return SchemeKind::kBundleCache;
  return std::nullopt;
}

ContactTrace build_trace(const CliOptions& options) {
  auto preset = [&](SyntheticTraceConfig config) {
    if (options.days > 0) config = config.with_duration(days(options.days));
    return generate_trace(config);
  };
  if (options.trace == "infocom05") return preset(infocom05_preset());
  if (options.trace == "infocom06") return preset(infocom06_preset());
  if (options.trace == "mitreality") {
    auto config = mit_reality_preset();
    return generate_trace(config.with_duration(
        days(options.days > 0 ? options.days : 60.0)));
  }
  if (options.trace == "ucsd") {
    auto config = ucsd_preset();
    return generate_trace(config.with_duration(
        days(options.days > 0 ? options.days : 25.0)));
  }
  if (options.trace == "rwp") {
    MobilityConfig config;
    config.node_count = static_cast<NodeId>(options.nodes);
    config.duration = days(options.days > 0 ? options.days : 2.0);
    config.home_attachment = 0.7;
    config.seed = options.seed;
    return generate_mobility_trace(config, "rwp");
  }
  traceio::LoadOptions load;
  load.format = options.trace_format;
  load.cache = options.no_trace_cache ? traceio::CachePolicy::kBypass
                                      : traceio::CachePolicy::kUse;
  return traceio::load_trace_any(options.trace, load);
}

double default_lifetime_hours(const ContactTrace& trace) {
  // Sparse long traces want long-lived data (MIT-style: 1 week); dense
  // short traces want hours (Infocom-style).
  return trace.duration() > days(10) ? 168.0 : 3.0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse(argc, argv);

  std::vector<SchemeKind> kinds;
  for (const std::string& name : options.schemes) {
    if (name == "all") {
      kinds = {SchemeKind::kNclCache, SchemeKind::kNoCache,
               SchemeKind::kRandomCache, SchemeKind::kCacheData,
               SchemeKind::kBundleCache};
      break;
    }
    const auto kind = parse_scheme(name);
    if (!kind) {
      std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
      return 2;
    }
    kinds.push_back(*kind);
  }

  // Parse (or generate) once; everything below shares the same immutable
  // instance.
  std::shared_ptr<const ContactTrace> trace;
  try {
    trace = std::make_shared<const ContactTrace>(build_trace(options));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cannot build trace '%s': %s\n",
                 options.trace.c_str(), error.what());
    return 1;
  }

  ExperimentConfig config;
  config.avg_lifetime =
      hours(options.tl_hours > 0 ? options.tl_hours
                                 : default_lifetime_hours(*trace));
  config.avg_data_size = megabits(options.size_mb);
  config.zipf_exponent = options.zipf;
  config.ncl_count = options.k;
  config.repetitions = options.reps;
  config.seed = options.seed;
  config.dynamic_ncl = options.dynamic_ncl;
  config.sim.maintenance_interval =
      std::max(hours(1), config.avg_lifetime / 7.0);
  config.sim.contact_miss_prob = options.miss_prob;
  config.sim.threads = options.threads;
  config.sim.shards = options.shards;

  try {
    config.sim.metric_engine =
        metric_engine_from_string(options.metric_engine);
    config.sim.sparse_metric.strategy =
        landmark_strategy_from_string(options.landmark_strategy);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  config.sim.sparse_metric.landmark_count = options.landmarks;
  config.sim.sparse_metric.weight_floor = options.weight_floor;
  config.sim.sparse_metric.seed = options.metric_seed;

  if (options.response == "pathweight") {
    config.response_mode = ResponseMode::kPathWeight;
  } else if (options.response == "sigmoid") {
    config.response_mode = ResponseMode::kSigmoid;
  } else if (options.response == "always") {
    config.response_mode = ResponseMode::kAlways;
  } else {
    std::fprintf(stderr, "unknown response mode '%s'\n",
                 options.response.c_str());
    return 2;
  }

  if (options.strategy == "utility") {
    config.strategy = CacheStrategy::kUtilityExchange;
  } else if (options.strategy == "fifo") {
    config.strategy = CacheStrategy::kFifo;
  } else if (options.strategy == "lru") {
    config.strategy = CacheStrategy::kLru;
  } else if (options.strategy == "gds") {
    config.strategy = CacheStrategy::kGds;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", options.strategy.c_str());
    return 2;
  }

  const TraceSummary summary = summarize(*trace);
  if (!options.csv) {
    std::printf("trace %s: %d nodes, %zu contacts, %.1f days; T_L=%s, "
                "s_avg=%.0fMb, K=%d, reps=%d\n\n",
                summary.name.c_str(), summary.devices,
                summary.internal_contacts, summary.duration_days,
                format_duration(config.avg_lifetime).c_str(), options.size_mb,
                options.k, options.reps);
  }

  TextTable table({"scheme", "success_ratio", "delay_hours", "copies_per_item",
                   "queries", "replacement_overhead"});
  for (const ExperimentResult& r : run_comparison(trace, kinds, config)) {
    table.begin_row();
    table.add_cell(r.scheme);
    table.add_number(r.success_ratio.mean(), 4);
    table.add_number(r.delay_hours.mean(), 2);
    table.add_number(r.copies_per_item.mean(), 2);
    table.add_number(r.queries_issued.mean(), 0);
    table.add_number(r.replacement_overhead.mean(), 2);
  }
  std::printf("%s", options.csv ? table.to_csv().c_str()
                                : table.to_string().c_str());

  if (options.stats) {
    // stderr keeps --csv output machine-readable even with --stats on.
    if (instrument::enabled()) {
      std::fprintf(stderr, "\n%s",
                   instrument::snapshot().to_string().c_str());
    } else {
      std::fprintf(stderr,
                   "\n--stats: instrumentation compiled out "
                   "(DTN_INSTRUMENT=OFF)\n");
    }
  }
  return 0;
}

// dtnd — the long-running serving daemon, driven in trace-replay mode.
//
// Loads a contact trace, folds a warm-up prefix into the daemon as a batch
// warm start, then replays the remainder through the streaming feed under
// the control of a query script (src/daemon/script.h): `advance <t>` moves
// the replayed clock, query commands interrogate the live path tables in
// between. Every answer is stamped with its snapshot epoch and staleness.
//
//   dtnd --trace FILE [--script FILE] [options]
//   dtnd --synthetic NAME [--script FILE] [options]   (infocom05|infocom06|
//                                                      mit|ucsd)
//
// With no --script, dtnd drains the whole feed and prints stats. --audit
// cross-checks every repair batch against a fresh PathEngine::kReference
// rebuild (DTN_CHECK aborts on divergence) — the CI daemon-soak job runs
// exactly that. --self-test runs built-in end-to-end determinism and audit
// checks and is registered in ctest.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "daemon/script.h"
#include "trace/synthetic.h"
#include "traceio/cache.h"
#include "traceio/cursor.h"

using namespace dtn;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: dtnd (--trace FILE | --synthetic NAME) [options]\n"
      "  --trace FILE       contact trace to replay (any supported format)\n"
      "  --synthetic NAME   built-in preset: infocom05|infocom06|mit|ucsd\n"
      "  --script FILE      query script ('-' = stdin); default: drain+stats\n"
      "  --warm-frac F      trace fraction used as batch warm start [0.5]\n"
      "  --horizon SECS     path horizon T [3600]\n"
      "  --max-hops N       path hop cap [8]\n"
      "  --drift X          relative rate-drift repair threshold [0.2]\n"
      "  --interval SECS    repair batch interval in stream time [3600]\n"
      "  --alpha A          EWMA weight of the newest inter-contact gap\n"
      "  --expiry SECS      decay estimates of silent pairs and drop their\n"
      "                     edges after SECS of stream-time silence\n"
      "                     [0 = rates persist forever]\n"
      "  --threads N        repair parallelism (0 = hardware) [1]\n"
      "  --audit            check every repair batch vs reference rebuild\n"
      "  --stats            print daemon counters at exit\n"
      "  --json PATH        also write the counters as JSON\n"
      "  --self-test        run built-in end-to-end checks\n");
  std::exit(2);
}

struct Options {
  std::string trace_path;
  std::string synthetic;
  std::string script_path;
  std::string json_path;
  double warm_frac = 0.5;
  daemon::DaemonConfig config;
  bool stats = false;
  bool self_test = false;
};

Options parse_args(int argc, char** argv) {
  Options options;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      options.trace_path = value(i);
    } else if (arg == "--synthetic") {
      options.synthetic = value(i);
    } else if (arg == "--script") {
      options.script_path = value(i);
    } else if (arg == "--warm-frac") {
      options.warm_frac = std::atof(value(i));
    } else if (arg == "--horizon") {
      options.config.horizon = std::atof(value(i));
    } else if (arg == "--max-hops") {
      options.config.max_hops = std::atoi(value(i));
    } else if (arg == "--drift") {
      options.config.drift_threshold = std::atof(value(i));
    } else if (arg == "--interval") {
      options.config.repair_interval = std::atof(value(i));
    } else if (arg == "--alpha") {
      options.config.ewma_alpha = std::atof(value(i));
    } else if (arg == "--expiry") {
      options.config.rate_expiry = std::atof(value(i));
    } else if (arg == "--threads") {
      options.config.threads = std::atoi(value(i));
    } else if (arg == "--audit") {
      options.config.audit = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--json") {
      options.json_path = value(i);
    } else if (arg == "--self-test") {
      options.self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      std::fprintf(stderr, "dtnd: unknown argument: %s\n", arg.c_str());
      usage();
    }
  }
  return options;
}

ContactTrace load_input(const Options& options) {
  if (!options.trace_path.empty()) {
    return traceio::load_trace_any(options.trace_path);
  }
  SyntheticTraceConfig config;
  if (options.synthetic == "infocom05") {
    config = infocom05_preset();
  } else if (options.synthetic == "infocom06") {
    config = infocom06_preset();
  } else if (options.synthetic == "mit") {
    config = mit_reality_preset();
  } else if (options.synthetic == "ucsd") {
    config = ucsd_preset();
  } else {
    std::fprintf(stderr, "dtnd: unknown synthetic preset: %s\n",
                 options.synthetic.c_str());
    usage();
  }
  return generate_trace(config);
}

std::string stats_json(const daemon::Daemon& daemon) {
  const daemon::Daemon::Stats& s = daemon.stats();
  std::ostringstream out;
  out << "{\n"
      << "  \"epoch\": " << daemon.snapshot()->epoch << ",\n"
      << "  \"contacts_ingested\": " << s.contacts_ingested << ",\n"
      << "  \"repair_batches\": " << s.repair_batches << ",\n"
      << "  \"edge_updates\": " << s.edge_updates << ",\n"
      << "  \"roots_repaired\": " << s.roots_repaired << ",\n"
      << "  \"full_rebuilds\": " << s.full_rebuilds << ",\n"
      << "  \"audit_rebuilds\": " << s.audit_rebuilds << ",\n"
      << "  \"snapshots_published\": " << s.snapshots_published << "\n"
      << "}\n";
  return out.str();
}

void print_stats(const daemon::Daemon& daemon) {
  const daemon::Daemon::Stats& s = daemon.stats();
  std::printf(
      "daemon: epoch %llu, %llu contacts, %llu batches (%llu full), "
      "%llu edge updates, %llu roots repaired, %llu audits\n",
      static_cast<unsigned long long>(daemon.snapshot()->epoch),
      static_cast<unsigned long long>(s.contacts_ingested),
      static_cast<unsigned long long>(s.repair_batches),
      static_cast<unsigned long long>(s.full_rebuilds),
      static_cast<unsigned long long>(s.edge_updates),
      static_cast<unsigned long long>(s.roots_repaired),
      static_cast<unsigned long long>(s.audit_rebuilds));
}

/// Warm prefix / replay suffix split at `warm_frac` of the contact count.
std::size_t warm_split(const ContactTrace& trace, double warm_frac) {
  if (warm_frac <= 0.0) return 0;
  if (warm_frac >= 1.0) return trace.size();
  return static_cast<std::size_t>(warm_frac *
                                  static_cast<double>(trace.size()));
}

int run(const Options& options) {
  const ContactTrace trace = load_input(options);
  if (trace.node_count() < 2) {
    std::fprintf(stderr, "dtnd: trace has fewer than 2 nodes\n");
    return 1;
  }
  daemon::Daemon daemon(trace.node_count(), options.config);

  const std::size_t split = warm_split(trace, options.warm_frac);
  std::vector<ContactEvent> warm(trace.events().begin(),
                                 trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split));
  std::vector<ContactEvent> live(trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split),
                                 trace.events().end());
  if (!warm.empty()) {
    daemon.warm_start(
        ContactTrace(trace.node_count(), std::move(warm), "warm"));
  }
  traceio::VectorContactCursor cursor(live);
  daemon::ReplayFeed feed(cursor);

  if (options.script_path.empty()) {
    const std::size_t n = feed.drain(daemon);
    daemon.repair_now();
    std::printf("drained %zu live contacts (after %zu warm)\n", n, split);
  } else if (options.script_path == "-") {
    daemon::run_script(daemon, feed, std::cin, std::cout);
  } else {
    std::ifstream script(options.script_path);
    if (!script) {
      std::fprintf(stderr, "dtnd: cannot open script: %s\n",
                   options.script_path.c_str());
      return 1;
    }
    daemon::run_script(daemon, feed, script, std::cout);
  }

  if (options.stats) print_stats(daemon);
  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "dtnd: cannot write json: %s\n",
                   options.json_path.c_str());
      return 1;
    }
    out << stats_json(daemon);
  }
  return 0;
}

// ---- self test ---------------------------------------------------------

#define DTND_CHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "dtnd self-test FAILED at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #cond);                           \
      return false;                                                      \
    }                                                                    \
  } while (0)

ContactTrace self_test_trace(std::uint64_t seed) {
  SyntheticTraceConfig config;
  config.node_count = 24;
  config.duration = days(2.0);
  config.target_total_contacts = 6000.0;
  config.seed = seed;
  return generate_trace(config);
}

std::string replay_output(const ContactTrace& trace,
                          const daemon::DaemonConfig& config,
                          const std::string& script_text) {
  daemon::Daemon daemon(trace.node_count(), config);
  const std::size_t split = trace.size() / 2;
  std::vector<ContactEvent> warm(trace.events().begin(),
                                 trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split));
  std::vector<ContactEvent> live(trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split),
                                 trace.events().end());
  daemon.warm_start(ContactTrace(trace.node_count(), std::move(warm), "warm"));
  traceio::VectorContactCursor cursor(live);
  daemon::ReplayFeed feed(cursor);
  std::istringstream script(script_text);
  std::ostringstream out;
  daemon::run_script(daemon, feed, script, out);
  return out.str();
}

bool self_test() {
  const ContactTrace trace = self_test_trace(17);
  const Time mid = trace.start_time() + trace.duration() * 0.75;
  std::ostringstream script;
  script << "advance " << mid << "\n"
         << "repair\nncl 4\nweight 0 5 1800\nweight 3 3 60\nplace 2 3\n"
         << "drain\nrepair\nncl 4\nweight 0 5 1800\nstats\n";

  daemon::DaemonConfig config;
  config.horizon = hours(1.0);
  config.repair_interval = hours(2.0);
  config.audit = true;  // every batch cross-checked against kReference

  // Byte-identical output across runs and thread counts.
  const std::string serial = replay_output(trace, config, script.str());
  DTND_CHECK(!serial.empty());
  const std::string again = replay_output(trace, config, script.str());
  DTND_CHECK(serial == again);
  daemon::DaemonConfig threaded = config;
  threaded.threads = 0;  // all cores
  DTND_CHECK(replay_output(trace, threaded, script.str()) == serial);

  // Distinct drift thresholds still audit clean (audit DTN_CHECK-aborts
  // on divergence inside replay_output) and still answer every query.
  // Tables may legitimately differ between thresholds — each tolerates a
  // different residual drift — so only the audit, not cross-threshold
  // equality, is checked here; daemon_test covers the equivalence matrix.
  for (const double drift : {0.01, 0.5}) {
    daemon::DaemonConfig variant = config;
    variant.drift_threshold = drift;
    DTND_CHECK(!replay_output(trace, variant, script.str()).empty());
  }

  // Estimator expiry: silent pairs decay and their edges drop, and every
  // audited batch still matches a from-scratch reference rebuild of the
  // post-removal graph. Determinism must hold across thread counts too.
  daemon::DaemonConfig expiring = config;
  expiring.rate_expiry = hours(6.0);
  const std::string expired = replay_output(trace, expiring, script.str());
  DTND_CHECK(!expired.empty());
  DTND_CHECK(replay_output(trace, expiring, script.str()) == expired);
  daemon::DaemonConfig expiring_threaded = expiring;
  expiring_threaded.threads = 0;
  DTND_CHECK(replay_output(trace, expiring_threaded, script.str()) == expired);

  std::printf("dtnd self-test OK\n");
  return true;
}

#undef DTND_CHECK

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  if (options.self_test) return self_test() ? 0 : 1;
  if (options.trace_path.empty() == options.synthetic.empty()) usage();
  try {
    return run(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "dtnd: %s\n", error.what());
    return 1;
  }
}

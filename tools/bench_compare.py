#!/usr/bin/env python3
"""Compare two bench JSON artifacts and gate on per-unit regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [options]
    bench_compare.py --self-test

Both files are schema_version-1 records written by a bench binary's
``--json PATH`` flag (see bench/bench_json.h). For every stage present in
both files the script compares the **time per counter unit**:

    per_unit = median_ns / work_units_per_rep

Gating on per-unit time rather than raw wall time makes the check robust
against the two classic CI flake sources: (a) a noisy runner slows
*everything*, but so does the baseline re-measured on the same runner in
the same job, and (b) a legitimate change to the amount of work done (more
Dijkstra relaxations because the graph grew) moves the unit counter
together with the wall time, so the ratio only trips when the *same* unit
of work got slower.

A stage regresses when

    candidate_per_unit > baseline_per_unit * (1 + threshold)

with ``--threshold`` defaulting to 0.5 (candidate may be up to 50% slower
per unit before the gate trips; generous because CI runners are shared).
Stages present in only one file are reported but never fatal — benches
gain and lose stages as the suite evolves.

Exit codes: 0 = no regression, 1 = at least one regression (suppressed by
``--advisory``), 2 = usage or file/schema error.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys

SCHEMA_VERSION = 1


def fail(message: str) -> "NoReturn":  # noqa: F821 (py3.8 compat)
    print(f"bench_compare: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")
    if not isinstance(report, dict):
        fail(f"{path}: top-level value must be an object")
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {version!r} unsupported "
            f"(expected {SCHEMA_VERSION})"
        )
    for key in ("bench", "stages"):
        if key not in report:
            fail(f"{path}: missing required key {key!r}")
    if not isinstance(report["stages"], list):
        fail(f"{path}: 'stages' must be a list")
    for stage in report["stages"]:
        for key in ("name", "median_ns", "work_units_per_rep"):
            if key not in stage:
                fail(f"{path}: stage missing required key {key!r}")
    return report


def per_unit_ns(stage: dict) -> float:
    units = float(stage["work_units_per_rep"])
    if units <= 0:
        units = 1.0
    return float(stage["median_ns"]) / units


def annotate(kind: str, message: str) -> None:
    """Plain line locally, a ::error::/::notice:: annotation on Actions."""
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::{kind}::{message}")
    else:
        print(message)


def compare(baseline: dict, candidate: dict, threshold: float) -> list:
    """Returns the list of regressed stage names, printing a report."""
    base_stages = {s["name"]: s for s in baseline["stages"]}
    cand_stages = {s["name"]: s for s in candidate["stages"]}

    if baseline.get("bench") != candidate.get("bench"):
        annotate(
            "warning",
            "comparing different benches: "
            f"{baseline.get('bench')!r} vs {candidate.get('bench')!r}",
        )

    header = (
        f"{'stage':<30} {'unit':<26} {'base ns/u':>12} "
        f"{'cand ns/u':>12} {'ratio':>7}  verdict"
    )
    print(header)
    print("-" * len(header))

    regressed = []
    for name in base_stages:
        if name not in cand_stages:
            print(f"{name:<30} (only in baseline; skipped)")
            continue
        base, cand = base_stages[name], cand_stages[name]
        base_unit, cand_unit = per_unit_ns(base), per_unit_ns(cand)
        if base_unit <= 0:
            print(f"{name:<30} (baseline per-unit time is 0; skipped)")
            continue
        ratio = cand_unit / base_unit
        bad = ratio > 1.0 + threshold
        verdict = "REGRESSED" if bad else "ok"
        unit = cand.get("unit_counter") or "per-call"
        print(
            f"{name:<30} {unit:<26} {base_unit:>12.2f} "
            f"{cand_unit:>12.2f} {ratio:>7.3f}  {verdict}"
        )
        if bad:
            regressed.append(name)
            annotate(
                "error",
                f"bench regression in {candidate.get('bench')}/{name}: "
                f"{cand_unit:.2f} ns per {unit} vs baseline "
                f"{base_unit:.2f} (ratio {ratio:.2f}, "
                f"threshold {1.0 + threshold:.2f})",
            )
    for name in cand_stages:
        if name not in base_stages:
            print(f"{name:<30} (new stage; no baseline)")
    return regressed


def self_test() -> int:
    """Fixture check: identical files pass, a 2x per-unit slowdown fails."""

    def make_report(median_ns: int, units: float) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "bench": "selftest",
            "stages": [
                {
                    "name": "kernel",
                    "reps": 3,
                    "median_ns": median_ns,
                    "p10_ns": median_ns,
                    "p90_ns": median_ns,
                    "unit_counter": "hypoexp_closed_form_evals",
                    "work_units_per_rep": units,
                    "counters": {},
                }
            ],
        }

    base = make_report(1_000_000, 1000.0)

    failures = []

    # 1. A file never regresses against itself.
    if compare(copy.deepcopy(base), copy.deepcopy(base), 0.5):
        failures.append("identical reports flagged as regression")

    # 2. An injected 2x per-unit slowdown must trip the default threshold.
    slow = make_report(2_000_000, 1000.0)
    if not compare(copy.deepcopy(base), slow, 0.5):
        failures.append("2x per-unit slowdown not flagged")

    # 3. 2x wall time with 2x work units is NOT a per-unit regression.
    scaled = make_report(2_000_000, 2000.0)
    if compare(copy.deepcopy(base), scaled, 0.5):
        failures.append("work-proportional slowdown wrongly flagged")

    # 4. Time under threshold passes (1.4x < 1.5x cutoff).
    near = make_report(1_400_000, 1000.0)
    if compare(copy.deepcopy(base), near, 0.5):
        failures.append("sub-threshold slowdown wrongly flagged")

    # 5. Missing work_units falls back to per-call gating: same wall time
    # but units<=0 must not divide by zero.
    degenerate = make_report(1_000_000, 0.0)
    if compare(copy.deepcopy(degenerate), copy.deepcopy(degenerate), 0.5):
        failures.append("degenerate unit count mishandled")

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("bench_compare self-test: all fixtures passed")
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        description="diff two bench JSON artifacts, gating on per-unit time"
    )
    parser.add_argument("baseline", nargs="?", help="baseline JSON artifact")
    parser.add_argument("candidate", nargs="?", help="candidate JSON artifact")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="allowed per-unit slowdown fraction (default 0.5 = +50%%)",
    )
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but always exit 0 (CI smoke mode)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in fixtures and exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)
    regressed = compare(baseline, candidate, args.threshold)
    if regressed:
        print(
            f"bench_compare: {len(regressed)} stage(s) regressed: "
            + ", ".join(regressed)
        )
        if args.advisory:
            annotate("notice", "advisory mode: regressions do not fail the job")
            return 0
        return 1
    print("bench_compare: no per-unit regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

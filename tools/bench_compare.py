#!/usr/bin/env python3
"""Compare two bench JSON artifacts and gate on per-unit regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [options]
    bench_compare.py --self-test

Both files are schema_version-1 records written by a bench binary's
``--json PATH`` flag (see bench/bench_json.h). For every stage present in
both files the script compares the **time per counter unit**:

    per_unit = median_ns / work_units_per_rep

Gating on per-unit time rather than raw wall time makes the check robust
against the two classic CI flake sources: (a) a noisy runner slows
*everything*, but so does the baseline re-measured on the same runner in
the same job, and (b) a legitimate change to the amount of work done (more
Dijkstra relaxations because the graph grew) moves the unit counter
together with the wall time, so the ratio only trips when the *same* unit
of work got slower.

A stage regresses when

    candidate_per_unit > baseline_per_unit * (1 + threshold)

with ``--threshold`` defaulting to 0.5 (candidate may be up to 50% slower
per unit before the gate trips; generous because CI runners are shared).
Stages present in only one file are reported but never fatal — benches
gain and lose stages as the suite evolves.

Independently of the baseline/candidate diff, ``--require-speedup
REF:CAND:MINX`` (repeatable) asserts that *within the candidate file* stage
``REF``'s median wall time is at least ``MINX`` times stage ``CAND``'s.
Both stages come from the same artifact, i.e. the same process on the same
host, so the ratio is immune to runner speed — this is how a bench that
measures an old implementation against its replacement publishes a hard
speedup floor (e.g. ``all_pairs_reference:all_pairs_fast:3``).

Exit codes: 0 = no regression, 1 = at least one regression (suppressed by
``--advisory``), 2 = usage or file/schema error.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys

SCHEMA_VERSION = 1


def fail(message: str) -> "NoReturn":  # noqa: F821 (py3.8 compat)
    print(f"bench_compare: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")
    if not isinstance(report, dict):
        fail(f"{path}: top-level value must be an object")
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        fail(
            f"{path}: schema_version {version!r} unsupported "
            f"(expected {SCHEMA_VERSION})"
        )
    for key in ("bench", "stages"):
        if key not in report:
            fail(f"{path}: missing required key {key!r}")
    if not isinstance(report["stages"], list):
        fail(f"{path}: 'stages' must be a list")
    for stage in report["stages"]:
        for key in ("name", "median_ns", "work_units_per_rep"):
            if key not in stage:
                fail(f"{path}: stage missing required key {key!r}")
    return report


def per_unit_ns(stage: dict) -> float:
    units = float(stage["work_units_per_rep"])
    if units <= 0:
        units = 1.0
    return float(stage["median_ns"]) / units


def annotate(kind: str, message: str) -> None:
    """Plain line locally, a ::error::/::notice:: annotation on Actions."""
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::{kind}::{message}")
    else:
        print(message)


def compare(baseline: dict, candidate: dict, threshold: float) -> list:
    """Returns the list of regressed stage names, printing a report."""
    base_stages = {s["name"]: s for s in baseline["stages"]}
    cand_stages = {s["name"]: s for s in candidate["stages"]}

    if baseline.get("bench") != candidate.get("bench"):
        annotate(
            "warning",
            "comparing different benches: "
            f"{baseline.get('bench')!r} vs {candidate.get('bench')!r}",
        )

    header = (
        f"{'stage':<30} {'unit':<26} {'base ns/u':>12} "
        f"{'cand ns/u':>12} {'ratio':>7}  verdict"
    )
    print(header)
    print("-" * len(header))

    regressed = []
    for name in base_stages:
        if name not in cand_stages:
            print(f"{name:<30} (only in baseline; skipped)")
            continue
        base, cand = base_stages[name], cand_stages[name]
        base_unit, cand_unit = per_unit_ns(base), per_unit_ns(cand)
        if base_unit <= 0:
            print(f"{name:<30} (baseline per-unit time is 0; skipped)")
            continue
        ratio = cand_unit / base_unit
        bad = ratio > 1.0 + threshold
        verdict = "REGRESSED" if bad else "ok"
        unit = cand.get("unit_counter") or "per-call"
        print(
            f"{name:<30} {unit:<26} {base_unit:>12.2f} "
            f"{cand_unit:>12.2f} {ratio:>7.3f}  {verdict}"
        )
        if bad:
            regressed.append(name)
            annotate(
                "error",
                f"bench regression in {candidate.get('bench')}/{name}: "
                f"{cand_unit:.2f} ns per {unit} vs baseline "
                f"{base_unit:.2f} (ratio {ratio:.2f}, "
                f"threshold {1.0 + threshold:.2f})",
            )
    for name in cand_stages:
        if name not in base_stages:
            print(f"{name:<30} (new stage; no baseline)")
    return regressed


def parse_speedup_spec(spec: str) -> tuple:
    """Splits 'ref_stage:cand_stage:minx' and validates the ratio."""
    parts = spec.split(":")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        fail(f"--require-speedup spec {spec!r} is not REF:CAND:MINX")
    try:
        minx = float(parts[2])
    except ValueError:
        fail(f"--require-speedup spec {spec!r}: {parts[2]!r} is not a number")
    if minx <= 0:
        fail(f"--require-speedup spec {spec!r}: MINX must be > 0")
    return parts[0], parts[1], minx


def check_speedups(candidate: dict, specs: list) -> list:
    """Within-file speedup floors. Returns the list of failed spec strings.

    Compares raw median wall times, not per-unit times: the two stages do
    different amounts of bookkeeping per unit by design (that is the point
    of the comparison), and both ran in the same process on the same host,
    so wall-clock ratio is the honest number.
    """
    stages = {s["name"]: s for s in candidate["stages"]}
    failed = []
    for spec in specs:
        ref_name, cand_name, minx = parse_speedup_spec(spec)
        missing = [n for n in (ref_name, cand_name) if n not in stages]
        if missing:
            annotate(
                "error",
                f"speedup gate {spec}: stage(s) {', '.join(missing)} absent "
                f"from {candidate.get('bench')}",
            )
            failed.append(spec)
            continue
        ref_ns = float(stages[ref_name]["median_ns"])
        cand_ns = float(stages[cand_name]["median_ns"])
        if cand_ns <= 0:
            annotate("error", f"speedup gate {spec}: candidate median is 0")
            failed.append(spec)
            continue
        ratio = ref_ns / cand_ns
        ok = ratio >= minx
        print(
            f"speedup {ref_name} / {cand_name}: {ratio:.2f}x "
            f"(floor {minx:.2f}x)  {'ok' if ok else 'FAILED'}"
        )
        if not ok:
            failed.append(spec)
            annotate(
                "error",
                f"speedup floor not met in {candidate.get('bench')}: "
                f"{ref_name} / {cand_name} = {ratio:.2f}x < {minx:.2f}x",
            )
    return failed


def self_test() -> int:
    """Fixture check: identical files pass, a 2x per-unit slowdown fails."""

    def make_report(median_ns: int, units: float) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "bench": "selftest",
            "stages": [
                {
                    "name": "kernel",
                    "reps": 3,
                    "median_ns": median_ns,
                    "p10_ns": median_ns,
                    "p90_ns": median_ns,
                    "unit_counter": "hypoexp_closed_form_evals",
                    "work_units_per_rep": units,
                    "counters": {},
                }
            ],
        }

    base = make_report(1_000_000, 1000.0)

    failures = []

    # 1. A file never regresses against itself.
    if compare(copy.deepcopy(base), copy.deepcopy(base), 0.5):
        failures.append("identical reports flagged as regression")

    # 2. An injected 2x per-unit slowdown must trip the default threshold.
    slow = make_report(2_000_000, 1000.0)
    if not compare(copy.deepcopy(base), slow, 0.5):
        failures.append("2x per-unit slowdown not flagged")

    # 3. 2x wall time with 2x work units is NOT a per-unit regression.
    scaled = make_report(2_000_000, 2000.0)
    if compare(copy.deepcopy(base), scaled, 0.5):
        failures.append("work-proportional slowdown wrongly flagged")

    # 4. Time under threshold passes (1.4x < 1.5x cutoff).
    near = make_report(1_400_000, 1000.0)
    if compare(copy.deepcopy(base), near, 0.5):
        failures.append("sub-threshold slowdown wrongly flagged")

    # 5. Missing work_units falls back to per-call gating: same wall time
    # but units<=0 must not divide by zero.
    degenerate = make_report(1_000_000, 0.0)
    if compare(copy.deepcopy(degenerate), copy.deepcopy(degenerate), 0.5):
        failures.append("degenerate unit count mishandled")

    # 6-8. --require-speedup fixtures: a 4x measured ratio against a 3x
    # floor passes, against a 5x floor fails, and a missing stage fails.
    two_stage = {
        "schema_version": SCHEMA_VERSION,
        "bench": "selftest",
        "stages": [
            {"name": "old", "median_ns": 4_000_000, "work_units_per_rep": 1.0},
            {"name": "new", "median_ns": 1_000_000, "work_units_per_rep": 1.0},
        ],
    }
    if check_speedups(copy.deepcopy(two_stage), ["old:new:3"]):
        failures.append("4x speedup failed a 3x floor")
    if not check_speedups(copy.deepcopy(two_stage), ["old:new:5"]):
        failures.append("4x speedup passed a 5x floor")
    if not check_speedups(copy.deepcopy(two_stage), ["old:missing:3"]):
        failures.append("missing speedup stage not flagged")

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("bench_compare self-test: all fixtures passed")
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        description="diff two bench JSON artifacts, gating on per-unit time"
    )
    parser.add_argument("baseline", nargs="?", help="baseline JSON artifact")
    parser.add_argument("candidate", nargs="?", help="candidate JSON artifact")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="allowed per-unit slowdown fraction (default 0.5 = +50%%)",
    )
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but always exit 0 (CI smoke mode)",
    )
    parser.add_argument(
        "--require-speedup",
        action="append",
        default=[],
        metavar="REF:CAND:MINX",
        help="require candidate stage REF's median wall time to be at least "
        "MINX times stage CAND's (within the candidate file; repeatable)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in fixtures and exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)
    regressed = compare(baseline, candidate, args.threshold)
    failed_speedups = check_speedups(candidate, args.require_speedup)
    if regressed or failed_speedups:
        if regressed:
            print(
                f"bench_compare: {len(regressed)} stage(s) regressed: "
                + ", ".join(regressed)
            )
        if failed_speedups:
            print(
                f"bench_compare: {len(failed_speedups)} speedup floor(s) "
                "not met: " + ", ".join(failed_speedups)
            )
        if args.advisory:
            annotate("notice", "advisory mode: regressions do not fail the job")
            return 0
        return 1
    print("bench_compare: no per-unit regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

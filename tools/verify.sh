#!/usr/bin/env bash
# Staged verification pipeline. Every stage is recorded; the script prints a
# per-stage summary table at the end and exits non-zero if ANY stage failed.
#
#   tools/verify.sh                full: tier-1 + lint + dtnlint + clang-tidy + TSan/ASan/UBSan
#   tools/verify.sh --fast         skip the sanitizer rebuilds (local iteration)
#   tools/verify.sh --no-tsan      legacy flag: skip only the TSan stage
#   tools/verify.sh --stage NAME   run exactly one stage (CI matrix jobs);
#                                  NAME in tier-1|lint|dtnlint|clang-tidy|tsan|asan|ubsan
#
# Stages (see "Verification matrix" in README.md for what each one catches):
#   tier-1      release build with -Werror + the full ctest suite
#   lint        tools/lint_determinism.py over src/ + its fixture self-test
#   dtnlint     the flow-aware static-analysis engine (tools/dtnlint): all
#               rules over src/ + tools/*.cpp with the allowlist staleness
#               audit, plus its per-rule good/bad fixture self-test
#   clang-tidy  .clang-tidy over every TU (skipped when clang-tidy is absent)
#   tsan        -fsanitize=thread over the parallel-layer tests
#   asan        -fsanitize=address over the full ctest suite
#   ubsan       -fsanitize=undefined over the full ctest suite
#
# CI behavior: fully headless (never prompts, stdin unused). Parallelism
# honors CMAKE_BUILD_PARALLEL_LEVEL / CTEST_PARALLEL_LEVEL when set (CI
# runners often advertise more cores than the job may use), falling back to
# nproc. When GITHUB_ACTIONS=true, stages are wrapped in ::group:: markers
# and failures emit ::error:: annotations.
set -uo pipefail
cd "$(dirname "$0")/.."

fast=0
run_tsan=1
only_stage=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) fast=1 ;;
    --no-tsan) run_tsan=0 ;;
    --stage)
      [[ $# -ge 2 ]] || { echo "--stage needs a name" >&2; exit 2; }
      only_stage="$2"; shift ;;
    *)
      echo "usage: tools/verify.sh [--fast] [--no-tsan] [--stage NAME]" >&2
      exit 2 ;;
  esac
  shift
done

case "$only_stage" in
  ""|tier-1|lint|dtnlint|clang-tidy|tsan|asan|ubsan) ;;
  *) echo "unknown stage '$only_stage' (tier-1|lint|dtnlint|clang-tidy|tsan|asan|ubsan)" >&2
     exit 2 ;;
esac

# CI runners pin job parallelism via the standard CMake/CTest env knobs;
# locally we use every core. Both tools also read these env vars natively,
# but we thread an explicit -j so the value shows up in logs.
build_jobs="${CMAKE_BUILD_PARALLEL_LEVEL:-$(nproc)}"
test_jobs="${CTEST_PARALLEL_LEVEL:-$(nproc)}"
on_actions=0
[[ "${GITHUB_ACTIONS:-}" == "true" ]] && on_actions=1

stage_names=()
stage_results=()
overall=0

record() {  # record <name> <result: OK|FAIL|SKIP (reason)>
  stage_names+=("$1")
  stage_results+=("$2")
  if [[ "$2" == FAIL* ]]; then
    overall=1
    [[ "$on_actions" == 1 ]] && echo "::error title=verify stage failed::stage '$1' failed"
  fi
}

wanted() {  # wanted <name> -> 0 when the stage should run/report
  [[ -z "$only_stage" || "$only_stage" == "$1" ]]
}

run_stage() {  # run_stage <name> <function>
  wanted "$1" || return 0
  echo
  if [[ "$on_actions" == 1 ]]; then
    echo "::group::stage: $1"
  else
    echo "== stage: $1 =="
  fi
  if "$2" </dev/null; then
    record "$1" "OK"
  else
    record "$1" "FAIL"
  fi
  [[ "$on_actions" == 1 ]] && echo "::endgroup::"
}

probe_sanitizer() {  # probe_sanitizer <flag> -> 0 if toolchain can link it
  echo 'int main(){return 0;}' \
    | c++ "-fsanitize=$1" -x c++ - -o "/tmp/dtn_probe_$1" 2>/dev/null \
    && rm -f "/tmp/dtn_probe_$1"
}

sanitizer_stage() {  # sanitizer_stage <mode> <build-dir> [ctest -R regex]
  local mode="$1" dir="$2" filter="${3:-}"
  cmake -B "$dir" -S . -DDTN_SANITIZE="$mode" >/dev/null || return 1
  cmake --build "$dir" -j"$build_jobs" --target dtn_all_tests >/dev/null || return 1
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -j"$test_jobs" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j"$test_jobs"
  fi
}

stage_tier1() {
  cmake -B build -S . -DDTN_WERROR=ON >/dev/null || return 1
  cmake --build build -j"$build_jobs" >/dev/null || return 1
  ctest --test-dir build --output-on-failure -j"$test_jobs"
}

stage_lint() {
  python3 tools/lint_determinism.py || return 1
  python3 tools/lint_determinism.py --self-test tests/lint
}

stage_dtnlint() {
  python3 tools/dtnlint --self-test tests/lint/fixtures/dtnlint || return 1
  python3 tools/dtnlint --audit-allowlist
}

stage_clang_tidy() {
  # A separate build tree: CMAKE_CXX_CLANG_TIDY changes every compile
  # command, so sharing build/ would force a full rebuild both ways.
  cmake -B build-tidy -S . -DDTN_CLANG_TIDY=ON >/dev/null || return 1
  # --warnings-as-errors=* in the cmake wiring turns any unsuppressed
  # finding into a compile error, so a green build means zero findings.
  cmake --build build-tidy -j"$build_jobs" >/dev/null
}

stage_tsan() {
  # The tests that hammer the thread pool: proving "parallel == serial
  # bit-for-bit" is only meaningful if the parallel path is also race-free.
  sanitizer_stage thread build-tsan \
    'ResolveThreads|ParallelFor|ParallelMap|ParallelReduce|DeriveSeed|ThreadPool|Determinism|Sweep|PathGolden|EngineGolden|GoldenFixture|Shard|Daemon'
}

stage_asan() { sanitizer_stage address build-asan; }
stage_ubsan() { sanitizer_stage undefined build-ubsan; }

run_stage "tier-1" stage_tier1

if wanted "lint"; then
  if command -v python3 >/dev/null 2>&1; then
    run_stage "lint" stage_lint
  else
    record "lint" "SKIP (no python3)"
  fi
fi

if wanted "dtnlint"; then
  if command -v python3 >/dev/null 2>&1; then
    run_stage "dtnlint" stage_dtnlint
  else
    record "dtnlint" "SKIP (no python3)"
  fi
fi

if wanted "clang-tidy"; then
  if command -v clang-tidy >/dev/null 2>&1; then
    run_stage "clang-tidy" stage_clang_tidy
  else
    record "clang-tidy" "SKIP (no clang-tidy on PATH)"
  fi
fi

# --fast only suppresses sanitizer stages that were not explicitly
# requested: `--stage asan --fast` still runs ASan.
sanitizers_wanted=1
if [[ "$fast" == 1 && -z "$only_stage" ]]; then
  record "tsan" "SKIP (--fast)"
  record "asan" "SKIP (--fast)"
  record "ubsan" "SKIP (--fast)"
  sanitizers_wanted=0
fi

if [[ "$sanitizers_wanted" == 1 ]]; then
  if wanted "tsan"; then
    if [[ "$run_tsan" == 0 ]]; then
      record "tsan" "SKIP (--no-tsan)"
    elif probe_sanitizer thread; then
      run_stage "tsan" stage_tsan
    else
      record "tsan" "SKIP (toolchain cannot link -fsanitize=thread)"
    fi
  fi
  if wanted "asan"; then
    if probe_sanitizer address; then
      run_stage "asan" stage_asan
    else
      record "asan" "SKIP (toolchain cannot link -fsanitize=address)"
    fi
  fi
  if wanted "ubsan"; then
    if probe_sanitizer undefined; then
      run_stage "ubsan" stage_ubsan
    else
      record "ubsan" "SKIP (toolchain cannot link -fsanitize=undefined)"
    fi
  fi
fi

echo
echo "== verify summary =="
printf '%-12s %s\n' "stage" "result"
printf '%-12s %s\n' "-----" "------"
for i in "${!stage_names[@]}"; do
  printf '%-12s %s\n' "${stage_names[$i]}" "${stage_results[$i]}"
done

if [[ "$overall" != 0 ]]; then
  echo "verify: FAILED"
  exit 1
fi
echo "verify: OK"

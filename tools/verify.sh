#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the parallel layer.
#
#   tools/verify.sh            # full: release build + all tests + TSan pass
#   tools/verify.sh --no-tsan  # tier-1 only (e.g. toolchain without libtsan)
#
# The TSan stage rebuilds into build-tsan/ with DTN_SANITIZE=thread and runs
# the tests that hammer the thread pool (parallel_test, determinism_test,
# sweep_test): proving "parallel == serial bit-for-bit" is only meaningful
# if the parallel path is also race-free.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== tier-1: release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" >/dev/null
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  if echo 'int main(){return 0;}' | c++ -fsanitize=thread -x c++ - -o /tmp/dtn_tsan_probe 2>/dev/null; then
    rm -f /tmp/dtn_tsan_probe
    echo "== TSan: parallel layer under -fsanitize=thread =="
    cmake -B build-tsan -S . -DDTN_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j"$(nproc)" \
      --target parallel_test determinism_test sweep_test >/dev/null
    ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
      -R 'ResolveThreads|ParallelFor|ParallelMap|ParallelReduce|DeriveSeed|ThreadPool|Determinism|Sweep'
  else
    echo "!! skipping TSan pass: toolchain cannot link -fsanitize=thread" >&2
  fi
fi

echo "verify: OK"

#!/usr/bin/env bash
# Staged verification pipeline. Every stage is recorded; the script prints a
# per-stage summary table at the end and exits non-zero if ANY stage failed.
#
#   tools/verify.sh            full: tier-1 + lint + clang-tidy + TSan/ASan/UBSan
#   tools/verify.sh --fast     skip the sanitizer rebuilds (local iteration)
#   tools/verify.sh --no-tsan  legacy flag: skip only the TSan stage
#
# Stages (see "Verification matrix" in README.md for what each one catches):
#   tier-1      release build with -Werror + the full ctest suite
#   lint        tools/lint_determinism.py over src/ + its fixture self-test
#   clang-tidy  .clang-tidy over every TU (skipped when clang-tidy is absent)
#   tsan        -fsanitize=thread over the parallel-layer tests
#   asan        -fsanitize=address over the full ctest suite
#   ubsan       -fsanitize=undefined over the full ctest suite
set -uo pipefail
cd "$(dirname "$0")/.."

fast=0
run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --no-tsan) run_tsan=0 ;;
    *) echo "usage: tools/verify.sh [--fast] [--no-tsan]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc)"
stage_names=()
stage_results=()
overall=0

record() {  # record <name> <result: OK|FAIL|SKIP (reason)>
  stage_names+=("$1")
  stage_results+=("$2")
  [[ "$2" == FAIL* ]] && overall=1
}

run_stage() {  # run_stage <name> <function>
  echo
  echo "== stage: $1 =="
  if "$2"; then
    record "$1" "OK"
  else
    record "$1" "FAIL"
  fi
}

probe_sanitizer() {  # probe_sanitizer <flag> -> 0 if toolchain can link it
  echo 'int main(){return 0;}' \
    | c++ "-fsanitize=$1" -x c++ - -o "/tmp/dtn_probe_$1" 2>/dev/null \
    && rm -f "/tmp/dtn_probe_$1"
}

sanitizer_stage() {  # sanitizer_stage <mode> <build-dir> [ctest -R regex]
  local mode="$1" dir="$2" filter="${3:-}"
  cmake -B "$dir" -S . -DDTN_SANITIZE="$mode" >/dev/null || return 1
  cmake --build "$dir" -j"$jobs" --target dtn_all_tests >/dev/null || return 1
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$dir" --output-on-failure -j"$jobs" -R "$filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j"$jobs"
  fi
}

stage_tier1() {
  cmake -B build -S . -DDTN_WERROR=ON >/dev/null || return 1
  cmake --build build -j"$jobs" >/dev/null || return 1
  ctest --test-dir build --output-on-failure -j"$jobs"
}

stage_lint() {
  python3 tools/lint_determinism.py || return 1
  python3 tools/lint_determinism.py --self-test tests/lint
}

stage_clang_tidy() {
  # A separate build tree: CMAKE_CXX_CLANG_TIDY changes every compile
  # command, so sharing build/ would force a full rebuild both ways.
  cmake -B build-tidy -S . -DDTN_CLANG_TIDY=ON >/dev/null || return 1
  # --warnings-as-errors=* in the cmake wiring turns any unsuppressed
  # finding into a compile error, so a green build means zero findings.
  cmake --build build-tidy -j"$jobs" >/dev/null
}

stage_tsan() {
  # The tests that hammer the thread pool: proving "parallel == serial
  # bit-for-bit" is only meaningful if the parallel path is also race-free.
  sanitizer_stage thread build-tsan \
    'ResolveThreads|ParallelFor|ParallelMap|ParallelReduce|DeriveSeed|ThreadPool|Determinism|Sweep'
}

stage_asan() { sanitizer_stage address build-asan; }
stage_ubsan() { sanitizer_stage undefined build-ubsan; }

run_stage "tier-1" stage_tier1

if command -v python3 >/dev/null 2>&1; then
  run_stage "lint" stage_lint
else
  record "lint" "SKIP (no python3)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  run_stage "clang-tidy" stage_clang_tidy
else
  record "clang-tidy" "SKIP (no clang-tidy on PATH)"
fi

if [[ "$fast" == 1 ]]; then
  record "tsan" "SKIP (--fast)"
  record "asan" "SKIP (--fast)"
  record "ubsan" "SKIP (--fast)"
else
  if [[ "$run_tsan" == 0 ]]; then
    record "tsan" "SKIP (--no-tsan)"
  elif probe_sanitizer thread; then
    run_stage "tsan" stage_tsan
  else
    record "tsan" "SKIP (toolchain cannot link -fsanitize=thread)"
  fi
  if probe_sanitizer address; then
    run_stage "asan" stage_asan
  else
    record "asan" "SKIP (toolchain cannot link -fsanitize=address)"
  fi
  if probe_sanitizer undefined; then
    run_stage "ubsan" stage_ubsan
  else
    record "ubsan" "SKIP (toolchain cannot link -fsanitize=undefined)"
  fi
fi

echo
echo "== verify summary =="
printf '%-12s %s\n' "stage" "result"
printf '%-12s %s\n' "-----" "------"
for i in "${!stage_names[@]}"; do
  printf '%-12s %s\n' "${stage_names[$i]}" "${stage_results[$i]}"
done

if [[ "$overall" != 0 ]]; then
  echo "verify: FAILED"
  exit 1
fi
echo "verify: OK"

// Sharded bound-weave engine bench (sim/shard.h, DESIGN.md §12): the same
// cell simulated three ways — the classic serial loop (shards=1), the
// sharded engine pinned to one thread (shards=4, threads=1: what the
// plan/bound/weave machinery itself costs), and the sharded engine on the
// thread pool (shards=4, threads=0 i.e. all cores). The work unit is
// contacts processed.
//
// The acceptance contract for the sharded engine is a >= 2x contacts/sec
// speedup at 4 shards on a >= 4-core host; pass `--min-speedup X` to
// enforce that ratio as the exit status (the bench-smoke ctest entry and
// the CI bench-smoke job both do, conditioned on core count). The `--json`
// artifact is additionally gated by tools/bench_compare.py on ns per
// contact against bench/baselines/bench_shard.json.
//
// The preset is built for shardability, the regime the engine targets:
// a strongly modular contact graph (4 communities, heavily boosted
// intra-community rates, peripheral cross pairs pruned) keeps cross-shard
// contacts — the weave barriers — rare, so bound phases stay long; an
// entry-rich workload (small items against large buffers) makes the
// per-contact scheme work heavy enough to dominate the epoch. The scheme
// is CacheData: node-local (SchemeConcurrency::kNodeLocal), so its
// contact hot loop actually runs in the parallel bound phase.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/cache_data.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "sim/engine.h"
#include "sim/shard.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

using namespace dtn;

namespace {

volatile double g_sink = 0.0;

constexpr int kShards = 4;

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup is this bench's own flag; BenchArgs::parse aborts on
  // anything it does not know, so strip it before delegating.
  double min_speedup = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto args = bench::BenchArgs::parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::print_header("sharded bound-weave engine");
  bench::JsonReport report("bench_shard", args);

  // More nodes = more live data items (the workload generates per node) =
  // heavier per-contact exchange work, which is what the parallel bound
  // phase amortizes the serial plan pass against.
  const NodeId nodes = args.fast ? 48 : 192;
  const double trace_days = args.days > 0 ? args.days : 6.0;

  SyntheticTraceConfig tc;
  tc.node_count = nodes;
  tc.duration = days(trace_days);
  tc.target_total_contacts =
      static_cast<double>(nodes) * (args.fast ? 800.0 : 850.0);
  tc.community_count = kShards;
  tc.intra_community_boost = 80.0;
  tc.pair_fraction = 0.3;
  // Near-uniform popularity: with the default Pareto tail, hub-hub pairs
  // in DIFFERENT communities out-product the 80x intra boost (rates are
  // popularity products), and the cross fraction lands near 50% no matter
  // how the nodes are sharded. A flat distribution lets community
  // membership dominate pair rates, which is the modular regime the
  // engine is for.
  tc.popularity_shape = 12.0;
  tc.seed = 29;
  const ContactTrace trace = generate_trace(tc);

  WorkloadConfig wc;
  wc.start = trace.start_time() + trace.duration() / 2.0;
  wc.end = trace.end_time();
  wc.avg_lifetime = hours(36);
  wc.generation_prob = 0.8;
  // Small items against large buffers: hundreds of live entries per node
  // make the exchange/replacement work inside on_contact the dominant
  // per-contact cost, which is the regime a parallel bound phase helps.
  wc.avg_size = megabits(1);
  wc.seed = 2026;
  const Workload workload = generate_workload(wc, trace.node_count());

  Rng buffer_rng(0xB0FFu);
  FloodingConfig fc;
  fc.buffer_capacity.resize(static_cast<std::size_t>(trace.node_count()));
  for (auto& b : fc.buffer_capacity) {
    b = buffer_rng.uniform_int(megabits(400), megabits(800));
  }

  SimConfig sim;
  sim.path_horizon = hours(1);
  // One tick at phase start: maintenance (a serial weave barrier in every
  // configuration) stays out of the measured steady state.
  sim.maintenance_interval = days(trace_days);
  sim.seed = 2026;

  const ShardPlan plan =
      build_shard_plan(trace.events(), trace.node_count(), kShards);
  std::printf(
      "trace: %d nodes, %zu contacts, %zu workload events\n"
      "plan:  %d shards, %zu intra / %zu cross contacts (%.1f%% cross)\n",
      trace.node_count(), trace.size(), workload.events().size(),
      plan.shard_count, plan.intra_contacts, plan.cross_contacts,
      100.0 * static_cast<double>(plan.cross_contacts) /
          static_cast<double>(trace.size()));

  std::size_t contacts = 0;
  auto run_engine = [&](int shards, int threads) {
    CacheDataScheme scheme(fc);
    SimConfig run_config = sim;
    run_config.shards = shards;
    run_config.threads = threads;
    const RunResult run = run_simulation(trace, workload, scheme, run_config);
    contacts = run.contacts_processed;
    g_sink = run.metrics.success_ratio();
  };

  report.stage(
      "shard_single", [&] { run_engine(1, 1); }, "contacts_processed");
  const double success_single = g_sink;

  report.stage(
      "shard_serial", [&] { run_engine(kShards, 1); }, "contacts_processed");
  const double success_serial = g_sink;

  report.stage(
      "shard_parallel", [&] { run_engine(kShards, args.threads); },
      "contacts_processed");
  const double success_parallel = g_sink;

  double single_ns = 0.0;
  double serial_ns = 0.0;
  double parallel_ns = 0.0;
  for (const auto& stage : report.stages()) {
    if (stage.name == "shard_single") {
      single_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "shard_serial") {
      serial_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "shard_parallel") {
      parallel_ns = static_cast<double>(stage.median_ns);
    }
  }
  const double speedup = parallel_ns > 0.0 ? single_ns / parallel_ns : 0.0;
  const double overhead = single_ns > 0.0 ? serial_ns / single_ns : 0.0;

  std::printf("%-22s %6s %14s %14s %18s\n", "stage", "reps", "median_ms",
              "p90_ms", "ns_per_contact");
  for (const auto& s : report.stages()) {
    std::printf("%-22s %6d %14.3f %14.3f %18.2f\n", s.name.c_str(), s.reps,
                static_cast<double>(s.median_ns) / 1e6,
                static_cast<double>(s.p90_ns) / 1e6,
                static_cast<double>(s.median_ns) / s.work_units_per_rep);
  }
  std::printf("contacts per run: %zu\n", contacts);
  std::printf("bound-weave overhead (serial shards / single): %.2fx\n",
              overhead);
  std::printf("shard speedup (single / parallel): %.2fx\n", speedup);

  // Byte-identity is pinned exhaustively by tests/shard_test.cpp; this
  // cheap cross-check just refuses to report a speedup for runs that
  // silently diverged.
  if (success_single != success_serial || success_single != success_parallel) {
    std::fprintf(stderr,
                 "FAIL: engines diverged (success %.17g / %.17g / %.17g)\n",
                 success_single, success_serial, success_parallel);
    return 1;
  }

  if (!report.write_if_requested()) return 1;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: shard speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

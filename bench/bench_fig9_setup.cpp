// Reproduces Figure 9: the experiment setup.
//  (a) how the average data lifetime T_L controls the amount of data in
//      the network (p_G = 0.2 fixed);
//  (b) the Zipf query probabilities P_j for different exponents s.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "workload/workload.h"
#include "workload/zipf.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 9(a): data volume vs average lifetime T_L");
  bench::JsonReport report("bench_fig9_setup", args);

  const NodeId nodes = 97;  // MIT Reality size
  const double window_days = args.days > 0 ? args.days : 60;

  std::string table_a;
  report.stage("fig9a_data_volume", [&] {
    TextTable a(
        {"T_L", "items generated", "avg alive items", "alive bytes(MB)"});
    for (double tl_hours : {12.0, 24.0, 72.0, 168.0, 336.0}) {
      WorkloadConfig wc;
      wc.start = 0.0;
      wc.end = days(window_days);
      wc.avg_lifetime = hours(tl_hours);
      wc.seed = 11;
      const Workload w = generate_workload(wc, nodes);

      // Average alive population over the window, sampled every T_L/4.
      double alive_sum = 0.0;
      int samples = 0;
      for (Time t = wc.avg_lifetime; t < wc.end; t += wc.avg_lifetime / 4.0) {
        alive_sum += static_cast<double>(w.registry().alive_count(t));
        ++samples;
      }
      double bytes = 0.0;
      for (std::size_t i = 0; i < w.data_count(); ++i) {
        bytes +=
            static_cast<double>(w.registry().get(static_cast<DataId>(i)).size);
      }
      a.begin_row();
      a.add_cell(format_duration(wc.avg_lifetime));
      a.add_integer(static_cast<long long>(w.data_count()));
      a.add_number(samples ? alive_sum / samples : 0.0, 1);
      a.add_number(bytes / 1e6 /
                       static_cast<double>(w.data_count() ? w.data_count() : 1) *
                       (samples ? alive_sum / samples : 0.0),
                   0);
    }
    table_a = a.to_string();
  });
  std::printf("%s\n", table_a.c_str());

  bench::print_header("Figure 9(b): Zipf query probabilities P_j");
  std::string table_b;
  report.stage("fig9b_zipf_pmf", [&] {
    TextTable b({"rank j", "s=0.5", "s=1.0", "s=1.5", "s=2.0"});
    const std::size_t m = 100;
    const ZipfDistribution z05(m, 0.5), z10(m, 1.0), z15(m, 1.5), z20(m, 2.0);
    for (std::size_t j : {1u, 2u, 3u, 5u, 10u, 20u, 50u, 100u}) {
      b.begin_row();
      b.add_integer(static_cast<long long>(j));
      b.add_number(z05.probability(j), 4);
      b.add_number(z10.probability(j), 4);
      b.add_number(z15.probability(j), 4);
      b.add_number(z20.probability(j), 4);
    }
    table_b = b.to_string();
  });
  std::printf("%s\n", table_b.c_str());
  std::printf(
      "Reading: (a) the generation rule (decision every T_L, p_G=0.2) keeps\n"
      "the alive population roughly constant while longer lifetimes mean\n"
      "fewer, longer-lived, larger-in-aggregate items; (b) larger s\n"
      "concentrates queries on the top-ranked data, matching Fig. 9(b).\n");
  return report.write_if_requested() ? 0 : 1;
}

// Path-engine bench: the Eq. 1-3 machinery end to end. Cold all-pairs
// builds under both engines (the zero-allocation production engine vs the
// legacy allocating reference), then the weight_at re-evaluation sweep in
// scalar and batched (weights_at) form, plus the metrics-layer
// collect_path_quality consumer.
//
// The acceptance contract for the engine rewrite is that the fast build is
// at least 3x the reference on the same host; pass `--min-speedup X` to
// enforce that ratio as the exit status (the bench-smoke ctest entry and
// the CI bench-smoke job both do). The `--json` artifact is additionally
// gated by tools/bench_compare.py on ns per path table / per parent-chain
// walk against bench/baselines/bench_paths.json.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "graph/all_pairs.h"
#include "graph/contact_graph.h"
#include "graph/opportunistic_path.h"
#include "sim/metrics.h"
#include "trace/synthetic.h"

using namespace dtn;

namespace {

// Contact dynamics shaped like the paper's Infocom trace: a synthetic
// trace at that scale, reduced to the rate graph the path engine consumes.
ContactGraph bench_graph(NodeId nodes, double trace_days) {
  SyntheticTraceConfig config;
  config.node_count = nodes;
  config.duration = days(trace_days);
  config.target_total_contacts = static_cast<std::size_t>(nodes) * 300;
  config.seed = 41;
  return build_contact_graph(generate_trace(config));
}

volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup is this bench's own flag; BenchArgs::parse aborts on
  // anything it does not know, so strip it before delegating.
  double min_speedup = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto args = bench::BenchArgs::parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::print_header("path engine");
  bench::JsonReport report("bench_paths", args);

  const NodeId nodes = args.fast ? 48 : 97;
  const double trace_days = args.days > 0 ? args.days : 3.0;
  const ContactGraph graph = bench_graph(nodes, trace_days);
  const Time horizon = hours(1);
  const int max_hops = 8;
  std::printf("graph: %d nodes, horizon %.0fs, max_hops %d\n",
              graph.node_count(), horizon, max_hops);

  report.stage(
      "all_pairs_reference",
      [&] {
        const AllPairsPaths paths(graph, horizon, max_hops, args.threads,
                                  PathEngine::kReference);
        g_sink = paths.weight(0, graph.node_count() - 1);
      },
      "path_tables_built");

  report.stage(
      "all_pairs_fast",
      [&] {
        const AllPairsPaths paths(graph, horizon, max_hops, args.threads,
                                  PathEngine::kFast);
        g_sink = paths.weight(0, graph.node_count() - 1);
      },
      "path_tables_built");

  // One table set for the re-evaluation sweeps (engine does not matter:
  // the tables are bit-identical; built fast, serial for stable timings).
  const AllPairsPaths paths(graph, horizon, max_hops, 1, PathEngine::kFast);
  const std::vector<Time> budgets{minutes(10), minutes(30), hours(1)};

  report.stage(
      "weight_at_scalar_sweep",
      [&] {
        double acc = 0.0;
        for (const Time budget : budgets) {
          for (NodeId to = 0; to < graph.node_count(); ++to) {
            for (NodeId from = 0; from < graph.node_count(); ++from) {
              acc += paths.weight_at(from, to, budget);
            }
          }
        }
        g_sink = acc;
      },
      "parent_chain_walks");

  {
    std::vector<NodeId> from_list(static_cast<std::size_t>(nodes));
    for (NodeId i = 0; i < nodes; ++i) from_list[static_cast<std::size_t>(i)] = i;
    std::vector<double> weights;
    report.stage(
        "weights_at_batched_sweep",
        [&] {
          double acc = 0.0;
          for (const Time budget : budgets) {
            for (NodeId to = 0; to < graph.node_count(); ++to) {
              paths.weights_at(from_list, to, budget, weights);
              for (const double w : weights) acc += w;
            }
          }
          g_sink = acc;
        },
        "parent_chain_walks");
  }

  report.stage(
      "path_quality_profile",
      [&] {
        const PathQualityProfile q = collect_path_quality(paths, horizon / 2);
        g_sink = q.mean;
      },
      "parent_chain_walks");

  double reference_ns = 0.0;
  double fast_ns = 0.0;
  for (const auto& stage : report.stages()) {
    if (stage.name == "all_pairs_reference") {
      reference_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "all_pairs_fast") {
      fast_ns = static_cast<double>(stage.median_ns);
    }
  }
  const double speedup = fast_ns > 0.0 ? reference_ns / fast_ns : 0.0;

  std::printf("%-26s %6s %14s %14s %18s\n", "stage", "reps", "median_ms",
              "p90_ms", "ns_per_unit");
  for (const auto& s : report.stages()) {
    std::printf("%-26s %6d %14.3f %14.3f %18.2f\n", s.name.c_str(), s.reps,
                static_cast<double>(s.median_ns) / 1e6,
                static_cast<double>(s.p90_ns) / 1e6,
                static_cast<double>(s.median_ns) / s.work_units_per_rep);
  }
  std::printf("all-pairs build speedup (reference / fast): %.2fx\n", speedup);

  if (!report.write_if_requested()) return 1;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: all-pairs speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

// Reproduces Figure 11: caching performance on the MIT Reality trace as a
// function of the average data size s_avg — i.e. of the node buffer
// pressure (buffers stay at the paper's 200-600 Mb while items grow).
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 11: data access performance vs average data size s_avg "
      "(MIT Reality, K=8, T_L=1 week)");
  bench::JsonReport report("bench_fig11_datasize", args);

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  const std::vector<SchemeKind> kinds = {
      SchemeKind::kNclCache, SchemeKind::kNoCache, SchemeKind::kRandomCache,
      SchemeKind::kCacheData, SchemeKind::kBundleCache};
  const std::vector<double> sizes_mb =
      args.fast ? std::vector<double>{20, 200}
                : std::vector<double>{20, 50, 100, 200};

  std::vector<std::string> headers{"s_avg"};
  for (SchemeKind k : kinds) headers.push_back(scheme_kind_name(k));
  TextTable ratio(headers), delay(headers), copies(headers);

  // One stage for the whole sweep: repetitions happen inside run_experiment.
  report.stage(
      "fig11_datasize_sweep",
      [&] {
        for (double size_mb : sizes_mb) {
          ExperimentConfig config;
          config.avg_lifetime = weeks(1);
          config.avg_data_size = megabits(size_mb);
          config.ncl_count = 8;
          config.repetitions = args.reps;
          config.sim.maintenance_interval = days(1);

          const std::string label = format_double(size_mb, 0) + "Mb";
          ratio.begin_row();
          delay.begin_row();
          copies.begin_row();
          ratio.add_cell(label);
          delay.add_cell(label);
          copies.add_cell(label);
          for (SchemeKind kind : kinds) {
            const ExperimentResult r = run_experiment(trace, kind, config);
            ratio.add_number(r.success_ratio.mean(), 3);
            delay.add_number(r.delay_hours.mean(), 1);
            copies.add_number(r.copies_per_item.mean(), 2);
          }
        }
      },
      "contacts_processed", 1);

  std::printf("(a) successful ratio\n%s\n", ratio.to_string().c_str());
  std::printf("(b) data access delay (hours)\n%s\n", delay.to_string().c_str());
  std::printf("(c) caching overhead (copies per item)\n%s\n",
              copies.to_string().c_str());
  std::printf(
      "Expected shape (paper Sec. VI-B): larger items mean fewer cacheable\n"
      "copies, so every scheme degrades; the NCL scheme degrades the most\n"
      "gently thanks to utility-based replacement, so its advantage WIDENS\n"
      "as the buffer constraint tightens.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Ablation: the opportunistic-path time budget T.
//
// Sec. IV-B warns that "inappropriate values of T will make C_i close to 0
// or 1" and picks T per trace. This bench sweeps fixed T values against the
// auto-calibrated horizon on the MIT Reality trace and shows the impact on
// end-to-end caching performance — T is not merely a reporting knob: it
// drives NCL selection, the push/pull gradients and the response decision.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: path-weight horizon T (MIT Reality, K=8)");

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  TextTable table({"T", "median metric", "success ratio", "delay (h)"});

  ExperimentConfig base;
  base.avg_lifetime = weeks(1);
  base.avg_data_size = megabits(100);
  base.ncl_count = 8;
  base.repetitions = args.reps;
  base.sim.maintenance_interval = days(1);

  const ContactGraph graph = warmup_graph(trace, base);

  auto run_with = [&](const std::string& label, bool auto_h, Time fixed) {
    ExperimentConfig config = base;
    config.auto_horizon = auto_h;
    if (!auto_h) config.sim.path_horizon = fixed;
    const Time used = effective_horizon(graph, config);
    std::vector<double> metrics = ncl_metrics(graph, used, config.sim.max_hops);
    const double median = percentile(metrics, 0.5);
    const ExperimentResult r =
        run_experiment(trace, SchemeKind::kNclCache, config);
    table.begin_row();
    table.add_cell(label + " (" + format_duration(used) + ")");
    table.add_number(median, 3);
    table.add_number(r.success_ratio.mean(), 3);
    table.add_number(r.delay_hours.mean(), 1);
  };

  bench::JsonReport report("bench_ablation_horizon", args);
  report.stage(
      "ablation_horizon_sweep",
      [&] {
        run_with("fixed 1h", false, hours(1));
        run_with("fixed 6h", false, hours(6));
        run_with("fixed 1d", false, days(1));
        run_with("fixed 1wk (paper)", false, weeks(1));
        run_with("auto", true, 0.0);
      },
      "contacts_processed", 1);

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: gradient forwarding only needs the *relative order* of\n"
      "weights, so small T values survive better than Sec. IV-B's warning\n"
      "suggests; the harmful end is saturation — at T = 1 week the median\n"
      "metric is ~1, NCL selection degenerates and delay jumps ~25%%. The\n"
      "auto-calibrated T sits safely in the informative middle.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Ablation: pieces of the cache-replacement design (Sec. V-D).
//
// Variants of the NCL scheme:
//  * full        — probabilistic knapsack exchange (Algorithm 1), the paper;
//  * det-knapsack — deterministic knapsack (Sec. V-D.2 without V-D.3);
//  * no-exchange — contact-time replacement disabled entirely (push only).
// Swept over buffer pressure, to see where each piece earns its keep.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Ablation: replacement design (MIT Reality, K=8, T_L=1wk)");

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  struct Variant {
    const char* label;
    bool enable_exchange;
    bool probabilistic;
  };
  const Variant variants[] = {
      {"full (Algorithm 1)", true, true},
      {"det-knapsack", true, false},
      {"no-exchange", false, false},
  };
  const double sizes_mb[] = {50, 100, 200};

  bench::JsonReport report("bench_ablation_replacement", args);
  TextTable ratio({"s_avg", "full (Algorithm 1)", "det-knapsack",
                   "no-exchange"});
  TextTable copies({"s_avg", "full (Algorithm 1)", "det-knapsack",
                    "no-exchange"});
  report.stage(
      "ablation_replacement_sweep",
      [&] {
        for (double size_mb : sizes_mb) {
          ratio.begin_row();
          copies.begin_row();
          ratio.add_cell(format_double(size_mb, 0) + "Mb");
          copies.add_cell(format_double(size_mb, 0) + "Mb");
          for (const Variant& variant : variants) {
            ExperimentConfig config;
            config.avg_lifetime = weeks(1);
            config.avg_data_size = megabits(size_mb);
            config.ncl_count = 8;
            config.enable_replacement = variant.enable_exchange;
            config.repetitions = args.reps;
            config.sim.maintenance_interval = days(1);
            // The probabilistic flag lives in NclSchemeConfig::replacement,
            // which run_experiment does not expose — drive the scheme by
            // hand.
            const Time warmup_end =
                trace.start_time() + trace.duration() / 2.0;
            const ContactGraph graph = warmup_graph(trace, config);
            const Time horizon = effective_horizon(graph, config);
            const NclSelection ncls = select_ncls(
                graph, horizon, config.ncl_count, config.sim.max_hops);

            RunningStats ratio_stats, copies_stats;
            for (int rep = 0; rep < config.repetitions; ++rep) {
              const std::uint64_t rep_seed =
                  config.seed +
                  0x9E3779B9ULL * static_cast<std::uint64_t>(rep + 1);
              WorkloadConfig wc;
              wc.start = warmup_end;
              wc.end = trace.end_time();
              wc.avg_lifetime = config.avg_lifetime;
              wc.avg_size = config.avg_data_size;
              wc.seed = rep_seed;
              const Workload workload =
                  generate_workload(wc, trace.node_count());

              NclSchemeConfig sc;
              sc.central_nodes = ncls.central_nodes;
              sc.buffer_capacity = draw_buffer_capacities(
                  config, trace.node_count(), rep_seed ^ 0xB0FFu);
              sc.enable_replacement = variant.enable_exchange;
              sc.replacement.probabilistic = variant.probabilistic;
              NclCachingScheme scheme(std::move(sc));

              SimConfig sim = config.sim;
              sim.path_horizon = horizon;
              sim.seed = rep_seed ^ 0x51Au;
              const RunResult run =
                  run_simulation(trace, workload, scheme, sim);
              ratio_stats.add(run.metrics.success_ratio());
              copies_stats.add(run.metrics.mean_copies());
            }
            ratio.add_number(ratio_stats.mean(), 3);
            copies.add_number(copies_stats.mean(), 2);
          }
        }
      },
      "contacts_processed", 1);

  std::printf("successful ratio\n%s\n", ratio.to_string().c_str());
  std::printf("caching overhead (copies per item)\n%s\n",
              copies.to_string().c_str());
  std::printf(
      "Reading: on this substrate the three variants are close — the push\n"
      "already places copies well, so the exchange's main job is keeping\n"
      "them CORRECT under churn: its advantage shows against the\n"
      "insertion-time policies of Fig. 12 (which evict blindly), not\n"
      "against merely switching the exchange off. The probabilistic twist\n"
      "trims copies slightly (copy-control) at nearly unchanged ratio.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Ablation: the probabilistic response variants (Sec. V-C).
//
// Compares deterministic response (always reply), the sigmoid fallback
// (Eq. 4, several p_min/p_max anchors) and the path-weight variant
// p_CR(T_q - t_0), on the MIT Reality trace. The metric of interest is the
// ACCESSIBILITY / OVERHEAD trade-off: successful ratio vs duplicate
// (wasted) data deliveries and bytes transferred.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

namespace {

struct Variant {
  const char* label;
  ResponseMode mode;
  SigmoidResponse sigmoid;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Ablation: probabilistic response variants (MIT Reality, K=8, "
      "T_L=1wk)");

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  const Variant variants[] = {
      {"always", ResponseMode::kAlways, {}},
      {"sigmoid(.45,.80)", ResponseMode::kSigmoid, {0.45, 0.8}},
      {"sigmoid(.30,.50)", ResponseMode::kSigmoid, {0.30, 0.5}},
      {"sigmoid(.55,1.0)", ResponseMode::kSigmoid, {0.55, 1.0}},
      {"path-weight", ResponseMode::kPathWeight, {}},
  };

  bench::JsonReport report("bench_ablation_response", args);
  TextTable table({"variant", "success ratio", "delay (h)", "GB transferred",
                   "duplicate deliveries"});
  report.stage(
      "ablation_response_sweep",
      [&] {
        for (const Variant& variant : variants) {
          ExperimentConfig config;
          config.avg_lifetime = weeks(1);
          config.avg_data_size = megabits(100);
          config.ncl_count = 8;
          config.response_mode = variant.mode;
          config.sigmoid = variant.sigmoid;
          config.repetitions = args.reps;
          config.sim.maintenance_interval = days(1);

          const ExperimentResult r =
              run_experiment(trace, SchemeKind::kNclCache, config);
          table.begin_row();
          table.add_cell(variant.label);
          table.add_number(r.success_ratio.mean(), 3);
          table.add_number(r.delay_hours.mean(), 1);
          table.add_number(r.gigabytes_transferred.mean(), 2);
          table.add_number(r.duplicate_deliveries.mean(), 0);
        }
      },
      "contacts_processed", 1);
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: 'always' marks the accessibility ceiling; the sigmoid\n"
      "suppresses responses uniformly and loses ratio; the path-weight\n"
      "variant recovers most of the ceiling because it only suppresses\n"
      "responses that were unlikely to arrive in time — the tradeoff\n"
      "Sec. V-C aims for.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Sparse NCL metric bench: the scale tier (DESIGN.md §14) against the
// exact production engine on the same community-structured scale graph.
//
// Stages:
//   ncl_metrics_full_fast    exact Eq. 3, one Dijkstra per node (kFast)
//   ncl_metrics_sparse       landmark-sampled + frontier-pruned (kSparse)
//   ncl_metrics_sparse_100k  sparse-only at 10^5 nodes (skipped by --fast)
//
// The acceptance contract for the sparse engine is a >= 5x build speedup
// over the exact engine on the >= 10^4-node preset; pass `--min-speedup X`
// to enforce that ratio as the exit status (the bench-smoke ctest entry
// and CI's bench-smoke job both do). The run also cross-checks the
// degenerate sparse configuration bit-for-bit against the exact metrics,
// prints the measured-error report of the benched configuration against
// the kReference oracle on a small graph, and records the process peak
// RSS (peak_rss_bytes counter) next to the O(n^2) table footprint the
// sparse tier avoids.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "graph/ncl.h"
#include "graph/opportunistic_path.h"
#include "graph/sparse_metric.h"
#include "trace/synthetic.h"

using namespace dtn;

namespace {

volatile double g_sink = 0.0;

/// Peak resident set of this process in bytes (VmHWM from
/// /proc/self/status); 0 when the pseudo-file is unavailable.
std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kb) * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup is this bench's own flag; BenchArgs::parse aborts on
  // anything it does not know, so strip it before delegating.
  double min_speedup = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto args = bench::BenchArgs::parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::print_header("sparse NCL metric engine");
  bench::JsonReport report("bench_sparse_metric", args);

  const NodeId nodes = args.fast ? 2000 : 10000;
  const ContactGraph graph = scale_contact_graph(scale_preset(nodes));
  const Time horizon = hours(1);
  // Small hop cap: it bounds the Dijkstra ball both engines explore, which
  // is what keeps the exact baseline tractable at 10^4 nodes. The sparse
  // speedup comes from running ~|L| balls instead of n, so the ratio is
  // insensitive to the cap.
  const int max_hops = 3;

  SparseMetricConfig sparse;
  sparse.landmark_count = 128;
  sparse.strategy = LandmarkStrategy::kUniform;
  sparse.weight_floor = 1e-3;
  sparse.seed = 7;

  std::printf("graph: %d nodes, %zu edges, horizon %.0fs, max_hops %d\n",
              graph.node_count(), graph.edge_count(), horizon, max_hops);
  std::printf("sparse: %d landmarks (%s), weight floor %g\n",
              sparse.landmark_count, landmark_strategy_name(sparse.strategy),
              sparse.weight_floor);

  report.stage(
      "ncl_metrics_full_fast",
      [&] {
        const std::vector<double> m =
            ncl_metrics(graph, horizon, max_hops, args.threads);
        g_sink = m.back();
      },
      "path_tables_built");

  report.stage(
      "ncl_metrics_sparse",
      [&] {
        const std::vector<double> m = sparse_ncl_metrics(
            graph, horizon, max_hops, args.threads, sparse);
        g_sink = m.back();
      },
      "path_tables_built");

  // Degenerate configuration = exact engine, bit for bit. This is the
  // correctness anchor the speedup gate stands on: the sparse path runs
  // the same fold, just over fewer roots.
  {
    const std::vector<double> exact =
        ncl_metrics(graph, horizon, max_hops, args.threads);
    SparseMetricConfig degenerate;  // all landmarks, zero floor
    const std::vector<double> degen = sparse_ncl_metrics(
        graph, horizon, max_hops, args.threads, degenerate);
    if (exact != degen) {
      std::fprintf(stderr,
                   "FAIL: degenerate sparse metrics differ from exact\n");
      return 1;
    }
    std::printf("degenerate sparse == exact: OK (%zu metrics)\n",
                exact.size());
  }

  // Measured error of the benched configuration against the kReference
  // oracle — on a small graph, since the oracle is O(n^2) allocating.
  {
    const ContactGraph small = scale_contact_graph(scale_preset(500));
    SparseMetricConfig probe = sparse;
    probe.landmark_count = 64;
    const MetricErrorReport err =
        measure_metric_error(small, horizon, max_hops, args.threads, probe, 8);
    std::printf(
        "error vs reference (500 nodes, %zu landmarks): max %.3g, "
        "mean %.3g, top-%d overlap %.2f\n",
        err.landmark_count, err.max_abs_error, err.mean_abs_error, err.k,
        err.topk_overlap);
  }

  // Scale headroom: sparse-only at 10^5 nodes. No exact baseline — that is
  // the point — so the stage is reported, not ratio-gated. Skipped by
  // --fast to keep the smoke run quick.
  if (!args.fast) {
    const NodeId big_nodes = 100000;
    const ContactGraph big = scale_contact_graph(scale_preset(big_nodes));
    SparseMetricConfig big_sparse = sparse;
    big_sparse.landmark_count = 256;
    std::printf("scale graph: %d nodes, %zu edges\n", big.node_count(),
                big.edge_count());
    report.stage(
        "ncl_metrics_sparse_100k",
        [&] {
          const std::vector<double> m = sparse_ncl_metrics(
              big, horizon, max_hops, args.threads, big_sparse);
          g_sink = m.back();
        },
        "path_tables_built", 1);
    const std::size_t avoided =
        static_cast<std::size_t>(big_nodes) *
        static_cast<std::size_t>(big_nodes) * sizeof(PathTable::Entry);
    std::printf(
        "avoided all-pairs table footprint at %d nodes: %.1f GiB\n",
        big_nodes, static_cast<double>(avoided) / (1024.0 * 1024.0 * 1024.0));
  }

  // Record the process high-water mark so the JSON artifact carries the
  // memory side of the contract (the 10^5-node build must fit in RAM that
  // an n^2 table set could not).
  const std::uint64_t peak = peak_rss_bytes();
  DTN_COUNT_N(kPeakRssBytes, peak);
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(peak) / (1024.0 * 1024.0));

  double full_ns = 0.0;
  double sparse_ns = 0.0;
  for (const auto& stage : report.stages()) {
    if (stage.name == "ncl_metrics_full_fast") {
      full_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "ncl_metrics_sparse") {
      sparse_ns = static_cast<double>(stage.median_ns);
    }
  }
  const double speedup = sparse_ns > 0.0 ? full_ns / sparse_ns : 0.0;

  std::printf("%-26s %6s %14s %14s %18s\n", "stage", "reps", "median_ms",
              "p90_ms", "ns_per_unit");
  for (const auto& s : report.stages()) {
    std::printf("%-26s %6d %14.3f %14.3f %18.2f\n", s.name.c_str(), s.reps,
                static_cast<double>(s.median_ns) / 1e6,
                static_cast<double>(s.p90_ns) / 1e6,
                static_cast<double>(s.median_ns) / s.work_units_per_rep);
  }
  std::printf("metric build speedup (full / sparse): %.2fx\n", speedup);

  if (!report.write_if_requested()) return 1;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: sparse speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

// Reproduces Figure 12: effectiveness of the utility-based cache
// replacement (Sec. V-D) against FIFO, LRU and Greedy-Dual-Size inside the
// same NCL caching scheme, on the MIT Reality trace, as buffer pressure
// grows (s_avg 20 -> 200 Mb, T_L = 1 week).
//  (a) successful ratio, (b) data access delay,
//  (c) cache replacement overhead (replaced items per data item).
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

namespace {

const char* strategy_name(CacheStrategy s) {
  switch (s) {
    case CacheStrategy::kUtilityExchange: return "Utility(ours)";
    case CacheStrategy::kFifo: return "FIFO";
    case CacheStrategy::kLru: return "LRU";
    case CacheStrategy::kGds: return "GreedyDualSize";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 12: cache replacement strategies (MIT Reality, K=8, T_L=1wk)");
  bench::JsonReport report("bench_fig12_replacement", args);

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  const std::vector<CacheStrategy> strategies = {
      CacheStrategy::kUtilityExchange, CacheStrategy::kFifo,
      CacheStrategy::kLru, CacheStrategy::kGds};
  const std::vector<double> sizes_mb =
      args.fast ? std::vector<double>{50, 200}
                : std::vector<double>{20, 50, 100, 200};

  std::vector<std::string> headers{"s_avg"};
  for (CacheStrategy s : strategies) headers.push_back(strategy_name(s));
  TextTable ratio(headers), delay(headers), overhead(headers);

  // Replacement work dominates here, so the stage gates on evictions.
  report.stage(
      "fig12_replacement_sweep",
      [&] {
        for (double size_mb : sizes_mb) {
          const std::string label = format_double(size_mb, 0) + "Mb";
          ratio.begin_row();
          delay.begin_row();
          overhead.begin_row();
          ratio.add_cell(label);
          delay.add_cell(label);
          overhead.add_cell(label);
          for (CacheStrategy strategy : strategies) {
            ExperimentConfig config;
            config.avg_lifetime = weeks(1);
            config.avg_data_size = megabits(size_mb);
            config.ncl_count = 8;
            config.strategy = strategy;
            config.repetitions = args.reps;
            config.sim.maintenance_interval = days(1);
            const ExperimentResult r =
                run_experiment(trace, SchemeKind::kNclCache, config);
            ratio.add_number(r.success_ratio.mean(), 3);
            delay.add_number(r.delay_hours.mean(), 1);
            overhead.add_number(r.replacement_overhead.mean(), 2);
          }
        }
      },
      "contacts_processed", 1);

  std::printf("(a) successful ratio\n%s\n", ratio.to_string().c_str());
  std::printf("(b) data access delay (hours)\n%s\n", delay.to_string().c_str());
  std::printf("(c) replacement overhead (replaced items per data item)\n%s\n",
              overhead.to_string().c_str());
  std::printf(
      "Expected shape (paper Sec. VI-C): with loose buffers (small s_avg)\n"
      "the traditional policies trail only mildly; as s_avg grows they pick\n"
      "the wrong data to keep and the gap to the utility strategy widens;\n"
      "replacement overhead differs only slightly across strategies.\n");
  return report.write_if_requested() ? 0 : 1;
}

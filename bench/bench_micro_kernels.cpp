// Microbenchmarks (google-benchmark) for the computational kernels:
// hypoexponential CDF evaluation, opportunistic-path Dijkstra, the
// replacement knapsack DP, the exchange planner and workload sampling.
#include <benchmark/benchmark.h>

#include "cache/knapsack.h"
#include "cache/replacement.h"
#include "common/rng.h"
#include "graph/all_pairs.h"
#include "graph/hypoexp.h"
#include "graph/ncl.h"
#include "graph/opportunistic_path.h"
#include "trace/synthetic.h"
#include "workload/zipf.h"

namespace dtn {
namespace {

std::vector<double> random_rates(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rates(n);
  for (auto& r : rates) r = rng.uniform(0.05, 5.0);
  return rates;
}

void BM_HypoexpClosedForm(benchmark::State& state) {
  const auto rates = random_rates(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypoexp_cdf_closed_form(rates, 2.0));
  }
}
BENCHMARK(BM_HypoexpClosedForm)->Arg(2)->Arg(4)->Arg(8);

void BM_HypoexpUniformization(benchmark::State& state) {
  const auto rates = random_rates(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypoexp_cdf_uniformization(rates, 2.0));
  }
}
BENCHMARK(BM_HypoexpUniformization)->Arg(2)->Arg(4)->Arg(8);

void BM_HypoexpDispatch(benchmark::State& state) {
  const auto rates = random_rates(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypoexp_cdf(rates, 2.0));
  }
}
BENCHMARK(BM_HypoexpDispatch)->Arg(2)->Arg(4)->Arg(8);

ContactGraph random_graph(NodeId n, double edge_prob, std::uint64_t seed) {
  Rng rng(seed);
  ContactGraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(edge_prob)) g.set_rate(i, j, rng.uniform(0.01, 2.0));
    }
  }
  return g;
}

void BM_OpportunisticDijkstra(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const ContactGraph g = random_graph(n, 0.3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_opportunistic_paths(g, 0, 2.0));
  }
}
BENCHMARK(BM_OpportunisticDijkstra)->Arg(32)->Arg(97)->Arg(275);

void BM_NclMetrics(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const ContactGraph g = random_graph(n, 0.3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ncl_metrics(g, 2.0));
  }
}
BENCHMARK(BM_NclMetrics)->Arg(32)->Arg(97);

void BM_AllPairsPaths(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const ContactGraph g = random_graph(n, 0.3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AllPairsPaths(g, 2.0));
  }
}
BENCHMARK(BM_AllPairsPaths)->Arg(32)->Arg(97);

void BM_KnapsackDp(benchmark::State& state) {
  Rng rng(3);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back({rng.uniform(), rng.uniform_int(1 << 20, 20 << 20)});
  }
  const Bytes capacity = 600LL << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_knapsack(items, capacity));
  }
}
BENCHMARK(BM_KnapsackDp)->Arg(8)->Arg(32)->Arg(128);

void BM_PlanReplacement(benchmark::State& state) {
  Rng rng(5);
  std::vector<ReplacementItem> pool;
  for (int i = 0; i < state.range(0); ++i) {
    ReplacementItem item;
    item.id = i;
    item.size = rng.uniform_int(1 << 20, 20 << 20);
    item.popularity = rng.uniform();
    item.at_a = rng.bernoulli(0.5);
    pool.push_back(item);
  }
  ReplacementConfig config;
  for (auto _ : state) {
    Rng trial_rng(11);
    benchmark::DoNotOptimize(plan_replacement(pool, 300LL << 20, 300LL << 20,
                                              0.7, 0.4, config, trial_rng));
  }
}
BENCHMARK(BM_PlanReplacement)->Arg(8)->Arg(32);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 1.0);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

void BM_TraceGeneration(benchmark::State& state) {
  SyntheticTraceConfig config;
  config.node_count = static_cast<NodeId>(state.range(0));
  config.duration = days(10);
  config.target_total_contacts = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_trace(config));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(50)->Arg(97);

}  // namespace
}  // namespace dtn

BENCHMARK_MAIN();

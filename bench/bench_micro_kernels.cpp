// Microbenchmarks for the computational kernels: hypoexponential CDF
// evaluation by algorithm (Eqs. 1-2), the opportunistic-path Dijkstra,
// NCL metric + all-pairs tables, the replacement knapsack DP (Eq. 7), the
// exchange planner (Algorithm 1), workload sampling and trace generation.
//
// Each stage runs a fixed amount of work per repetition (deterministic
// inputs, seeded RNG) and reports median/p10/p90 wall time plus the
// instrumentation counter deltas; `--json PATH` emits the machine-readable
// record consumed by tools/bench_compare.py, which gates on time per
// counter unit (ns per CDF evaluation, per DP cell, ...), not raw wall
// time.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "cache/knapsack.h"
#include "cache/replacement.h"
#include "common/rng.h"
#include "graph/all_pairs.h"
#include "graph/hypoexp.h"
#include "graph/ncl.h"
#include "graph/opportunistic_path.h"
#include "trace/synthetic.h"
#include "workload/zipf.h"

using namespace dtn;

namespace {

std::vector<double> random_rates(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rates(n);
  for (auto& r : rates) r = rng.uniform(0.05, 5.0);
  return rates;
}

ContactGraph random_graph(NodeId n, double edge_prob, std::uint64_t seed) {
  Rng rng(seed);
  ContactGraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(edge_prob)) g.set_rate(i, j, rng.uniform(0.01, 2.0));
    }
  }
  return g;
}

// Prevents the optimizer from deleting a kernel whose result is unused.
volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("micro kernels");
  bench::JsonReport report("bench_micro_kernels", args);

  // --fast shrinks every stage ~10x for smoke runs (CI, sanitizer trees).
  const int scale = args.fast ? 1 : 10;

  {
    const auto rates = random_rates(8, 1);
    report.stage(
        "hypoexp_closed_form/r8",
        [&] {
          for (int i = 0; i < 2000 * scale; ++i) {
            g_sink = hypoexp_cdf_closed_form(rates, 2.0);
          }
        },
        "hypoexp_closed_form_evals");
  }
  {
    const auto rates = random_rates(8, 1);
    report.stage(
        "hypoexp_uniformization/r8",
        [&] {
          for (int i = 0; i < 200 * scale; ++i) {
            g_sink = hypoexp_cdf_uniformization(rates, 2.0);
          }
        },
        "hypoexp_uniformization_evals");
  }
  {
    const std::vector<double> rates(6, 0.8);  // all equal: Erlang dispatch
    report.stage(
        "hypoexp_erlang/r6",
        [&] {
          for (int i = 0; i < 2000 * scale; ++i) {
            g_sink = hypoexp_cdf(rates, 2.0);
          }
        },
        "hypoexp_erlang_evals");
  }
  {
    const auto rates = random_rates(4, 2);
    report.stage(
        "hypoexp_dispatch/r4",
        [&] {
          for (int i = 0; i < 2000 * scale; ++i) {
            g_sink = hypoexp_cdf(rates, 2.0);
          }
        },
        "hypoexp_closed_form_evals");
  }
  {
    const ContactGraph g = random_graph(97, 0.3, 7);
    report.stage(
        "dijkstra/n97",
        [&] {
          for (int i = 0; i < scale; ++i) {
            g_sink = compute_opportunistic_paths(g, 0, 2.0).weight(96);
          }
        },
        "dijkstra_relaxations");
  }
  {
    const ContactGraph g = random_graph(97, 0.3, 7);
    report.stage(
        "ncl_metrics/n97",
        [&] { g_sink = ncl_metrics(g, 2.0, 3, args.threads).front(); },
        "dijkstra_relaxations");
  }
  {
    const ContactGraph g = random_graph(args.fast ? 32 : 97, 0.3, 7);
    report.stage(
        "all_pairs/full",
        [&] {
          const AllPairsPaths paths(g, 2.0, 3, args.threads);
          g_sink = paths.weight(0, 1);
        },
        "path_tables_built");
  }
  {
    Rng rng(3);
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 128; ++i) {
      items.push_back({rng.uniform(), rng.uniform_int(1 << 20, 20 << 20)});
    }
    report.stage(
        "knapsack_dp/128",
        [&] {
          for (int i = 0; i < 5 * scale; ++i) {
            g_sink = solve_knapsack(items, 600LL << 20).total_value;
          }
        },
        "knapsack_dp_cells");
  }
  {
    Rng rng(5);
    std::vector<ReplacementItem> pool;
    for (int i = 0; i < 32; ++i) {
      ReplacementItem item;
      item.id = i;
      item.size = rng.uniform_int(1 << 20, 20 << 20);
      item.popularity = rng.uniform();
      item.at_a = rng.bernoulli(0.5);
      pool.push_back(item);
    }
    const ReplacementConfig config;
    report.stage(
        "plan_replacement/32",
        [&] {
          for (int i = 0; i < 20 * scale; ++i) {
            Rng trial_rng(11);
            g_sink = static_cast<double>(
                plan_replacement(pool, 300LL << 20, 300LL << 20, 0.7, 0.4,
                                 config, trial_rng)
                    .moved_bytes);
          }
        },
        "replacement_items_pooled");
  }
  {
    const ZipfDistribution zipf(10000, 1.0);
    report.stage("zipf_sample/10k", [&] {
      Rng rng(9);
      double acc = 0.0;
      for (int i = 0; i < 20000 * scale; ++i) {
        acc += static_cast<double>(zipf.sample(rng));
      }
      g_sink = acc;
    });
  }
  {
    SyntheticTraceConfig config;
    config.node_count = 97;
    config.duration = days(10);
    config.target_total_contacts = 20000;
    report.stage("trace_generation/97", [&] {
      g_sink = static_cast<double>(generate_trace(config).events().size());
    });
  }

  // Human-readable summary mirroring the JSON stages.
  std::printf("%-28s %6s %14s %14s %18s\n", "stage", "reps", "median_ms",
              "p90_ms", "ns_per_unit");
  for (const auto& s : report.stages()) {
    std::printf("%-28s %6d %14.3f %14.3f %18.2f\n", s.name.c_str(), s.reps,
                static_cast<double>(s.median_ns) / 1e6,
                static_cast<double>(s.p90_ns) / 1e6,
                static_cast<double>(s.median_ns) / s.work_units_per_rep);
  }

  return report.write_if_requested() ? 0 : 1;
}

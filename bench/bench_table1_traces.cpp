// Reproduces Table I: summary of the four DTN traces. The synthetic
// generator is calibrated to the paper's device counts, durations,
// granularities and total contact volumes; this bench generates each trace
// and reports both the calibration targets and the measured values.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::JsonReport report("bench_table1_traces", args);

  bench::print_header("Table I: trace summary (paper targets vs generated)");

  const char* network_type[] = {"Bluetooth", "Bluetooth", "Bluetooth", "WiFi"};
  const std::size_t paper_contacts[] = {22459, 182951, 114046, 123225};
  const double paper_days[] = {3, 4, 246, 77};
  const double paper_granularity[] = {120, 120, 300, 20};

  std::string rendered;
  report.stage("table1_generate_traces", [&] {
    TextTable table({"trace", "type", "devices", "contacts(paper)",
                     "contacts(gen)", "days", "granularity(s)",
                     "pair freq/day", "pair coverage"});

    const auto presets = all_presets();
    for (std::size_t i = 0; i < presets.size(); ++i) {
      const ContactTrace trace = generate_trace(presets[i]);
      const TraceSummary s = summarize(trace);
      table.begin_row();
      table.add_cell(s.name);
      table.add_cell(network_type[i]);
      table.add_integer(s.devices);
      table.add_integer(static_cast<long long>(paper_contacts[i]));
      table.add_integer(static_cast<long long>(s.internal_contacts));
      table.add_number(s.duration_days, 0);
      table.add_number(paper_granularity[i], 0);
      table.add_number(s.pairwise_contact_frequency_per_day, 3);
      table.add_number(s.pair_coverage, 3);
      (void)paper_days;
    }
    rendered = table.to_string();
  });
  std::printf("%s\n", rendered.c_str());
  std::printf(
      "Note: 'pair freq/day' counts contacts per *met* pair per day; the\n"
      "paper's Table I uses an unspecified normalization, so we report the\n"
      "generated trace's own statistics next to the calibration targets.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Simulator-engine bench: the NCL caching scheme's contact hot loop end to
// end, under both scheme engines — the SoA/arena production implementation
// (SimEngine::kFast: pooled bundle chains, reusable contact workspaces,
// zero steady-state allocations) versus the frozen per-object reference
// (SimEngine::kReference). Both runs share one trace, one warm-up graph,
// one NCL selection and one workload, so the measured difference is the
// scheme hot loop alone; the work unit is contacts processed.
//
// The acceptance contract for the rewrite is that the fast engine clears
// at least 2x the reference's contacts-per-second on the same host; pass
// `--min-speedup X` to enforce that ratio as the exit status (the
// bench-smoke ctest entry and the CI bench-smoke job both do). The
// `--json` artifact is additionally gated by tools/bench_compare.py on ns
// per contact against bench/baselines/bench_engine.json.
//
// The workload is deliberately entry-rich (small data items against large
// buffers, several NCLs, long lifetimes): caches fill with many live
// entries, which is where the legacy path's per-contact work — kept-vector
// rebuilds, any_of entry scans, per-central pool maps — actually lives.
// Maintenance is configured out of the measured window so path-table
// rebuilds (bench_paths' job) do not dilute the scheme ratio.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "experiment/experiment.h"
#include "graph/ncl.h"
#include "sim/engine.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

using namespace dtn;

namespace {

volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup is this bench's own flag; BenchArgs::parse aborts on
  // anything it does not know, so strip it before delegating.
  double min_speedup = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto args = bench::BenchArgs::parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::print_header("simulator engine");
  bench::JsonReport report("bench_engine", args);

  const NodeId nodes = args.fast ? 30 : 41;
  const double trace_days = args.days > 0 ? args.days : 6.0;

  SyntheticTraceConfig tc;
  tc.node_count = nodes;
  tc.duration = days(trace_days);
  tc.target_total_contacts =
      static_cast<double>(nodes) * (args.fast ? 1000.0 : 3600.0);
  tc.seed = 23;
  const ContactTrace trace = generate_trace(tc);

  ExperimentConfig config;
  config.avg_lifetime = hours(18);
  config.avg_data_size = megabits(4);
  config.generation_prob = 0.8;
  config.buffer_min = megabits(300);
  config.buffer_max = megabits(600);
  config.ncl_count = 4;
  config.auto_horizon = false;
  config.sim.path_horizon = hours(1);
  config.sim.maintenance_interval = days(trace_days);
  config.sim.threads = args.threads;
  config.seed = 2026;

  // Shared setup, computed once: both engines simulate the exact same cell.
  const WarmupContext warmup = make_warmup_context(trace, config);
  const NclSelection ncls =
      select_ncls(warmup.graph, warmup.horizon, config.ncl_count,
                  config.sim.max_hops, config.sim.threads);

  const std::uint64_t rep_seed = config.seed + 0x9E3779B9ULL;
  WorkloadConfig wc;
  wc.start = trace.start_time() + trace.duration() / 2.0;
  wc.end = trace.end_time();
  wc.avg_lifetime = config.avg_lifetime;
  wc.generation_prob = config.generation_prob;
  wc.avg_size = config.avg_data_size;
  wc.zipf_exponent = config.zipf_exponent;
  wc.query_constraint_factor = config.query_constraint_factor;
  wc.seed = rep_seed;
  const Workload workload = generate_workload(wc, trace.node_count());

  const std::vector<Bytes> buffers =
      draw_buffer_capacities(config, trace.node_count(), rep_seed ^ 0xB0FFu);

  SimConfig sc = config.sim;
  sc.path_horizon = warmup.horizon;
  sc.seed = rep_seed ^ 0x51Au;

  std::printf("trace: %d nodes, %zu contacts, %d NCLs, %zu workload events\n",
              trace.node_count(), trace.size(), config.ncl_count,
              workload.events().size());

  std::size_t contacts = 0;
  auto run_engine = [&](SimEngine engine) {
    config.sim.sim_engine = engine;
    std::unique_ptr<Scheme> scheme =
        make_scheme(SchemeKind::kNclCache, config, ncls, buffers);
    SimConfig run_config = sc;
    run_config.sim_engine = engine;
    const RunResult run = run_simulation(trace, workload, *scheme, run_config);
    contacts = run.contacts_processed;
    g_sink = run.metrics.success_ratio();
  };

  report.stage(
      "engine_reference", [&] { run_engine(SimEngine::kReference); },
      "contacts_processed");
  const double success_reference = g_sink;

  report.stage(
      "engine_fast", [&] { run_engine(SimEngine::kFast); },
      "contacts_processed");
  const double success_fast = g_sink;

  double reference_ns = 0.0;
  double fast_ns = 0.0;
  for (const auto& stage : report.stages()) {
    if (stage.name == "engine_reference") {
      reference_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "engine_fast") {
      fast_ns = static_cast<double>(stage.median_ns);
    }
  }
  const double speedup = fast_ns > 0.0 ? reference_ns / fast_ns : 0.0;

  std::printf("%-22s %6s %14s %14s %18s\n", "stage", "reps", "median_ms",
              "p90_ms", "ns_per_contact");
  for (const auto& s : report.stages()) {
    std::printf("%-22s %6d %14.3f %14.3f %18.2f\n", s.name.c_str(), s.reps,
                static_cast<double>(s.median_ns) / 1e6,
                static_cast<double>(s.p90_ns) / 1e6,
                static_cast<double>(s.median_ns) / s.work_units_per_rep);
  }
  std::printf("contacts per run: %zu\n", contacts);
  std::printf("engine speedup (reference / fast): %.2fx\n", speedup);

  // Bit-identity is pinned exhaustively by tests/engine_golden_test.cpp;
  // this cheap cross-check just refuses to report a speedup for runs that
  // silently diverged.
  if (success_reference != success_fast) {
    std::fprintf(stderr, "FAIL: engines diverged (success %.17g vs %.17g)\n",
                 success_reference, success_fast);
    return 1;
  }

  if (!report.write_if_requested()) return 1;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: engine speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

// Shared helpers for the figure/table benches: command-line scaling flags
// so the suite finishes quickly by default yet can be run at paper scale,
// plus the --json flag selecting machine-readable output (bench_json.h).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace dtn::bench {

/// Parses "--reps N" and "--days D" style flags; unknown flags abort with
/// a usage message so typos do not silently run the default.
struct BenchArgs {
  int reps = 2;
  double days = 0.0;  ///< 0 = bench-specific default
  bool fast = false;
  int threads = 0;    ///< 0 = hardware_concurrency, 1 = serial baseline
  std::string json;   ///< --json PATH: write a machine-readable record

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        args.reps = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
        args.days = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.threads = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json = argv[++i];
      } else if (std::strcmp(argv[i], "--fast") == 0) {
        args.fast = true;
      } else {
        std::fprintf(
            stderr,
            "usage: %s [--reps N] [--days D] [--threads T] [--fast] "
            "[--json PATH]\n",
            argv[0]);
        std::exit(2);
      }
    }
    return args;
  }
};

inline void print_header(const std::string& title) {
  std::printf("==== %s ====\n", title.c_str());
}

}  // namespace dtn::bench

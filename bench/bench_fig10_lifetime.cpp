// Reproduces Figure 10: caching performance on the MIT Reality trace as a
// function of the average data lifetime T_L.
//  (a) successful ratio of queries,
//  (b) data access delay,
//  (c) caching overhead (average cached copies per data item),
// for the NCL scheme and the four baselines (K = 8, s = 1, s_avg = 100 Mb).
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 10: data access performance vs average data lifetime T_L "
      "(MIT Reality, K=8, s_avg=100Mb)");
  bench::JsonReport report("bench_fig10_lifetime", args);

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  const std::vector<SchemeKind> kinds = {
      SchemeKind::kNclCache, SchemeKind::kNoCache, SchemeKind::kRandomCache,
      SchemeKind::kCacheData, SchemeKind::kBundleCache};
  const std::vector<double> lifetimes_hours =
      args.fast ? std::vector<double>{24, 168}
                : std::vector<double>{12, 72, 168, 336};

  std::vector<std::string> headers{"T_L"};
  for (SchemeKind k : kinds) headers.push_back(scheme_kind_name(k));
  TextTable ratio(headers), delay(headers), copies(headers);

  // The experiment already repeats internally (config.repetitions), so the
  // stage runs the whole sweep once and gates on contacts processed.
  report.stage(
      "fig10_lifetime_sweep",
      [&] {
        for (double tl : lifetimes_hours) {
          ExperimentConfig config;
          config.avg_lifetime = hours(tl);
          config.avg_data_size = megabits(100);
          config.ncl_count = 8;
          config.zipf_exponent = 1.0;
          config.repetitions = args.reps;
          config.sim.maintenance_interval = days(1);

          ratio.begin_row();
          delay.begin_row();
          copies.begin_row();
          ratio.add_cell(format_duration(hours(tl)));
          delay.add_cell(format_duration(hours(tl)));
          copies.add_cell(format_duration(hours(tl)));
          for (SchemeKind kind : kinds) {
            const ExperimentResult r = run_experiment(trace, kind, config);
            ratio.add_number(r.success_ratio.mean(), 3);
            delay.add_number(r.delay_hours.mean(), 1);
            copies.add_number(r.copies_per_item.mean(), 2);
          }
        }
      },
      "contacts_processed", 1);

  std::printf("(a) successful ratio\n%s\n", ratio.to_string().c_str());
  std::printf("(b) data access delay (hours)\n%s\n", delay.to_string().c_str());
  std::printf("(c) caching overhead (copies per item)\n%s\n",
              copies.to_string().c_str());
  std::printf(
      "Expected shape (paper Sec. VI-B): every scheme improves with larger\n"
      "T_L; NCL-Cache has the best ratio and delay throughout, with a\n"
      "multiple of NoCache's ratio; NoCache caches nothing; incidental\n"
      "schemes sit between.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Machine-readable bench artifacts.
//
// Every bench binary owns a JsonReport: it wraps each measured phase in
// `stage(...)`, which times the phase over repetitions and captures the
// instrumentation counter deltas (src/common/instrument.h) accumulated by
// the work. `--json PATH` then writes one schema-versioned record that
// `tools/bench_compare.py` can diff against a baseline, gating regressions
// on time *per counter unit* (e.g. nanoseconds per hypoexp CDF evaluation)
// rather than raw wall time, so CI-runner noise does not flake the gate.
//
// Schema (schema_version 1, documented in DESIGN.md §7):
//   {
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "git_sha": "<env GITHUB_SHA/DTN_GIT_SHA, else build-time sha>",
//     "instrument_enabled": true|false,
//     "threads": <resolved worker count>,
//     "repetitions": <default stage repetitions>,
//     "config": {"reps": N, "days": D, "threads": T, "fast": bool},
//     "stages": [{"name": ..., "reps": N, "median_ns": ..., "p10_ns": ...,
//                 "p90_ns": ..., "unit_counter": "...",
//                 "work_units_per_rep": ..., "counters": {...deltas...}}],
//     "counters": {... whole-run totals, non-zero only ...},
//     "timers": {"<stage>": {"calls": N, "nanos": N}, ...}
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/instrument.h"

namespace dtn::bench {

/// One timed phase of a bench run.
struct StageRecord {
  std::string name;
  int reps = 1;
  std::uint64_t median_ns = 0;
  std::uint64_t p10_ns = 0;
  std::uint64_t p90_ns = 0;
  /// Counter dividing the stage time into per-unit cost; empty = calls.
  std::string unit_counter;
  /// Units of work per repetition (>= 1; falls back to 1 when the unit
  /// counter did not move, e.g. in a DTN_INSTRUMENT=OFF build).
  double work_units_per_rep = 1.0;
  /// Non-zero instrumentation counter deltas across all repetitions.
  std::vector<instrument::StageStats::CounterRow> counters;
};

/// Collects stage timings + counter deltas and renders the JSON record.
class JsonReport {
 public:
  JsonReport(std::string bench_name, const BenchArgs& args);

  /// Runs `fn` `reps` times (0 = the --reps default), timing each pass and
  /// capturing the instrumentation counter deltas across all passes.
  /// `unit_counter` names the counter whose delta measures the work done
  /// (JSON name from instrument::counter_name); empty = per-call gating.
  void stage(const std::string& name, const std::function<void()>& fn,
             const std::string& unit_counter = std::string(), int reps = 0);

  std::string to_json() const;

  /// Writes to the --json path; no-op (returns true) when the flag is
  /// absent. Prints to stderr and returns false when the write fails.
  bool write_if_requested() const;

  const std::vector<StageRecord>& stages() const { return stages_; }

 private:
  std::string name_;
  BenchArgs args_;
  std::vector<StageRecord> stages_;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

}  // namespace dtn::bench

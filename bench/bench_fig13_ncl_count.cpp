// Reproduces Figure 13: the impact of the number of NCLs (K) on caching
// performance, on the Infocom06 trace with T_L = 3 h, across node buffer
// conditions (average data size 50 / 100 / 200 Mb).
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 13: impact of the number of NCLs (Infocom06, T_L=3h)");
  bench::JsonReport report("bench_fig13_ncl_count", args);

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 2 : 4);
  const ContactTrace trace =
      generate_trace(infocom06_preset().with_duration(days(trace_days)));

  const std::vector<int> ks =
      args.fast ? std::vector<int>{1, 2, 5, 10} : std::vector<int>{1, 2, 3, 5, 8, 10};
  const std::vector<double> sizes_mb =
      args.fast ? std::vector<double>{100} : std::vector<double>{50, 100, 200};

  std::vector<std::string> headers{"K"};
  for (double s : sizes_mb) headers.push_back(format_double(s, 0) + "Mb");
  TextTable ratio(headers), delay(headers), copies(headers);

  report.stage(
      "fig13_ncl_count_sweep",
      [&] {
        for (int k : ks) {
          ratio.begin_row();
          delay.begin_row();
          copies.begin_row();
          ratio.add_integer(k);
          delay.add_integer(k);
          copies.add_integer(k);
          for (double size_mb : sizes_mb) {
            ExperimentConfig config;
            config.avg_lifetime = hours(3);
            config.avg_data_size = megabits(size_mb);
            config.ncl_count = k;
            config.repetitions = args.reps;
            config.sim.maintenance_interval = hours(2);
            config.sim.threads = args.threads;
            const ExperimentResult r =
                run_experiment(trace, SchemeKind::kNclCache, config);
            ratio.add_number(r.success_ratio.mean(), 3);
            delay.add_number(r.delay_hours.mean(), 2);
            copies.add_number(r.copies_per_item.mean(), 2);
          }
        }
      },
      "contacts_processed", 1);

  std::printf("(a) successful ratio\n%s\n", ratio.to_string().c_str());
  std::printf("(b) data access delay (hours)\n%s\n", delay.to_string().c_str());
  std::printf("(c) caching overhead (copies per item)\n%s\n",
              copies.to_string().c_str());
  std::printf(
      "Expected shape (paper Sec. VI-D): K=1 -> 2 brings the largest gain;\n"
      "beyond a handful of NCLs the newly added central nodes are no longer\n"
      "well connected and the curves flatten (K~5 was the paper's best for\n"
      "Infocom06); caching overhead grows with K while buffers allow.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Serving-daemon bench (src/daemon/, DESIGN.md §13): the same contact
// replay processed two ways — the daemon's incremental path-table repair
// (drift scan -> reverse edge->roots index + one-step endpoint test ->
// re-run only stale roots) and a rebuild-everything strawman that answers
// every batch boundary with a fresh full AllPairsPaths build from the same
// estimator. The work unit is contacts ingested; both sides run serial
// repair (threads=1) so the ratio measures the algorithm, not the pool.
//
// The acceptance contract for the daemon is a >= 3x ingest+repair speedup
// over the strawman in the converged-serving regime (most of the stream
// already folded in, rates piecewise stable, drift rare); pass
// `--min-speedup X` to enforce that ratio as the exit status — the
// bench-smoke ctest entry and CI both do. The `--json` artifact is gated
// by tools/bench_compare.py against bench/baselines/bench_daemon.json.
//
// Also reported: steady-state queries/sec against the final snapshot
// (ncl/weight/placement mix) and the p99 per-batch repair latency of both
// sides — the daemon's serving staleness is bounded by how long a batch
// blocks the writer, so p99 batch latency IS the p99 answer-staleness
// floor a reader can observe in wall time.
//
// Before any timed stage, a small replay cross-checks the machinery: a
// daemon run at a near-zero drift threshold must finish with the exact
// NCL metric vector of the strawman (both reconcile every estimator
// change), refusing to report a speedup for diverged implementations.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/instrument.h"
#include "common/stats.h"
#include "daemon/daemon.h"
#include "daemon/rate_estimator.h"
#include "graph/all_pairs.h"
#include "trace/synthetic.h"

using namespace dtn;

namespace {

volatile double g_sink = 0.0;

/// The serving config both sides share: a converged estimator and a drift
/// threshold above the EWMA's stationary noise floor, so batches reconcile
/// genuine drift instead of chasing Poisson jitter. Stationary exponential
/// gaps have CV = 1, and an EWMA with weight a has stationary relative
/// std sqrt(a / (2 - a)) — alpha 0.02 puts the noise floor near 10%, so a
/// 0.35 threshold is a >= 3.5-sigma event per pair per batch.
daemon::DaemonConfig serving_config() {
  daemon::DaemonConfig config;
  config.horizon = hours(1.0);
  config.ewma_alpha = 0.02;
  config.drift_threshold = 0.35;
  config.repair_interval = kNever;  // batches are driven by the bench loop
  config.threads = 1;
  return config;
}

/// Rebuild-everything baseline: identical estimator, identical batch
/// cadence, but every batch re-materializes the full graph and rebuilds
/// every root with the production engine.
struct Strawman {
  daemon::EwmaRateEstimator estimator;
  ContactGraph graph;
  AllPairsPaths paths;
  std::vector<double> metric;

  Strawman(NodeId nodes, const daemon::DaemonConfig& config)
      : estimator(nodes, config.ewma_alpha, config.min_contacts),
        graph(nodes) {}

  void ingest(const ContactEvent& event) {
    estimator.record(event.a, event.b, event.start);
    DTN_COUNT(kDaemonContactsIngested);
  }

  void rebuild(const daemon::DaemonConfig& config) {
    const NodeId n = estimator.node_count();
    ContactGraph fresh(n);
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) {
        const double est = estimator.rate(a, b);
        if (est > 0.0) fresh.set_rate(a, b, est);
      }
    }
    graph = std::move(fresh);
    paths = AllPairsPaths(graph, config.horizon, config.max_hops,
                          config.threads, PathEngine::kFast);
    metric.assign(static_cast<std::size_t>(n), 0.0);
    for (NodeId r = 0; r < n; ++r) {
      double sum = 0.0;
      for (NodeId j = 0; j < n; ++j) {
        if (j == r) continue;
        sum += paths.table(r).weight(j);
      }
      metric[static_cast<std::size_t>(r)] =
          n >= 2 ? sum / static_cast<double>(n - 1) : 0.0;
    }
  }
};

struct ReplayResult {
  std::vector<double> batch_latency_ns;
  std::size_t batches = 0;
};

/// Replays `live` with a repair batch every `interval` of stream time,
/// timing each batch. `repair` is either Daemon::repair_now or
/// Strawman::rebuild.
template <typename IngestFn, typename RepairFn>
ReplayResult replay(const std::vector<ContactEvent>& live, Time interval,
                    IngestFn&& ingest, RepairFn&& repair) {
  ReplayResult result;
  const auto timed_repair = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    repair();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    result.batch_latency_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    ++result.batches;
  };
  Time deadline = live.empty() ? 0.0 : live.front().start + interval;
  for (const ContactEvent& event : live) {
    if (event.start >= deadline) {
      timed_repair();
      deadline = event.start + interval;
    }
    ingest(event);
  }
  timed_repair();
  return result;
}

ContactTrace make_trace(NodeId nodes, double trace_days,
                        std::uint64_t seed) {
  SyntheticTraceConfig tc;
  tc.node_count = nodes;
  tc.duration = days(trace_days);
  tc.target_total_contacts = static_cast<double>(nodes) * 450.0;
  // The converged regime incremental repair targets: a restricted pair set
  // with many contacts per pair, so warm start leaves every estimate well
  // past its noise floor. (A trace where most pairs meet a handful of
  // times has no stable rates to serve — rebuild-per-batch is the right
  // tool there, and this bench does not claim that regime.) Near-flat
  // popularity keeps single edges out of most trees, so one drifted edge
  // stays local instead of invalidating every root.
  tc.pair_fraction = 0.2;
  tc.popularity_shape = 12.0;
  tc.seed = seed;
  return generate_trace(tc);
}

/// Refusal check: with an (effectively) zero drift threshold the daemon
/// reconciles every estimator change, so its final metric vector must be
/// bit-identical to the strawman's final full rebuild.
bool equivalence_check() {
  const ContactTrace trace = make_trace(28, 2.0, 93);
  const std::size_t split = trace.size() / 2;
  std::vector<ContactEvent> warm(trace.events().begin(),
                                 trace.events().begin() +
                                     static_cast<std::ptrdiff_t>(split));
  const std::vector<ContactEvent> live(trace.events().begin() +
                                           static_cast<std::ptrdiff_t>(split),
                                       trace.events().end());

  daemon::DaemonConfig config = serving_config();
  config.drift_threshold = 1e-12;
  daemon::Daemon d(trace.node_count(), config);
  d.warm_start(ContactTrace(trace.node_count(), warm, "warm"));
  Strawman s(trace.node_count(), config);
  for (const ContactEvent& event : warm) s.ingest(event);
  s.rebuild(config);

  const Time interval = hours(3.0);
  replay(
      live, interval, [&](const ContactEvent& e) { d.ingest(e); },
      [&] { d.repair_now(); });
  replay(
      live, interval, [&](const ContactEvent& e) { s.ingest(e); },
      [&] { s.rebuild(config); });

  const auto snap = d.snapshot();
  if (snap->metric != s.metric) {
    std::fprintf(stderr,
                 "FAIL: zero-drift daemon diverged from full rebuild\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup is this bench's own flag; BenchArgs::parse aborts on
  // anything it does not know, so strip it before delegating.
  double min_speedup = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto args = bench::BenchArgs::parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::print_header("serving daemon: incremental repair vs full rebuild");
  bench::JsonReport report("bench_daemon", args);

  if (!equivalence_check()) return 1;

  const NodeId nodes = args.fast ? 48 : 96;
  const double trace_days = args.days > 0 ? args.days : 6.0;
  const ContactTrace trace = make_trace(nodes, trace_days, 41);

  // Converged-serving regime: 70% of the stream warm-starts the
  // estimator, the remaining 30% replays live with a 2h batch cadence.
  const std::size_t split = trace.size() * 7 / 10;
  const std::vector<ContactEvent> warm(trace.events().begin(),
                                       trace.events().begin() +
                                           static_cast<std::ptrdiff_t>(split));
  const std::vector<ContactEvent> live(trace.events().begin() +
                                           static_cast<std::ptrdiff_t>(split),
                                       trace.events().end());
  const Time interval = hours(2.0);
  const daemon::DaemonConfig config = serving_config();

  std::printf("trace: %d nodes, %zu contacts (%zu warm / %zu live)\n",
              trace.node_count(), trace.size(), warm.size(), live.size());

  ReplayResult daemon_replay;
  daemon::Daemon::Stats last_stats;
  std::uint64_t final_epoch = 0;
  report.stage(
      "daemon_ingest",
      [&] {
        daemon::Daemon d(trace.node_count(), config);
        d.warm_start(ContactTrace(trace.node_count(), warm, "warm"));
        daemon_replay = replay(
            live, interval, [&](const ContactEvent& e) { d.ingest(e); },
            [&] { d.repair_now(); });
        last_stats = d.stats();
        final_epoch = d.snapshot()->epoch;
        g_sink = d.snapshot()->metric.empty() ? 0.0 : d.snapshot()->metric[0];
      },
      "daemon_contacts_ingested");

  ReplayResult strawman_replay;
  report.stage(
      "strawman_ingest",
      [&] {
        Strawman s(trace.node_count(), config);
        for (const ContactEvent& event : warm) s.ingest(event);
        s.rebuild(config);
        strawman_replay = replay(
            live, interval, [&](const ContactEvent& e) { s.ingest(e); },
            [&] { s.rebuild(config); });
        g_sink = s.metric.empty() ? 0.0 : s.metric[0];
      },
      "daemon_contacts_ingested");

  // Steady-state query throughput against the final snapshot: the
  // ncl/weight/placement mix a serving deployment answers.
  daemon::Daemon served(trace.node_count(), config);
  served.warm_start(trace);
  const std::size_t query_rounds = args.fast ? 2000 : 8000;
  report.stage(
      "daemon_queries",
      [&] {
        double acc = 0.0;
        const NodeId n = served.node_count();
        for (std::size_t q = 0; q < query_rounds; ++q) {
          const NodeId src = static_cast<NodeId>(q % static_cast<std::size_t>(n));
          const NodeId dst =
              static_cast<NodeId>((q * 7 + 3) % static_cast<std::size_t>(n));
          acc += served.path_weight(src, dst, hours(0.5)).weight;
          acc += static_cast<double>(served.ncl_set(5).central.size());
          acc += static_cast<double>(served.placement_for(src, 3).ranked.size());
        }
        g_sink = acc;
      },
      "daemon_queries");

  double daemon_ns = 0.0;
  double strawman_ns = 0.0;
  double queries_ns = 0.0;
  for (const auto& stage : report.stages()) {
    if (stage.name == "daemon_ingest") {
      daemon_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "strawman_ingest") {
      strawman_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "daemon_queries") {
      queries_ns = static_cast<double>(stage.median_ns);
    }
  }
  const double speedup = daemon_ns > 0.0 ? strawman_ns / daemon_ns : 0.0;
  const double qps = queries_ns > 0.0
                         ? static_cast<double>(query_rounds) * 3.0 * 1e9 /
                               queries_ns
                         : 0.0;

  std::printf("%-18s %6s %14s %14s %18s\n", "stage", "reps", "median_ms",
              "p90_ms", "ns_per_unit");
  for (const auto& s : report.stages()) {
    std::printf("%-18s %6d %14.3f %14.3f %18.2f\n", s.name.c_str(), s.reps,
                static_cast<double>(s.median_ns) / 1e6,
                static_cast<double>(s.p90_ns) / 1e6,
                static_cast<double>(s.median_ns) / s.work_units_per_rep);
  }
  std::printf(
      "daemon: %zu batches, %llu edge updates, %llu roots repaired "
      "(of %zu x %d possible), final epoch %llu\n",
      daemon_replay.batches,
      static_cast<unsigned long long>(last_stats.edge_updates),
      static_cast<unsigned long long>(last_stats.roots_repaired),
      daemon_replay.batches, trace.node_count(),
      static_cast<unsigned long long>(final_epoch));
  std::printf("p99 batch latency: daemon %.3f ms, strawman %.3f ms\n",
              percentile(daemon_replay.batch_latency_ns, 0.99) / 1e6,
              percentile(strawman_replay.batch_latency_ns, 0.99) / 1e6);
  std::printf("steady-state queries/sec: %.0f\n", qps);
  std::printf("ingest+repair speedup (strawman / daemon): %.2fx\n", speedup);

  if (!report.write_if_requested()) return 1;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: daemon speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

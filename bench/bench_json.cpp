#include "bench/bench_json.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/parallel.h"
#include "common/stats.h"

#ifndef DTN_GIT_SHA
#define DTN_GIT_SHA "unknown"
#endif

namespace dtn::bench {
namespace {

std::string current_git_sha() {
  // CI stamps the exact commit via the environment; the build-time sha is
  // the fallback for local runs (stale only if you rebuild without
  // re-running cmake after a commit).
  if (const char* sha = std::getenv("GITHUB_SHA")) return sha;
  if (const char* sha = std::getenv("DTN_GIT_SHA")) return sha;
  return DTN_GIT_SHA;
}

void append_counters(std::ostringstream& out,
                     const std::vector<instrument::StageStats::CounterRow>& rows,
                     const std::string& indent) {
  bool first = true;
  for (const auto& row : rows) {
    if (row.value == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\n" << indent << "\"" << json_escape(row.name)
        << "\": " << row.value;
  }
  if (!first) out << "\n" << indent.substr(0, indent.size() - 2);
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonReport::JsonReport(std::string bench_name, const BenchArgs& args)
    : name_(std::move(bench_name)), args_(args) {}

void JsonReport::stage(const std::string& name,
                       const std::function<void()>& fn,
                       const std::string& unit_counter, int reps) {
  if (reps <= 0) reps = args_.reps > 0 ? args_.reps : 1;

  const instrument::StageStats before = instrument::snapshot();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  const instrument::StageStats delta =
      instrument::snapshot().delta_since(before);

  StageRecord record;
  record.name = name;
  record.reps = reps;
  record.median_ns = static_cast<std::uint64_t>(percentile(samples, 0.5));
  record.p10_ns = static_cast<std::uint64_t>(percentile(samples, 0.1));
  record.p90_ns = static_cast<std::uint64_t>(percentile(samples, 0.9));
  record.unit_counter = unit_counter;
  record.work_units_per_rep = 1.0;
  if (!unit_counter.empty()) {
    const std::uint64_t units = delta.counter(unit_counter);
    if (units > 0) {
      record.work_units_per_rep =
          static_cast<double>(units) / static_cast<double>(reps);
    }
  }
  for (const auto& row : delta.counters) {
    if (row.value != 0) record.counters.push_back(row);
  }
  stages_.push_back(std::move(record));
}

std::string JsonReport::to_json() const {
  const instrument::StageStats totals = instrument::snapshot();
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"bench\": \"" << json_escape(name_) << "\",\n";
  out << "  \"git_sha\": \"" << json_escape(current_git_sha()) << "\",\n";
  out << "  \"instrument_enabled\": "
      << (instrument::enabled() ? "true" : "false") << ",\n";
  out << "  \"threads\": " << resolve_threads(args_.threads) << ",\n";
  out << "  \"repetitions\": " << (args_.reps > 0 ? args_.reps : 1) << ",\n";
  out << "  \"config\": {\"reps\": " << args_.reps << ", \"days\": "
      << args_.days << ", \"threads\": " << args_.threads << ", \"fast\": "
      << (args_.fast ? "true" : "false") << "},\n";

  out << "  \"stages\": [";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageRecord& s = stages_[i];
    if (i > 0) out << ",";
    out << "\n    {\"name\": \"" << json_escape(s.name) << "\", \"reps\": "
        << s.reps << ", \"median_ns\": " << s.median_ns << ", \"p10_ns\": "
        << s.p10_ns << ", \"p90_ns\": " << s.p90_ns << ",\n";
    out << "     \"unit_counter\": \"" << json_escape(s.unit_counter)
        << "\", \"work_units_per_rep\": " << s.work_units_per_rep << ",\n";
    out << "     \"counters\": {";
    append_counters(out, s.counters, "       ");
    out << "}}";
  }
  if (!stages_.empty()) out << "\n  ";
  out << "],\n";

  out << "  \"counters\": {";
  append_counters(out, totals.counters, "    ");
  out << "},\n";

  out << "  \"timers\": {";
  bool first = true;
  for (const auto& row : totals.timers) {
    if (row.calls == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << json_escape(row.name) << "\": {\"calls\": "
        << row.calls << ", \"nanos\": " << row.nanos << "}";
  }
  if (!first) out << "\n  ";
  out << "}\n";
  out << "}\n";
  return out.str();
}

bool JsonReport::write_if_requested() const {
  if (args_.json.empty()) return true;
  std::ofstream out(args_.json);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n",
                 args_.json.c_str());
    return false;
  }
  out << to_json();
  out.close();
  if (!out) {
    std::fprintf(stderr, "bench_json: write to %s failed\n",
                 args_.json.c_str());
    return false;
  }
  std::printf("bench_json: wrote %s\n", args_.json.c_str());
  return true;
}

}  // namespace dtn::bench

// Ablation: robustness under failure injection.
//
//  (a) contact loss: each contact independently missed with probability p;
//  (b) central-node outages: the selected central nodes go down for long
//      stretches — the paper's static NCL selection has no answer, the
//      dynamic re-selection extension adapts.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "experiment/experiment.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation: failure injection (MIT Reality, K=8, T_L=1wk)");

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  ExperimentConfig base;
  base.avg_lifetime = weeks(1);
  base.avg_data_size = megabits(100);
  base.ncl_count = 8;
  base.repetitions = args.reps;
  base.sim.maintenance_interval = days(1);

  bench::JsonReport report("bench_ablation_failures", args);

  // ---- (a) random contact loss ----
  TextTable loss({"miss prob", "NCL-Cache ratio", "NoCache ratio",
                  "NCL delay (h)"});
  report.stage(
      "failures_contact_loss",
      [&] {
        for (double p : {0.0, 0.25, 0.5}) {
          ExperimentConfig config = base;
          config.sim.contact_miss_prob = p;
          const ExperimentResult ncl =
              run_experiment(trace, SchemeKind::kNclCache, config);
          const ExperimentResult none =
              run_experiment(trace, SchemeKind::kNoCache, config);
          loss.begin_row();
          loss.add_number(p, 2);
          loss.add_number(ncl.success_ratio.mean(), 3);
          loss.add_number(none.success_ratio.mean(), 3);
          loss.add_number(ncl.delay_hours.mean(), 1);
        }
      },
      "contacts_processed", 1);
  std::printf("(a) random contact loss\n%s\n", loss.to_string().c_str());

  // ---- (b) central-node outages: static vs dynamic NCL ----
  // Take down the statically selected centrals for the last quarter of
  // the trace.
  const NclSelection ncls = warmup_ncl_selection(trace, base);
  const Time outage_start =
      trace.start_time() + 0.75 * trace.duration();
  std::vector<SimConfig::Downtime> outages;
  for (NodeId c : ncls.central_nodes) {
    outages.push_back({c, outage_start, trace.end_time() + 1.0});
  }

  TextTable outage_table({"variant", "ratio (no outage)", "ratio (centrals down)"});
  report.stage(
      "failures_central_outage",
      [&] {
        for (bool dynamic : {false, true}) {
          ExperimentConfig clean = base;
          clean.dynamic_ncl = dynamic;
          // Re-selection can only react if the estimated graph forgets dead
          // nodes: pair it with the decaying rate estimator.
          if (dynamic) clean.sim.rate_decay = days(7);
          ExperimentConfig failed = clean;
          failed.sim.node_downtime = outages;
          const double r_clean = run_experiment(trace, SchemeKind::kNclCache,
                                                clean)
                                     .success_ratio.mean();
          const double r_failed = run_experiment(trace, SchemeKind::kNclCache,
                                                 failed)
                                      .success_ratio.mean();
          outage_table.begin_row();
          outage_table.add_cell(dynamic ? "dynamic NCL (extension)"
                                        : "static NCL (paper)");
          outage_table.add_number(r_clean, 3);
          outage_table.add_number(r_failed, 3);
        }
      },
      "contacts_processed", 1);
  std::printf("(b) all central nodes down for the last quarter of the trace\n%s\n",
              outage_table.to_string().c_str());
  std::printf(
      "Reading: performance degrades gracefully with contact loss and the\n"
      "scheme holds its lead over NoCache throughout. The outage scenario\n"
      "is a deliberately honest negative result: dynamic re-selection (with\n"
      "a decaying rate estimator) does replace every dead central node, yet\n"
      "barely changes the ratio — in a hub-dominated DTN the top nodes ARE\n"
      "the relay fabric, so losing them cripples query and reply forwarding\n"
      "for every scheme; no choice of caching location can compensate.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Supplementary bench: the classic DTN unicast protocols on the MIT
// Reality trace — the forwarding substrate the paper's related-work section
// surveys. Positions the gradient forwarding used inside the NCL caching
// scheme among the classics (single-copy cost, multi-copy delivery).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "routing/engine.h"
#include "routing/protocols.h"
#include "trace/synthetic.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "DTN unicast routing comparison (MIT Reality, 10Mb messages, TTL 2d)");

  const double trace_days = args.days > 0 ? args.days : (args.fast ? 30 : 60);
  const ContactTrace trace =
      generate_trace(mit_reality_preset().with_duration(days(trace_days)));

  RoutingExperimentConfig config;
  config.message_count = args.fast ? 100 : 300;
  config.message_size = megabits(10);
  config.ttl = days(2);
  config.threads = args.threads;

  std::vector<std::unique_ptr<Router>> routers;
  routers.push_back(std::make_unique<DirectDeliveryRouter>(trace.node_count()));
  routers.push_back(std::make_unique<GradientRouter>(trace.node_count()));
  routers.push_back(std::make_unique<ProphetRouter>(trace.node_count()));
  routers.push_back(
      std::make_unique<SprayAndWaitRouter>(trace.node_count(), 8));
  routers.push_back(std::make_unique<EpidemicRouter>(trace.node_count()));

  bench::JsonReport report("bench_routing", args);
  TextTable table({"protocol", "delivery ratio", "mean delay (h)",
                   "transmissions/msg"});
  report.stage(
      "routing_protocol_sweep",
      [&] {
        for (auto& router : routers) {
          const RoutingResult r = run_routing(trace, *router, config);
          table.begin_row();
          table.add_cell(r.protocol);
          table.add_number(r.delivery_ratio, 3);
          table.add_number(r.mean_delay_hours, 1);
          table.add_number(r.transmissions_per_message, 1);
        }
      },
      std::string(), 1);
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: epidemic bounds delivery from above at maximal cost;\n"
      "spray-and-wait buys most of that ratio at a fixed copy budget; the\n"
      "single-copy schemes (gradient, PROPHET) sit between direct delivery\n"
      "and spray — gradient is the forwarding primitive the NCL caching\n"
      "scheme builds its push, query and reply legs on.\n");
  return report.write_if_requested() ? 0 : 1;
}

// Reproduces Figure 4: the distribution of NCL selection metric values on
// each trace, validating that the metric is highly skewed — a few nodes are
// far better connected than the rest, so a small K covers the network.
//
// The paper uses T = 1 h (Infocom05/06), 1 week (MIT Reality), 3 days
// (UCSD), chosen "adaptively ... to ensure the differentiation of the NCL
// selection metric values". We report both the paper's T and our
// auto-calibrated T (median metric = 0.3) for each trace.
#include <algorithm>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "graph/ncl.h"
#include "trace/synthetic.h"

using namespace dtn;

namespace {

std::string metric_table(const ContactTrace& trace, Time paper_t) {
  const ContactGraph graph = build_contact_graph(trace, -1.0, 2);

  TextTable table({"T", "max", "p90", "median", "p10", "max/median", "gini"});
  for (int variant = 0; variant < 2; ++variant) {
    const Time horizon =
        variant == 0 ? paper_t : calibrate_horizon(graph, 0.3);
    std::vector<double> metrics = ncl_metrics(graph, horizon);
    std::vector<double> sorted = metrics;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    table.begin_row();
    table.add_cell((variant == 0 ? "paper " : "auto ") +
                   format_duration(horizon));
    table.add_number(sorted.back(), 3);
    table.add_number(percentile(sorted, 0.9), 3);
    table.add_number(median, 3);
    table.add_number(percentile(sorted, 0.1), 3);
    table.add_number(median > 0 ? sorted.back() / median : 0.0, 2);
    table.add_number(gini(metrics), 3);
  }
  return table.to_string();
}

void report_trace(bench::JsonReport& report, const std::string& name,
                  const ContactTrace& trace, Time paper_t) {
  std::string rendered;
  report.stage(
      "ncl_metric/" + name,
      [&] { rendered = metric_table(trace, paper_t); },
      "dijkstra_relaxations");
  std::printf("--- %s (N=%d) ---\n%s\n", name.c_str(), trace.node_count(),
              rendered.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 4: NCL selection metric distributions");
  bench::JsonReport report("bench_fig4_ncl_metric", args);

  // Shortened trace slices keep the bench fast; rates (and therefore the
  // metric) are duration-invariant in the generator.
  const double mit_days = args.days > 0 ? args.days : (args.fast ? 20 : 60);
  const double ucsd_days = args.days > 0 ? args.days : (args.fast ? 10 : 25);

  report_trace(report, "Infocom05", generate_trace(infocom05_preset()),
               hours(1));
  report_trace(report, "Infocom06", generate_trace(infocom06_preset()),
               hours(1));
  report_trace(
      report, "MITReality",
      generate_trace(mit_reality_preset().with_duration(days(mit_days))),
      weeks(1));
  report_trace(report, "UCSD",
               generate_trace(ucsd_preset().with_duration(days(ucsd_days))),
               days(3));

  std::printf(
      "Reading: in every trace the top nodes' metric is a large multiple of\n"
      "the median (max/median column) — the skew Fig. 4 validates. With the\n"
      "paper's fixed T the dense conference traces saturate towards 1;\n"
      "the adaptive T restores differentiation, as Sec. IV-B prescribes.\n");
  return report.write_if_requested() ? 0 : 1;
}

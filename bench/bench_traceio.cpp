// Trace ingestion bench: cold CSV parse vs sidecar cache write vs warm
// .dtntrace binary load, over a synthetic trace written to a scratch
// directory. The acceptance contract for the trace subsystem is that the
// warm binary load is at least 5x faster than re-parsing the text; pass
// `--min-speedup X` to enforce that ratio as the exit status (the
// bench-smoke ctest entry does), on top of the usual `--json` artifact
// gated by tools/bench_compare.py on ns per decoded contact.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "traceio/cache.h"

using namespace dtn;

namespace {

// Keeps the optimizer honest about unused loads.
volatile std::size_t g_sink = 0;

}  // namespace

int main(int argc, char** argv) {
  // --min-speedup is this bench's own flag; BenchArgs::parse aborts on
  // anything it does not know, so strip it before delegating.
  double min_speedup = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const auto args = bench::BenchArgs::parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::print_header("trace ingestion");
  bench::JsonReport report("bench_traceio", args);

  // Scratch directory keyed by pid so parallel ctest runs never collide.
  namespace fs = std::filesystem;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("dtn_bench_traceio_" + std::to_string(::getpid()));
  fs::create_directories(scratch);
  const std::string csv_path = (scratch / "bench_trace.csv").string();
  const std::string sidecar = traceio::sidecar_path(csv_path);

  // A dense synthetic trace: infocom-like contact dynamics, scaled by
  // --days (default 3 full days; --fast drops to 1).
  auto config = infocom06_preset();
  const double trace_days = args.days > 0 ? args.days : (args.fast ? 1.0 : 3.0);
  const ContactTrace trace = generate_trace(config.with_duration(
      days(trace_days)));
  save_trace_csv(trace, csv_path);
  std::printf("trace: %d nodes, %zu contacts, %.1f days (%s)\n",
              trace.node_count(), trace.size(), trace_days, csv_path.c_str());

  traceio::LoadOptions no_cache;
  no_cache.cache = traceio::CachePolicy::kBypass;

  report.stage(
      "csv_parse_cold",
      [&] {
        g_sink = traceio::load_trace_any(csv_path, no_cache).size();
      },
      "trace_contacts_decoded");

  traceio::LoadOptions refresh;
  refresh.cache = traceio::CachePolicy::kRefresh;
  report.stage(
      "cache_write",
      [&] {
        g_sink = traceio::load_trace_any(csv_path, refresh).size();
      },
      "trace_contacts_decoded");

  traceio::LoadOptions warm;
  warm.cache = traceio::CachePolicy::kUse;
  report.stage(
      "binary_warm_load",
      [&] {
        g_sink = traceio::load_trace_any(csv_path, warm).size();
      },
      "trace_contacts_decoded");

  std::error_code size_ec;
  const auto text_size = fs::file_size(csv_path, size_ec);
  const auto binary_size = fs::file_size(sidecar, size_ec);
  if (!size_ec) {
    std::printf("text %ju bytes -> binary %ju bytes (%.1f%%)\n",
                static_cast<std::uintmax_t>(text_size),
                static_cast<std::uintmax_t>(binary_size),
                100.0 * static_cast<double>(binary_size) /
                    static_cast<double>(text_size));
  }

  double cold_ns = 0.0;
  double warm_ns = 0.0;
  for (const auto& stage : report.stages()) {
    if (stage.name == "csv_parse_cold") {
      cold_ns = static_cast<double>(stage.median_ns);
    }
    if (stage.name == "binary_warm_load") {
      warm_ns = static_cast<double>(stage.median_ns);
    }
  }
  const double speedup = warm_ns > 0.0 ? cold_ns / warm_ns : 0.0;
  std::printf("warm binary load speedup over cold CSV parse: %.1fx\n",
              speedup);

  const bool json_ok = report.write_if_requested();

  std::error_code ec;
  fs::remove_all(scratch, ec);  // best-effort scratch cleanup

  if (!json_ok) return 1;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: warm load speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

// Reproduces Figure 7: the sigmoid response probability p_R(t) of Eq. (4)
// with p_min = 0.45, p_max = 0.8 and T_q = 10 hours.
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "cache/response.h"
#include "common/table.h"

using namespace dtn;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 7: probabilistic response sigmoid (p_min=0.45, p_max=0.8, "
      "T_q=10h)");
  bench::JsonReport report("bench_fig7_sigmoid", args);

  const SigmoidResponse sigmoid{0.45, 0.8};
  const Time t_q = hours(10);

  std::string rendered;
  report.stage("fig7_sigmoid_curve", [&] {
    TextTable table({"remaining time (h)", "p_R(t)"});
    for (double h = 0.0; h <= 10.0 + 1e-9; h += 1.0) {
      table.begin_row();
      table.add_number(h, 1);
      table.add_number(sigmoid.probability(hours(h), t_q), 4);
    }
    rendered = table.to_string();
  });
  std::printf("%s\n", rendered.c_str());
  std::printf(
      "Anchors: p_R(0) = p_min = 0.45 and p_R(T_q) = p_max = 0.80; the curve\n"
      "rises monotonically with the remaining time, matching Fig. 7.\n");
  return report.write_if_requested() ? 0 : 1;
}

#include "graph/hypoexp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace dtn {
namespace {

TEST(Hypoexp, EmptySumIsDegenerateAtZero) {
  EXPECT_DOUBLE_EQ(hypoexp_cdf({}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(hypoexp_cdf({}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(hypoexp_cdf({}, -1.0), 0.0);
}

TEST(Hypoexp, SingleRateIsExponentialCdf) {
  const double rate = 0.5;
  for (double t : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(hypoexp_cdf({rate}, t), 1.0 - std::exp(-rate * t), 1e-12);
  }
}

TEST(Hypoexp, NonPositiveTimeIsZero) {
  EXPECT_DOUBLE_EQ(hypoexp_cdf({1.0, 2.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(hypoexp_cdf({1.0, 2.0}, -5.0), 0.0);
}

TEST(Hypoexp, RejectsNonPositiveRates) {
  EXPECT_THROW(hypoexp_cdf({1.0, 0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(hypoexp_cdf({-2.0}, 1.0), std::invalid_argument);
}

TEST(Hypoexp, TwoDistinctRatesClosedForm) {
  // P(X1+X2 <= t) with rates a, b:
  // 1 - (b e^{-a t} - a e^{-b t}) / (b - a)
  const double a = 1.0, b = 3.0, t = 0.7;
  const double expected =
      1.0 - (b * std::exp(-a * t) - a * std::exp(-b * t)) / (b - a);
  EXPECT_NEAR(hypoexp_cdf({a, b}, t), expected, 1e-12);
  EXPECT_NEAR(hypoexp_cdf({b, a}, t), expected, 1e-12);  // order-invariant
}

TEST(Hypoexp, EqualRatesUseErlang) {
  // Sum of 3 Exp(2) = Erlang(3, 2).
  const double t = 1.3;
  EXPECT_NEAR(hypoexp_cdf({2.0, 2.0, 2.0}, t), erlang_cdf(3, 2.0, t), 1e-13);
}

TEST(Erlang, ShapeOneIsExponential) {
  EXPECT_NEAR(erlang_cdf(1, 0.7, 2.0), 1.0 - std::exp(-1.4), 1e-13);
}

TEST(Erlang, KnownValue) {
  // Erlang(2, 1) at t: 1 - e^{-t}(1 + t).
  const double t = 1.5;
  EXPECT_NEAR(erlang_cdf(2, 1.0, t), 1.0 - std::exp(-t) * (1.0 + t), 1e-13);
}

TEST(Erlang, InvalidArguments) {
  EXPECT_THROW(erlang_cdf(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(erlang_cdf(2, 0.0, 1.0), std::invalid_argument);
}

TEST(Hypoexp, UniformizationAgreesWithClosedForm) {
  const std::vector<double> rates{0.5, 1.7, 4.1, 9.3};
  for (double t : {0.05, 0.3, 1.0, 2.5, 8.0}) {
    EXPECT_NEAR(hypoexp_cdf_closed_form(rates, t),
                hypoexp_cdf_uniformization(rates, t), 1e-9)
        << "t=" << t;
  }
}

TEST(Hypoexp, UniformizationAgreesWithErlang) {
  const std::vector<double> rates{2.0, 2.0, 2.0, 2.0};
  for (double t : {0.1, 0.9, 2.0, 5.0}) {
    EXPECT_NEAR(erlang_cdf(4, 2.0, t), hypoexp_cdf_uniformization(rates, t),
                1e-9);
  }
}

TEST(Hypoexp, NearEqualRatesAreStable) {
  // Closed form is catastrophically unstable here; the dispatcher must
  // produce a sane probability.
  const std::vector<double> rates{1.0, 1.0 + 1e-9, 1.0 + 2e-9};
  const double p = hypoexp_cdf(rates, 2.0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_NEAR(p, erlang_cdf(3, 1.0, 2.0), 1e-6);
}

TEST(Hypoexp, ClosedFormRejectsDuplicates) {
  EXPECT_THROW(hypoexp_cdf_closed_form({1.0, 1.0}, 1.0), std::invalid_argument);
}

TEST(Hypoexp, MonotoneInTime) {
  const std::vector<double> rates{0.3, 1.1, 2.2};
  double prev = 0.0;
  for (double t = 0.1; t < 20.0; t += 0.37) {
    const double p = hypoexp_cdf(rates, t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Hypoexp, AddingAHopDecreasesProbability) {
  // Core property justifying Dijkstra relaxation: a longer path is slower.
  std::vector<double> rates{1.5, 0.7};
  const double t = 2.0;
  const double shorter = hypoexp_cdf(rates, t);
  rates.push_back(3.0);
  const double longer = hypoexp_cdf(rates, t);
  EXPECT_LT(longer, shorter);
}

TEST(Hypoexp, ApproachesOneForLargeTime) {
  EXPECT_NEAR(hypoexp_cdf({0.5, 1.0, 2.0}, 1e4), 1.0, 1e-9);
}

TEST(Hypoexp, Mean) {
  EXPECT_DOUBLE_EQ(hypoexp_mean({0.5, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(hypoexp_mean({}), 0.0);
}

TEST(Hypoexp, MatchesMonteCarlo) {
  const std::vector<double> rates{0.8, 2.5, 1.2};
  const double t = 2.0;
  Rng rng(77);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    double total = 0.0;
    for (double r : rates) total += rng.exponential(r);
    if (total <= t) ++hits;
  }
  EXPECT_NEAR(hypoexp_cdf(rates, t), static_cast<double>(hits) / n, 5e-3);
}

// Property sweep: the three computation paths agree across random rate sets.
class HypoexpCrossValidation : public testing::TestWithParam<int> {};

TEST_P(HypoexpCrossValidation, ClosedFormVsUniformization) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int hops = 2 + GetParam() % 6;
  std::vector<double> rates;
  for (int i = 0; i < hops; ++i) rates.push_back(rng.uniform(0.05, 5.0));
  for (double t : {0.2, 1.0, 4.0}) {
    const double closed = hypoexp_cdf_closed_form(rates, t);
    const double unif = hypoexp_cdf_uniformization(rates, t);
    EXPECT_NEAR(closed, unif, 1e-7)
        << "hops=" << hops << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRates, HypoexpCrossValidation,
                         testing::Range(1, 25));

TEST_P(HypoexpCrossValidation, ErlangVsUniformization) {
  // Equal rates sit in both Erlang's and uniformization's domain; the
  // closed form is excluded (it requires strictly distinct rates).
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const int shape = 2 + GetParam() % 7;
  const double rate = rng.uniform(0.05, 5.0);
  const std::vector<double> rates(static_cast<std::size_t>(shape), rate);
  for (double t : {0.2, 1.0, 4.0}) {
    EXPECT_NEAR(erlang_cdf(shape, rate, t),
                hypoexp_cdf_uniformization(rates, t), 1e-7)
        << "shape=" << shape << " rate=" << rate << " t=" << t;
  }
}

TEST_P(HypoexpCrossValidation, WorkspaceOverloadsAreBitIdentical) {
  // The workspace overloads move scratch off the heap; they promise the
  // same bits, not just the same tolerance. One workspace reused across
  // every evaluation (dirty from the previous one) vs a fresh allocating
  // call — EXPECT_EQ, no EXPECT_NEAR.
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  HypoexpWorkspace ws;
  for (int trial = 0; trial < 8; ++trial) {
    const int hops = 1 + static_cast<int>(rng.uniform_int(0, 6));
    std::vector<double> rates;
    for (int i = 0; i < hops; ++i) rates.push_back(rng.uniform(0.05, 5.0));
    // Every other trial, force the near-equal tier (sorted-probe + the
    // uniformization fallback) by duplicating a rate with a tiny nudge.
    if (hops >= 2 && trial % 2 == 0) {
      rates[1] = rates[0] * (1.0 + 1e-9);
    }
    for (double t : {-1.0, 0.2, 1.0, 4.0}) {
      EXPECT_EQ(hypoexp_cdf(rates, t), hypoexp_cdf(rates, t, ws))
          << "hops=" << hops << " t=" << t;
      EXPECT_EQ(hypoexp_cdf_uniformization(rates, t),
                hypoexp_cdf_uniformization(rates, t, ws))
          << "hops=" << hops << " t=" << t;
    }
  }
}

TEST_P(HypoexpCrossValidation, AppendEvaluatorMatchesDispatcherBitwise) {
  // The shared-prefix evaluator promises hypoexp_cdf(prefix + {x}, t) with
  // the dispatcher's exact bits, across every dispatch tier. Adversarial
  // appends: a fresh rate (closed form), the prefix's own first rate
  // (duplicate -> uniformization, or Erlang when the prefix is uniform),
  // and a near-duplicate (near-equal probe -> uniformization).
  Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  HypoexpWorkspace ws;
  HypoexpAppendEvaluator eval;
  for (int trial = 0; trial < 6; ++trial) {
    const int p = static_cast<int>(rng.uniform_int(0, 5));
    std::vector<double> chain;
    for (int i = 0; i < p; ++i) chain.push_back(rng.uniform(0.05, 5.0));
    if (p >= 2 && trial % 3 == 1) chain[1] = chain[0];  // duplicate prefix
    if (p >= 2 && trial % 3 == 2) {
      chain.assign(static_cast<std::size_t>(p), chain[0]);  // uniform prefix
    }
    const double t = rng.uniform(0.1, 5.0);
    eval.reset(chain.data(), chain.size(), t);

    std::vector<double> appends{rng.uniform(0.05, 5.0)};
    if (p >= 1) {
      appends.push_back(chain[0]);
      appends.push_back(chain[0] * (1.0 + 1e-9));
    }
    for (const double x : appends) {
      chain.push_back(x);
      EXPECT_EQ(eval.eval(chain, ws), hypoexp_cdf(chain, t))
          << "p=" << p << " x=" << x << " t=" << t;
      chain.pop_back();
    }
  }
}

}  // namespace
}  // namespace dtn

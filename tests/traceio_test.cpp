// Tests for the trace ingestion subsystem (src/traceio/): golden fixture
// parses for every reader, lossless .dtntrace round-trips, corruption
// rejection, streaming-cursor/materialized-vector equivalence (including
// through the simulation engine), the transparent sidecar cache, and the
// shared-trace sweep determinism contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/no_cache.h"
#include "common/instrument.h"
#include "experiment/sweep.h"
#include "sim/engine.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "traceio/binary.h"
#include "traceio/cache.h"
#include "traceio/cursor.h"
#include "traceio/reader.h"
#include "workload/workload.h"

namespace dtn {
namespace {

namespace fs = std::filesystem;

const std::string kFixtures = DTN_TRACE_FIXTURE_DIR;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string csv_bytes(const ContactTrace& trace) {
  std::ostringstream out;
  write_trace_csv(trace, out);
  return out.str();
}

traceio::LoadOptions bypass_cache() {
  traceio::LoadOptions options;
  options.cache = traceio::CachePolicy::kBypass;
  return options;
}

/// Unique scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::path(::testing::TempDir()) /
             ("traceio_" + tag + "_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)))) {
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

// ---- golden fixture parses -------------------------------------------

TEST(TraceioFixtures, CsvGoldenRoundTripsByteIdentical) {
  const std::string path = kFixtures + "/sample.csv";
  const ContactTrace trace = traceio::load_trace_any(path, bypass_cache());
  EXPECT_EQ(trace.node_count(), 6);
  EXPECT_EQ(trace.size(), 12u);
  EXPECT_EQ(trace.name(), "sample");
  // The fixture was authored in write_trace_csv's own rendering, so parse +
  // re-serialize must reproduce the file exactly.
  EXPECT_EQ(csv_bytes(trace), slurp(path));
}

TEST(TraceioFixtures, OneReportGolden) {
  const ContactTrace trace =
      traceio::load_trace_any(kFixtures + "/sample_one.txt", bypass_cache());
  // Raw hosts {10, 20, 30, 40} -> dense {0, 1, 2, 3}; the link opened at
  // t=300 and never closed ends at the last timestamp seen (330).
  const std::vector<ContactEvent> expected = {
      {0.0, 60.0, 0, 1},  {30.0, 120.0, 1, 3}, {200.0, 60.0, 0, 3},
      {300.0, 30.0, 0, 2}, {310.0, 20.0, 1, 3},
  };
  EXPECT_EQ(trace.node_count(), 4);
  EXPECT_EQ(trace.events(), expected);
}

TEST(TraceioFixtures, ImoteLogGolden) {
  const ContactTrace trace =
      traceio::load_trace_any(kFixtures + "/sample_imote.txt", bypass_cache());
  // Devices {101, 105, 107, 109} -> {0, 1, 2, 3}; the two overlapping
  // (101, 105) sightings merge; the earliest start (1000) becomes t = 0.
  const std::vector<ContactEvent> expected = {
      {0.0, 100.0, 0, 1},
      {5.0, 20.0, 2, 3},
      {200.0, 30.0, 0, 2},
      {500.0, 20.0, 2, 3},
  };
  EXPECT_EQ(trace.node_count(), 4);
  EXPECT_EQ(trace.events(), expected);
}

TEST(TraceioFixtures, FormatSniffingPicksTheRightReader) {
  using traceio::detect_reader;
  const auto* csv = detect_reader(slurp(kFixtures + "/sample.csv"));
  const auto* one = detect_reader(slurp(kFixtures + "/sample_one.txt"));
  const auto* imote = detect_reader(slurp(kFixtures + "/sample_imote.txt"));
  ASSERT_NE(csv, nullptr);
  ASSERT_NE(one, nullptr);
  ASSERT_NE(imote, nullptr);
  EXPECT_STREQ(csv->format_name(), "csv");
  EXPECT_STREQ(one->format_name(), "one");
  EXPECT_STREQ(imote->format_name(), "imote");
}

TEST(TraceioFixtures, ForcedFormatOverridesSniffing) {
  traceio::LoadOptions options = bypass_cache();
  options.format = "one";
  // A CSV file parsed as a ONE report must fail loudly, not silently.
  EXPECT_THROW(traceio::load_trace_any(kFixtures + "/sample.csv", options),
               std::runtime_error);
  options.format = "nonsense";
  EXPECT_THROW(traceio::load_trace_any(kFixtures + "/sample.csv", options),
               std::runtime_error);
}

// ---- strict mode and parse diagnostics -------------------------------

TEST(TraceioStrict, OneReaderRejectsIrregularitiesWithLineContext) {
  traceio::TraceReadOptions strict;
  strict.strict = true;
  const auto* one = traceio::reader_for_format("one");
  ASSERT_NE(one, nullptr);

  std::istringstream dup("1 CONN 1 2 up\n2 CONN 2 1 up\n3 CONN 1 2 down\n");
  try {
    one->read(dup, "t", "dup.txt", strict);
    FAIL() << "duplicate up must throw in strict mode";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("dup.txt:2:"), std::string::npos)
        << error.what();
  }

  // Tolerant mode keeps the earlier start instead.
  std::istringstream dup2("1 CONN 1 2 up\n2 CONN 2 1 up\n3 CONN 1 2 down\n");
  const ContactTrace trace = one->read(dup2, "t", "dup.txt", {});
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.events()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(trace.events()[0].duration, 2.0);
}

TEST(TraceioStrict, ImoteReaderRejectsTrailingColumnsWithLineContext) {
  traceio::TraceReadOptions strict;
  strict.strict = true;
  const auto* imote = traceio::reader_for_format("imote");
  ASSERT_NE(imote, nullptr);

  std::istringstream extra("1 2 10 20\n3 4 10 20 999\n");
  try {
    imote->read(extra, "t", "log.txt", strict);
    FAIL() << "trailing column must throw in strict mode";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("log.txt:2:"), std::string::npos)
        << error.what();
  }
  // Tolerated otherwise (real exports carry RSSI columns and the like).
  std::istringstream extra2("1 2 10 20\n3 4 10 20 999\n");
  EXPECT_EQ(imote->read(extra2, "t", "log.txt", {}).size(), 2u);
}

// ---- binary format ----------------------------------------------------

ContactTrace awkward_trace() {
  // Values chosen to stress the XOR-delta codec: denormals, huge exponents,
  // long mantissas, equal starts, adjacent node pairs.
  std::vector<ContactEvent> events;
  events.push_back({0.0, 5e-324, 0, 9});
  events.push_back({0.1, 1.0 / 3.0, 2, 3});
  events.push_back({0.1, 0.30000000000000004, 3, 4});
  events.push_back({12345.678901234567, 1e300, 0, 1});
  events.push_back({12345.678901234568, 0.0, 7, 8});
  return ContactTrace(10, std::move(events), "awkward");
}

TEST(TraceioBinary, RoundTripPreservesEveryBit) {
  const ContactTrace trace = awkward_trace();
  std::ostringstream out;
  traceio::write_trace_binary(trace, out);
  std::istringstream in(out.str());
  const ContactTrace back = traceio::read_trace_binary(in, "mem.dtntrace");
  EXPECT_EQ(back.name(), trace.name());
  EXPECT_EQ(back.node_count(), trace.node_count());
  EXPECT_EQ(back.events(), trace.events());
}

TEST(TraceioBinary, CsvToBinaryToCsvIsByteIdentical) {
  const std::string path = kFixtures + "/sample.csv";
  const ContactTrace parsed = traceio::load_trace_any(path, bypass_cache());
  std::ostringstream binary;
  traceio::write_trace_binary(parsed, binary);
  std::istringstream in(binary.str());
  const ContactTrace back = traceio::read_trace_binary(in, "mem.dtntrace");
  EXPECT_EQ(csv_bytes(back), slurp(path));
}

TEST(TraceioBinary, HeaderMetadataMatchesTrace) {
  const ContactTrace trace = awkward_trace();
  std::ostringstream out;
  traceio::write_trace_binary(trace, out);
  std::istringstream in(out.str());
  const traceio::BinaryTraceMeta meta =
      traceio::read_binary_header(in, "mem.dtntrace");
  EXPECT_EQ(meta.version, traceio::kBinaryVersion);
  EXPECT_EQ(meta.node_count, trace.node_count());
  EXPECT_EQ(meta.contact_count, trace.size());
  EXPECT_EQ(meta.name, "awkward");
  EXPECT_DOUBLE_EQ(meta.start_time, trace.start_time());
  EXPECT_DOUBLE_EQ(meta.end_time, trace.end_time());
  EXPECT_EQ(meta.source_size, 0u);  // standalone, not a sidecar
}

TEST(TraceioBinary, RejectsCorruptionEverywhere) {
  std::ostringstream out;
  traceio::write_trace_binary(awkward_trace(), out);
  const std::string good = out.str();

  auto expect_rejected = [](std::string bytes, const char* what) {
    std::istringstream in(bytes);
    EXPECT_THROW(traceio::read_trace_binary(in, "corrupt.dtntrace"),
                 std::runtime_error)
        << what;
  };

  expect_rejected(good.substr(0, 4), "truncated inside the magic");
  expect_rejected(good.substr(0, 40), "truncated inside the header");
  expect_rejected(good.substr(0, good.size() - 2), "truncated records");
  expect_rejected(good + "x", "trailing garbage");

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_rejected(bad_magic, "wrong magic");

  std::string bad_version = good;
  bad_version[8] = 99;
  expect_rejected(bad_version, "unsupported version");

  std::string bad_endian = good;
  std::swap(bad_endian[12], bad_endian[15]);
  expect_rejected(bad_endian, "byte-swapped endian tag");

  std::string bad_payload = good;
  bad_payload.back() = static_cast<char>(bad_payload.back() ^ 0x40);
  expect_rejected(bad_payload, "flipped payload bit");
}

// ---- streaming cursor -------------------------------------------------

TEST(TraceioCursor, FileCursorStreamsTheExactEventSequence) {
  ScratchDir dir("cursor");
  const ContactTrace trace = awkward_trace();
  const std::string path = dir.file("t.dtntrace");
  traceio::save_trace_binary(trace, path);

  traceio::BinaryFileContactCursor cursor(path);
  EXPECT_EQ(cursor.meta().contact_count, trace.size());
  EXPECT_EQ(traceio::drain(cursor), trace.events());
}

TEST(TraceioCursor, EngineRunsIdenticallyFromVectorAndFileCursor) {
  SyntheticTraceConfig config;
  config.node_count = 12;
  config.duration = days(4);
  config.target_total_contacts = 800;
  config.seed = 11;
  const ContactTrace trace = generate_trace(config);

  WorkloadConfig wc;
  wc.start = trace.start_time() + trace.duration() / 2.0;
  wc.end = trace.end_time();
  wc.avg_lifetime = days(1);
  wc.seed = 5;
  const Workload workload = generate_workload(wc, trace.node_count());

  SimConfig sim;
  sim.maintenance_interval = hours(12);
  auto scheme_config = [&] {
    FloodingConfig fc;
    fc.buffer_capacity.assign(static_cast<std::size_t>(trace.node_count()),
                              megabits(400));
    return fc;
  };

  NoCacheScheme from_vector(scheme_config());
  const RunResult vector_run =
      run_simulation(trace, workload, from_vector, sim);

  ScratchDir dir("engine");
  const std::string path = dir.file("t.dtntrace");
  traceio::save_trace_binary(trace, path);
  traceio::BinaryFileContactCursor cursor(path);
  NoCacheScheme from_cursor(scheme_config());
  const RunResult cursor_run =
      run_simulation(cursor, trace.node_count(), cursor.meta().end_time,
                     workload, from_cursor, sim);

  EXPECT_EQ(cursor_run.contacts_processed, vector_run.contacts_processed);
  EXPECT_EQ(cursor_run.maintenance_ticks, vector_run.maintenance_ticks);
  EXPECT_EQ(cursor_run.metrics.queries_issued(),
            vector_run.metrics.queries_issued());
  EXPECT_EQ(cursor_run.metrics.queries_satisfied(),
            vector_run.metrics.queries_satisfied());
  EXPECT_EQ(cursor_run.metrics.success_ratio(),
            vector_run.metrics.success_ratio());
  EXPECT_EQ(cursor_run.metrics.bytes_transferred(),
            vector_run.metrics.bytes_transferred());
}

// The daemon (src/daemon/) consumes cursors directly — no materialized
// ContactTrace in between — so the degenerate shapes a long-running feed
// can take must hold at the cursor layer itself.

TEST(TraceioCursor, EmptyTraceYieldsNoEventsAndEndsCleanly) {
  const ContactTrace empty(4, {}, "empty");
  traceio::VectorContactCursor vec(empty.events());
  EXPECT_TRUE(traceio::drain(vec).empty());

  ScratchDir dir("empty");
  const std::string path = dir.file("empty.dtntrace");
  traceio::save_trace_binary(empty, path);
  traceio::BinaryFileContactCursor cursor(path);
  EXPECT_EQ(cursor.meta().contact_count, 0u);
  EXPECT_EQ(cursor.meta().node_count, 4);
  ContactEvent event;
  EXPECT_FALSE(cursor.next(event));
  EXPECT_FALSE(cursor.next(event));  // end-of-stream is sticky
}

TEST(TraceioCursor, SingleContactTraceStreamsExactlyOnce) {
  std::vector<ContactEvent> events;
  events.push_back({42.5, 7.0, 1, 3});
  const ContactTrace one(5, events, "one");
  ScratchDir dir("single");
  const std::string path = dir.file("single.dtntrace");
  traceio::save_trace_binary(one, path);
  traceio::BinaryFileContactCursor cursor(path);
  ContactEvent event;
  ASSERT_TRUE(cursor.next(event));
  EXPECT_EQ(event, one.events()[0]);
  EXPECT_FALSE(cursor.next(event));
}

TEST(TraceioCursor, DuplicateTimestampsStreamInCanonicalPairOrder) {
  // Several contacts at the same instant (one crowded room): the binary
  // writer stores them in ContactEventOrder and the cursor must hand them
  // back in exactly that order — the daemon's estimator treats a repeated
  // (pair, time) as one physical meeting, which only works if duplicates
  // arrive adjacent, not shuffled.
  std::vector<ContactEvent> events;
  events.push_back({100.0, 5.0, 2, 3});
  events.push_back({100.0, 5.0, 0, 1});
  events.push_back({100.0, 5.0, 0, 1});  // exact duplicate record
  events.push_back({100.0, 5.0, 1, 2});
  events.push_back({250.0, 5.0, 0, 1});
  const ContactTrace trace(4, events, "dups");  // ctor sorts canonically
  ScratchDir dir("dups");
  const std::string path = dir.file("dups.dtntrace");
  traceio::save_trace_binary(trace, path);
  traceio::BinaryFileContactCursor cursor(path);
  const std::vector<ContactEvent> streamed = traceio::drain(cursor);
  ASSERT_EQ(streamed.size(), 5u);
  EXPECT_EQ(streamed, trace.events());
  EXPECT_EQ(streamed[0], streamed[1]);  // the duplicate survived intact
}

TEST(TraceioStrict, CsvRejectsOutOfOrderContactsOnlyInStrictMode) {
  const std::string csv =
      "start,duration,a,b\n"
      "100.0,5.0,0,1\n"
      "50.0,5.0,1,2\n";
  // Lenient parsing re-sorts (ContactTrace owns the order), so a shuffled
  // export still loads.
  std::istringstream lenient_in(csv);
  const ContactTrace sorted = read_trace_csv(lenient_in, "shuffled");
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted.events()[0].start, 50.0);
  // Strict mode is the validation path for files a streaming consumer will
  // read without the re-sort: disorder must be a diagnosed error.
  CsvParseOptions strict;
  strict.strict = true;
  std::istringstream strict_in(csv);
  try {
    read_trace_csv(strict_in, "shuffled", 0, strict);
    FAIL() << "out-of-order row must throw in strict mode";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(":3:"), std::string::npos) << what;
    EXPECT_NE(what.find("backwards"), std::string::npos) << what;
  }
}

// ---- sidecar cache ----------------------------------------------------

TEST(TraceioCache, ColdParseWritesSidecarWarmLoadUsesIt) {
  ScratchDir dir("cache");
  const std::string csv = dir.file("trace.csv");
  save_trace_csv(traceio::load_trace_any(kFixtures + "/sample.csv",
                                         bypass_cache()),
                 csv);
  const std::string sidecar = traceio::sidecar_path(csv);
  ASSERT_FALSE(fs::exists(sidecar));

  const auto before = instrument::snapshot();
  const ContactTrace cold = traceio::load_trace_any(csv);
  EXPECT_TRUE(fs::exists(sidecar));
  const ContactTrace warm = traceio::load_trace_any(csv);
  EXPECT_EQ(warm.events(), cold.events());
  EXPECT_EQ(warm.node_count(), cold.node_count());
  EXPECT_EQ(warm.name(), cold.name());

  if (instrument::enabled()) {
    const auto delta = instrument::snapshot().delta_since(before);
    EXPECT_EQ(delta.counter("trace_cache_misses"), 1u);
    EXPECT_EQ(delta.counter("trace_cache_hits"), 1u);
  }
}

TEST(TraceioCache, StaleSidecarIsReparsedAfterSourceEdit) {
  ScratchDir dir("stale");
  const std::string csv = dir.file("trace.csv");
  {
    std::ofstream out(csv);
    out << "start,duration,a,b\n10,5,0,1\n";
  }
  const ContactTrace first = traceio::load_trace_any(csv);
  EXPECT_EQ(first.size(), 1u);
  ASSERT_TRUE(fs::exists(traceio::sidecar_path(csv)));

  {
    std::ofstream out(csv, std::ios::app);
    out << "20,5,1,2\n";
  }
  const ContactTrace second = traceio::load_trace_any(csv);
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(second.node_count(), 3);
}

TEST(TraceioCache, BypassNeverTouchesDisk) {
  ScratchDir dir("bypass");
  const std::string csv = dir.file("trace.csv");
  {
    std::ofstream out(csv);
    out << "start,duration,a,b\n10,5,0,1\n";
  }
  (void)traceio::load_trace_any(csv, bypass_cache());
  EXPECT_FALSE(fs::exists(traceio::sidecar_path(csv)));
}

TEST(TraceioCache, CachedLoadFeedsTheSimulatorByteIdentically) {
  // The acceptance contract: a dtnsim-style run from the binary cache is
  // indistinguishable from one parsed from text.
  SyntheticTraceConfig config;
  config.node_count = 10;
  config.duration = days(3);
  config.target_total_contacts = 500;
  config.seed = 21;
  const ContactTrace generated = generate_trace(config);

  ScratchDir dir("endtoend");
  const std::string csv = dir.file("trace.csv");
  save_trace_csv(generated, csv);

  const ContactTrace from_text = traceio::load_trace_any(csv, bypass_cache());
  const ContactTrace cached_cold = traceio::load_trace_any(csv);
  const ContactTrace cached_warm = traceio::load_trace_any(csv);
  EXPECT_EQ(csv_bytes(cached_warm), csv_bytes(from_text));
  EXPECT_EQ(cached_cold.events(), cached_warm.events());
}

// ---- shared trace across sweeps --------------------------------------

TEST(TraceioShared, SweepCsvIsByteIdenticalAcrossThreadCounts) {
  SyntheticTraceConfig config;
  config.node_count = 16;
  config.duration = days(8);
  config.target_total_contacts = 3000;
  config.seed = 3;
  const auto trace =
      std::make_shared<const ContactTrace>(generate_trace(config));

  SweepConfig sweep;
  sweep.base.avg_lifetime = days(1);
  sweep.base.avg_data_size = megabits(40);
  sweep.base.ncl_count = 2;
  sweep.base.repetitions = 1;
  sweep.base.sim.maintenance_interval = hours(12);
  sweep.schemes = {SchemeKind::kNclCache, SchemeKind::kNoCache};
  sweep.lifetimes = {hours(12), days(1)};
  sweep.ncl_counts = {1, 2};

  sweep.threads = 1;
  const std::string serial = sweep_to_csv(run_sweep(trace, sweep));
  sweep.threads = 8;
  const std::string parallel = sweep_to_csv(run_sweep(trace, sweep));
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(TraceioShared, NullSharedTraceThrows) {
  std::shared_ptr<const ContactTrace> null_trace;
  SweepConfig sweep;
  EXPECT_THROW(run_sweep(null_trace, sweep), std::invalid_argument);
  ExperimentConfig config;
  EXPECT_THROW(run_experiment(null_trace, SchemeKind::kNoCache, config),
               std::invalid_argument);
  EXPECT_THROW(run_comparison(null_trace, {SchemeKind::kNoCache}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace dtn

#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/synthetic.h"

namespace dtn {
namespace {

TEST(TraceIo, RoundTripThroughStream) {
  SyntheticTraceConfig c;
  c.node_count = 10;
  c.duration = days(1);
  c.target_total_contacts = 500;
  c.seed = 5;
  const ContactTrace original = generate_trace(c);

  std::stringstream buffer;
  write_trace_csv(original, buffer);
  const ContactTrace loaded = read_trace_csv(buffer, "roundtrip");

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.node_count(), original.node_count());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.events()[i], original.events()[i]);
  }
}

TEST(TraceIo, HeaderIsOptional) {
  std::stringstream with_header("start,duration,a,b\n1.5,10,0,1\n");
  std::stringstream without_header("1.5,10,0,1\n");
  const ContactTrace a = read_trace_csv(with_header);
  const ContactTrace b = read_trace_csv(without_header);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a.events()[0], b.events()[0]);
}

TEST(TraceIo, NodeCountFromMaxId) {
  std::stringstream in("0,5,2,7\n");
  const ContactTrace t = read_trace_csv(in);
  EXPECT_EQ(t.node_count(), 8);
}

TEST(TraceIo, MinNodeCountHonored) {
  std::stringstream in("0,5,0,1\n");
  const ContactTrace t = read_trace_csv(in, "t", 50);
  EXPECT_EQ(t.node_count(), 50);
}

TEST(TraceIo, MalformedLineThrows) {
  std::stringstream in("start,duration,a,b\n1.5,10,0\n");
  EXPECT_THROW(read_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, WrongSeparatorThrows) {
  std::stringstream in("1.5;10;0;1\n");
  EXPECT_THROW(read_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, EmptyStreamThrows) {
  std::stringstream in("");
  EXPECT_THROW(read_trace_csv(in), std::runtime_error);
}

TEST(TraceIo, BlankLinesIgnored) {
  std::stringstream in("start,duration,a,b\n1,2,0,1\n\n3,4,1,2\n");
  const ContactTrace t = read_trace_csv(in);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TraceIo, FileRoundTripAndNaming) {
  SyntheticTraceConfig c;
  c.node_count = 5;
  c.duration = hours(6);
  c.target_total_contacts = 100;
  const ContactTrace original = generate_trace(c);

  const std::string path = testing::TempDir() + "/dtn_trace_io_test.csv";
  save_trace_csv(original, path);
  const ContactTrace loaded = load_trace_csv(path);
  EXPECT_EQ(loaded.name(), "dtn_trace_io_test");
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/path/to/trace.csv"),
               std::runtime_error);
}

// ---- parse diagnostics (file:line context) and strict mode ------------

std::string error_of(const std::string& text, const CsvParseOptions& options) {
  std::stringstream in(text);
  try {
    read_trace_csv(in, "trace", 0, options);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return "";
}

TEST(TraceIo, ParseErrorsCarrySourceAndLine) {
  CsvParseOptions options;
  options.source_name = "contacts.csv";
  const std::string what =
      error_of("start,duration,a,b\n1,2,0,1\n1.5,10,0\n", options);
  EXPECT_NE(what.find("contacts.csv:3:"), std::string::npos) << what;
  EXPECT_NE(what.find("1.5,10,0"), std::string::npos) << what;
}

TEST(TraceIo, SourceNameDefaultsToTraceName) {
  const std::string what = error_of("bogus line\n", {});
  EXPECT_NE(what.find("trace:1:"), std::string::npos) << what;
}

TEST(TraceIo, InvalidValuesRejectedWithContext) {
  EXPECT_NE(error_of("1,-2,0,1\n", {}).find("negative contact duration"),
            std::string::npos);
  EXPECT_NE(error_of("1,2,3,3\n", {}).find("self-contact"),
            std::string::npos);
  EXPECT_NE(error_of("1,2,-1,3\n", {}).find("negative node id"),
            std::string::npos);
  // iostreams refuse "nan" outright, so it fails as a malformed field —
  // the point is that it is rejected, with line context.
  EXPECT_NE(error_of("nan,2,0,1\n", {}).find("trace:1:"), std::string::npos);
}

TEST(TraceIo, StrictModeRejectsTrailingFields) {
  const std::string with_extra = "1,2,0,1,99\n";
  std::stringstream tolerant(with_extra);
  EXPECT_EQ(read_trace_csv(tolerant).size(), 1u);

  CsvParseOptions strict;
  strict.strict = true;
  strict.source_name = "export.csv";
  const std::string what = error_of(with_extra, strict);
  EXPECT_NE(what.find("export.csv:1:"), std::string::npos) << what;
  EXPECT_NE(what.find("trailing characters"), std::string::npos) << what;
}

}  // namespace
}  // namespace dtn

#include "workload/workload.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dtn {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig c;
  c.start = 0.0;
  c.end = days(30);
  c.avg_lifetime = days(2);
  c.generation_prob = 0.2;
  c.avg_size = megabits(100);
  c.zipf_exponent = 1.0;
  c.seed = 7;
  return c;
}

TEST(Workload, DeterministicForSameSeed) {
  const Workload a = generate_workload(base_config(), 20);
  const Workload b = generate_workload(base_config(), 20);
  EXPECT_EQ(a.data_count(), b.data_count());
  EXPECT_EQ(a.query_count(), b.query_count());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(static_cast<int>(a.events()[i].kind),
              static_cast<int>(b.events()[i].kind));
  }
}

TEST(Workload, EventsSortedByTime) {
  const Workload w = generate_workload(base_config(), 20);
  for (std::size_t i = 1; i < w.events().size(); ++i) {
    EXPECT_LE(w.events()[i - 1].time, w.events()[i].time);
  }
}

TEST(Workload, DataWithinConfiguredWindow) {
  const WorkloadConfig c = base_config();
  const Workload w = generate_workload(c, 20);
  ASSERT_GT(w.data_count(), 0u);
  for (std::size_t i = 0; i < w.data_count(); ++i) {
    const DataItem& item = w.registry().get(static_cast<DataId>(i));
    EXPECT_GE(item.created, c.start);
    EXPECT_LT(item.created, c.end);
    // Lifetime uniform in [0.5 T_L, 1.5 T_L].
    const Time lifetime = item.lifetime();
    EXPECT_GE(lifetime, 0.5 * c.avg_lifetime - 1e-6);
    EXPECT_LE(lifetime, 1.5 * c.avg_lifetime + 1e-6);
    // Size uniform in [0.5 s, 1.5 s].
    EXPECT_GE(item.size, c.avg_size / 2 - 1);
    EXPECT_LE(item.size, c.avg_size * 3 / 2 + 1);
  }
}

TEST(Workload, AtMostOneLiveItemPerSourceNode) {
  const Workload w = generate_workload(base_config(), 10);
  // At any generation instant, the source must not have another live item.
  for (std::size_t i = 0; i < w.data_count(); ++i) {
    const DataItem& item = w.registry().get(static_cast<DataId>(i));
    for (std::size_t j = 0; j < i; ++j) {
      const DataItem& other = w.registry().get(static_cast<DataId>(j));
      if (other.source != item.source) continue;
      // Items from the same source must not overlap in lifetime.
      const bool disjoint =
          other.expires <= item.created || item.expires <= other.created;
      EXPECT_TRUE(disjoint) << "items " << j << " and " << i;
    }
  }
}

TEST(Workload, QueriesReferenceAliveData) {
  const Workload w = generate_workload(base_config(), 20);
  ASSERT_GT(w.query_count(), 0u);
  for (const auto& e : w.events()) {
    if (e.kind != WorkloadEvent::Kind::kQueryIssued) continue;
    const DataItem& item = w.registry().get(e.query.data);
    EXPECT_LE(item.created, e.query.issued);
    EXPECT_TRUE(item.alive(e.query.issued));
  }
}

TEST(Workload, QueriesNeverTargetOwnData) {
  const Workload w = generate_workload(base_config(), 20);
  for (const auto& e : w.events()) {
    if (e.kind != WorkloadEvent::Kind::kQueryIssued) continue;
    EXPECT_NE(w.registry().get(e.query.data).source, e.query.requester);
  }
}

TEST(Workload, QueryConstraintIsHalfLifetime) {
  const WorkloadConfig c = base_config();
  const Workload w = generate_workload(c, 20);
  for (const auto& e : w.events()) {
    if (e.kind != WorkloadEvent::Kind::kQueryIssued) continue;
    EXPECT_NEAR(e.query.time_constraint(), 0.5 * c.avg_lifetime, 1e-6);
  }
}

TEST(Workload, QueryIdsUniqueAndDense) {
  const Workload w = generate_workload(base_config(), 20);
  std::vector<bool> seen(w.query_count(), false);
  for (const auto& e : w.events()) {
    if (e.kind != WorkloadEvent::Kind::kQueryIssued) continue;
    ASSERT_GE(e.query.id, 0);
    ASSERT_LT(static_cast<std::size_t>(e.query.id), w.query_count());
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.query.id)]);
    seen[static_cast<std::size_t>(e.query.id)] = true;
  }
}

TEST(Workload, MoreDataWithLongerWindow) {
  WorkloadConfig c = base_config();
  const Workload small = generate_workload(c, 20);
  c.end = days(60);
  const Workload large = generate_workload(c, 20);
  EXPECT_GT(large.data_count(), small.data_count());
}

TEST(Workload, ZeroGenerationProbabilityProducesNothing) {
  WorkloadConfig c = base_config();
  c.generation_prob = 0.0;
  const Workload w = generate_workload(c, 20);
  EXPECT_EQ(w.data_count(), 0u);
  EXPECT_EQ(w.query_count(), 0u);
}

TEST(Workload, QueryConstraintFactorScalesTq) {
  WorkloadConfig c = base_config();
  c.query_constraint_factor = 0.25;
  const Workload w = generate_workload(c, 20);
  for (const auto& e : w.events()) {
    if (e.kind != WorkloadEvent::Kind::kQueryIssued) continue;
    EXPECT_NEAR(e.query.time_constraint(), 0.25 * c.avg_lifetime, 1e-6);
  }
}

TEST(Workload, HigherGenerationProbabilityProducesMoreData) {
  WorkloadConfig c = base_config();
  c.generation_prob = 0.1;
  const Workload low = generate_workload(c, 30);
  c.generation_prob = 0.9;
  const Workload high = generate_workload(c, 30);
  EXPECT_GT(high.data_count(), low.data_count());
}

TEST(Workload, InvalidConfigsThrow) {
  WorkloadConfig c = base_config();
  c.end = c.start;
  EXPECT_THROW(generate_workload(c, 20), std::invalid_argument);
  c = base_config();
  c.avg_lifetime = 0.0;
  EXPECT_THROW(generate_workload(c, 20), std::invalid_argument);
  c = base_config();
  c.generation_prob = 1.5;
  EXPECT_THROW(generate_workload(c, 20), std::invalid_argument);
  c = base_config();
  c.avg_size = 0;
  EXPECT_THROW(generate_workload(c, 20), std::invalid_argument);
  EXPECT_THROW(generate_workload(base_config(), 1), std::invalid_argument);
}

// Fig. 9(a): T_L controls the amount of data in the network. With the
// paper's generation rule (decision period = T_L), a longer lifetime means
// fewer, longer-lived items: the total number generated over a fixed window
// shrinks, while the instantaneous alive population stays at roughly
// p_G-determined occupancy.
TEST(Workload, TotalGeneratedShrinksWithLifetime) {
  WorkloadConfig c = base_config();
  c.avg_lifetime = hours(12);
  const Workload short_lived = generate_workload(c, 40);
  c.avg_lifetime = days(7);
  const Workload long_lived = generate_workload(c, 40);
  EXPECT_GT(short_lived.data_count(), long_lived.data_count());
}

// Zipf skew: lower-id (older, lower-rank) alive data gets more queries.
TEST(Workload, QueryCountSkewedTowardsLowRanks) {
  WorkloadConfig c = base_config();
  c.avg_lifetime = days(10);
  c.zipf_exponent = 1.5;
  c.end = days(40);
  const Workload w = generate_workload(c, 30);
  std::size_t first_half = 0, second_half = 0;
  for (const auto& e : w.events()) {
    if (e.kind != WorkloadEvent::Kind::kQueryIssued) continue;
    if (static_cast<std::size_t>(e.query.data) < w.data_count() / 2) {
      ++first_half;
    } else {
      ++second_half;
    }
  }
  EXPECT_GT(first_half, second_half);
}

}  // namespace
}  // namespace dtn

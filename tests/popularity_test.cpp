#include "cache/popularity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dtn {
namespace {

TEST(Popularity, FreshEstimatorHasZeroPopularity) {
  PopularityEstimator e;
  EXPECT_EQ(e.request_count(), 0u);
  EXPECT_EQ(e.request_rate(), 0.0);
  EXPECT_EQ(e.popularity(0.0, 100.0), 0.0);
}

TEST(Popularity, SingleRequestStillZeroRate) {
  PopularityEstimator e;
  e.record_request(5.0);
  EXPECT_EQ(e.request_count(), 1u);
  EXPECT_EQ(e.request_rate(), 0.0);  // no time span yet
  EXPECT_EQ(e.popularity(6.0, 100.0), 0.0);
}

TEST(Popularity, RateFromSpreadRequests) {
  PopularityEstimator e;
  e.record_request(0.0);
  e.record_request(10.0);
  e.record_request(20.0);
  // lambda = k / (t_k - t_1) = 3 / 20
  EXPECT_NEAR(e.request_rate(), 0.15, 1e-12);
}

TEST(Popularity, MatchesEqSix) {
  PopularityEstimator e;
  e.record_request(0.0);
  e.record_request(100.0);
  const double rate = 2.0 / 100.0;
  const Time now = 150.0, expires = 250.0;
  EXPECT_NEAR(e.popularity(now, expires), 1.0 - std::exp(-rate * 100.0), 1e-12);
}

TEST(Popularity, ZeroAtOrAfterExpiry) {
  PopularityEstimator e;
  e.record_request(0.0);
  e.record_request(1.0);
  EXPECT_EQ(e.popularity(10.0, 10.0), 0.0);
  EXPECT_EQ(e.popularity(11.0, 10.0), 0.0);
}

TEST(Popularity, GrowsWithRemainingLifetime) {
  PopularityEstimator e;
  e.record_request(0.0);
  e.record_request(2.0);
  const double near_expiry = e.popularity(10.0, 11.0);
  const double far_expiry = e.popularity(10.0, 100.0);
  EXPECT_GT(far_expiry, near_expiry);
}

TEST(Popularity, MoreFrequentRequestsMorePopular) {
  PopularityEstimator frequent, rare;
  for (int i = 0; i < 10; ++i) frequent.record_request(i * 1.0);
  rare.record_request(0.0);
  rare.record_request(9.0);
  EXPECT_GT(frequent.popularity(10.0, 20.0), rare.popularity(10.0, 20.0));
}

TEST(Popularity, OutOfOrderRequestsHandled) {
  PopularityEstimator e;
  e.record_request(10.0);
  e.record_request(2.0);
  e.record_request(6.0);
  EXPECT_DOUBLE_EQ(e.first_request(), 2.0);
  EXPECT_DOUBLE_EQ(e.last_request(), 10.0);
  EXPECT_NEAR(e.request_rate(), 3.0 / 8.0, 1e-12);
}

TEST(Popularity, MergeTakesUnionOfObservations) {
  PopularityEstimator a, b;
  a.record_request(0.0);
  a.record_request(10.0);
  b.record_request(5.0);
  b.record_request(20.0);
  b.record_request(25.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.first_request(), 0.0);
  EXPECT_DOUBLE_EQ(a.last_request(), 25.0);
  EXPECT_EQ(a.request_count(), 3u);  // max, not sum (overlapping histories)
}

TEST(Popularity, MergeWithEmptyIsIdentity) {
  PopularityEstimator a, b;
  a.record_request(1.0);
  a.record_request(2.0);
  const double before = a.request_rate();
  a.merge(b);
  EXPECT_EQ(a.request_rate(), before);
  b.merge(a);
  EXPECT_EQ(b.request_rate(), before);
}

TEST(Popularity, PopularityIsProbability) {
  PopularityEstimator e;
  for (int i = 0; i < 100; ++i) e.record_request(i * 0.01);
  const double p = e.popularity(1.0, 1000.0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_GT(p, 0.99);  // extremely hot item
}

}  // namespace
}  // namespace dtn

#include "graph/analysis.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace dtn {
namespace {

ContactGraph triangle_plus_isolate() {
  // 0-1-2 triangle; 3 isolated; 4-5 pair.
  ContactGraph g(6);
  g.set_rate(0, 1, 1.0);
  g.set_rate(1, 2, 2.0);
  g.set_rate(0, 2, 3.0);
  g.set_rate(4, 5, 1.0);
  return g;
}

TEST(Analysis, Degrees) {
  const auto d = degrees(triangle_plus_isolate());
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[1], 2u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 0u);
  EXPECT_EQ(d[4], 1u);
  EXPECT_EQ(d[5], 1u);
}

TEST(Analysis, DegreeStats) {
  const DegreeStats s = degree_stats(triangle_plus_isolate());
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_GT(s.gini, 0.0);
}

TEST(Analysis, DegreeStatsEmptyGraph) {
  const DegreeStats s = degree_stats(ContactGraph(0));
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Analysis, WeightedDegrees) {
  const auto w = weighted_degrees(triangle_plus_isolate());
  EXPECT_DOUBLE_EQ(w[0], 4.0);  // 1 + 3
  EXPECT_DOUBLE_EQ(w[1], 3.0);  // 1 + 2
  EXPECT_DOUBLE_EQ(w[2], 5.0);  // 2 + 3
  EXPECT_DOUBLE_EQ(w[3], 0.0);
}

TEST(Analysis, ClusteringCoefficient) {
  const ContactGraph g = triangle_plus_isolate();
  // Triangle nodes: both neighbors connected -> 1.0.
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 1), 1.0);
  // Degree < 2 -> 0.
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 3), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 4), 0.0);
}

TEST(Analysis, ClusteringOfStarIsZero) {
  ContactGraph g(5);
  for (NodeId i = 1; i < 5; ++i) g.set_rate(0, i, 1.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 0), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering(g), 0.0);
}

TEST(Analysis, AverageClustering) {
  const double avg = average_clustering(triangle_plus_isolate());
  EXPECT_NEAR(avg, 3.0 / 6.0, 1e-12);  // three 1.0 nodes of six
}

TEST(Analysis, ConnectedComponents) {
  const Components c = connected_components(triangle_plus_isolate());
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.component[0], c.component[1]);
  EXPECT_EQ(c.component[1], c.component[2]);
  EXPECT_NE(c.component[0], c.component[3]);
  EXPECT_EQ(c.component[4], c.component[5]);
  EXPECT_NE(c.component[3], c.component[4]);
  EXPECT_EQ(c.largest(), 3u);
}

TEST(Analysis, SingleComponentWhenConnected) {
  ContactGraph g(4);
  g.set_rate(0, 1, 1.0);
  g.set_rate(1, 2, 1.0);
  g.set_rate(2, 3, 1.0);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1);
  EXPECT_EQ(c.largest(), 4u);
}

TEST(Analysis, SyntheticCommunityTraceHasHighClustering) {
  // Community structure should show up as clustering well above a random
  // graph of similar density.
  SyntheticTraceConfig with_comm;
  with_comm.node_count = 60;
  with_comm.duration = days(10);
  with_comm.target_total_contacts = 8000;
  with_comm.community_count = 5;
  with_comm.intra_community_boost = 20.0;
  with_comm.pair_fraction = 0.15;
  with_comm.seed = 9;

  SyntheticTraceConfig without = with_comm;
  without.community_count = 0;

  const double c_with = average_clustering(
      build_contact_graph(generate_trace(with_comm), -1.0, 2));
  const double c_without = average_clustering(
      build_contact_graph(generate_trace(without), -1.0, 2));
  EXPECT_GT(c_with, c_without);
}

}  // namespace
}  // namespace dtn

// Tests for the observability registry (src/common/instrument.h):
// aggregation and delta arithmetic, name stability, thread-safe
// accumulation from parallel_for workers, and the macro layer (guarded on
// instrument::enabled() so the suite passes in DTN_INSTRUMENT=OFF builds;
// tests/instrument_off_test.cpp covers the compiled-out macro mode).
#include "common/instrument.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "common/parallel.h"

namespace dtn::instrument {
namespace {

TEST(InstrumentTest, CounterNamesAreStableJsonIdentifiers) {
  // These strings are the bench JSON schema — see bench/bench_json.h and
  // tools/bench_compare.py. Renaming one breaks baseline comparisons.
  EXPECT_STREQ(counter_name(Counter::kHypoexpClosedFormEvals),
               "hypoexp_closed_form_evals");
  EXPECT_STREQ(counter_name(Counter::kDijkstraRelaxations),
               "dijkstra_relaxations");
  EXPECT_STREQ(counter_name(Counter::kKnapsackDpCells), "knapsack_dp_cells");
  EXPECT_STREQ(counter_name(Counter::kBufferEvictions), "buffer_evictions");
  EXPECT_STREQ(counter_name(Counter::kContactsProcessed),
               "contacts_processed");
  EXPECT_STREQ(timer_name(Timer::kSimulation), "simulation");
  EXPECT_STREQ(timer_name(Timer::kAllPairs), "all_pairs");
}

TEST(InstrumentTest, NamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    names.push_back(counter_name(static_cast<Counter>(i)));
  }
  for (int i = 0; i < static_cast<int>(Timer::kCount); ++i) {
    names.push_back(timer_name(static_cast<Timer>(i)));
  }
  for (const std::string& name : names) EXPECT_FALSE(name.empty());
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
}

TEST(InstrumentTest, AddIsVisibleInSnapshotDelta) {
  const StageStats before = snapshot();
  add(Counter::kSweepCells, 5);
  add(Counter::kSweepCells, 2);
  const StageStats delta = snapshot().delta_since(before);
  EXPECT_EQ(delta.counter("sweep_cells"), 7u);
  EXPECT_EQ(delta.counter("no_such_counter"), 0u);
}

TEST(InstrumentTest, SnapshotCoversEveryEnumeratorInOrder) {
  const StageStats stats = snapshot();
  ASSERT_EQ(stats.counters.size(), static_cast<std::size_t>(Counter::kCount));
  ASSERT_EQ(stats.timers.size(), static_cast<std::size_t>(Timer::kCount));
  for (std::size_t i = 0; i < stats.counters.size(); ++i) {
    EXPECT_EQ(stats.counters[i].name,
              counter_name(static_cast<Counter>(static_cast<int>(i))));
  }
}

TEST(InstrumentTest, AddTimeAccumulatesCallsAndNanos) {
  const StageStats before = snapshot();
  add_time(Timer::kKnapsack, 1000);
  add_time(Timer::kKnapsack, 500);
  const StageStats delta = snapshot().delta_since(before);
  const std::size_t idx = static_cast<std::size_t>(Timer::kKnapsack);
  EXPECT_EQ(delta.timers[idx].calls, 2u);
  EXPECT_EQ(delta.timers[idx].nanos, 1500u);
}

TEST(InstrumentTest, ScopedTimerChargesItsStage) {
  const StageStats before = snapshot();
  {
    ScopedTimer timer(Timer::kSweep);
  }
  const StageStats delta = snapshot().delta_since(before);
  EXPECT_EQ(delta.timers[static_cast<std::size_t>(Timer::kSweep)].calls, 1u);
}

TEST(InstrumentTest, ConcurrentAddsFromPoolWorkersAreExact) {
  // The counters' whole job is totalling work done inside parallel_for
  // regions (per-root Dijkstra, sweep cells). Totals must be exact, not
  // approximate, whatever the interleaving.
  const StageStats before = snapshot();
  constexpr std::size_t kItems = 2000;
  parallel_for(4, kItems, [](std::size_t i) {
    add(Counter::kDijkstraRelaxations, 1);
    if (i % 2 == 0) add(Counter::kDijkstraSettled, 3);
  });
  const StageStats delta = snapshot().delta_since(before);
  EXPECT_EQ(delta.counter("dijkstra_relaxations"), kItems);
  EXPECT_EQ(delta.counter("dijkstra_settled"), 3u * (kItems / 2));
}

TEST(InstrumentTest, MacrosBumpRegistryExactlyWhenEnabled) {
  const StageStats before = snapshot();
  DTN_COUNT(kMaintenanceTicks);
  DTN_COUNT_N(kBufferEvictions, 4);
  { DTN_SCOPED_TIMER(kMaintenance); }
  const StageStats delta = snapshot().delta_since(before);
  if (enabled()) {
    EXPECT_EQ(delta.counter("maintenance_ticks"), 1u);
    EXPECT_EQ(delta.counter("buffer_evictions"), 4u);
    EXPECT_EQ(delta.timers[static_cast<std::size_t>(Timer::kMaintenance)].calls,
              1u);
  } else {
    EXPECT_EQ(delta.counter("maintenance_ticks"), 0u);
    EXPECT_EQ(delta.counter("buffer_evictions"), 0u);
    EXPECT_EQ(delta.timers[static_cast<std::size_t>(Timer::kMaintenance)].calls,
              0u);
  }
}

TEST(InstrumentTest, ToStringListsOnlyNonZeroRows) {
  reset();
  add(Counter::kKnapsackSolves, 12);
  const std::string report = snapshot().to_string();
  EXPECT_NE(report.find("knapsack_solves"), std::string::npos);
  EXPECT_EQ(report.find("sweep_cells"), std::string::npos);
  reset();
  EXPECT_NE(snapshot().to_string().find("no instrumentation samples"),
            std::string::npos);
}

TEST(InstrumentTest, ResetZeroesEverything) {
  add(Counter::kSweepCells, 9);
  add_time(Timer::kSweep, 100);
  reset();
  const StageStats stats = snapshot();
  for (const auto& row : stats.counters) EXPECT_EQ(row.value, 0u);
  for (const auto& row : stats.timers) {
    EXPECT_EQ(row.calls, 0u);
    EXPECT_EQ(row.nanos, 0u);
  }
}

}  // namespace
}  // namespace dtn::instrument

// Minimal property-based testing harness for the dtncache test suite.
//
// A property is a predicate checked over many randomized cases. Cases are
// generated from a fixed default base seed, so a checked-in run is fully
// reproducible; every case's SCOPED_TRACE carries the exact case seed, so a
// failure report names the one seed needed to replay it. Set
// DTN_PROPTEST_SEED=<n> to explore a different universe of cases locally —
// CI always runs the pinned default.
//
// The harness deliberately has no shrinking: case inputs here are small by
// construction (op sequences of a few hundred steps, pools of tens of
// items), so the failing case itself is already a usable repro.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "common/rng.h"

namespace dtn {
namespace proptest {

/// Base seed for the whole property run: the pinned default unless
/// overridden via the DTN_PROPTEST_SEED environment variable.
inline std::uint64_t base_seed() {
  if (const char* env = std::getenv("DTN_PROPTEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x5EEDC0DEULL;
}

/// Runs `body(rng, case_index)` for `cases` independently seeded cases.
/// Each case gets its own derived RNG stream (derive_seed), so property
/// bodies can draw freely without coupling cases to each other. Stops at
/// the first fatally failed case to keep the log readable.
template <typename Fn>
void run_property(const char* name, int cases, Fn&& body) {
  const std::uint64_t base = base_seed();
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t case_seed = derive_seed(base, static_cast<std::uint64_t>(i));
    SCOPED_TRACE(::testing::Message()
                 << "property " << name << ", case " << i << " of " << cases
                 << " (base seed " << base << ", case seed " << case_seed
                 << "; replay with DTN_PROPTEST_SEED=" << base << ")");
    Rng rng(case_seed);
    body(rng, i);
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace proptest
}  // namespace dtn

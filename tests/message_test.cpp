#include "net/message.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dtn {
namespace {

DataItem make_item(NodeId source, Time created, Time expires, Bytes size) {
  DataItem item;
  item.source = source;
  item.created = created;
  item.expires = expires;
  item.size = size;
  return item;
}

TEST(DataItem, Liveness) {
  const DataItem item = make_item(0, 10.0, 20.0, 100);
  EXPECT_TRUE(item.alive(15.0));
  EXPECT_FALSE(item.alive(20.0));
  EXPECT_FALSE(item.alive(25.0));
  EXPECT_DOUBLE_EQ(item.lifetime(), 10.0);
}

TEST(Query, TimeConstraintAndRemaining) {
  Query q;
  q.issued = 100.0;
  q.expires = 160.0;
  EXPECT_DOUBLE_EQ(q.time_constraint(), 60.0);
  EXPECT_DOUBLE_EQ(q.remaining(130.0), 30.0);
  EXPECT_TRUE(q.alive(159.0));
  EXPECT_FALSE(q.alive(160.0));
}

TEST(DataRegistry, AssignsDenseIds) {
  DataRegistry reg;
  const DataId a = reg.add(make_item(0, 0.0, 10.0, 1));
  const DataId b = reg.add(make_item(1, 0.0, 10.0, 1));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.get(a).id, a);
  EXPECT_EQ(reg.get(b).source, 1);
}

TEST(DataRegistry, RejectsInvalidItems) {
  DataRegistry reg;
  EXPECT_THROW(reg.add(make_item(0, 0.0, 10.0, 0)), std::invalid_argument);
  EXPECT_THROW(reg.add(make_item(0, 10.0, 10.0, 5)), std::invalid_argument);
  EXPECT_THROW(reg.add(make_item(0, 10.0, 5.0, 5)), std::invalid_argument);
}

TEST(DataRegistry, AliveCount) {
  DataRegistry reg;
  reg.add(make_item(0, 0.0, 10.0, 1));
  reg.add(make_item(0, 5.0, 15.0, 1));
  reg.add(make_item(0, 20.0, 30.0, 1));
  EXPECT_EQ(reg.alive_count(-1.0), 0u);
  EXPECT_EQ(reg.alive_count(6.0), 2u);
  EXPECT_EQ(reg.alive_count(12.0), 1u);
  EXPECT_EQ(reg.alive_count(17.0), 0u);
  EXPECT_EQ(reg.alive_count(25.0), 1u);
  EXPECT_EQ(reg.alive_count(100.0), 0u);
}

TEST(DataRegistry, GetOutOfRangeThrows) {
  DataRegistry reg;
  EXPECT_THROW(reg.get(0), std::out_of_range);
}

}  // namespace
}  // namespace dtn

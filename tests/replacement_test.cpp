#include "cache/replacement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dtn {
namespace {

ReplacementItem item(DataId id, Bytes size, double popularity, bool at_a) {
  ReplacementItem r;
  r.id = id;
  r.size = size;
  r.popularity = popularity;
  r.at_a = at_a;
  return r;
}

ReplacementConfig deterministic_config() {
  ReplacementConfig c;
  c.probabilistic = false;
  c.knapsack_unit = 1;
  return c;
}

Bytes total_size(const std::vector<ReplacementItem>& pool,
                 const std::vector<DataId>& ids) {
  Bytes total = 0;
  for (DataId id : ids) {
    for (const auto& it : pool) {
      if (it.id == id) total += it.size;
    }
  }
  return total;
}

TEST(Replacement, EmptyPool) {
  Rng rng(1);
  const ReplacementPlan plan =
      plan_replacement({}, 100, 100, 0.5, 0.2, deterministic_config(), rng);
  EXPECT_TRUE(plan.keep_at_a.empty());
  EXPECT_TRUE(plan.keep_at_b.empty());
  EXPECT_TRUE(plan.dropped.empty());
}

TEST(Replacement, EverythingFitsNothingDropped) {
  Rng rng(1);
  const std::vector<ReplacementItem> pool{
      item(1, 10, 0.9, true), item(2, 10, 0.5, false), item(3, 10, 0.1, true)};
  const ReplacementPlan plan =
      plan_replacement(pool, 30, 30, 0.8, 0.3, deterministic_config(), rng);
  EXPECT_TRUE(plan.dropped.empty());
  EXPECT_EQ(plan.keep_at_a.size() + plan.keep_at_b.size(), 3u);
}

TEST(Replacement, HigherWeightNodeGetsPopularData) {
  Rng rng(2);
  // Node A nearer the central (0.9 vs 0.1); capacity forces a split.
  const std::vector<ReplacementItem> pool{
      item(1, 10, 0.9, false), item(2, 10, 0.8, false), item(3, 10, 0.2, true),
      item(4, 10, 0.1, true)};
  const ReplacementPlan plan =
      plan_replacement(pool, 20, 20, 0.9, 0.1, deterministic_config(), rng);
  // A picks first and takes the two most popular items.
  std::set<DataId> at_a(plan.keep_at_a.begin(), plan.keep_at_a.end());
  EXPECT_TRUE(at_a.contains(1));
  EXPECT_TRUE(at_a.contains(2));
}

TEST(Replacement, BNodePicksFirstWhenCloser) {
  Rng rng(3);
  const std::vector<ReplacementItem> pool{item(1, 10, 0.9, true),
                                          item(2, 10, 0.1, true)};
  const ReplacementPlan plan =
      plan_replacement(pool, 10, 10, 0.1, 0.9, deterministic_config(), rng);
  // B has the higher weight: the popular item moves to B.
  ASSERT_EQ(plan.keep_at_b.size(), 1u);
  EXPECT_EQ(plan.keep_at_b[0], 1);
  ASSERT_EQ(plan.keep_at_a.size(), 1u);
  EXPECT_EQ(plan.keep_at_a[0], 2);
}

TEST(Replacement, CapacityRespected) {
  Rng rng(4);
  std::vector<ReplacementItem> pool;
  for (DataId id = 0; id < 10; ++id) {
    pool.push_back(item(id, 7, 0.5, id % 2 == 0));
  }
  const ReplacementPlan plan =
      plan_replacement(pool, 20, 15, 0.7, 0.4, deterministic_config(), rng);
  EXPECT_LE(total_size(pool, plan.keep_at_a), 20);
  EXPECT_LE(total_size(pool, plan.keep_at_b), 15);
}

TEST(Replacement, LowestPopularityDroppedUnderPressure) {
  Rng rng(5);
  // Fig. 8(b): when buffers shrink, the least popular item is evicted.
  const std::vector<ReplacementItem> pool{
      item(1, 10, 0.9, true), item(2, 10, 0.7, true), item(3, 10, 0.05, false)};
  const ReplacementPlan plan =
      plan_replacement(pool, 10, 10, 0.9, 0.5, deterministic_config(), rng);
  ASSERT_EQ(plan.dropped.size(), 1u);
  EXPECT_EQ(plan.dropped[0], 3);
}

TEST(Replacement, PartitionIsExactAndDisjoint) {
  Rng rng(6);
  std::vector<ReplacementItem> pool;
  for (DataId id = 0; id < 12; ++id) {
    pool.push_back(item(id, 5 + id, 0.1 * static_cast<double>(id % 10), id % 3 == 0));
  }
  ReplacementConfig config;
  config.knapsack_unit = 1;
  config.probabilistic = true;
  const ReplacementPlan plan =
      plan_replacement(pool, 40, 30, 0.6, 0.4, config, rng);

  std::set<DataId> all;
  for (DataId id : plan.keep_at_a) EXPECT_TRUE(all.insert(id).second);
  for (DataId id : plan.keep_at_b) EXPECT_TRUE(all.insert(id).second);
  for (DataId id : plan.dropped) EXPECT_TRUE(all.insert(id).second);
  EXPECT_EQ(all.size(), pool.size());
}

TEST(Replacement, MovedItemsTrackedWithBytes) {
  Rng rng(7);
  const std::vector<ReplacementItem> pool{item(1, 25, 0.9, false),
                                          item(2, 10, 0.1, true)};
  const ReplacementPlan plan =
      plan_replacement(pool, 100, 100, 0.9, 0.1, deterministic_config(), rng);
  // Item 1 moves from B to A (A is closer to the central and has room).
  ASSERT_EQ(plan.moved.size(), 1u);
  EXPECT_EQ(plan.moved[0], 1);
  EXPECT_EQ(plan.moved_bytes, 25);
}

TEST(Replacement, NoMovesWhenEverythingStays) {
  Rng rng(8);
  const std::vector<ReplacementItem> pool{item(1, 10, 0.9, true),
                                          item(2, 10, 0.8, true)};
  const ReplacementPlan plan =
      plan_replacement(pool, 100, 100, 0.9, 0.1, deterministic_config(), rng);
  EXPECT_TRUE(plan.moved.empty());
  EXPECT_EQ(plan.moved_bytes, 0);
}

TEST(Replacement, DuplicateIdsRejected) {
  Rng rng(9);
  const std::vector<ReplacementItem> pool{item(1, 10, 0.5, true),
                                          item(1, 10, 0.5, false)};
  EXPECT_THROW(plan_replacement(pool, 100, 100, 0.5, 0.5,
                                deterministic_config(), rng),
               std::invalid_argument);
}

TEST(Replacement, InvalidSizesRejected) {
  Rng rng(10);
  EXPECT_THROW(plan_replacement({item(1, 0, 0.5, true)}, 10, 10, 0.5, 0.5,
                                deterministic_config(), rng),
               std::invalid_argument);
  EXPECT_THROW(plan_replacement({item(1, 5, 0.5, true)}, -1, 10, 0.5, 0.5,
                                deterministic_config(), rng),
               std::invalid_argument);
}

TEST(Replacement, ProbabilisticStillFillsBuffers) {
  // Algorithm 1 with a deterministic fill pass must not waste space: with
  // ample capacity, nothing is dropped even when utilities are tiny.
  Rng rng(11);
  std::vector<ReplacementItem> pool;
  for (DataId id = 0; id < 8; ++id) pool.push_back(item(id, 10, 0.01, true));
  ReplacementConfig config;
  config.probabilistic = true;
  config.knapsack_unit = 1;
  const ReplacementPlan plan =
      plan_replacement(pool, 80, 80, 0.9, 0.1, config, rng);
  EXPECT_TRUE(plan.dropped.empty());
}

TEST(Replacement, ProbabilisticSpreadsPopularData) {
  // With probabilistic selection, the most popular item should sometimes
  // end up at the *lower*-weight node — the global copy-control effect of
  // Sec. V-D.3. The deterministic variant never does this.
  ReplacementConfig prob;
  prob.probabilistic = true;
  prob.knapsack_unit = 1;
  int at_b_count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) + 1000);
    const std::vector<ReplacementItem> pool{
        item(1, 10, 0.5, true), item(2, 10, 0.45, true),
        item(3, 10, 0.4, false)};
    const ReplacementPlan plan =
        plan_replacement(pool, 10, 20, 0.9, 0.5, prob, rng);
    if (std::find(plan.keep_at_b.begin(), plan.keep_at_b.end(), 1) !=
        plan.keep_at_b.end()) {
      ++at_b_count;
    }
  }
  EXPECT_GT(at_b_count, 10);   // happens with real frequency
  EXPECT_LT(at_b_count, 190);  // but is not the norm
}

TEST(Replacement, DeterministicAlwaysGivesPopularToCloserNode) {
  for (int trial = 0; trial < 50; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial));
    const std::vector<ReplacementItem> pool{item(1, 10, 0.9, false),
                                            item(2, 10, 0.2, true)};
    const ReplacementPlan plan =
        plan_replacement(pool, 10, 10, 0.9, 0.5, deterministic_config(), rng);
    ASSERT_EQ(plan.keep_at_a.size(), 1u);
    EXPECT_EQ(plan.keep_at_a[0], 1);
  }
}

// Property sweep over random pools: the plan always partitions the pool and
// respects both capacities.
class ReplacementProperty : public testing::TestWithParam<int> {};

TEST_P(ReplacementProperty, PartitionAndCapacityInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  std::vector<ReplacementItem> pool;
  const int n = 1 + GetParam() % 15;
  for (DataId id = 0; id < n; ++id) {
    pool.push_back(item(id, rng.uniform_int(1, 40),
                        rng.uniform(0.0, 1.0), rng.bernoulli(0.5)));
  }
  const Bytes cap_a = rng.uniform_int(0, 200);
  const Bytes cap_b = rng.uniform_int(0, 200);
  ReplacementConfig config;
  config.probabilistic = GetParam() % 2 == 0;
  config.knapsack_unit = 8;
  const ReplacementPlan plan = plan_replacement(
      pool, cap_a, cap_b, rng.uniform(), rng.uniform(), config, rng);

  EXPECT_EQ(plan.keep_at_a.size() + plan.keep_at_b.size() +
                plan.dropped.size(),
            pool.size());
  EXPECT_LE(total_size(pool, plan.keep_at_a), cap_a);
  EXPECT_LE(total_size(pool, plan.keep_at_b), cap_b);

  Bytes moved_bytes = 0;
  for (DataId id : plan.moved) {
    for (const auto& it : pool) {
      if (it.id == id) moved_bytes += it.size;
    }
  }
  EXPECT_EQ(moved_bytes, plan.moved_bytes);
}

INSTANTIATE_TEST_SUITE_P(RandomPools, ReplacementProperty,
                         testing::Range(0, 40));

}  // namespace
}  // namespace dtn

// Compiled with DTN_INSTRUMENT_OFF defined for this translation unit only
// (see tests/CMakeLists.txt): proves the macro layer erases to true no-ops
// — the registry does not move, no matter what the rest of the build does —
// while the registry API itself stays linkable and functional. This is the
// contract that makes -DDTN_INSTRUMENT=OFF a zero-overhead switch: call
// sites vanish at preprocessing time, not behind a runtime branch.
#ifndef DTN_INSTRUMENT_OFF
#define DTN_INSTRUMENT_OFF
#endif

#include "common/instrument.h"

#include <gtest/gtest.h>

namespace dtn::instrument {
namespace {

TEST(InstrumentOffTest, CountMacrosAreNoOps) {
  const StageStats before = snapshot();
  DTN_COUNT(kMaintenanceTicks);
  DTN_COUNT_N(kBufferEvictions, 1000);
  const StageStats delta = snapshot().delta_since(before);
  EXPECT_EQ(delta.counter("maintenance_ticks"), 0u);
  EXPECT_EQ(delta.counter("buffer_evictions"), 0u);
}

TEST(InstrumentOffTest, CountNDoesNotEvaluateItsArgument) {
  // The OFF expansion is ((void)0): a side-effecting count expression must
  // not run. This is what guarantees measurably-zero overhead.
  int evaluations = 0;
  auto count_work = [&]() -> int {
    ++evaluations;
    return 1;
  };
  DTN_COUNT_N(kSweepCells, count_work());
  // In this mode the macro erased the call above — count_work's only
  // remaining use is this direct one, proving the lambda itself works.
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(count_work(), 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(InstrumentOffTest, ScopedTimerMacroIsANoOp) {
  const StageStats before = snapshot();
  {
    DTN_SCOPED_TIMER(kSimulation);
    DTN_SCOPED_TIMER(kSimulation);  // no redefinition: macro erases entirely
  }
  const StageStats delta = snapshot().delta_since(before);
  EXPECT_EQ(delta.timers[static_cast<std::size_t>(Timer::kSimulation)].calls,
            0u);
}

TEST(InstrumentOffTest, RegistryApiStillWorksDirectly) {
  // Tools (dtnsim --stats) and benches call the API unconditionally; only
  // the macro call sites are compiled out.
  const StageStats before = snapshot();
  add(Counter::kSweepCells, 3);
  add_time(Timer::kSweep, 42);
  const StageStats delta = snapshot().delta_since(before);
  EXPECT_EQ(delta.counter("sweep_cells"), 3u);
  EXPECT_EQ(delta.timers[static_cast<std::size_t>(Timer::kSweep)].calls, 1u);
}

}  // namespace
}  // namespace dtn::instrument
